"""Deterministic control plane: telemetry-tuned knobs at quantum edges.

Every knob that decides a cluster run's makespan — the async prefetch
queue depth, the retransmit timeout, the placement of virtual nodes on
the fabric — ships as a static constant, yet the transport already
observes exactly the signals needed to tune them live: demand pulls and
late-arriving prefetches, stale/aged speculation, per-route delivery
latencies, per-pair traffic volumes.  A :class:`Controller` closes that
feedback loop *deterministically*:

* **Decision points are quantum boundaries.**  The kernel invokes the
  controller from the rendezvous path (``Kernel._rendezvous``), right
  after a child ran to a stop — the same points at which the paper's
  kernel takes scheduling decisions.  Nothing else ever calls it.
* **Inputs are a pure function of simulated state.**  Each decision
  pass consumes one read-only
  :class:`~repro.cluster.transport.TelemetryWindow` — the transport's
  counters since the previous pass, snapshot-and-reset.  No host time,
  no randomness, no schedule()-side information: the window holds only
  quantities the simulated execution itself determined, so two
  same-seed runs feed the controller bit-identical windows.
* **Outputs take effect at the next quantum.**  Decisions mutate knob
  state (per-node depths, per-route timeouts, the virtual-to-physical
  node map) that the kernel and transport consult *on their next use*;
  nothing retroactively edits the trace.  Each decision is recorded on
  the trace (:attr:`~repro.timing.trace.Trace.decisions`) anchored at
  the deciding segment, and its cycle cost (``cost.ctrl_decide``) is
  charged to the rendezvousing space — so replaying the trace replays
  the decisions' consequences exactly, on either schedule engine.

Three policies ship:

**Adaptive prefetch depth** (per node, AIMD-style).  The demand signal
is the window's stop-and-wait *pulls* — pages nobody had even queued.
(Late redeems deliberately do not grow depth: they also fire on every
ledger-predicted page a space demands the instant it lands, so growing
on them inflates depth in phases that are already fully covered.)  A
pull burst at or above the current depth jumps straight to the burst
size (slow start, so a node streaming a matrix converges to a deep
queue within a few quanta); a trickle adds one.  The waste signal is
stale frames (producer superseded the payload in flight) plus half the
*aged* in-flight frames (issued two or more windows ago and still
unclaimed) plus *churn* (``prefetch_refresh``: re-speculation on pages
whose producer rewrote them since this node last fetched them —
batched exchanges launder superseded siblings as "used", so churn must
count as waste on its own).  Waste halves depth (multiplicative
decrease, floor 1 — a depth-0 node observes no waste and would
oscillate); churn-dominated windows collapse straight to observed
demand, since every retained slot re-pays its wire tax at the next
rewrite.  Two fleet-wide ratchets exploit the SPMD structure: one
node's demand jump raises the boot depth its siblings start from, and
one node's churn collapse pins every node's depth down before their
next fork.  Growth re-arms only after ``growth_hold`` strictly-clean
windows (zero churn *and* zero stale/aged: the purge path converts a
doomed queue's churn into stale counts, so churn going quiet alone
proves nothing).

**Per-route retransmit timeouts** (SRTT + RTTVAR).  The transport
samples each clean *single-page* exchange's modelled delivery latency
per route (Karn's rule twice over: exchanges that hit the fault path
contribute no sample, and multi-page batches measure sender drain, not
route turnaround); the controller smooths them with the RFC 6298
integer estimator
(``srtt += (s - srtt)/8``, ``rttvar += (|s - srtt| - rttvar)/4``) and
sets the route's timeout to ``srtt + 4*rttvar``, clamped between twice
the route's transit latency (a retransmit can never beat physics) and
the static ``cost.retx_timeout`` (adaptation may stop over-waiting on
fast rack links, never under-wait worse than the static timer).  Lossy
runs stop paying a core-link-sized timer on every rack-link drop.

**Hot-pair re-placement.**  When one cross-rack node pair's traffic
dominates the window (above an absolute floor, a fraction of all
cross-rack bytes, and twice the runner-up pair) — and the *same* pair
dominated two deciding windows in a row, so a phased program's
rotating "hot" pair is never chased — the controller swaps the
*population* of the remote end with the coldest node of the peer's
rack: the virtual-to-physical
node map entries swap, every space homed on either physical node swaps
its home, and quiescent spaces migrate over the existing ledger-driven
delta path immediately (running spaces drift home lazily through the
engine's stop path).  Placement stays a bijection, so — as with the
static policies — re-placement relocates traffic, never semantics.
"""

from repro.cluster.transport import NODE_WINDOW_KEYS  # noqa: F401  (re-export)


def _fmt_knob(value):
    return f"{value:,}" if isinstance(value, int) else str(value)


class Controller:
    """Per-node adaptive control state of one machine.

    Construct directly (``Machine(control=Controller(...))``), from the
    string ``"adaptive"`` (all defaults), or from a kwargs dict; the
    machine calls :meth:`reset` when it takes ownership, so a reused
    instance never leaks state between runs.
    """

    #: Recognized policy names (the ``policies`` argument).
    POLICIES = ("prefetch", "retx", "placement")

    def __init__(self, interval=1, policies=POLICIES, depth0=None,
                 depth_cap=64, waste_tolerance=8, growth_hold=2,
                 replace_floor=192 * 1024, replace_frac=0.5,
                 replace_cooldown=4, max_moves=4):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        unknown = set(policies) - set(self.POLICIES)
        if unknown:
            raise ValueError(f"unknown control policies {sorted(unknown)} "
                             f"(have {list(self.POLICIES)})")
        #: Decide every ``interval``-th quantum (1 = every rendezvous).
        self.interval = interval
        self.policies = tuple(policies)
        #: Initial per-node prefetch depth; None defaults to half the
        #: cap — a deliberately generous speculation budget (TCP's
        #: large-initial-window rationale): a wrong prior sheds within a
        #: window or two of waste telemetry, while a too-timid prior
        #: costs the one unrepeatable event the controller can never
        #: replay — each node's first big stream, which at quantum
        #: granularity is over before its first decision lands.
        self.depth0 = depth0
        self.depth_cap = depth_cap
        #: Shrink when ``stale + aged > max(1, used // waste_tolerance)``.
        self.waste_tolerance = waste_tolerance
        #: Clean (zero-waste) windows a node must string together after
        #: a shrink before demand may grow its depth again.  Without
        #: the holdoff, a phase whose speculation is *inherently* doomed
        #: (hot pages rewritten every round) oscillates: the shrink
        #: empties the queue, the next window's demand misses re-grow
        #: it, and the round after that wastes it all over again.
        self.growth_hold = growth_hold
        #: Hot-pair thresholds: absolute window bytes and fraction of
        #: the window's total cross-rack bytes a pair must carry.
        self.replace_floor = replace_floor
        self.replace_frac = replace_frac
        #: Windows to wait after a move before considering the next one,
        #: and the per-run move budget (re-placement must converge, not
        #: thrash).
        self.replace_cooldown = replace_cooldown
        self.max_moves = max_moves
        self.machine = None
        self.reset(None)

    # -- lifecycle ---------------------------------------------------------

    def reset(self, machine):
        """(Re)bind to ``machine`` and clear all adaptive state."""
        self.machine = machine
        base = self.depth0
        if base is None:
            base = max(1, self.depth_cap // 2)
        self._base_depth = base
        #: Bootstrap depth for nodes with no per-node state yet.  It
        #: ratchets up to the largest demand-driven depth any node
        #: reached: in an SPMD program the nodes stream near-identical
        #: working sets, so the first node's burst sizes the queues of
        #: the nodes that have not streamed yet — without it, every
        #: node's one big stream runs at the cold depth and the (per
        #: node, once-only) lesson always arrives a quantum late.
        self._boot = base
        #: node -> current adaptive prefetch depth, -> remaining clean
        #: windows before demand-driven growth re-arms, and -> whether
        #: the node's last shrink was churn-driven (in which case
        #: re-growth probes by +1 instead of jumping: a jump back into
        #: a rewrite-every-round phase re-pays the whole queue's wire
        #: tax for a full round before the next window can undo it).
        self.depths = {}
        self._hold = {}
        self._churned = {}
        #: unordered (a, b) node pair -> smoothed RTT state / timeout.
        self.srtt = {}
        self.rttvar = {}
        self.timeouts = {}
        #: Re-placement state.
        self.moves = 0
        self._cooldown = 0
        self._last_hot = None
        #: Human-readable decision log, one line per decision, in
        #: decision order (same content as the trace's ``decisions``
        #: records — the rendering the example prints).
        self.log = []
        self._quanta = 0
        self.windows_seen = 0

    # -- knob reads (kernel/transport hot paths) ---------------------------

    def depth_for(self, node):
        """Current adaptive prefetch depth of ``node``."""
        return self.depths.get(node, self._boot)

    def timeout_for(self, src, dst):
        """Adaptive retransmit timeout of the ``src``/``dst`` route, or
        None before any sample arrived (caller falls back to the static
        ``cost.retx_timeout``)."""
        pair = (src, dst) if src <= dst else (dst, src)
        return self.timeouts.get(pair)

    # -- the quantum hook --------------------------------------------------

    def on_quantum(self, machine, caller):
        """One control-plane pass at a quantum boundary.

        Called by ``Kernel._rendezvous`` after ``caller``'s child ran to
        a stop.  Every ``interval``-th call consumes the telemetry
        window and lets each enabled policy adjust its knobs; decisions
        are recorded on the trace anchored at ``caller``'s open segment
        and charged ``cost.ctrl_decide`` cycles.
        """
        self._quanta += 1
        if self._quanta % self.interval:
            return
        window = machine.transport.take_window()
        self.windows_seen += 1
        trace = machine.trace
        anchor = trace.current(caller.uid) if trace.is_open(caller.uid) \
            else None
        if "prefetch" in self.policies:
            self._decide_prefetch(machine, window, anchor)
        if "retx" in self.policies:
            self._decide_retx(machine, window, anchor)
        if "placement" in self.policies:
            self._decide_placement(machine, window, anchor, caller)
        machine.kernel.kcharge(caller, machine.cost.ctrl_decide)

    def _record(self, machine, anchor, node, policy, knob, old, new):
        seg_id = anchor.id if anchor is not None else -1
        machine.trace.decision(seg_id, node, policy, knob, old, new)
        self.log.append(
            f"w{machine.transport.window_index - 1:>3} {policy:<9} "
            f"{knob}[{node}]: {_fmt_knob(old)} -> {_fmt_knob(new)}")

    # -- policy 1: adaptive prefetch depth ---------------------------------

    def _decide_prefetch(self, machine, window, anchor):
        collapse = None
        for node in sorted(window.nodes):
            row = window.nodes[node]
            depth = self.depth_for(node)
            used = row["prefetch_used"]
            # Stale frames are certain waste (the producer superseded
            # them in flight); aged frames are only *probable* waste —
            # still queued, they may yet redeem next phase — so they
            # weigh half.
            waste = row["prefetch_stale"] + row["prefetch_aged"] // 2
            # Refreshes are re-speculation on pages whose producer
            # rewrote them since this node last fetched them.  One
            # refresh is a page keeping up; a *recurring* stream of
            # them is churn — hot pages rewritten every round tax the
            # wire at every queue refill, and batched exchanges launder
            # the casualties as "used" (any demanded sibling lands the
            # whole exchange), so churn must count as waste on its own.
            churn = row["prefetch_refresh"]
            # Growth keys on demand *pulls* only: pages nobody had even
            # queued.  Late redeems mean the pipeline is shallow, but
            # they also fire on every ledger-predicted page a space
            # demands the instant it lands — growing on them inflates
            # depth in phases that are already fully covered.
            demand = row["pulled"]
            hold = self._hold.get(node, 0)
            clean = (churn == 0 and row["prefetch_stale"] == 0
                     and row["prefetch_aged"] == 0)
            new = depth
            if clean and depth >= 1:
                # A strictly clean window with speculation active: the
                # rewrite churn has stopped *and* nothing the node still
                # speculates on is dying in flight; jumps are safe
                # again.  (churn alone going quiet is not enough — the
                # purge path converts a doomed queue's churn into stale
                # counts, so a node can look churn-free while its every
                # speculation is still being superseded.)
                self._churned.pop(node, None)
            if waste + churn > max(1, used // self.waste_tolerance):
                # Multiplicative decrease: speculation is visibly being
                # wasted (superseded in flight, or sitting unclaimed) —
                # and growth is held until the waste stops, so a phase
                # of inherently doomed speculation decays to the floor
                # instead of oscillating against the demand rules below.
                # The floor is 1, not 0 (TCP's one-segment congestion
                # window): a zero-depth queue observes no waste at all,
                # so a node parked at 0 would look spotless, re-grow on
                # the next quiet window, and oscillate forever.
                new = max(1, depth // 2)
                if churn >= max(1, waste):
                    # Churn-dominated windows collapse straight to what
                    # demand shows is genuinely missing (floor 1): every
                    # retained slot of depth re-pays its wire next
                    # rewrite, so halving toward the floor one window at
                    # a time just meters out the same recurring tax.
                    new = max(1, min(new, max(1, demand)))
                    self._churned[node] = True
                    collapse = new if collapse is None else min(collapse, new)
                self._hold[node] = self.growth_hold
            elif hold:
                if clean:
                    self._hold[node] = hold - 1
            elif demand >= max(1, depth) and not self._churned.get(node):
                # The queue is clearly undersized: the node stalled on a
                # burst it could not have pipelined.  Jump to the
                # observed per-window demand (the depth that would have
                # hidden this whole burst), with slow-start doubling as
                # the floor so a trickle of stalls still converges.
                new = min(self.depth_cap, max(2 * depth, 1, demand))
                if new > self._boot:
                    self._boot = new
            elif demand > 0:
                # Mild residual stalling under an almost-right depth:
                # additive increase (AIMD's congestion avoidance).
                new = min(self.depth_cap, depth + 1)
            if new != depth:
                self.depths[node] = new
                self._record(machine, anchor, node, "prefetch",
                             "depth", depth, new)
        if collapse is not None:
            # Fleet-wide downward ratchet, the mirror of ``_boot``'s
            # upward one and on the same SPMD rationale: the nodes run
            # the same program against the same producer, so one node's
            # churn lesson reprices the queues of nodes that have not
            # hit theirs yet — crucially *before* their next fork, not a
            # full round of recurring wire tax later.
            self._boot = min(self._boot, collapse)
            for node in range(machine.nnodes):
                old = self.depth_for(node)
                self._churned[node] = True
                self._hold[node] = self.growth_hold
                # Pin an explicit per-node entry even when the depth
                # value is unchanged: a node left on the implicit boot
                # default would silently re-inflate the next time some
                # other node's demand jump ratchets ``_boot`` back up.
                self.depths[node] = min(old, collapse)
                if old > collapse:
                    self._record(machine, anchor, node, "prefetch",
                                 "depth", old, collapse)

    # -- policy 2: per-route SRTT retransmit timeouts ----------------------

    def _decide_retx(self, machine, window, anchor):
        if machine.loss is None:
            return
        cost = machine.cost
        for pair in sorted(window.route_samples):
            samples = window.route_samples[pair]
            srtt = self.srtt.get(pair)
            var = self.rttvar.get(pair, 0)
            for sample in samples:
                if srtt is None:
                    # RFC 6298 bootstrap: first sample seeds the pair.
                    srtt, var = sample, sample // 2
                else:
                    err = sample - srtt
                    var += (abs(err) - var) // 4
                    srtt += err // 8
            if srtt is None:
                continue
            self.srtt[pair], self.rttvar[pair] = srtt, var
            # Physics floor: a retransmit fired inside the route's round
            # trip can only duplicate, never rescue.  Static ceiling:
            # adaptation may stop over-waiting, never wait longer than
            # the static timer would have (the ceiling wins when a long
            # route's floor exceeds it).
            floor = 2 * machine.topology.route_latency(cost, *pair)
            rto = min(cost.retx_timeout, max(floor, srtt + 4 * var))
            old = self.timeouts.get(pair, cost.retx_timeout)
            if rto != old:
                self.timeouts[pair] = rto
                self._record(machine, anchor, pair, "retx",
                             "timeout", old, rto)
            else:
                self.timeouts[pair] = rto

    # -- policy 3: hot-pair re-placement -----------------------------------

    def _decide_placement(self, machine, window, anchor, caller):
        topo = machine.topology
        racks = topo.racks()
        if len(racks) < 2:
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.moves >= self.max_moves:
            return
        # Symmetric per-pair window bytes, cross-rack pairs only.
        sym = {}
        cross_total = 0
        for (src, dst), nbytes in window.pair_bytes.items():
            if topo.rack_of(src) == topo.rack_of(dst):
                continue
            pair = (src, dst) if src <= dst else (dst, src)
            sym[pair] = sym.get(pair, 0) + nbytes
            cross_total += nbytes
        if not sym:
            return
        (a, b), hot = max(sorted(sym.items()), key=lambda kv: kv[1])
        if hot < self.replace_floor or hot < self.replace_frac * cross_total:
            self._last_hot = None
            return
        # The hot pair must also dominate the runner-up decisively: an
        # SPMD hub fanning out near-equal traffic to every rack shows a
        # "top" pair by rounding noise only, and migrating one of its
        # spokes just moves the same bytes to a different uplink while
        # paying the relocation and refill for nothing.
        runner_up = max((nbytes for pair, nbytes in sym.items()
                         if pair != (a, b)), default=0)
        if hot < 2 * runner_up:
            self._last_hot = None
            return
        # Persistence filter: act only when the same pair dominated two
        # deciding windows in a row.  Phased programs (a reduction tree
        # streaming different halves each level) show a different "hot"
        # pair every window; chasing those relocates spaces for traffic
        # that has already moved on.  A genuine placement pathology —
        # two tightly-coupled spaces pinned across the core — dominates
        # every window.
        if self._last_hot != (a, b):
            self._last_hot = (a, b)
            return
        victim = self._pick_victim(machine, window, a, b)
        if victim is None:
            return
        self._swap_nodes(machine, b, victim, caller)
        self.moves += 1
        self._cooldown = self.replace_cooldown
        self._last_hot = None
        self._record(machine, anchor, (a, b), "placement",
                     "swap", b, victim)

    def _pick_victim(self, machine, window, a, b):
        """Coldest currently-assigned node of ``a``'s rack (``b`` moves
        into its slot).  Only assigned slots are eligible: swapping an
        unassigned slot could collide with the static policy's future
        first-use assignments."""
        topo = machine.topology
        assigned = set(machine.node_map.values())

        def traffic(node):
            return sum(nbytes
                       for (src, dst), nbytes in window.pair_bytes.items()
                       if src == node or dst == node)

        candidates = [node for node in racks_of(topo, a)
                      if node != a and node in assigned]
        if not candidates or b not in assigned:
            return None
        return min(candidates, key=lambda node: (traffic(node), node))

    def _swap_nodes(self, machine, b, c, caller):
        """Swap the populations of physical nodes ``b`` and ``c``.

        The virtual-to-physical map entries swap (placement stays a
        bijection), every space homed on either node swaps its home,
        and quiescent spaces with a trace context migrate immediately
        over the ordinary delta path — paying the move's real wire cost
        now to relocate their future traffic.  The rendezvousing caller
        and running spaces only change *home*: the engine's stop path
        migrates them to the new home at their next stop.
        """
        node_map = machine.node_map
        for vnode, phys in sorted(node_map.items()):
            if phys == b:
                node_map[vnode] = c
            elif phys == c:
                node_map[vnode] = b
        trace = machine.trace
        for space in machine.root.walk():
            if space.home_node == b:
                new_home = c
            elif space.home_node == c:
                new_home = b
            else:
                continue
            space.home_node = new_home
            if (space is not caller and space.is_stopped()
                    and space.cur_node != new_home
                    and trace.is_open(space.uid)):
                machine.kernel.migrate(space, new_home)

    # -- reporting ---------------------------------------------------------

    def decision_log(self, last=None):
        """The formatted decision log (optionally only the ``last`` N)."""
        lines = self.log if last is None else self.log[-last:]
        return "\n".join(lines) if lines else "(no decisions)"

    def __repr__(self):
        return (f"<Controller policies={'/'.join(self.policies)} "
                f"windows={self.windows_seen} decisions={len(self.log)} "
                f"moves={self.moves}>")


def racks_of(topo, node):
    """Members of ``node``'s rack."""
    return topo.racks()[topo.rack_of(node)]


def resolve_control(spec):
    """Build a controller from None (off), the string ``"adaptive"``, a
    kwargs dict, or a :class:`Controller` instance."""
    if spec is None:
        return None
    if isinstance(spec, Controller):
        return spec
    if isinstance(spec, str):
        if spec == "adaptive":
            return Controller()
        raise ValueError(f"unknown control spec {spec!r} "
                         f"(have 'adaptive', a dict, or a Controller)")
    if isinstance(spec, dict):
        return Controller(**spec)
    raise ValueError(f"cannot interpret control spec {spec!r}")
