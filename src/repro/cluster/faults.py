"""Deterministic fault injection for the cluster fabric.

The paper's fig12 compares the deterministic protocol against a
TCP-style baseline, but a comparison of *reliability machinery* is
hollow while links never misbehave.  This module makes loss a
first-class, reproducible dimension of the model: a
:class:`LossSchedule` decides — per directed link, per message serial —
whether a wire copy is dropped, duplicated, or reordered, as a **pure
function** of ``(seed, link, serial, attempt)``.  No generator state is
consumed, so the decisions do not depend on call order, and two runs of
the same program under the same schedule fault the same messages on the
same links — faults replay bit-identically, in the spirit of
Determinator's system-enforced determinism (§2.1: nondeterministic
inputs become explicit, controllable ones).

The transport (:mod:`repro.cluster.transport`) consumes the decisions
hop by hop: every fabric link runs a reliable link layer that
retransmits a dropped copy after ``cost.retx_timeout`` cycles, bounded
by ``cost.retx_limit`` retries (exhaustion raises
:class:`~repro.common.errors.NetworkLossError`).  Retransmissions and
timeout waits are accounted per link (``LinkStats.retx_bytes`` /
``retx_msgs``) and charged to the stalling exchange as ``kind="retx"``
trace link edges, so ``ScheduleResult.stall_cycles["retx"]`` reports
exactly the time spaces lost to an unreliable fabric.  Because the
decision function is pure, the *computed values and final memory
images of every workload are identical under any loss schedule* — only
wire traffic and timing move.  Conservation extends to
``delivered + dropped == sent`` per physical link.

A uniform draw is compared against cumulative rate bands, so schedules
at increasing drop rates are *nested*: every message dropped at 0.1%
is also dropped at 1% under the same seed — loss-rate sweeps move
monotonically instead of resampling a fresh fault pattern per rate.
"""

from repro.common.detrandom import DeterministicRandom

#: Fault decision outcomes (compared by identity in the transport).
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
REORDER = "reorder"

_MASK = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fold(state, data):
    """FNV-1a fold of ``data`` bytes into ``state`` (stable across
    Python versions and processes, unlike builtin ``hash``)."""
    for byte in data:
        state = ((state ^ byte) * _FNV_PRIME) & _MASK
    return state


def _endpoint_bytes(end):
    """Stable byte encoding of a fabric endpoint (node int or switch
    name), with a type prefix so ``0`` and ``"0"`` cannot collide."""
    if isinstance(end, int):
        return b"i" + end.to_bytes(8, "little", signed=True)
    return b"s" + str(end).encode() + b"\x00"


class RetxBill:
    """Retransmission charges one exchange accumulated while sending.

    ``usage`` maps each link to the serialization cycles its
    retransmitted/duplicated copies occupied; ``wait`` is the total
    sender-side cycles spent in retransmission timeouts and reorder
    hold-backs.  The transport turns a non-empty bill into
    ``kind="retx"`` trace link edges on the stalling exchange;
    fire-and-forget messages (ACKs) carry no bill — their faults are
    accounted on the links but delay nobody.
    """

    __slots__ = ("usage", "wait")

    def __init__(self):
        self.usage = {}
        self.wait = 0

    def __bool__(self):
        return bool(self.usage) or self.wait > 0


class LossSchedule:
    """Deterministic per-link, per-message fault schedule.

    ``drop``, ``dup``, and ``reorder`` are independent rates in
    ``[0, 1]`` with ``drop + dup + reorder <= 1``; ``seed`` selects the
    fault pattern.  :meth:`decide` is a pure function — the schedule
    holds no mutable state, so it can be shared, replayed, and queried
    in any order without changing a single decision.

    >>> s = LossSchedule(drop=0.5, seed=7)
    >>> s.decide(("a", "b"), 3) == LossSchedule(drop=0.5, seed=7).decide(("a", "b"), 3)
    True
    """

    def __init__(self, drop=0.0, dup=0.0, reorder=0.0, seed=2010):
        for name, rate in (("drop", drop), ("dup", dup),
                           ("reorder", reorder)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], "
                                 f"got {rate}")
        if drop + dup + reorder > 1.0:
            raise ValueError(
                f"fault rates must sum to <= 1, got "
                f"{drop} + {dup} + {reorder}")
        self.drop = drop
        self.dup = dup
        self.reorder = reorder
        self.seed = seed

    def draw(self, link, serial, attempt=0):
        """The uniform in ``[0, 1)`` backing the decision for one wire
        copy — a pure function of ``(seed, link, serial, attempt)``."""
        state = _fold(_FNV_OFFSET, self.seed.to_bytes(8, "little",
                                                      signed=True))
        for end in link:
            state = _fold(state, _endpoint_bytes(end))
        state = _fold(state, serial.to_bytes(8, "little"))
        state = _fold(state, attempt.to_bytes(4, "little"))
        return DeterministicRandom(state).uniform()

    def decide(self, link, serial, attempt=0):
        """Fault outcome for message ``serial``'s copy number
        ``attempt`` on directed ``link``: one of :data:`DELIVER`,
        :data:`DROP`, :data:`DUPLICATE`, :data:`REORDER`.

        The draw is compared against cumulative bands, so raising the
        drop rate only *adds* dropped messages (schedules are nested
        across rates under one seed).
        """
        if not (self.drop or self.dup or self.reorder):
            return DELIVER
        u = self.draw(link, serial, attempt)
        if u < self.drop:
            return DROP
        if u < self.drop + self.dup:
            return DUPLICATE
        if u < self.drop + self.dup + self.reorder:
            return REORDER
        return DELIVER

    def describe(self):
        """One-line human-readable description (NetworkStats reports)."""
        return (f"drop={self.drop:.3%} dup={self.dup:.3%} "
                f"reorder={self.reorder:.3%} seed={self.seed}")

    def __repr__(self):
        return f"<LossSchedule {self.describe()}>"


def resolve_loss(spec):
    """Build the machine's :class:`LossSchedule` from a spec.

    ``spec`` may be None (lossless fabric — the fault path is skipped
    entirely, bit-identical to the pre-fault transport), a number (drop
    rate with default dup/reorder/seed), a dict of
    :class:`LossSchedule` keyword arguments, or an already-built
    schedule.
    """
    if spec is None:
        return None
    if isinstance(spec, LossSchedule):
        return spec
    if isinstance(spec, bool):
        raise ValueError("loss must be a rate, dict, or LossSchedule, "
                         "not a bool")
    if isinstance(spec, (int, float)):
        return LossSchedule(drop=float(spec))
    if isinstance(spec, dict):
        return LossSchedule(**spec)
    raise ValueError(f"cannot interpret loss spec {spec!r}")
