"""Open-loop request serving over the cluster: tail latency & autoscaling.

:func:`serve_trace` runs a deterministic arrival trace (from
:mod:`repro.bench.workloads.serving`) against a cluster: a dispatcher
space forks one child per request onto the cluster's nodes through the
ordinary Put/Get migration path, paced by its own program clock so the
trace is *open-loop* — requests arrive when the trace says, whether or
not the cluster has kept up, and dispatcher lag shows up as queueing
latency exactly as it would in a real service.

Per-request completion times come from the same deterministic scheduler
that prices every other benchmark: a request is complete when its
child's last trace segment finishes, which includes migration transfers,
demand fetches, retransmissions under loss — everything the transport
charged.  :class:`ServingResult` reduces the per-request latency table
to the metrics a service owner recognizes: p50/p95/p99 latency and
goodput, all integers, bit-identical for a given seed on every platform.

Autoscaling: pass ``autoscale=((0, n0), (t1, n1), ...)`` to step the
*active* node set mid-trace.  Scaling out dispatches onto cold nodes
(their first requests pay the share's migration burst — the cold-start
tail); scaling in first *drains* the leaving nodes by joining their
outstanding requests over the delta-migration path before dispatch
continues on the survivors.
"""

from repro.cluster.spec import ClusterSpec
from repro.bench.workloads import serving as workload
from repro.kernel.kernel import child_ref
from repro.kernel.machine import Machine
from repro.timing.schedule import schedule

#: First local child slot used for request children (distinct rids get
#: distinct slots; the low 16 bits of a child ref bound the trace size).
REQ_LOCAL_BASE = 16
MAX_REQUESTS = 0xFFFF - REQ_LOCAL_BASE


class ServingResult:
    """Outcome of one :func:`serve_trace` run."""

    def __init__(self, nnodes, spec, arrivals, latencies, values, span,
                 checksum, machine):
        #: Cluster size the trace was served on.
        self.nnodes = nnodes
        #: The :class:`ClusterSpec` the run was configured with.
        self.spec = spec
        #: Intended arrival time of each request, in rid order.
        self.arrivals = tuple(arrivals)
        #: Per-request completion latency (finish - intended arrival),
        #: in rid order.  Open-loop: dispatcher queueing delay counts.
        self.latencies = tuple(latencies)
        #: Per-request computed values, in rid order (pure functions of
        #: rid — the arrival seed must never change them).
        self.values = tuple(values)
        #: First arrival to last completion, in cycles.
        self.span = span
        #: Order-sensitive fold of the values (the guest's return value).
        self.checksum = checksum
        self.machine = machine

    def percentile(self, q):
        """Nearest-rank percentile of the latency table (integer)."""
        xs = sorted(self.latencies)
        rank = max(1, -(-q * len(xs) // 100))   # ceil(q * n / 100)
        return xs[rank - 1]

    @property
    def p50(self):
        return self.percentile(50)

    @property
    def p95(self):
        return self.percentile(95)

    @property
    def p99(self):
        return self.percentile(99)

    @property
    def goodput(self):
        """Completed requests per 10^9 simulated cycles (integer)."""
        if self.span <= 0:
            return 0
        return len(self.latencies) * 10**9 // self.span

    def latency_cdf(self):
        """Sorted (latency, cumulative_fraction_percent) points for the
        latency-CDF figure — integer percent, nearest rank."""
        xs = sorted(self.latencies)
        n = len(xs)
        return tuple((x, (i + 1) * 100 // n) for i, x in enumerate(xs))

    def __repr__(self):
        return (f"<ServingResult nodes={self.nnodes} "
                f"requests={len(self.latencies)} p50={self.p50:,} "
                f"p99={self.p99:,} goodput={self.goodput}/Gcyc>")


def _normalize_plan(autoscale, nnodes):
    """Validate an autoscale plan into a sorted ((start, nactive), ...)."""
    if autoscale is None:
        return ((0, nnodes),)
    plan = tuple(sorted((int(start), int(nactive))
                        for start, nactive in autoscale))
    if not plan or plan[0][0] != 0:
        raise ValueError("autoscale plan must begin at cycle 0")
    for _, nactive in plan:
        if not 1 <= nactive <= nnodes:
            raise ValueError(
                f"autoscale step {nactive} outside 1..{nnodes}")
    return plan


def _active_at(plan, t):
    """Active node count of the latest plan step at or before ``t``."""
    nactive = plan[0][1]
    for start, count in plan:
        if start > t:
            break
        nactive = count
    return nactive


def _fork_request(g, rid, vnode):
    """Fork request ``rid``'s child onto virtual node ``vnode``, carrying
    a snapshot of the serving share (the dispatcher migrates there —
    dispatch cost *is* migration cost)."""
    ref = child_ref(REQ_LOCAL_BASE + rid, node=vnode)
    addr, size = workload.SHARE
    g.kcharge(g.cost.fork_image_pages * g.cost.page_map)
    g.put(ref, regs={"entry": workload.serve_request, "args": (rid,)},
          copy=(addr, size), snap=(addr, size), start=True)
    return ref


def _join_request(g, ref):
    g.kcharge(g.cost.fork_image_pages * g.cost.page_scan)
    return g.get(ref, regs=True, merge=True)["r0"]


def _advance_lag(machine, uid, state):
    """Accumulate the dispatcher's *schedule-time lag*: link delays on
    transfers it waited for (its own MIGRATE hops, mostly), which move
    it through schedule time without touching its program clock.

    Deterministic — read straight off the append-only trace.  Transfers
    of one message lay one link edge per route hop into the same
    destination segment, and the destination waits for the slowest, so
    per (src, dst) pair the delay is the max of ``busy + latency``.
    The estimate is a lower bound (link contention and rendezvous waits
    are not in it); anything unabsorbed surfaces as queueing latency,
    which is the honest open-loop outcome.
    """
    transfers = machine.trace.transfers
    segments = machine.trace.segments
    best = {}
    for i in range(state["idx"], len(transfers)):
        src, dst, _link, busy, latency, _cls, _kind = transfers[i]
        if segments[dst].uid == uid:
            delay = busy + latency
            if delay > best.get((src, dst), -1):
                best[(src, dst)] = delay
    state["idx"] = len(transfers)
    state["lag"] += sum(best.values())
    return state["lag"]


def _dispatch(g, machine, arrivals, plan, refs_out, values_out):
    """The dispatcher guest: open-loop dispatch of the whole trace.

    Paced by the dispatcher's *program clock* plus its accumulated
    schedule-time lag (:func:`_advance_lag`): if the next arrival is
    still in the future it sleeps the gap away (a no-CPU timer wait —
    ``Trace.sleep`` — so colocated request children are not starved);
    if it has fallen behind — migration hops, drain joins — it
    dispatches immediately and the request eats the delay as queueing
    latency.  Round-robin over the currently active nodes; scale-in
    steps drain the leaving nodes' outstanding requests first.
    """
    workload.publish_inputs(g)
    outstanding = []     # (rid, ref, vnode), dispatch order
    dispatched = 0
    slept = 0
    nactive_prev = _active_at(plan, 0)
    lag_state = {"idx": 0, "lag": 0}
    for rid, arrival in enumerate(arrivals):
        now = (machine.trace.charged(g.uid) + slept
               + _advance_lag(machine, g.uid, lag_state))
        if arrival > now:
            machine.trace.sleep(g.uid, arrival - now, label="arrival-wait")
            slept += arrival - now
        nactive = _active_at(plan, arrival)
        if nactive < nactive_prev:
            # Drain: collect every outstanding request on nodes leaving
            # the active set (the dispatcher rides the delta-migration
            # path out to each and back — a real drain bubble).
            keep = []
            for orid, oref, ovnode in outstanding:
                if ovnode >= nactive:
                    values_out[orid] = _join_request(g, oref)
                else:
                    keep.append((orid, oref, ovnode))
            outstanding = keep
        nactive_prev = nactive
        vnode = dispatched % nactive
        dispatched += 1
        ref = _fork_request(g, rid, vnode)
        refs_out[rid] = ref
        outstanding.append((rid, ref, vnode))
    for orid, oref, _ in outstanding:
        values_out[orid] = _join_request(g, oref)
    return workload.fold_checksum(
        values_out[rid] for rid in range(len(arrivals)))


def serve_trace(nnodes, spec=None, requests=160, mean_gap=240_000, seed=11,
                segments=workload.DIURNAL, segment_cycles=None,
                autoscale=None, **knobs):
    """Serve a deterministic open-loop request trace on the cluster.

    ``requests`` arrivals are drawn by
    :func:`repro.bench.workloads.serving.make_arrivals` (Poisson at one
    request per ``mean_gap`` cycles, shaped by the diurnal ``segments``)
    and dispatched across ``nnodes`` nodes configured by ``spec`` (or
    the legacy keyword knobs — same shim as every other entry point).
    ``autoscale`` optionally steps the active node count mid-trace.

    Returns a :class:`ServingResult`.  For one seed the entire latency
    table is bit-identical across runs and platforms; across *different*
    seeds the per-request values are identical (values depend only on
    rids) while the latency table moves — arrival timing is cost-only.
    """
    spec = ClusterSpec.from_kwargs(spec=spec, **knobs)
    if requests > MAX_REQUESTS:
        raise ValueError(f"at most {MAX_REQUESTS} requests per trace")
    arrivals = workload.make_arrivals(requests, mean_gap, seed,
                                      segments, segment_cycles)
    plan = _normalize_plan(autoscale, nnodes)
    machine = Machine(nnodes=nnodes, spec=spec)
    refs = {}
    values = {}

    def main(g):
        return _dispatch(g, machine, arrivals, plan, refs, values)

    with machine:
        result = machine.run(main)
        if result.trap.name not in ("EXIT", "RET"):
            raise RuntimeError(
                f"serving trace faulted: {result.trap.name} "
                f"{result.trap_info}")
        cpus = {node: spec.cpus_per_node for node in range(nnodes)}
        sched = schedule(machine.trace, cpus_per_node=cpus)
        finish = sched.finish
        finish_by_uid = {}
        for seg in machine.trace.segments:
            t = finish[seg.id]
            if t > finish_by_uid.get(seg.uid, -1):
                finish_by_uid[seg.uid] = t
        latencies = []
        for rid, arrival in enumerate(arrivals):
            uid = machine.root.children[refs[rid]].uid
            latencies.append(finish_by_uid[uid] - arrival)
        span = max(finish_by_uid[machine.root.children[refs[rid]].uid]
                   for rid in range(requests)) - arrivals[0]
        return ServingResult(
            nnodes, spec, arrivals, latencies,
            [values[rid] for rid in range(requests)], span,
            result.r0, machine)
