"""`ClusterSpec`: every cross-cutting knob of a simulated run, in one place.

Before this module, the same thirteen knobs (`tcp_mode`,
`dirty_tracking`, `ship_mode`, `topology`, `placement`,
`prefetch_depth`, `compression`, `loss`, `control`, `shard_workers`,
`cost`, `cpus_per_node`, ...) were hand-plumbed through four diverging
parameter lists — ``Machine.__init__``, ``Cluster.__init__``,
``sweep_nodes`` and ``run_cluster`` — and every new knob grew all four
signatures in lockstep.  A :class:`ClusterSpec` is the single source of
truth instead:

* **One validation site.**  ``ship_mode`` membership, ``prefetch_depth``
  range, ``loss``/``control``/``placement`` spec syntax all raise here,
  at construction, with the same message no matter which entry point the
  bad knob came through.
* **One back-compat shim.**  :meth:`ClusterSpec.from_kwargs` accepts the
  legacy keyword names, so ``Machine(ship_mode="demand")`` and
  ``Machine(spec=ClusterSpec(ship_mode="demand"))`` are the same machine
  — bit-identical, not merely equivalent.
* **Frozen value semantics.**  A spec can be built once and shared by a
  whole sweep; anything *stateful* (a live ``Controller``, the resolved
  ``Topology`` for a concrete node count) is materialized per machine by
  the ``resolve_*`` helpers, never stored on the spec.

Typical use::

    from repro import ClusterSpec, Cluster

    spec = ClusterSpec(ship_mode="demand", prefetch_depth=16,
                       topology="two_tier:2", placement="locality",
                       loss=0.01, compression=True)
    result = Cluster(nnodes=8, spec=spec).run(my_program)
"""

from dataclasses import dataclass, fields, replace

from repro.cluster.control import resolve_control
from repro.cluster.faults import resolve_loss
from repro.cluster.placement import resolve_placement
from repro.cluster.topology import resolve_topology
from repro.timing.model import CostModel

#: Migration page-shipping policies (see repro.cluster.transport).
SHIP_MODES = ("delta", "full", "demand")

#: Execution backends (see repro.cluster.backend and docs/backends.md).
BACKENDS = ("sim", "real")


@dataclass(frozen=True)
class ClusterSpec:
    """Immutable bundle of every cross-cutting configuration knob.

    Field semantics are exactly the legacy keyword arguments' (see
    ``docs/knobs.md`` for the full reference); defaults reproduce a bare
    ``Machine()``/``Cluster(...)``.
    """

    #: Cycle-price table (None -> a default :class:`CostModel` per run).
    cost: object = None
    #: CPUs per cluster node used when scheduling the run's trace.  The
    #: spec carries it so the machine and every downstream consumer
    #: (``ClusterResult``, the serving latency extractor) agree on the
    #: CPU count the numbers were computed against.
    cpus_per_node: int = 1
    #: TCP-like framing surcharge on every cluster message (§6.3).
    tcp_mode: bool = False
    #: Generation-tagged dirty ledger (False = legacy O(mapped) scans).
    dirty_tracking: bool = True
    #: Migration page shipping: "delta", "full", or "demand".
    ship_mode: str = "delta"
    #: Routed fabric: preset string, Topology, or nnodes -> Topology.
    topology: object = None
    #: Virtual-node placement policy (None -> "round_robin").
    placement: object = None
    #: Async fetch-queue depth (None -> ``cost.prefetch_depth``).
    prefetch_depth: object = None
    #: PAGE_BATCH wire compression (zero suppression + RLE).
    compression: bool = False
    #: Deterministic fault schedule (rate, kwargs dict, LossSchedule).
    loss: object = None
    #: Adaptive control plane ("adaptive", kwargs dict, Controller).
    control: object = None
    #: Forked host workers for sibling subtrees (< 2 disables).
    shard_workers: int = 0
    #: Execution backend: "sim" (one process, modeled wire — the
    #: oracle) or "real" (host processes + localhost sockets, measured
    #: wall-clock; see repro.cluster.backend and docs/backends.md).
    backend: str = "sim"

    def __post_init__(self):
        object.__setattr__(self, "tcp_mode", bool(self.tcp_mode))
        object.__setattr__(self, "dirty_tracking", bool(self.dirty_tracking))
        object.__setattr__(self, "compression", bool(self.compression))
        if self.ship_mode not in SHIP_MODES:
            raise ValueError(f"unknown ship_mode {self.ship_mode!r} "
                             f"(expected one of {SHIP_MODES})")
        if self.prefetch_depth is not None and self.prefetch_depth < 0:
            raise ValueError(f"prefetch_depth must be >= 0, "
                             f"got {self.prefetch_depth}")
        if not isinstance(self.cpus_per_node, int) or self.cpus_per_node < 1:
            raise ValueError(f"cpus_per_node must be a positive int, "
                             f"got {self.cpus_per_node!r}")
        if not isinstance(self.shard_workers, int) or self.shard_workers < 0:
            raise ValueError(f"shard_workers must be a non-negative int, "
                             f"got {self.shard_workers!r}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r} "
                             f"(expected one of {BACKENDS})")
        if self.cost is not None and not isinstance(self.cost, CostModel):
            raise ValueError(f"cost must be a CostModel or None, "
                             f"got {self.cost!r}")
        # Spec-syntax validation happens here — once — by running the
        # same resolvers the machine will use.  The throwaway results
        # are discarded: anything stateful must be materialized fresh
        # per machine (see the resolve_* methods).
        resolve_loss(self.loss)
        resolve_control(self.control)
        resolve_placement(self.placement)

    # -- legacy-kwarg shim ---------------------------------------------------

    @classmethod
    def knob_names(cls):
        """The spec's field names — the only knob vocabulary any entry
        point accepts (the signature-guard test enforces this)."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_kwargs(cls, spec=None, **knobs):
        """Build a spec from legacy keyword arguments.

        The shared back-compat shim of ``Machine``, ``Cluster``,
        ``sweep_nodes`` and ``run_cluster``: each forwards its ``spec=``
        and leftover ``**knobs`` here, so a knob misspelling raises the
        same ``TypeError`` everywhere and a knob can never be silently
        dropped by one entry point.  Passing both a ``spec`` and legacy
        knobs is ambiguous and refused.
        """
        if spec is not None:
            if knobs:
                raise TypeError(
                    f"pass either spec= or legacy knob kwargs, not both "
                    f"(got spec and {sorted(knobs)})")
            if not isinstance(spec, cls):
                raise TypeError(f"spec must be a ClusterSpec, got {spec!r}")
            return spec
        unknown = sorted(set(knobs) - set(cls.knob_names()))
        if unknown:
            raise TypeError(
                f"unknown configuration knob(s) {unknown}; "
                f"ClusterSpec fields are {list(cls.knob_names())}")
        return cls(**knobs)

    def to_kwargs(self):
        """The legacy keyword-argument dict this spec is equivalent to
        (``ClusterSpec.from_kwargs(**spec.to_kwargs()) == spec``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def with_(self, **changes):
        """A copy with ``changes`` applied (validated like any spec)."""
        return replace(self, **changes)

    # -- per-machine materialization ----------------------------------------

    def resolved_cost(self):
        """The run's :class:`CostModel` (a default one when unset)."""
        return self.cost if self.cost is not None else CostModel()

    def resolve_prefetch_depth(self, cost):
        """Effective static queue depth: the spec's, else ``cost``'s."""
        return cost.prefetch_depth if self.prefetch_depth is None \
            else self.prefetch_depth

    def resolve_loss(self):
        """A :class:`~repro.cluster.faults.LossSchedule` (or None).
        Schedules are pure functions, so sharing one is harmless — but
        resolving per machine keeps dict/rate specs cheap to reuse."""
        return resolve_loss(self.loss)

    def resolve_control(self):
        """A fresh :class:`~repro.cluster.control.Controller` (or None)
        for one machine.  Controllers are *stateful*; string/dict specs
        materialize a new one per machine so a spec shared across a
        sweep never leaks adaptation between runs."""
        return resolve_control(self.control)

    def resolve_placement(self):
        """A placement policy instance for one machine."""
        return resolve_placement(self.placement)

    def resolve_topology(self, nnodes):
        """The concrete :class:`~repro.cluster.topology.Topology` for a
        machine of ``nnodes`` (presets and builders need the size, so
        this is the one resolver that cannot run at spec construction)."""
        return resolve_topology(self.topology, nnodes)
