"""Real-process execution backend (``ClusterSpec(backend="real")``).

The simulated machine is deterministic end to end, so it can serve as
an *exact oracle* for a backend where cluster nodes are real host
processes and migration state moves over real sockets.  This module is
that backend:

* :class:`RealShardCoordinator` extends the fork/collect/adopt
  machinery of ``repro.kernel.shard``: at a rendezvous, each never-run
  sibling subtree is started in its own ``multiprocessing`` process
  (one real host process per cluster-node subtree).  Instead of a raw
  pickle pipe, the coordinator and each worker speak the cluster
  protocol's typed messages — MIGRATE / PAGE_REQ / PAGE_BATCH / ACK —
  as binary frames over a localhost socket (``repro.cluster.realnet``):
  the forward migration offers the subtree's fork-time frames and
  ships the requested pages (through the shared compression codec when
  the machine compresses); the backward hand-back ships every frame
  the run created the same way, with the shard delta riding the
  MIGRATE control frame.  Workers compute on the wire-delivered bytes,
  so a codec or framing bug diverges the cross-backend oracle instead
  of hiding behind fork's copy-on-write.

* Adoption is the *same* code as the simulated shard path, so computed
  values, memory images, frame serials, trace segments, and every
  simulated transport/conservation ledger come out bit-identical to
  the serial simulated run — that is the differential oracle
  (``tests/cluster/test_backend_oracle.py``).  What the real backend
  adds is *measured wall-clock* (real parallelism across host
  processes) next to the simulated cycle makespan, plus a real-wire
  ledger per coordinator<->worker link with the same conservation
  discipline (bytes sent == bytes received, checked from both ends).

* Failures are typed, bounded, and clean: a worker that dies or hangs
  mid-protocol surfaces a :class:`~repro.common.errors.BackendError`
  within the channel deadline, every child process is terminated and
  joined (nothing leaks past ``multiprocessing.active_children()``),
  and the parent's simulated state is untouched — it was never mutated
  before adoption.

Entry points: :func:`run_backend` (dispatches on ``spec.backend``),
:func:`run_real` (forces the real backend), :class:`RealRunResult`
(value + image + ``NetworkStats`` + both timing columns), and
:func:`image_digest` (a stable hash of a frozen machine image, for
reporting cross-backend identity as one comparable line).
"""

import hashlib
import multiprocessing
import os
import time
import weakref
from enum import Enum

from repro.cluster import realnet
from repro.cluster.compress import SCHEME_RAW, encode_page
from repro.cluster.network import NetworkStats
from repro.cluster.spec import ClusterSpec
from repro.cluster.transport import MsgType
from repro.common.errors import BackendError, WireError
from repro.debug.model import freeze_machine
from repro.kernel.shard import (
    _REPLAYABLE_PLACEMENTS,
    ShardCoordinator,
    _walk_page_slots,
)
from repro.mem.page import PAGE_SIZE

COORD = realnet.COORD

_EMPTY = {"frames": 0, "bytes": 0, "pages": 0}


def _batched(items, size):
    """``items`` in chunks of ``size`` (the cost model's scatter/gather
    batch, replicated on the real wire)."""
    size = max(1, size)
    for i in range(0, len(items), size):
        yield items[i:i + size]


class RealShardCoordinator(ShardCoordinator):
    """Shard coordinator whose workers are real host processes speaking
    the cluster protocol over localhost sockets."""

    #: A single sibling subtree is worth a real process (the simulated
    #: coordinator needs >= 2 — inline is just as fast there).
    MIN_SIBLINGS = 1

    def __init__(self, machine, workers):
        super().__init__(machine, max(1, workers))
        problem = self._incompatibility(machine)
        if problem is not None:
            raise BackendError(f'backend="real" {problem}')
        #: Per-exchange deadline (seconds): every socket operation and
        #: every process join is bounded by it, so a dead or wedged
        #: worker becomes a typed BackendError, never a hang.
        self.deadline = realnet.DEFAULT_DEADLINE
        #: Test hook: a worker-side crash point name (see _worker_main).
        self.fault_inject = None
        #: Set on abort: gates close, remaining subtrees run inline,
        #: and the run surfaces a BackendError (see run_backend).
        self.broken = False
        self.broken_reason = ""
        #: Real-wire ledgers: ``(src, dst) -> sender counts + receiver
        #: counts`` per directed coordinator<->worker link.
        self.wire_links = {}
        self.wire_reports_missing = 0
        self._listener = None
        self._addr = None
        self._next_index = 0
        self._chan = {}     # worker index -> parent-side Channel
        self._procs = {}    # worker index -> multiprocessing.Process

    @staticmethod
    def _incompatibility(machine):
        """Why this machine cannot run on the real backend (None = ok).
        Unlike the simulated shard's silent serial fallback, an
        incompatible spec is a hard error: the caller asked for real
        processes and would otherwise measure the wrong thing."""
        if not hasattr(os, "fork"):
            return "requires os.fork (POSIX hosts)"
        if not realnet.localhost_available():
            return "requires localhost TCP sockets"
        if machine.loss is not None:
            return ("is incompatible with loss schedules (fault injection "
                    "keys off global message serials)")
        if machine.ship_mode not in ("delta", "full"):
            return (f'is incompatible with ship_mode='
                    f'{machine.ship_mode!r} (demand paging reads '
                    f'cross-subtree state)')
        if machine.prefetch_depth != 0:
            return "is incompatible with prefetch_depth > 0"
        if machine.control is not None:
            return "is incompatible with the adaptive control plane"
        if machine.placement.name not in _REPLAYABLE_PLACEMENTS:
            return (f"requires a replayable placement policy "
                    f"{_REPLAYABLE_PLACEMENTS}, got "
                    f"{machine.placement.name!r}")
        return None

    def _gates_open(self):
        machine = self.machine
        return (
            not self.broken
            and hasattr(os, "fork")
            and machine.loss is None
            and machine.ship_mode in ("delta", "full")
            and machine.prefetch_depth == 0
            and machine.control is None
            and machine.placement.name in _REPLAYABLE_PLACEMENTS
        )

    # -- spawning ----------------------------------------------------------

    def _spawn(self, caller, sibling):
        if self._listener is None:
            self._listener = realnet.listen(self.deadline)
            self._addr = self._listener.getsockname()
        index = self._next_index
        self._next_index += 1
        # fork start method: the worker inherits the machine image at
        # this instant, exactly like the pipe coordinator's os.fork —
        # the forking thread is the caller's guest thread, sole holder
        # of the execution baton.
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=self._worker_main,
                           args=(caller, sibling, index),
                           name=f"repro-real-worker-{index}")
        proc.start()
        self._procs[index] = proc
        return (sibling, index, proc)

    def _wave_started(self, handles):
        """Serve every worker's forward page exchange before collecting
        any result: workers block on the forward pages at startup, so a
        lazily served exchange would serialize the wave."""
        expected = {index: sibling for sibling, index, _proc in handles}
        try:
            for _ in handles:
                chan = realnet.accept(self._listener, self.deadline)
                try:
                    _, _, _, hello = chan.recv(expect=MsgType.ACK)
                    index = hello.get("worker")
                    sibling = expected.pop(index, None)
                    if sibling is None:
                        raise WireError(f"unexpected worker hello {hello!r}")
                except BaseException:
                    chan.close()
                    raise
                self._chan[index] = chan
                self._serve_forward(chan, sibling, index)
        except (WireError, OSError) as exc:
            self._abort(f"forward exchange failed: {exc}")

    def _serve_forward(self, chan, sibling, index):
        """Offer the sibling's fork-time frames, ship what the worker
        requests (everything, batched like the simulated scatter/gather)."""
        snap = self.snapshots[sibling]
        offer = sorted((serial, entry[2]) for serial, entry in snap.items())
        chan.send(MsgType.MIGRATE, COORD, index,
                  {"kind": "forward", "frames": offer, "uid": sibling.uid})
        _, _, _, wanted = chan.recv(expect=MsgType.PAGE_REQ)
        if list(wanted) != [serial for serial, _gen in offer]:
            raise WireError(f"worker {index} requested pages outside "
                            f"the forward offer")
        frames = [(serial, snap[serial][0].generation,
                   bytes(snap[serial][0].data)) for serial in wanted]
        for chunk in _batched(frames, self.machine.cost.msg_batch):
            chan.send(MsgType.PAGE_BATCH, COORD, index,
                      self._encode_pages(chunk))
        _, _, _, ack = chan.recv(expect=MsgType.ACK)
        if ack.get("status") != "ok":
            raise WireError(f"worker {index} rejected the forward "
                            f"migration: {ack!r}")

    def _encode_pages(self, frames):
        """``(serial, generation, data)`` -> wire page tuples, through
        the shared compression codec when the machine compresses."""
        out = []
        for serial, generation, data in frames:
            if self.machine.compression:
                scheme, payload = encode_page(bytes(data))
            else:
                scheme, payload = SCHEME_RAW, bytes(data)
            out.append((serial, generation, scheme, payload))
        return out

    # -- worker (child process) --------------------------------------------

    def _worker_main(self, caller, sibling, index):
        """Runs in the forked worker process: receive the forward
        migration over the wire, run the subtree, hand the delta back
        as protocol frames.  Never unwinds into the cloned parent's
        stack — multiprocessing's fork bootstrap ``os._exit``\\ s."""
        if self._listener is not None:
            self._listener.close()      # the child's inherited copy
        chan = realnet.connect(self._addr, self.deadline)
        try:
            chan.send(MsgType.ACK, index, COORD,
                      {"worker": index, "uid": sibling.uid})
            self._receive_forward(chan, sibling, index)
            payload = self._run_worker(caller, sibling)
            if self.fault_inject == "die-before-handback":
                os._exit(9)
            self._send_handback(chan, payload, index)
        finally:
            chan.close()

    def _receive_forward(self, chan, sibling, index):
        """Request and install the offered fork-time frames.  The
        installed bytes are what the subtree computes on: wire
        corruption surfaces as an oracle divergence, not silently
        masked by fork's copy-on-write."""
        frames = {page.serial: page for page in _walk_page_slots(sibling)}
        _, _, _, offer = chan.recv(expect=MsgType.MIGRATE)
        offered = offer.get("frames", [])
        wanted = [serial for serial, _gen in offered]
        if sorted(wanted) != sorted(frames):
            raise WireError("forward offer does not match the forked "
                            "subtree's frames")
        chan.send(MsgType.PAGE_REQ, index, COORD, wanted)
        if self.fault_inject == "die-before-install":
            os._exit(9)
        installed = 0
        while installed < len(wanted):
            _, _, _, pages = chan.recv(expect=MsgType.PAGE_BATCH)
            if not pages:
                raise WireError("empty PAGE_BATCH in forward migration")
            for serial, generation, scheme, payload in pages:
                page = frames.get(serial)
                if page is None or page.generation != generation:
                    raise WireError(f"forward frame {serial} unknown or "
                                    f"stale generation")
                data = _decode_page(scheme, payload)
                page.data[:] = data
            installed += len(pages)
        chan.send(MsgType.ACK, index, COORD, {"status": "ok"})

    def _send_handback(self, chan, payload, index):
        """Ship the run's delta: new frames' bytes as PAGE_BATCH frames,
        the structural payload on the MIGRATE control frame, the wire
        ledger on the final ACK."""
        if payload is None:
            chan.send(MsgType.MIGRATE, index, COORD, {"kind": "refused"})
        else:
            shipped = self._strip_pages(payload)
            chan.send(MsgType.MIGRATE, index, COORD,
                      {"kind": "result", "payload": payload,
                       "npages": len(shipped)})
            if self.fault_inject == "die-mid-handback":
                os._exit(9)
            for chunk in _batched(shipped, self.machine.cost.msg_batch):
                chan.send(MsgType.PAGE_BATCH, index, COORD,
                          self._encode_pages(chunk))
        chan.send(MsgType.ACK, index, COORD,
                  {"status": "done", "ledger": chan.ledger()})

    def _strip_pages(self, payload):
        """Detach page bytes from the hand-back payload: frames the run
        created cross as PAGE_BATCH wire frames (returned here);
        pre-fork frames' bytes never cross at all — adoption re-points
        their slots at the parent's live frames."""
        serial0 = self._base["serial"]
        shipped = []
        seen = set()
        for page in _walk_page_slots(payload["spaces"]):
            if id(page) in seen:
                continue
            seen.add(id(page))
            if page.serial > serial0:
                shipped.append((page.serial, page.generation,
                                bytes(page.data)))
            page.data = bytearray()
        shipped.sort(key=lambda entry: entry[0])
        return shipped

    # -- collection (parent side) ------------------------------------------

    def _collect(self, handle):
        sibling, index, proc = handle
        chan = self._chan.pop(index, None)
        payload = None
        try:
            if chan is None:
                raise WireError("worker never completed its forward "
                                "exchange")
            _, _, _, head = chan.recv(expect=MsgType.MIGRATE)
            kind = head.get("kind")
            if kind == "result":
                payload = head["payload"]
                wire_pages = {}
                want = head.get("npages", 0)
                while len(wire_pages) < want:
                    _, _, _, pages = chan.recv(expect=MsgType.PAGE_BATCH)
                    if not pages:
                        raise WireError("empty PAGE_BATCH in hand-back")
                    for serial, generation, scheme, data in pages:
                        wire_pages[serial] = (generation,
                                              _decode_page(scheme, data))
                self._reattach(payload, wire_pages)
            elif kind != "refused":
                raise WireError(f"unexpected hand-back header {head!r}")
            # The worker's ledger is snapshotted before its final ACK
            # frame goes out, so conservation compares against the
            # parent's receive counts at the same instant.
            pre_ack = {link: dict(entry)
                       for link, entry in chan.received.items()}
            _, _, _, fin = chan.recv(expect=MsgType.ACK)
            self._account(index, chan, fin.get("ledger"), pre_ack)
        except (WireError, OSError) as exc:
            self._abort(f"worker {index} ({sibling.uid}): {exc}")
        finally:
            if chan is not None:
                chan.close()
            self._join(index, proc)
        return payload

    def _reattach(self, payload, wire_pages):
        """Restore the wire-shipped bytes into the unpickled hand-back
        graph (generation-checked); pre-fork frames stay empty — the
        shared adoption path re-points their slots at live frames."""
        serial0 = self._base["serial"]
        restored = 0
        seen = set()
        for page in _walk_page_slots(payload["spaces"]):
            if id(page) in seen or page.serial <= serial0:
                seen.add(id(page))
                continue
            seen.add(id(page))
            entry = wire_pages.get(page.serial)
            if entry is None:
                raise WireError(f"frame {page.serial} missing from the "
                                f"hand-back batches")
            generation, data = entry
            if generation != page.generation:
                raise WireError(f"frame {page.serial} generation mismatch "
                                f"on hand-back")
            page.data = bytearray(data)
            restored += 1
        if restored != len(wire_pages):
            raise WireError(f"hand-back shipped "
                            f"{len(wire_pages) - restored} frames no "
                            f"slot references")

    def _account(self, index, chan, report, received):
        """Fold one worker's final wire ledger into the per-link table:
        each directed link records the sender's counts next to the
        receiver's, so conservation is checked from both ends."""
        if not isinstance(report, dict):
            self.wire_reports_missing += 1
            return
        pairs = (
            ((COORD, index), chan.sent, report.get("received", {})),
            ((index, COORD), report.get("sent", {}), received),
        )
        for link, send_table, recv_table in pairs:
            sent = send_table.get(link, _EMPTY)
            received = recv_table.get(link, _EMPTY)
            self.wire_links[link] = {
                "frames": sent["frames"],
                "bytes": sent["bytes"],
                "pages": sent["pages"],
                "frames_received": received["frames"],
                "bytes_received": received["bytes"],
                "pages_received": received["pages"],
            }

    def wire_conservation_ok(self):
        """Every real link's receiver counts match its sender counts
        (frames, bytes, and pages), and every worker reported."""
        if self.wire_reports_missing:
            return False
        for entry in self.wire_links.values():
            if (entry["frames"] != entry["frames_received"]
                    or entry["bytes"] != entry["bytes_received"]
                    or entry["pages"] != entry["pages_received"]):
                return False
        return True

    # -- teardown ----------------------------------------------------------

    def _join(self, index, proc):
        proc.join(self.deadline)
        if proc.is_alive():
            proc.terminate()
            proc.join(self.deadline)
        if proc.is_alive():
            proc.kill()
            proc.join()
        self._procs.pop(index, None)

    def _abort(self, reason):
        """Tear down the whole backend — close every channel, terminate
        and join every worker, discard all pending results — and raise.
        The parent's simulated state is untouched (nothing mutates
        before adoption), so surviving subtrees drain inline."""
        self.broken = True
        self.broken_reason = f"real backend aborted: {reason}"
        for chan in self._chan.values():
            chan.close()
        self._chan.clear()
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for index, proc in list(self._procs.items()):
            self._join(index, proc)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self.pending.clear()
        self.snapshots.clear()
        raise BackendError(self.broken_reason)

    def close(self):
        """Machine-close teardown: nothing may outlive the machine."""
        for chan in self._chan.values():
            chan.close()
        self._chan.clear()
        for index, proc in list(self._procs.items()):
            if proc.is_alive():
                proc.terminate()
            self._join(index, proc)
        if self._listener is not None:
            self._listener.close()
            self._listener = None


def _decode_page(scheme, payload):
    """Wire page -> exactly PAGE_SIZE bytes (anything else is a frame
    corruption, not a valid page)."""
    from repro.cluster.compress import decode_page
    try:
        data = decode_page(scheme, bytes(payload))
    except Exception as exc:
        raise WireError(f"page payload failed to decode: {exc}") from exc
    if len(data) != PAGE_SIZE:
        raise WireError(f"decoded page is {len(data)} bytes, "
                        f"expected {PAGE_SIZE}")
    return data


# -- results & entry points -------------------------------------------------

class RealRunResult:
    """Outcome of :func:`run_backend`: the computed value, the frozen
    machine image (captured before close — the cross-backend identity
    artifact), the same :class:`NetworkStats` tables both backends
    share, and both timing columns (simulated cycles + measured
    wall-clock)."""

    def __init__(self, machine, value, makespan, wall_seconds, image):
        self.machine = machine
        #: Which backend produced this ("sim" or "real").
        self.backend = machine.backend
        #: The workload's computed value (root r0) — backend-invariant.
        self.value = value
        #: Simulated completion time in virtual cycles — backend-
        #: invariant (the real backend adopts the same trace).
        self.makespan = makespan
        #: Measured host wall-clock of the run — the real backend's own
        #: timing column (never compared across backends).
        self.wall_seconds = wall_seconds
        #: Frozen machine image (spaces, regs, page bytes, per-link
        #: simulated ledgers); equal across backends by construction.
        self.image = image
        #: The shared simulated traffic tables.
        self.network = NetworkStats(machine)
        shard = machine.shard
        if isinstance(shard, RealShardCoordinator):
            #: Real-backend extras: shard adoption counts and the
            #: real-wire per-link ledgers with conservation verdict.
            self.shard_stats = {"forked": shard.forked,
                                "adopted": shard.adopted,
                                "fallbacks": shard.fallbacks}
            self.wire = {link: dict(entry)
                         for link, entry in shard.wire_links.items()}
            self.wire_ok = shard.wire_conservation_ok()
        else:
            self.shard_stats = None
            self.wire = {}
            self.wire_ok = None

    def __repr__(self):
        return (f"<RealRunResult backend={self.backend!r} "
                f"value={self.value!r} makespan={self.makespan} "
                f"wall={self.wall_seconds:.3f}s>")


#: entry_builder -> {nnodes: wrapper}.  The wrapper lands in the root's
#: registers, and the cross-backend oracle compares register dicts by
#: value — sharing one wrapper per (builder, nnodes) makes two runs of
#: the same workload carry the *same* entry object, so frozen images
#: compare equal without canonicalizing away the registers.
_MAIN_CACHE = weakref.WeakKeyDictionary()


def _main_for(entry_builder, nnodes):
    def main(g):
        return entry_builder(g, nnodes)
    try:
        per_builder = _MAIN_CACHE.setdefault(entry_builder, {})
    except TypeError:           # unweakrefable callable: no sharing
        return main
    return per_builder.setdefault(nnodes, main)


def run_backend(entry_builder, nnodes, spec=None, configure=None, **knobs):
    """Run ``entry_builder(g, nnodes)`` on ``spec.backend`` and return a
    :class:`RealRunResult` (both backends return the same shape, so the
    differential oracle is a field-by-field comparison).

    ``configure(machine)``, when given, runs after construction and
    before the workload — the test hook for deadlines and fault
    injection.
    """
    from repro.kernel.machine import Machine
    spec = ClusterSpec.from_kwargs(spec=spec, **knobs)
    machine = Machine(nnodes=nnodes, spec=spec)
    if configure is not None:
        configure(machine)
    main = _main_for(entry_builder, nnodes)
    start = time.perf_counter()
    with machine:
        result = machine.run(main)
        wall = time.perf_counter() - start
        shard = machine.shard
        if shard is not None and getattr(shard, "broken", False):
            raise BackendError(shard.broken_reason)
        if result.trap.name not in ("EXIT", "RET"):
            info = result.trap_info or ""
            if info.startswith(("BackendError", "WireError")):
                raise BackendError(info)
            raise RuntimeError(
                f"cluster workload faulted: {result.trap.name} {info}")
        cpus = {node: spec.cpus_per_node for node in range(nnodes)}
        makespan = result.makespan(cpus_per_node=cpus)
        # Freeze before close: Machine.close destroys the space tree.
        image = freeze_machine(machine)
        return RealRunResult(machine, result.r0, makespan, wall, image)


def run_real(entry_builder, nnodes, spec=None, configure=None, **knobs):
    """:func:`run_backend` with the real backend forced on."""
    spec = ClusterSpec.from_kwargs(spec=spec, **knobs)
    if spec.backend != "real":
        spec = spec.with_(backend="real")
    return run_backend(entry_builder, nnodes, spec=spec,
                       configure=configure)


# -- image digest -----------------------------------------------------------

def _canon(value):
    """Deterministic canonical string of an image field.  Callables
    (guest entry functions living in regs) canonicalize by qualified
    name — identical across backends, stable across runs (no memory
    addresses)."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, bytearray):
        return repr(bytes(value))
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(_canon(item) for item in value) + ")"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canon(item) for item in value)) + "}"
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(f"{_canon(k)}:{_canon(v)}"
                              for k, v in items) + "}"
    if callable(value):
        return f"<{getattr(value, '__qualname__', type(value).__name__)}>"
    return f"<{type(value).__qualname__}>"


def image_digest(image):
    """A stable sha256 over a frozen :class:`MachineImage`: equal images
    hash equal on any backend and any run, so cross-backend identity
    reports as one comparable hex line."""
    digest = hashlib.sha256()

    def feed(*parts):
        for part in parts:
            digest.update(_canon(part).encode())
            digest.update(b"\x00")

    for space in image.spaces():
        feed(space.uid, space.path, space.state, space.trap,
             space.trap_info, space.home_node, space.cur_node,
             space.insn_limit, space.dirty_tracking,
             space.dirty_page_count, space.snapshot_vpns)
        for name in sorted(space.regs):
            feed(name, space.regs[name])
        for vpn in sorted(space.pages):
            page = space.pages[vpn]
            feed(vpn, page.tag, page.perm)
            digest.update(bytes(page.data))
    feed(image.console, image.debug, image.node_map, image.pages_fetched,
         image.inflight)
    for link, stats in image.links.items():
        feed(link, stats)
    return digest.hexdigest()
