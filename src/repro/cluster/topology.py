"""Routed cluster fabrics: link classes, switches, and hop-by-hop routes.

The transport used to price every node pair identically — a fully
connected fabric where a byte between nodes 0 and 31 costs exactly what
a byte between rack neighbors costs.  Real clusters are *routed*:
traffic traverses switches, links come in latency/bandwidth classes, and
cross-rack links are shared by many node pairs (oversubscription), which
is what bends the scaling knee of data-heavy workloads long before
compute runs out.

A :class:`Topology` describes the fabric as a graph of nodes (ints) and
switches (strings), and answers two questions for the transport:

* :meth:`Topology.route` — the ordered directed links a message from
  ``src`` to ``dst`` traverses.  Every traversed link accrues bytes,
  messages, and serialization occupancy, so ``schedule()``'s link
  contention sees shared uplinks as the bottleneck they are.
* :meth:`Topology.link_class` — the :class:`LinkClass` of one link,
  giving its per-hop latency and bandwidth factors relative to the cost
  model's baseline ``net_latency`` / ``net_byte``.

Three presets:

``flat``
    The legacy fabric: every node pair directly connected by a
    full-bandwidth link.  Routes are single hops, costs are identical
    to the pre-topology transport.
``two_tier``
    Nodes grouped into racks behind top-of-rack switches, all racks
    behind one core switch.  Intra-rack hops are short; cross-rack
    traffic crosses two *oversubscribed* core links (default 4:1), and
    every cross-rack pair shares them.
``fat_tree``
    A folded-Clos / leaf-spine fabric: the same racks, but multiple
    core (spine) switches at full bisection bandwidth.  Cross-rack
    routes spread deterministically over the spines, so the fabric
    pays extra hops and latency but never oversubscribes.

Placement policies (:mod:`repro.cluster.placement`) read the rack
structure (:meth:`Topology.racks`, :meth:`Topology.uplinks`) to pack
communicating spaces by affinity.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkClass:
    """Latency/bandwidth class of a fabric link.

    Factors are relative to the cost model's flat-fabric baseline:
    a hop's transit latency is ``latency_factor * cost.net_latency``
    and its per-byte wire cost is ``byte_factor * cost.net_byte``
    (``byte_factor > 1`` models an oversubscribed, slower-than-edge
    link).
    """

    name: str
    latency_factor: float = 1.0
    byte_factor: float = 1.0


#: The flat fabric's single class: a direct node-to-node cable.
NODE_CLASS = LinkClass("node", 1.0, 1.0)


class Topology:
    """Abstract routed fabric over ``nnodes`` cluster nodes."""

    name = "abstract"

    def __init__(self, nnodes):
        self.nnodes = nnodes
        self._routes = {}

    # -- routing -----------------------------------------------------------

    def route(self, src, dst):
        """Ordered directed links a message ``src -> dst`` traverses.

        Memoized; ``src == dst`` is the empty route (local delivery
        never touches the wire).
        """
        if src == dst:
            return ()
        key = (src, dst)
        hops = self._routes.get(key)
        if hops is None:
            hops = self._routes[key] = tuple(self._build_route(src, dst))
        return hops

    def _build_route(self, src, dst):
        raise NotImplementedError

    def link_class(self, link):
        """The :class:`LinkClass` of one directed link."""
        raise NotImplementedError

    def route_latency(self, cost, src, dst):
        """Total transit latency (cycles) of the ``src -> dst`` route."""
        return int(cost.net_latency
                   * sum(self.link_class(link).latency_factor
                         for link in self.route(src, dst)))

    def distance(self, src, dst):
        """Hop count of the ``src -> dst`` route (0 = same node).

        The prefetch predictor ranks candidate producer nodes by this —
        with limited queue depth, pulling from a rack neighbor beats
        pulling across an oversubscribed core link.
        """
        return len(self.route(src, dst))

    # -- structure read by placement policies ------------------------------

    def racks(self):
        """Nodes grouped by rack, in rack order (flat = one big rack)."""
        return [list(range(self.nnodes))]

    def rack_of(self, node):
        """Rack index of ``node``."""
        return 0

    def uplinks(self, rack):
        """Directed links joining ``rack``'s switch to the core layer
        (empty for fabrics without one).  Placement policies sum live
        transport occupancy over these to find the least-loaded rack."""
        return ()

    def __repr__(self):
        return f"<{type(self).__name__} nnodes={self.nnodes}>"


class FlatTopology(Topology):
    """Full mesh: one direct full-bandwidth link per node pair."""

    name = "flat"

    def _build_route(self, src, dst):
        return [(src, dst)]

    def link_class(self, link):
        return NODE_CLASS


class _RackedTopology(Topology):
    """Shared rack structure of the switched presets: both use the same
    top-of-rack switches, the same short rack-class edge links (two of
    which sum to exactly the flat fabric's one-hop latency), and the
    same intra-rack routes — they differ only in the core layer."""

    def __init__(self, nnodes, rack_size=4):
        super().__init__(nnodes)
        if rack_size < 1:
            raise ValueError(f"rack_size must be >= 1, got {rack_size}")
        self.rack_size = rack_size
        self.rack_class = LinkClass("rack", 0.5, 1.0)

    def rack_of(self, node):
        return node // self.rack_size

    def nracks(self):
        return (self.nnodes + self.rack_size - 1) // self.rack_size

    def racks(self):
        return [list(range(r * self.rack_size,
                           min((r + 1) * self.rack_size, self.nnodes)))
                for r in range(self.nracks())]

    def _switch(self, rack):
        return f"rack{rack}"

    def _build_route(self, src, dst):
        a, b = self.rack_of(src), self.rack_of(dst)
        sa = self._switch(a)
        if a == b:
            return [(src, sa), (sa, dst)]
        sb = self._switch(b)
        core = self._core_switch(src, dst)
        return [(src, sa), (sa, core), (core, sb), (sb, dst)]

    def _core_switch(self, src, dst):
        raise NotImplementedError


class TwoTierTopology(_RackedTopology):
    """Racks behind one oversubscribed core switch.

    Intra-rack: ``src -> rackA -> dst`` (two short rack-class hops,
    summing to exactly the flat fabric's latency).  Cross-rack:
    ``src -> rackA -> core -> rackB -> dst``; the two core-class hops
    run at ``oversubscription``-times the per-byte cost and are shared
    by every node pair spanning those racks — the bottleneck the flat
    fabric could not express.
    """

    name = "two_tier"

    def __init__(self, nnodes, rack_size=4, oversubscription=4.0):
        super().__init__(nnodes, rack_size)
        self.core_class = LinkClass("core", 1.0, oversubscription)

    def _core_switch(self, src, dst):
        return "core"

    def link_class(self, link):
        return self.core_class if "core" in link else self.rack_class

    def uplinks(self, rack):
        sw = self._switch(rack)
        return ((sw, "core"), ("core", sw))


class FatTreeTopology(_RackedTopology):
    """Folded-Clos (leaf-spine) fabric: full bisection bandwidth.

    Same rack structure as :class:`TwoTierTopology`, but ``nspines``
    core switches (default: one per rack slot, i.e. full bisection) and
    no oversubscription — every link runs at edge bandwidth.  A
    cross-rack route picks its spine deterministically from the node
    pair, spreading load across spines while keeping routes symmetric.
    """

    name = "fat_tree"

    def __init__(self, nnodes, rack_size=4, nspines=None):
        super().__init__(nnodes, rack_size)
        self.nspines = max(1, rack_size if nspines is None else nspines)
        self.core_class = LinkClass("core", 1.0, 1.0)

    def _core_switch(self, src, dst):
        return f"core{(src + dst) % self.nspines}"

    def link_class(self, link):
        if any(isinstance(end, str) and end.startswith("core")
               for end in link):
            return self.core_class
        return self.rack_class

    def uplinks(self, rack):
        sw = self._switch(rack)
        links = []
        for spine in range(self.nspines):
            links.append((sw, f"core{spine}"))
            links.append((f"core{spine}", sw))
        return tuple(links)


#: Preset name -> constructor (``name:<rack_size>`` selects rack size).
PRESETS = {
    "flat": FlatTopology,
    "two_tier": TwoTierTopology,
    "fat_tree": FatTreeTopology,
}


def resolve_topology(spec, nnodes):
    """Build the :class:`Topology` for ``nnodes`` from a spec.

    ``spec`` may be None (flat), a preset name (``"two_tier"``,
    optionally suffixed ``":<rack_size>"`` as in ``"two_tier:2"``), an
    already-built :class:`Topology` (its node count must match), or a
    callable ``spec(nnodes) -> Topology`` (handy for sweeps).
    """
    if spec is None:
        return FlatTopology(nnodes)
    if isinstance(spec, Topology):
        if spec.nnodes != nnodes:
            raise ValueError(
                f"topology built for {spec.nnodes} nodes used on {nnodes}")
        return spec
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        ctor = PRESETS.get(name)
        if ctor is None:
            raise ValueError(f"unknown topology {name!r} "
                             f"(have {sorted(PRESETS)})")
        if arg:
            if ctor is FlatTopology:
                raise ValueError("flat topology takes no rack size")
            return ctor(nnodes, rack_size=int(arg))
        return ctor(nnodes)
    if callable(spec):
        return resolve_topology(spec(nnodes), nnodes)
    raise ValueError(f"cannot interpret topology spec {spec!r}")
