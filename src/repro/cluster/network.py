"""Network accounting for cluster runs.

Every cross-node kernel path routes through the machine's
:class:`~repro.cluster.transport.Transport`, which counts messages,
bytes, pages, and serialization cycles per directed link as the
simulation runs.  This module turns those live counters into the
operator-readable statistics one would read off a switch to explain why
matmult-tree levels off at two nodes (§6.3) — no post-hoc trace rescans:
migration hops and per-link totals are maintained incrementally by the
transport itself.
"""

from repro.mem.page import PAGE_SIZE


class NetworkStats:
    """Traffic summary of one cluster run."""

    def __init__(self, machine):
        self.machine = machine
        transport = machine.transport
        #: Pages that crossed the wire over the whole run (migration
        #: deltas plus demand fetches).
        self.pages_fetched = machine.pages_fetched
        #: ... split by protocol path.
        self.pages_shipped = transport.pages_shipped
        self.pages_pulled = transport.pages_pulled
        #: Page payload bytes those transfers moved.
        self.bytes_moved = self.pages_fetched * PAGE_SIZE
        #: Total wire bytes including message framing, scatter/gather
        #: headers, and control traffic (PAGE_REQ/ACK).
        self.wire_bytes = transport.bytes_total
        #: Messages of any type, and PAGE_BATCH messages specifically.
        self.messages = transport.messages
        self.batches = transport.batches
        #: Migration hops (one MIGRATE message each), counted
        #: incrementally by the transport as they happen.
        self.migrations = transport.migrations
        #: Serialization cycles summed over every link and message type
        #: (including fire-and-forget ACKs, which never stall a space —
        #: so this reads higher than the scheduler's per-link
        #: ``ScheduleResult.link_busy`` occupancy).
        self.wire_cycles = transport.busy_total
        #: (src, dst) -> per-link breakdown (messages, bytes, pages,
        #: occupancy, message-type counts).
        self.per_link = {
            link: stats.as_dict()
            for link, stats in sorted(transport.links.items())
        }
        #: node -> number of distinct *frames* currently cached there
        #: (the cache keeps only each frame's newest generation, so dead
        #: versions don't count).
        self.cached_per_node = {
            node: len(serials) for node, serials in machine.node_cache.items()
        }

    def link_table(self):
        """Aligned per-link rows: traffic and occupancy of each channel."""
        if not self.per_link:
            return "(no cross-node traffic)"
        lines = [f"{'link':>8} {'msgs':>6} {'pages':>7} {'KiB':>9} "
                 f"{'busy cycles':>13}"]
        for (src, dst), stats in self.per_link.items():
            lines.append(
                f"{f'{src}->{dst}':>8} {stats['messages']:>6} "
                f"{stats['pages']:>7} {stats['bytes_sent'] / 1024:>9.1f} "
                f"{stats['busy_cycles']:>13,}"
            )
        return "\n".join(lines)

    def summary(self):
        """One-paragraph human-readable summary."""
        return (
            f"{self.migrations} migration hops, "
            f"{self.pages_fetched:,} pages fetched "
            f"({self.pages_shipped:,} shipped with migrations, "
            f"{self.pages_pulled:,} demand-pulled; "
            f"{self.bytes_moved / 1024:.0f} KiB payload in "
            f"{self.messages:,} messages), "
            f"{self.wire_cycles:,} wire cycles over "
            f"{len(self.per_link)} links, "
            f"cache population: {dict(sorted(self.cached_per_node.items()))}"
        )

    def __repr__(self):
        return f"<NetworkStats {self.summary()}>"
