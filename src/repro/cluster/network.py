"""Network accounting for cluster runs.

The kernel charges migration and demand-paging costs as it simulates;
this module reconstructs operator-readable statistics from a finished
machine: how many pages crossed the wire, where they landed, and what
the protocol's (modelled) wire time was — the numbers one would read off
a switch to explain why matmult-tree levels off at two nodes (§6.3).
"""

from repro.mem.page import PAGE_SIZE


class NetworkStats:
    """Traffic summary of one cluster run."""

    def __init__(self, machine):
        self.machine = machine
        cost = machine.cost
        #: Pages demand-fetched across nodes over the whole run.
        self.pages_fetched = machine.pages_fetched
        #: Payload bytes those fetches moved.
        self.bytes_moved = self.pages_fetched * PAGE_SIZE
        #: node -> number of distinct *frames* currently cached there
        #: (the cache keeps only each frame's newest generation, so dead
        #: versions don't count).
        self.cached_per_node = {
            node: len(serials) for node, serials in machine.node_cache.items()
        }
        #: Migration hops (segments whose node differs from the previous
        #: segment of the same space).
        self.migrations = self._count_migrations(machine.trace)
        #: Modelled wire time attributable to page fetches.
        self.fetch_wire_cycles = self.pages_fetched * cost.message(
            PAGE_SIZE, tcp=machine.tcp_mode
        )

    @staticmethod
    def _count_migrations(trace):
        last_node = {}
        hops = 0
        for seg in trace.segments:
            prev = last_node.get(seg.uid)
            if prev is not None and prev != seg.node:
                hops += 1
            last_node[seg.uid] = seg.node
        return hops

    def summary(self):
        """One-paragraph human-readable summary."""
        return (
            f"{self.migrations} migration hops, "
            f"{self.pages_fetched:,} pages fetched "
            f"({self.bytes_moved / 1024:.0f} KiB), "
            f"{self.fetch_wire_cycles:,} wire cycles, "
            f"cache population: {dict(sorted(self.cached_per_node.items()))}"
        )

    def __repr__(self):
        return f"<NetworkStats {self.summary()}>"
