"""Network accounting for cluster runs.

Every cross-node kernel path routes through the machine's
:class:`~repro.cluster.transport.Transport`, which counts messages,
bytes, pages, and serialization cycles per directed fabric link as the
simulation runs.  This module turns those live counters into the
operator-readable statistics one would read off a switch to explain why
matmult-tree levels off at two nodes (§6.3) — no post-hoc trace rescans:
migration hops, per-link totals, per-class (rack vs cross-rack)
aggregates, prefetch-queue effectiveness, and the compressed-vs-raw
byte ledger are maintained incrementally by the transport itself.
"""

from repro.mem.page import PAGE_SIZE


class NetworkStats:
    """Traffic summary of one cluster run."""

    def __init__(self, machine):
        self.machine = machine
        transport = machine.transport
        #: The fabric the traffic was routed over.
        self.topology = machine.topology.name
        #: Pages that crossed the wire over the whole run (migration
        #: deltas, demand fetches, and speculative prefetches).
        self.pages_fetched = machine.pages_fetched
        #: ... split by protocol path.  Prefetched pages are counted on
        #: their own, never folded into the demand-pull total;
        #: ``prefetch_used`` says how many of them a space later
        #: actually demanded (the rest were wasted speculation).
        self.pages_shipped = transport.pages_shipped
        self.pages_pulled = transport.pages_pulled
        self.pages_prefetched = transport.pages_prefetched
        self.prefetch_used = transport.prefetch_used
        self.prefetch_unused = transport.prefetch_unused()
        self.prefetch_stale = transport.prefetch_stale
        #: Page payload bytes those transfers moved (pre-compression).
        self.bytes_moved = self.pages_fetched * PAGE_SIZE
        #: Total wire bytes including message framing, scatter/gather
        #: headers, and control traffic (PAGE_REQ/ACK), summed over
        #: every *traversed* link — an H-hop route moves its bytes H
        #: times, as on a real switched fabric.  Page payloads count at
        #: their *compressed* size when the machine compresses.
        self.wire_bytes = transport.bytes_total
        #: Page payload bytes before/after wire compression, summed over
        #: traversed links like :attr:`wire_bytes`.  Equal when
        #: compression is off; ``comp_bytes <= raw_bytes`` always.
        self.raw_bytes = transport.raw_total
        self.comp_bytes = transport.comp_total
        #: Whether PAGE_BATCH payloads were compressed, and what the
        #: codec cost (cycles charged as transfer latency).
        self.compression = machine.compression
        self.codec_cycles = transport.codec_cycles
        #: The fabric's deterministic fault schedule (one-line
        #: description, or None on a lossless fabric) and its
        #: consequences: wire copies the schedule dropped / the link
        #: layer retransmitted / duplicated / reordered, the
        #: retransmitted byte volume, and the timeout cycles
        #: space-stalling exchanges spent waiting on retransmits
        #: (charged as ``kind="retx"`` stall edges in the schedule).
        self.loss = machine.loss.describe() if machine.loss else None
        self.dropped_msgs = transport.drops
        self.dropped_bytes = transport.dropped_bytes
        self.retx_msgs = transport.retx_msgs
        self.retx_bytes = transport.retx_bytes
        self.dup_msgs = transport.dups
        self.reorder_msgs = transport.reorders
        self.retx_wait = transport.retx_wait
        #: Logical messages of any type, link traversals they cost, and
        #: PAGE_BATCH messages specifically.
        self.messages = transport.messages
        self.hops = transport.hops
        self.batches = transport.batches
        #: Migration hops (one MIGRATE message each), counted
        #: incrementally by the transport as they happen.
        self.migrations = transport.migrations
        #: Serialization cycles summed over every link and message type
        #: (including fire-and-forget ACKs, which never stall a space —
        #: so this reads higher than the scheduler's per-link
        #: ``ScheduleResult.link_busy`` occupancy).
        self.wire_cycles = transport.busy_total
        #: (src, dst) -> per-link breakdown (class, messages, bytes,
        #: pages, raw/compressed payload bytes, occupancy, message-type
        #: counts); switch-attached links included.
        self.per_link = {
            link: stats.as_dict()
            for link, stats in sorted(transport.links.items(),
                                      key=lambda kv: _link_key(kv[0]))
        }
        #: link-class name -> aggregate traffic over all links of the
        #: class (the rack vs cross-rack split): links, messages,
        #: bytes_sent, pages, raw_bytes, comp_bytes, busy_cycles.
        self.per_class = transport.class_totals()
        #: node -> number of distinct *frames* currently cached there
        #: (the cache keeps only each frame's newest generation, so dead
        #: versions don't count).
        self.cached_per_node = {
            node: len(serials) for node, serials in machine.node_cache.items()
        }

    def class_table(self):
        """Aligned per-class rows: the rack/cross-rack aggregate view."""
        if not self.per_class:
            return "(no cross-node traffic)"
        lines = [f"{'class':>8} {'links':>6} {'msgs':>7} {'pages':>8} "
                 f"{'wire KiB':>10} {'raw KiB':>10} {'busy cycles':>14}"]
        for cls, agg in sorted(self.per_class.items()):
            lines.append(
                f"{cls:>8} {agg['links']:>6} {agg['messages']:>7} "
                f"{agg['pages']:>8} {agg['bytes_sent'] / 1024:>10.1f} "
                f"{agg['raw_bytes'] / 1024:>10.1f} "
                f"{agg['busy_cycles']:>14,}"
            )
        return "\n".join(lines)

    def link_table(self):
        """Per-class aggregates followed by the raw per-link rows.

        Byte columns match :meth:`class_table` and
        :meth:`compression_table`: ``wire KiB`` is what serialized
        (compressed payloads + framing), ``raw KiB`` the payloads'
        pre-compression size — the same quantity under the same name
        in every view.
        """
        if not self.per_link:
            return "(no cross-node traffic)"
        lines = [self.class_table(), ""]
        lines.append(f"{'link':>16} {'class':>6} {'msgs':>7} {'pages':>8} "
                     f"{'wire KiB':>10} {'raw KiB':>10} {'busy cycles':>14}")
        for (src, dst), stats in self.per_link.items():
            lines.append(
                f"{f'{src}->{dst}':>16} {stats['cls']:>6} "
                f"{stats['messages']:>7} {stats['pages']:>8} "
                f"{stats['bytes_sent'] / 1024:>10.1f} "
                f"{stats['raw_bytes'] / 1024:>10.1f} "
                f"{stats['busy_cycles']:>14,}"
            )
        return "\n".join(lines)

    def compression_table(self):
        """Per-link compressed-vs-raw payload ledger.

        One row per link that carried pages: raw payload KiB, the KiB
        that actually serialized after zero-suppression/RLE, and the
        saving — plus a totals row.  With compression off the columns
        are equal and the saving reads 0%.
        """
        rows = [(f"{src}->{dst}", stats["raw_bytes"], stats["comp_bytes"])
                for (src, dst), stats in self.per_link.items()
                if stats["pages"]]
        if not rows:
            return "(no page payloads crossed any link)"
        lines = [f"{'link':>16} {'raw KiB':>10} {'wire KiB':>10} "
                 f"{'saved':>7}"]
        for name, raw, comp in rows + [("TOTAL", self.raw_bytes,
                                        self.comp_bytes)]:
            saved = 1.0 - comp / raw if raw else 0.0
            lines.append(f"{name:>16} {raw / 1024:>10.1f} "
                         f"{comp / 1024:>10.1f} {saved:>6.1%}")
        return "\n".join(lines)

    def retx_table(self):
        """Per-link retransmission ledger of the deterministic fault
        schedule.

        One row per link the schedule faulted — wire copies dropped,
        retransmitted (messages and KiB), duplicated, and reordered —
        plus a totals row.  The row *content* is a pure function of the
        schedule and the program (fault decisions are keyed on
        ``(link, msg_serial)``), so two runs under one seed render the
        same table byte for byte — the determinism oracle the fault
        tests pin down.
        """
        rows = [(f"{src}->{dst}", stats)
                for (src, dst), stats in self.per_link.items()
                if stats["dropped_msgs"] or stats["retx_msgs"]
                or stats["dup_msgs"] or stats["reorder_msgs"]]
        if not rows:
            return ("(no link ever dropped, duplicated, or reordered "
                    "a message)")
        lines = [f"{'link':>16} {'msgs':>7} {'dropped':>8} {'retx':>6} "
                 f"{'retx KiB':>9} {'dup':>5} {'reorder':>8}"]
        total = {"messages": 0, "dropped_msgs": 0, "retx_msgs": 0,
                 "retx_bytes": 0, "dup_msgs": 0, "reorder_msgs": 0}
        for name, stats in rows:
            for key in total:
                total[key] += stats[key]
            lines.append(
                f"{name:>16} {stats['messages']:>7} "
                f"{stats['dropped_msgs']:>8} {stats['retx_msgs']:>6} "
                f"{stats['retx_bytes'] / 1024:>9.1f} "
                f"{stats['dup_msgs']:>5} {stats['reorder_msgs']:>8}")
        lines.append(
            f"{'TOTAL':>16} {total['messages']:>7} "
            f"{total['dropped_msgs']:>8} {total['retx_msgs']:>6} "
            f"{total['retx_bytes'] / 1024:>9.1f} "
            f"{total['dup_msgs']:>5} {total['reorder_msgs']:>8}")
        return "\n".join(lines)

    def window(self):
        """Snapshot-and-reset the transport's current telemetry window.

        Returns the :class:`~repro.cluster.transport.TelemetryWindow`
        accumulated since the last snapshot (per-node stall/prefetch
        counters, per-route delivery samples, per-pair bytes, fault
        deltas) and opens a fresh one — the exact read-and-reset the
        control plane performs at each decision pass, exposed for
        operators and tests.  On a machine with a control plane attached
        the controller consumes the windows itself; calling this
        mid-run there would steal its telemetry, so prefer it on
        ``control=None`` machines or after the run completes.
        """
        return self.machine.transport.take_window()

    def class_bytes(self, cls):
        """Total wire bytes sent over links of class ``cls`` (0 if the
        fabric has none) — e.g. ``class_bytes("core")`` is the
        cross-rack volume placement policies try to shrink."""
        return self.per_class.get(cls, {}).get("bytes_sent", 0)

    def compression_ratio(self):
        """Compressed / raw payload bytes (1.0 when nothing compressed)."""
        if not self.raw_bytes:
            return 1.0
        return self.comp_bytes / self.raw_bytes

    def summary(self):
        """One-paragraph human-readable summary."""
        prefetch = ""
        if self.pages_prefetched:
            prefetch = (f", {self.pages_prefetched:,} prefetched "
                        f"[{self.prefetch_used:,} used, "
                        f"{self.prefetch_unused:,} unused]")
        comp = ""
        if self.compression:
            comp = (f", payload compressed "
                    f"{self.raw_bytes / 1024:.0f} -> "
                    f"{self.comp_bytes / 1024:.0f} KiB "
                    f"({self.compression_ratio():.0%})")
        retx = ""
        if self.loss is not None:
            retx = (f", faults [{self.loss}]: {self.dropped_msgs:,} drops "
                    f"-> {self.retx_msgs:,} retransmits "
                    f"({self.retx_bytes / 1024:.0f} KiB, "
                    f"{self.retx_wait:,} wait cycles), "
                    f"{self.dup_msgs:,} dups, {self.reorder_msgs:,} "
                    f"reorders")
        return (
            f"{self.migrations} migration hops, "
            f"{self.pages_fetched:,} pages fetched "
            f"({self.pages_shipped:,} shipped with migrations, "
            f"{self.pages_pulled:,} demand-pulled{prefetch}; "
            f"{self.bytes_moved / 1024:.0f} KiB payload in "
            f"{self.messages:,} messages over {self.hops:,} link "
            f"traversals{comp}), {self.wire_cycles:,} wire cycles over "
            f"{len(self.per_link)} {self.topology} links{retx}, "
            f"cache population: {dict(sorted(self.cached_per_node.items()))}"
        )

    def __repr__(self):
        return f"<NetworkStats {self.summary()}>"


def _link_key(link):
    """Deterministic sort key for links whose endpoints mix node ints
    and switch-name strings."""
    return tuple((0, end) if isinstance(end, int) else (1, end)
                 for end in link)
