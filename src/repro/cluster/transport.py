"""Message-level cluster transport (paper §3.3, rebuilt as a subsystem).

The seed charged cross-node work as scalars: a flat ``migrate_base +
net_msg`` per hop and one independent round trip per demand-fetched
page.  This module replaces that with an explicit protocol over a
*routed fabric*; every cross-node kernel path (migrate, remote
fork/join's copy, demand fetch, merge) now routes its traffic through
one :class:`Transport` owned by the machine.

Message types
-------------

``MIGRATE``
    Carries a space's register file plus its address-space summary
    (``cost.migrate_bytes``), followed by the *delta* of its pages.
``PAGE_BATCH``
    A scatter/gather message moving up to ``cost.msg_batch`` pages
    (each ``PAGE_SIZE + cost.page_hdr`` bytes on the wire), instead of
    one message per page.
``PAGE_REQ``
    A demand-fetch request naming the wanted pages (``cost.msg_ctrl`` +
    8 bytes per page), sent to the node that produced their newest
    content.
``ACK``
    Completion notice on the reverse route.  ACKs are fire-and-forget:
    they occupy wire bytes/messages in the accounting but never delay
    the sending space.

Links, routes, and time
-----------------------

The machine's :class:`~repro.cluster.topology.Topology` describes the
fabric: links are ordered pairs of fabric *endpoints* (node ints and
switch names), each carrying a latency/bandwidth class.  A message
between non-adjacent endpoints is routed hop by hop — **every traversed
link** accrues its messages, bytes, pages, and serialization occupancy
(``cost.link_message`` scaled by the link class's bandwidth factor,
TCP surcharge when the machine runs in ``tcp_mode``).  On the legacy
flat fabric every route is the single direct link, reproducing the
pre-topology accounting exactly.

Transfers that stall a space are recorded as one
:meth:`~repro.timing.trace.Trace.link_edge` per traversed link, so the
scheduler makes overlapping transfers contend *on each physical link of
the route* while leaving the CPUs free — a shared cross-rack uplink
serializes every node pair that crosses it, which is how
oversubscription bends the scaling curve.  The route's total transit
latency (sum of per-hop class latencies) is charged alongside.

Delta shipping
--------------

A migrating space's memory image moves with it.  In ``ship_mode="full"``
every mapped page crosses on every hop (the naive protocol, kept as the
ablation baseline).  In ``ship_mode="delta"`` the kernel enumerates
candidates from the dirty ledger via the space's per-node visit tokens —
only pages written since the space last resided on the target — and the
per-node tag cache then drops pages whose ``(serial, generation)``
content is already present there.  See
:meth:`repro.kernel.kernel.Kernel.migrate`.
"""

import enum

from repro.mem.page import PAGE_SIZE


class MsgType(enum.Enum):
    """Wire message types of the cluster protocol."""

    MIGRATE = "migrate"
    PAGE_REQ = "page_req"
    PAGE_BATCH = "page_batch"
    ACK = "ack"


class LinkStats:
    """Cumulative traffic accounting of one directed fabric link."""

    __slots__ = ("cls", "messages", "bytes_sent", "bytes_received", "pages",
                 "busy_cycles", "by_type")

    def __init__(self, cls="node"):
        #: Name of the link's latency/bandwidth class.
        self.cls = cls
        #: Messages serialized onto the link (each routed message counts
        #: once per link it traverses).
        self.messages = 0
        #: Wire bytes queued at the sending endpoint.
        self.bytes_sent = 0
        #: Wire bytes handed to the receiving endpoint, computed per
        #: exchange from its page counts (independently of the
        #: per-message :attr:`bytes_sent`); links are lossless, so any
        #: mismatch is a protocol accounting bug — the conservation
        #: invariant the transport tests pin down, now enforced on every
        #: traversed link of every route.
        self.bytes_received = 0
        #: Page payloads moved over the link.
        self.pages = 0
        #: Serialization cycles of *every* message on the link,
        #: including fire-and-forget ACKs.  The scheduler's
        #: ``ScheduleResult.link_busy`` counts only space-stalling
        #: transfers (those with a trace link edge), so it reads lower
        #: than this by the ACK/untraced share.
        self.busy_cycles = 0
        #: message-type name -> message count.
        self.by_type = {}

    def as_dict(self):
        """Plain-dict view (reporting)."""
        return {
            "cls": self.cls,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "pages": self.pages,
            "busy_cycles": self.busy_cycles,
            "by_type": dict(self.by_type),
        }


class Transport:
    """The simulated interconnect of one machine's cluster."""

    def __init__(self, machine):
        self.machine = machine
        #: (src_endpoint, dst_endpoint) -> LinkStats, one entry per
        #: *physical* fabric link that ever carried traffic (switch
        #: links included).
        self.links = {}
        #: Migration hops performed (one per MIGRATE message) —
        #: maintained incrementally so NetworkStats never rescans the
        #: trace.
        self.migrations = 0
        #: Pages moved eagerly with migrations (delta or full ship).
        self.pages_shipped = 0
        #: Pages moved by demand-fetch (PAGE_REQ/PAGE_BATCH exchanges).
        self.pages_pulled = 0
        #: PAGE_BATCH messages sent.
        self.batches = 0
        #: Logical protocol messages (each counted once however many
        #: links its route traverses).
        self.messages = 0
        #: Link traversals: a message over an H-hop route counts H.
        self.hops = 0
        #: Wire bytes and serialization cycles summed over every
        #: traversed link (an H-hop route moves its bytes H times).
        self.bytes_total = 0
        self.busy_total = 0

    # -- bookkeeping -------------------------------------------------------

    def link(self, link):
        """The :class:`LinkStats` of one directed fabric link."""
        stats = self.links.get(link)
        if stats is None:
            cls = self.machine.topology.link_class(link).name
            stats = self.links[link] = LinkStats(cls)
        return stats

    def _send(self, mtype, src, dst, nbytes, pages=0, usage=None):
        """Serialize one message along the fabric route ``src -> dst``.

        Every traversed link accrues the message's bytes, pages, and
        its class-scaled serialization cycles; ``usage`` (when given)
        collects per-link busy cycles for the caller's trace edges.
        Only the *sending* side is accounted here; the exchange methods
        credit ``bytes_received`` from their own arithmetic
        (:meth:`_receive`), so the conservation invariant cross-checks
        the two computations per physical link — e.g. a batch split
        that loses pages shows up as a sent/received mismatch.
        """
        machine = self.machine
        cost = machine.cost
        topo = machine.topology
        self.messages += 1
        for link in topo.route(src, dst):
            cls = topo.link_class(link)
            busy = cost.link_message(nbytes, byte_factor=cls.byte_factor,
                                     tcp=machine.tcp_mode)
            stats = self.link(link)
            stats.messages += 1
            stats.bytes_sent += nbytes
            stats.pages += pages
            stats.busy_cycles += busy
            stats.by_type[mtype.name] = stats.by_type.get(mtype.name, 0) + 1
            self.hops += 1
            self.bytes_total += nbytes
            self.busy_total += busy
            if usage is not None:
                usage[link] = usage.get(link, 0) + busy

    def _receive(self, src, dst, nbytes):
        """Credit ``nbytes`` delivered over every link of the
        ``src -> dst`` route (lossless fabric)."""
        for link in self.machine.topology.route(src, dst):
            self.link(link).bytes_received += nbytes

    def _stall_edges(self, closed, opened, usage, latency=0):
        """One trace link edge per physical link the exchange occupied:
        the space resumes only after its transfer wins *each* link it
        crossed (shared uplinks make crossing flows contend) and
        transits the route latency."""
        trace = self.machine.trace
        topo = self.machine.topology
        for link, busy in usage.items():
            trace.link_edge(closed, opened, link=link, busy=busy,
                            latency=latency, cls=topo.link_class(link).name)

    def _batch_sizes(self, npages):
        """Split ``npages`` into PAGE_BATCH loads (``cost.msg_batch``)."""
        cap = max(1, self.machine.cost.msg_batch)
        sizes = []
        while npages > 0:
            take = min(cap, npages)
            sizes.append(take)
            npages -= take
        return sizes

    def _ship(self, src, dst, npages, usage=None):
        """Send ``npages`` as PAGE_BATCH messages over the route."""
        cost = self.machine.cost
        for take in self._batch_sizes(npages):
            self._send(MsgType.PAGE_BATCH, src, dst,
                       take * (PAGE_SIZE + cost.page_hdr),
                       pages=take, usage=usage)
            self.batches += 1

    # -- protocol exchanges ------------------------------------------------

    def migrate(self, space, src, dst, shipped):
        """Move ``space`` from ``src`` to ``dst``, shipping ``shipped``
        delta pages with it.

        Sends MIGRATE + PAGE_BATCHes along the ``src -> dst`` route and
        an async ACK back, then cuts the space's trace segment across
        per-link edges so the space resumes on ``dst`` only after the
        transfer serializes on every traversed link (contending with
        other traffic crossing those links) and transits the route's
        total latency.
        """
        machine = self.machine
        cost = machine.cost
        self.migrations += 1
        self.pages_shipped += shipped
        machine.pages_fetched += shipped
        usage = {}
        self._send(MsgType.MIGRATE, src, dst, cost.migrate_bytes, usage=usage)
        self._ship(src, dst, shipped, usage=usage)
        self._send(MsgType.ACK, dst, src, cost.msg_ctrl)
        # Receiver-side accounting from the exchange's own arithmetic
        # (not the per-message sends): conservation cross-checks them.
        self._receive(src, dst, cost.migrate_bytes
                      + shipped * (PAGE_SIZE + cost.page_hdr))
        self._receive(dst, src, cost.msg_ctrl)
        trace = machine.trace
        if trace.is_open(space.uid):
            closed, opened = trace.move_node(space.uid, dst)
            self._stall_edges(closed, opened, usage,
                              latency=machine.topology.route_latency(
                                  cost, src, dst))

    def fetch(self, space, origin, node, npages):
        """Demand-fetch ``npages`` for ``space`` (resident on ``node``)
        from the node that produced their newest content.

        One PAGE_REQ out, batched PAGE_BATCHes back, async ACK.  The
        space stalls until the response serializes on every link of the
        ``origin -> node`` route and transits the route latency; the
        request's (small) serialization contends on the forward route
        without adding transit time of its own — the exchange is
        modelled as a single pipelined round trip, as the seed's
        per-page charge was.
        """
        machine = self.machine
        cost = machine.cost
        self.pages_pulled += npages
        machine.pages_fetched += npages
        req_usage = {}
        resp_usage = {}
        self._send(MsgType.PAGE_REQ, node, origin,
                   cost.msg_ctrl + 8 * npages, usage=req_usage)
        self._ship(origin, node, npages, usage=resp_usage)
        self._send(MsgType.ACK, node, origin, cost.msg_ctrl)
        self._receive(node, origin, 2 * cost.msg_ctrl + 8 * npages)
        self._receive(origin, node, npages * (PAGE_SIZE + cost.page_hdr))
        trace = machine.trace
        if trace.is_open(space.uid):
            closed, opened = trace.cut(space.uid, label="fetch")
            self._stall_edges(closed, opened, req_usage)
            self._stall_edges(closed, opened, resp_usage,
                              latency=machine.topology.route_latency(
                                  cost, origin, node))

    # -- invariants --------------------------------------------------------

    def conservation_ok(self):
        """True iff every traversed link delivered exactly the bytes it
        sent.

        Sender bytes accumulate per message as each serializes onto each
        link of its route; receiver bytes are credited per *exchange*
        from its page counts, walked over the same routes.  The two
        computations agree only when no protocol step loses, duplicates,
        or mis-routes traffic (links themselves are lossless).
        """
        return all(s.bytes_sent == s.bytes_received
                   for s in self.links.values())

    def class_totals(self):
        """Per-class aggregate traffic: {class name -> dict of totals}.

        Sums messages, bytes, pages, and busy cycles over every link of
        each latency/bandwidth class — the rack-vs-core split an
        operator reads to spot oversubscription.
        """
        totals = {}
        for stats in self.links.values():
            agg = totals.setdefault(stats.cls, {
                "links": 0, "messages": 0, "bytes_sent": 0,
                "pages": 0, "busy_cycles": 0,
            })
            agg["links"] += 1
            agg["messages"] += stats.messages
            agg["bytes_sent"] += stats.bytes_sent
            agg["pages"] += stats.pages
            agg["busy_cycles"] += stats.busy_cycles
        return totals

    def __repr__(self):
        return (f"<Transport links={len(self.links)} "
                f"msgs={self.messages} pages="
                f"{self.pages_shipped + self.pages_pulled}>")
