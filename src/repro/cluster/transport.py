"""Message-level cluster transport (paper §3.3, rebuilt as a subsystem).

The seed charged cross-node work as scalars: a flat ``migrate_base +
net_msg`` per hop and one independent round trip per demand-fetched
page.  This module replaces that with an explicit protocol over a
*routed fabric*; every cross-node kernel path (migrate, remote
fork/join's copy, demand fetch, merge) now routes its traffic through
one :class:`Transport` owned by the machine.

Message types
-------------

``MIGRATE``
    Carries a space's register file plus its address-space summary
    (``cost.migrate_bytes``), followed by the *delta* of its pages.
``PAGE_BATCH``
    A scatter/gather message moving up to ``cost.msg_batch`` pages
    (each ``payload + cost.page_hdr`` bytes on the wire, where the
    payload is 4 KiB raw or its compressed size — see below), instead
    of one message per page.
``PAGE_REQ``
    A page-fetch request naming the wanted pages (``cost.msg_ctrl`` +
    8 bytes per page), sent to the node that produced their newest
    content — either a *demand* fetch the space stalls on, or an
    *async prefetch* for predicted-next frames that overlaps compute.
``ACK``
    Completion notice on the reverse route.  ACKs are fire-and-forget:
    they occupy wire bytes/messages in the accounting but never delay
    the sending space.

Links, routes, and time
-----------------------

The machine's :class:`~repro.cluster.topology.Topology` describes the
fabric: links are ordered pairs of fabric *endpoints* (node ints and
switch names), each carrying a latency/bandwidth class.  A message
between non-adjacent endpoints is routed hop by hop — **every traversed
link** accrues its messages, bytes, pages, and serialization occupancy
(``cost.link_message`` scaled by the link class's bandwidth factor,
TCP surcharge when the machine runs in ``tcp_mode``).  On the legacy
flat fabric every route is the single direct link, reproducing the
pre-topology accounting exactly.

Transfers that stall a space are recorded as one
:meth:`~repro.timing.trace.Trace.link_edge` per traversed link, so the
scheduler makes overlapping transfers contend *on each physical link of
the route* while leaving the CPUs free — a shared cross-rack uplink
serializes every node pair that crosses it, which is how
oversubscription bends the scaling curve.  The route's total transit
latency (sum of per-hop class latencies) is charged alongside.

Pipelined prefetch
------------------

Demand fetches are stop-and-wait: the space stalls for the whole round
trip.  With ``prefetch_depth > 0`` each node also runs an *async fetch
queue*: the kernel predicts the frames a space will touch next
(sequentially past a faulting range, and from the migration ledger at
migration time) and the transport issues their PAGE_REQ/PAGE_BATCH
exchange immediately, anchored at the segment that was open when the
prediction fired.  Nothing stalls at issue time; the in-flight transfer
serializes on its links *while the CPU keeps computing*.  When a later
touch demands an in-flight frame, the whole exchange is *redeemed*:
trace link edges run from the issue anchor to the demanding segment
(kind ``"prefetch"``), so the scheduler charges only the part of the
transfer that outlived the compute it hid behind — a late arrival is an
explicit stall edge, an early one costs nothing.  Prefetched frames the
run never demands stay in the queue and are reported as
``prefetch_unused`` — speculative wire traffic, never folded into the
demand-pull count.

Determinism makes this aggressive pipelining safe: page content at each
quantum boundary is fully determined, so a predicted fetch can never
observe — or produce — different bytes than the demand fetch it
replaces.

Wire compression
----------------

With ``Machine(compression=True)`` every PAGE_BATCH payload is encoded
per frame (:mod:`repro.cluster.compress`): all-zero frames are
suppressed to the per-page header, mostly-zero frames ship zero-run
RLE, and high-entropy frames fall back to raw — per-page, per-link,
``compressed <= raw`` always.  Links account both byte counts
(:attr:`LinkStats.raw_bytes` vs :attr:`LinkStats.comp_bytes`), encoded
sizes are cached per frame content tag, and codec work is charged as
transfer latency via the ``comp_encode_byte``/``comp_decode_byte``
cost knobs.

Deterministic faults and retransmission
---------------------------------------

With ``Machine(loss=...)`` every wire copy of every message consults
the machine's :class:`~repro.cluster.faults.LossSchedule` — a pure
function of ``(seed, link, msg_serial, attempt)``, so reruns fault
bit-identically.  Each fabric link runs a reliable link layer: a
dropped copy is retransmitted after ``cost.retx_timeout`` cycles
(bounded by ``cost.retx_limit``, exhaustion raises
:class:`~repro.common.errors.NetworkLossError`); a duplicated copy
serializes and arrives twice, the receiver discarding the second; a
reordered copy is held back one hop latency at the receiver.  Every
extra copy occupies its link (it contends in ``schedule()``), the
per-link ledger keeps the split (:attr:`LinkStats.retx_msgs` /
:attr:`LinkStats.retx_bytes` / :attr:`LinkStats.dropped_bytes`), and
the timeout waits of a space-stalling exchange are charged as
``kind="retx"`` trace link edges — so
``ScheduleResult.stall_cycles["retx"]`` is exactly the time spaces
lost to the unreliable fabric.  ACKs stay fire-and-forget: their
faults are accounted on the links but never delay a space.
Determinism guarantees loss is cost-only — computed values and final
memory images are identical under any schedule — and conservation
extends to ``delivered + dropped == sent`` per physical link.

Delta shipping
--------------

A migrating space's memory image moves with it.  In ``ship_mode="full"``
every mapped page crosses on every hop (the naive protocol, kept as the
ablation baseline).  In ``ship_mode="delta"`` the kernel enumerates
candidates from the dirty ledger via the space's per-node visit tokens —
only pages written since the space last resided on the target — and the
per-node tag cache then drops pages whose ``(serial, generation)``
content is already present there.  In ``ship_mode="demand"`` the
MIGRATE message carries only the summary and every page demand-faults
(or prefetches) over later — the paper's baseline distributed-memory
protocol, and the stage on which the prefetch ablation measures
stop-and-wait against pipelined fetching.  See
:meth:`repro.kernel.kernel.Kernel.migrate`.
"""

import enum

from repro.cluster import compress
from repro.cluster.faults import DROP, DUPLICATE, REORDER, RetxBill
from repro.common.errors import NetworkLossError
from repro.mem.page import PAGE_SIZE


class MsgType(enum.Enum):
    """Wire message types of the cluster protocol."""

    MIGRATE = "migrate"
    PAGE_REQ = "page_req"
    PAGE_BATCH = "page_batch"
    ACK = "ack"


class LinkStats:
    """Cumulative traffic accounting of one directed fabric link."""

    __slots__ = ("cls", "messages", "bytes_sent", "bytes_received", "pages",
                 "raw_bytes", "comp_bytes", "busy_cycles", "by_type",
                 "retx_msgs", "retx_bytes", "dropped_msgs", "dropped_bytes",
                 "dup_msgs", "dup_bytes", "reorder_msgs")

    def __init__(self, cls="node"):
        #: Name of the link's latency/bandwidth class.
        self.cls = cls
        #: Messages serialized onto the link (each routed message counts
        #: once per link it traverses).
        self.messages = 0
        #: Wire bytes queued at the sending endpoint.
        self.bytes_sent = 0
        #: Wire bytes handed to the receiving endpoint.  The clean copy
        #: of every message is credited per *exchange* from its page
        #: counts (independently of the per-message :attr:`bytes_sent`);
        #: duplicated copies are credited as they arrive.  The
        #: conservation invariant the transport tests pin down —
        #: enforced on every traversed link of every route — is
        #: ``bytes_sent == bytes_received + dropped_bytes``: the link
        #: layer delivers every byte it does not drop.
        self.bytes_received = 0
        #: Page payloads moved over the link.
        self.pages = 0
        #: Page payload bytes *before* wire compression (``pages * 4096``).
        self.raw_bytes = 0
        #: Page payload bytes actually serialized (equal to
        #: :attr:`raw_bytes` when compression is off; never above it —
        #: the per-link compression conservation invariant).
        self.comp_bytes = 0
        #: Serialization cycles of *every* message on the link,
        #: including fire-and-forget ACKs.  The scheduler's
        #: ``ScheduleResult.link_busy`` counts only space-stalling
        #: transfers (those with a trace link edge), so it reads lower
        #: than this by the ACK/untraced share.
        self.busy_cycles = 0
        #: message-type name -> message count.
        self.by_type = {}
        #: Retransmitted copies the link's reliable layer re-serialized
        #: after the loss schedule dropped an earlier copy (the
        #: retransmit ledger ``NetworkStats.retx_table()`` renders).
        self.retx_msgs = 0
        self.retx_bytes = 0
        #: Copies the loss schedule dropped on this link (each later
        #: retransmitted; the dropped bytes close the conservation
        #: equation ``sent == received + dropped``).
        self.dropped_msgs = 0
        self.dropped_bytes = 0
        #: Duplicated copies: serialized and delivered twice, the
        #: receiver discarding the extra arrival.
        self.dup_msgs = 0
        self.dup_bytes = 0
        #: Copies delivered out of order, held back one hop latency.
        self.reorder_msgs = 0

    def as_dict(self):
        """Plain-dict view (reporting)."""
        return {
            "cls": self.cls,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "pages": self.pages,
            "raw_bytes": self.raw_bytes,
            "comp_bytes": self.comp_bytes,
            "busy_cycles": self.busy_cycles,
            "by_type": dict(self.by_type),
            "retx_msgs": self.retx_msgs,
            "retx_bytes": self.retx_bytes,
            "dropped_msgs": self.dropped_msgs,
            "dropped_bytes": self.dropped_bytes,
            "dup_msgs": self.dup_msgs,
            "dup_bytes": self.dup_bytes,
            "reorder_msgs": self.reorder_msgs,
        }


class PrefetchExchange:
    """One in-flight async PAGE_REQ/PAGE_BATCH exchange.

    Issued without stalling anyone; redeemed as a unit the first time a
    space demands any of its frames (the whole scatter/gather response
    arrives together), at which point its link edges enter the trace.
    """

    __slots__ = ("anchor", "usage", "latency", "frames", "origin", "retx",
                 "issuer_uid", "issue_charged", "wire_time", "window",
                 "aged")

    def __init__(self, anchor, usage, latency, frames, origin, retx=None):
        #: Trace segment (id) of the issue point (the segment closed
        #: just before the prediction fired); the transfer's
        #: serialization starts when it finishes.
        self.anchor = anchor
        #: link -> busy cycles the exchange occupies on it.
        self.usage = usage
        #: Route transit + codec latency of the response.
        self.latency = latency
        #: ``[(frame, generation-at-issue), ...]`` the exchange
        #: carries.  Frames are live objects: a generation that moved
        #: on by redeem time means the producer superseded the payload
        #: in flight — those bytes are stale, not used.
        self.frames = frames
        #: Node the pages were pulled from.
        self.origin = origin
        #: Retransmission charges (:class:`~repro.cluster.faults.
        #: RetxBill`) the exchange accumulated at issue time, emitted
        #: as ``kind="retx"`` edges when the exchange is redeemed or
        #: flushed; None on a lossless fabric.
        self.retx = retx
        #: Issue-time telemetry for the control plane's late-redeem
        #: estimator: the issuing space, its program clock
        #: (``Trace.charged``) at issue, the exchange's modelled wire
        #: time (serialization + transit + retx waits), and the
        #: telemetry window index it was issued in.
        self.issuer_uid = None
        self.issue_charged = 0
        self.wire_time = 0
        self.window = 0
        #: Whether the window sweep already counted this exchange's
        #: still-queued frames as aged speculation (counted once).
        self.aged = False


#: Per-node telemetry counters tracked inside one window (the keys of
#: every node dict a :class:`TelemetryWindow` carries).
NODE_WINDOW_KEYS = ("pulled", "prefetch_issued", "prefetch_used",
                    "prefetch_stale", "prefetch_aged", "prefetch_refresh",
                    "late_redeems", "late_cycles")

#: Route-latency samples kept per window (first come first kept — a
#: deterministic cap, so an unattended window can never grow unbounded).
ROUTE_SAMPLE_CAP = 512


class TelemetryWindow:
    """Read-only snapshot of one telemetry window (``Transport.
    take_window``): everything the transport observed since the last
    snapshot, reset on take.

    All content is a pure function of the simulated execution, so two
    same-seed runs produce bit-identical window sequences — which is
    what makes controller decisions replay-exact.
    """

    __slots__ = ("index", "nodes", "route_samples", "pair_bytes",
                 "drops", "retx_msgs", "retx_wait", "messages")

    def __init__(self, index, nodes, route_samples, pair_bytes,
                 drops, retx_msgs, retx_wait, messages):
        #: Monotone window serial (0-based).
        self.index = index
        #: node -> dict of :data:`NODE_WINDOW_KEYS` counters: demand
        #: pulls, prefetch issue/hit/stale splits, aged in-flight
        #: frames, and the late-redeem count/estimated stall cycles.
        self.nodes = nodes
        #: ``{(a, b): [delivery-cycles sample, ...]}`` per unordered
        #: node pair — modelled per-message delivery latency of each
        #: clean page exchange on the route (Karn's rule: exchanges
        #: that retransmitted contribute no sample).
        self.route_samples = route_samples
        #: ``{(src, dst): bytes}`` logical message bytes per directed
        #: node pair (counted once per message, not per hop).
        self.pair_bytes = pair_bytes
        #: Fault-path deltas over the window.
        self.drops = drops
        self.retx_msgs = retx_msgs
        self.retx_wait = retx_wait
        #: Logical messages sent during the window.
        self.messages = messages

    def node(self, node):
        """Counters of ``node`` (zeros when it saw no traffic)."""
        return self.nodes.get(node) or dict.fromkeys(NODE_WINDOW_KEYS, 0)

    def table(self):
        """Aligned per-node rows of the window's counters."""
        if not self.nodes:
            return f"(window {self.index}: no telemetry)"
        lines = [f"{'node':>5} {'pulled':>7} {'pf-iss':>7} {'pf-used':>8} "
                 f"{'stale':>6} {'aged':>5} {'churn':>6} {'late':>5} "
                 f"{'late cycles':>12}"]
        for node in sorted(self.nodes):
            row = self.nodes[node]
            lines.append(
                f"{node:>5} {row['pulled']:>7} {row['prefetch_issued']:>7} "
                f"{row['prefetch_used']:>8} {row['prefetch_stale']:>6} "
                f"{row['prefetch_aged']:>5} {row['prefetch_refresh']:>6} "
                f"{row['late_redeems']:>5} {row['late_cycles']:>12,}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"<TelemetryWindow {self.index} nodes={len(self.nodes)} "
                f"msgs={self.messages} drops={self.drops}>")


class Transport:
    """The simulated interconnect of one machine's cluster."""

    def __init__(self, machine):
        self.machine = machine
        #: (src_endpoint, dst_endpoint) -> LinkStats, one entry per
        #: *physical* fabric link that ever carried traffic (switch
        #: links included).
        self.links = {}
        #: Migration hops performed (one per MIGRATE message) —
        #: maintained incrementally so NetworkStats never rescans the
        #: trace.
        self.migrations = 0
        #: Pages moved eagerly with migrations (delta or full ship).
        self.pages_shipped = 0
        #: Pages moved by stop-and-wait demand fetch.
        self.pages_pulled = 0
        #: Pages speculatively moved by the async prefetch queues, and
        #: how many of those a space later actually demanded.  The
        #: difference is wasted speculative bandwidth — reported
        #: separately, never folded into the demand-pull count.
        self.pages_prefetched = 0
        self.prefetch_used = 0
        #: Prefetched frames whose content was superseded (the producer
        #: wrote a newer generation) before any space demanded them.
        self.prefetch_stale = 0
        #: PAGE_BATCH messages sent.
        self.batches = 0
        #: Logical protocol messages (each counted once however many
        #: links its route traverses).
        self.messages = 0
        #: Link traversals: a message over an H-hop route counts H.
        self.hops = 0
        #: Wire bytes and serialization cycles summed over every
        #: traversed link (an H-hop route moves its bytes H times).
        self.bytes_total = 0
        self.busy_total = 0
        #: Page payload bytes before/after wire compression, summed over
        #: traversed links like :attr:`bytes_total` (equal when
        #: compression is off).
        self.raw_total = 0
        self.comp_total = 0
        #: Encode/decode cycles the compression codec cost (charged as
        #: transfer latency, not link occupancy).
        self.codec_cycles = 0
        #: Logical message serial: incremented once per :meth:`_send`,
        #: the key (with the link) of every fault decision — serials
        #: are deterministic because the simulation is, so the loss
        #: schedule replays bit-identically.
        self.msg_serial = 0
        #: Fault/retransmission totals over every link: copies the loss
        #: schedule dropped / the link layer re-serialized /
        #: duplicated / reordered, and the sender-side timeout cycles
        #: space-stalling exchanges accumulated waiting on retransmits.
        self.drops = 0
        self.dropped_bytes = 0
        self.retx_msgs = 0
        self.retx_bytes = 0
        self.dups = 0
        self.reorders = 0
        self.retx_wait = 0
        #: node -> {frame serial: (generation, PrefetchExchange, frame)}
        #: — that node's async fetch queue of in-flight predicted
        #: frames, keyed by the generation current at issue time.
        self.inflight = {}
        #: Monotone counter naming the sink segments of undemanded
        #: exchanges (purged mid-run or flushed at end of run).
        self._sinks = 0
        #: Encoded wire size per frame content tag (content never
        #: changes under a tag, so sizes are computed once).
        self._wire_sizes = {}
        # -- telemetry window (snapshot/reset by take_window) ------------
        #: Monotone window serial: how many windows have been taken.
        self.window_index = 0
        #: node -> per-window counter dict (NODE_WINDOW_KEYS).
        self.win_nodes = {}
        #: unordered (a, b) node pair -> delivery-latency samples of the
        #: window's clean page exchanges (capped at ROUTE_SAMPLE_CAP).
        self.win_route_samples = {}
        #: directed (src, dst) node pair -> logical message bytes.
        self.win_pair_bytes = {}
        # Cumulative-counter marks of the running window's start, so the
        # fault-path deltas come free of extra hot-path work.
        self._win_drops0 = 0
        self._win_retx0 = 0
        self._win_wait0 = 0
        self._win_msgs0 = 0

    # -- bookkeeping -------------------------------------------------------

    def link(self, link):
        """The :class:`LinkStats` of one directed fabric link."""
        stats = self.links.get(link)
        if stats is None:
            cls = self.machine.topology.link_class(link).name
            stats = self.links[link] = LinkStats(cls)
        return stats

    def wire_size(self, frame):
        """Wire payload bytes of ``frame``: 4096 raw, or its encoded
        size (cached per content tag) under compression."""
        if not self.machine.compression:
            return PAGE_SIZE
        tag = frame.tag()
        size = self._wire_sizes.get(tag)
        if size is None:
            size = self._wire_sizes[tag] = compress.wire_size(frame.data)
        return size

    def queue_len(self, node):
        """In-flight prefetched frames of ``node``'s async fetch queue."""
        return len(self.inflight.get(node, ()))

    def prefetch_unused(self):
        """Prefetched pages no space ever demanded (stale included)."""
        return self.pages_prefetched - self.prefetch_used

    # -- telemetry windows -------------------------------------------------

    def _wnode(self, node):
        """The running window's counter dict of ``node``."""
        counters = self.win_nodes.get(node)
        if counters is None:
            counters = self.win_nodes[node] = dict.fromkeys(
                NODE_WINDOW_KEYS, 0)
        return counters

    def _note_route_sample(self, src, dst, usage, nmsgs, bill,
                           npages=1):
        """Record one delivery-latency sample for the ``src``/``dst``
        route: route transit plus the exchange's mean per-message
        serialization.  Two Karn-style filters keep the estimator
        honest about what the retransmit timer actually guards:
        exchanges that hit the fault path contribute nothing (a
        retransmitted exchange's latency says more about the timeout
        than about the route), and so do multi-page batch exchanges —
        a batch's drain time measures the sender's throughput, while
        the timer waits on the route's *turnaround* for one copy, which
        only minimal (single-data-message) exchanges exhibit."""
        if bill is not None and (bill.usage or bill.wait):
            return
        if npages > 1:
            return
        pair = (src, dst) if src <= dst else (dst, src)
        samples = self.win_route_samples.setdefault(pair, [])
        if len(samples) >= ROUTE_SAMPLE_CAP:
            return
        machine = self.machine
        transit = machine.topology.route_latency(machine.cost, src, dst)
        busy = sum(usage.values()) if usage else 0
        samples.append(transit + busy // max(1, nmsgs))

    def take_window(self):
        """Snapshot-and-reset the running telemetry window.

        Returns a :class:`TelemetryWindow` of everything observed since
        the previous call (or the start of the run) and opens the next
        window.  Before snapshotting, still-queued prefetched frames
        issued two or more windows ago are counted (once per exchange)
        as ``prefetch_aged`` — in-flight speculation the run is visibly
        not consuming, the shrink signal that needs no end-of-run
        flush.
        """
        index = self.window_index
        for node in sorted(self.inflight):
            queue = self.inflight[node]
            for _, exchange, _ in queue.values():
                if exchange.aged or exchange.window > index - 2:
                    continue
                exchange.aged = True
                queued = sum(1 for _, ex, _ in queue.values()
                             if ex is exchange)
                self._wnode(node)["prefetch_aged"] += queued
        window = TelemetryWindow(
            index, self.win_nodes, self.win_route_samples,
            self.win_pair_bytes,
            drops=self.drops - self._win_drops0,
            retx_msgs=self.retx_msgs - self._win_retx0,
            retx_wait=self.retx_wait - self._win_wait0,
            messages=self.messages - self._win_msgs0,
        )
        self.window_index = index + 1
        self.win_nodes = {}
        self.win_route_samples = {}
        self.win_pair_bytes = {}
        self._win_drops0 = self.drops
        self._win_retx0 = self.retx_msgs
        self._win_wait0 = self.retx_wait
        self._win_msgs0 = self.messages
        return window

    def _send(self, mtype, src, dst, nbytes, pages=0, usage=None,
              raw_payload=0, comp_payload=0, faults=None):
        """Serialize one message along the fabric route ``src -> dst``.

        Every traversed link accrues the message's bytes, pages, and
        its class-scaled serialization cycles; ``usage`` (when given)
        collects per-link busy cycles for the caller's trace edges.
        ``raw_payload``/``comp_payload`` carry the page payload's
        pre-/post-compression byte counts for the per-link compression
        ledger.  Only the *sending* side is accounted here; the
        exchange methods credit ``bytes_received`` from their own
        arithmetic (:meth:`_receive`), so the conservation invariant
        cross-checks the two computations per physical link — e.g. a
        batch split that loses pages shows up as a sent/received
        mismatch.

        Under ``Machine(loss=...)`` each link's copy consults the
        deterministic loss schedule, keyed on ``(link, msg_serial,
        attempt)``.  Dropped copies are retransmitted by the link layer
        after ``cost.retx_timeout`` (at most ``cost.retx_limit``
        retries); duplicated copies serialize and arrive twice (the
        receiver discards the extra, credited here); reordered copies
        are held back one hop latency.  ``faults`` (a
        :class:`~repro.cluster.faults.RetxBill`, for messages a space
        stalls on) collects the extra per-link occupancy and the
        timeout waits for the caller's ``kind="retx"`` trace edges;
        fire-and-forget messages pass None and fault silently.
        """
        machine = self.machine
        cost = machine.cost
        topo = machine.topology
        loss = machine.loss
        serial = self.msg_serial
        self.msg_serial += 1
        self.messages += 1
        self.win_pair_bytes[(src, dst)] = \
            self.win_pair_bytes.get((src, dst), 0) + nbytes
        # The retransmit timer is per logical message: the (possibly
        # control-tuned) timeout of the message's route, resolved once
        # so every hop copy of this message waits the same timer.
        timeout = machine.retx_timeout_for(src, dst) if loss else 0
        for link in topo.route(src, dst):
            cls = topo.link_class(link)
            busy = cost.link_message(nbytes, byte_factor=cls.byte_factor,
                                     tcp=machine.tcp_mode)
            stats = self.link(link)
            # Payload/page accounting is per logical traversal: the
            # content crosses the link once however many wire copies
            # the link layer needs.
            stats.pages += pages
            stats.raw_bytes += raw_payload
            stats.comp_bytes += comp_payload
            self.hops += 1
            self.raw_total += raw_payload
            self.comp_total += comp_payload
            if usage is not None:
                usage[link] = usage.get(link, 0) + busy
            attempt = 0
            while True:
                stats.messages += 1
                stats.bytes_sent += nbytes
                stats.busy_cycles += busy
                stats.by_type[mtype.name] = \
                    stats.by_type.get(mtype.name, 0) + 1
                self.bytes_total += nbytes
                self.busy_total += busy
                if attempt:
                    stats.retx_msgs += 1
                    stats.retx_bytes += nbytes
                    self.retx_msgs += 1
                    self.retx_bytes += nbytes
                    if faults is not None:
                        faults.usage[link] = faults.usage.get(link, 0) + busy
                outcome = loss.decide(link, serial, attempt) if loss \
                    else None
                if outcome is DROP:
                    stats.dropped_msgs += 1
                    stats.dropped_bytes += nbytes
                    self.drops += 1
                    self.dropped_bytes += nbytes
                    attempt += 1
                    if attempt > cost.retx_limit:
                        raise NetworkLossError(
                            f"{mtype.name} msg {serial} on link {link}: "
                            f"all {cost.retx_limit} retransmissions "
                            f"dropped")
                    if faults is not None:
                        faults.wait += timeout
                        self.retx_wait += timeout
                    continue
                if outcome is DUPLICATE:
                    # The link layer serialized a second copy; it
                    # arrives and the receiver discards it, so it is
                    # credited delivered right here (the exchange
                    # arithmetic only knows clean copies).
                    stats.messages += 1
                    stats.bytes_sent += nbytes
                    stats.bytes_received += nbytes
                    stats.busy_cycles += busy
                    stats.dup_msgs += 1
                    stats.dup_bytes += nbytes
                    stats.by_type[mtype.name] += 1
                    self.bytes_total += nbytes
                    self.busy_total += busy
                    self.dups += 1
                    if faults is not None:
                        faults.usage[link] = faults.usage.get(link, 0) + busy
                elif outcome is REORDER:
                    # Delivered behind a later copy: the receiver holds
                    # it one hop transit before handing it up.
                    stats.reorder_msgs += 1
                    self.reorders += 1
                    if faults is not None:
                        hold = int(cls.latency_factor * cost.net_latency)
                        faults.wait += hold
                        faults.usage.setdefault(link, 0)
                        self.retx_wait += hold
                break

    def _receive(self, src, dst, nbytes):
        """Credit ``nbytes`` delivered over every link of the
        ``src -> dst`` route (lossless fabric)."""
        for link in self.machine.topology.route(src, dst):
            self.link(link).bytes_received += nbytes

    def _stall_edges(self, closed, opened, usage, latency=0, kind=None):
        """One trace link edge per physical link the exchange occupied:
        the space resumes only after its transfer wins *each* link it
        crossed (shared uplinks make crossing flows contend) and
        transits the route latency."""
        trace = self.machine.trace
        topo = self.machine.topology
        for link, busy in usage.items():
            trace.link_edge(closed, opened, link=link, busy=busy,
                            latency=latency, cls=topo.link_class(link).name,
                            kind=kind)

    def _batch_sizes(self, npages):
        """Split ``npages`` into PAGE_BATCH loads (``cost.msg_batch``)."""
        cap = max(1, self.machine.cost.msg_batch)
        sizes = []
        while npages > 0:
            take = min(cap, npages)
            sizes.append(take)
            npages -= take
        return sizes

    def _ship(self, src, dst, frames, usage=None, faults=None):
        """Send ``frames`` as PAGE_BATCH messages over the route.

        Returns ``(payload, codec)``: total payload bytes serialized
        (compressed when the machine compresses; headers excluded) and
        the encode+decode cycles the codec cost.
        """
        cost = self.machine.cost
        sizes = [self.wire_size(frame) for frame in frames]
        index = 0
        for take in self._batch_sizes(len(frames)):
            payload = sum(sizes[index:index + take])
            self._send(MsgType.PAGE_BATCH, src, dst,
                       payload + take * cost.page_hdr,
                       pages=take, usage=usage,
                       raw_payload=take * PAGE_SIZE, comp_payload=payload,
                       faults=faults)
            self.batches += 1
            index += take
        payload = sum(sizes)
        codec = 0
        if self.machine.compression and frames:
            codec = int(len(frames) * PAGE_SIZE * cost.comp_encode_byte
                        + payload * cost.comp_decode_byte)
            self.codec_cycles += codec
        return payload, codec

    def _page_exchange(self, origin, node, frames, req_usage=None,
                       resp_usage=None, faults=None):
        """Wire accounting of one PAGE_REQ/PAGE_BATCH/ACK exchange
        pulling ``frames`` from ``origin`` to ``node`` — shared by the
        demand and prefetch paths so the two can never drift apart and
        break per-link conservation.  Returns ``(payload, codec)``.
        """
        cost = self.machine.cost
        npages = len(frames)
        self._send(MsgType.PAGE_REQ, node, origin,
                   cost.msg_ctrl + 8 * npages, usage=req_usage,
                   faults=faults)
        payload, codec = self._ship(origin, node, frames, usage=resp_usage,
                                    faults=faults)
        self._send(MsgType.ACK, node, origin, cost.msg_ctrl)
        self._receive(node, origin, 2 * cost.msg_ctrl + 8 * npages)
        self._receive(origin, node, payload + npages * cost.page_hdr)
        # One delivery-latency sample per clean exchange (telemetry for
        # the control plane's SRTT estimator).  The request and response
        # usage dicts may alias (the prefetch path passes one dict);
        # merge without double counting.
        usage = dict(req_usage or ())
        if resp_usage is not None and resp_usage is not req_usage:
            for link, busy in resp_usage.items():
                usage[link] = usage.get(link, 0) + busy
        nmsgs = 1 + len(self._batch_sizes(npages))
        self._note_route_sample(origin, node, usage, nmsgs, faults,
                                npages=npages)
        return payload, codec

    # -- protocol exchanges ------------------------------------------------

    def migrate(self, space, src, dst, shipped):
        """Move ``space`` from ``src`` to ``dst``, shipping the
        ``shipped`` delta frames with it.

        Sends MIGRATE + PAGE_BATCHes along the ``src -> dst`` route and
        an async ACK back, then cuts the space's trace segment across
        per-link edges so the space resumes on ``dst`` only after the
        transfer serializes on every traversed link (contending with
        other traffic crossing those links) and transits the route's
        total latency.
        """
        machine = self.machine
        cost = machine.cost
        self.migrations += 1
        self.pages_shipped += len(shipped)
        machine.pages_fetched += len(shipped)
        usage = {}
        bill = RetxBill() if machine.loss else None
        self._send(MsgType.MIGRATE, src, dst, cost.migrate_bytes, usage=usage,
                   faults=bill)
        payload, codec = self._ship(src, dst, shipped, usage=usage,
                                    faults=bill)
        self._send(MsgType.ACK, dst, src, cost.msg_ctrl)
        # Receiver-side accounting from the exchange's own arithmetic
        # (not the per-message sends): conservation cross-checks them.
        self._receive(src, dst, cost.migrate_bytes
                      + payload + len(shipped) * cost.page_hdr)
        self._receive(dst, src, cost.msg_ctrl)
        self._note_route_sample(src, dst, usage,
                                1 + len(self._batch_sizes(len(shipped))),
                                bill, npages=len(shipped))
        trace = machine.trace
        if trace.is_open(space.uid):
            closed, opened = trace.move_node(space.uid, dst)
            self._stall_edges(closed, opened, usage,
                              latency=machine.topology.route_latency(
                                  cost, src, dst) + codec,
                              kind="migrate")
            if bill:
                self._stall_edges(closed, opened, bill.usage,
                                  latency=bill.wait, kind="retx")

    def fetch(self, space, origin, node, frames):
        """Demand-fetch ``frames`` for ``space`` (resident on ``node``)
        from the node that produced their newest content.

        One PAGE_REQ out, batched PAGE_BATCHes back, async ACK.  The
        space stalls until the response serializes on every link of the
        ``origin -> node`` route and transits the route latency (plus
        codec time under compression); the request's (small)
        serialization contends on the forward route without adding
        transit time of its own — the exchange is modelled as a single
        pipelined round trip, as the seed's per-page charge was.
        """
        machine = self.machine
        npages = len(frames)
        self.pages_pulled += npages
        machine.pages_fetched += npages
        self._wnode(node)["pulled"] += npages
        req_usage = {}
        resp_usage = {}
        bill = RetxBill() if machine.loss else None
        _, codec = self._page_exchange(origin, node, frames,
                                       req_usage=req_usage,
                                       resp_usage=resp_usage,
                                       faults=bill)
        trace = machine.trace
        if trace.is_open(space.uid):
            closed, opened = trace.cut(space.uid, label="fetch")
            self._stall_edges(closed, opened, req_usage, kind="fetch")
            self._stall_edges(closed, opened, resp_usage,
                              latency=machine.topology.route_latency(
                                  machine.cost, origin, node) + codec,
                              kind="fetch")
            if bill:
                self._stall_edges(closed, opened, bill.usage,
                                  latency=bill.wait, kind="retx")

    def prefetch(self, space, origin, node, frames):
        """Asynchronously issue a PAGE_REQ/PAGE_BATCH exchange pulling
        predicted-next ``frames`` to ``node`` — nobody stalls.

        The exchange's wire traffic is accounted immediately (it is on
        the links now, whether or not anyone ends up wanting it) and
        queued on ``node``'s async fetch queue, anchored at ``space``'s
        most recently *closed* segment — callers issue prefetches right
        after a cut (a demand fetch's, or a migration's), so in the
        schedule the transfer's serialization starts at the issue point
        and overlaps whatever compute follows.  A later demand on any
        of the frames redeems the exchange (:meth:`redeem_exchanges`
        via :meth:`take_inflight`).
        """
        machine = self.machine
        npages = len(frames)
        if npages == 0 or origin == node:
            return
        self.pages_prefetched += npages
        machine.pages_fetched += npages
        self._wnode(node)["prefetch_issued"] += npages
        usage = {}
        bill = RetxBill() if machine.loss else None
        _, codec = self._page_exchange(origin, node, frames,
                                       req_usage=usage, resp_usage=usage,
                                       faults=bill)
        trace = machine.trace
        last = trace.last_closed(space.uid)
        anchor = last.id if last is not None else None
        latency = (machine.topology.route_latency(machine.cost, origin, node)
                   + codec)
        exchange = PrefetchExchange(
            anchor, usage, latency,
            [(frame, frame.generation) for frame in frames], origin,
            retx=bill)
        exchange.issuer_uid = space.uid
        exchange.issue_charged = trace.charged(space.uid)
        exchange.wire_time = (sum(usage.values()) + latency
                              + (bill.wait if bill else 0))
        exchange.window = self.window_index
        queue = self.inflight.setdefault(node, {})
        for frame in frames:
            queue[frame.serial] = (frame.generation, exchange, frame)

    def purge_superseded(self, node):
        """Drop ``node``'s queued entries whose frame was rewritten
        since they were issued; returns how many were dropped.

        The predictor runs this before refilling the queue: a queued
        entry at a superseded generation is already wasted wire — a
        future demand on it is a guaranteed stale miss — so it is
        dropped (and counted stale) now, freeing its queue slot for the
        fresh content the predictor is about to re-issue.  Hot pages
        rewritten faster than anyone reads them thus charge deep queues
        *every* rewrite — the recurring-waste signal the control
        plane's shrink rule keys on.  An exchange whose last queued
        frame is purged was never demanded, so its wire contention
        enters the trace through a sink segment here, exactly as
        :meth:`flush_inflight` does at end of run.
        """
        queue = self.inflight.get(node)
        if not queue:
            return 0
        doomed = [serial for serial, (held, _, frame) in queue.items()
                  if frame.generation != held]
        for serial in doomed:
            _, exchange, _ = queue.pop(serial)
            self.prefetch_stale += 1
            self._wnode(node)["prefetch_stale"] += 1
            if not any(entry[1] is exchange for entry in queue.values()):
                self._sink_exchange(exchange, node, "prefetch-stale")
        return len(doomed)

    def take_inflight(self, node, serial, generation):
        """Claim an in-flight prefetched frame for a demand on it.

        Returns the frame's :class:`PrefetchExchange` when ``node``'s
        queue holds ``serial`` at exactly ``generation``; a queue entry
        at a superseded generation is dropped (and counted stale) —
        its bytes were wasted and the caller must demand-fetch the
        fresh content.
        """
        queue = self.inflight.get(node)
        if not queue or serial not in queue:
            return None
        held_generation, exchange, _ = queue.pop(serial)
        if held_generation != generation:
            self.prefetch_stale += 1
            self._wnode(node)["prefetch_stale"] += 1
            return None
        self.prefetch_used += 1
        self._wnode(node)["prefetch_used"] += 1
        return exchange

    def redeem_exchanges(self, space, node, exchanges):
        """A space demanded in-flight prefetched frames: stall it until
        their exchanges arrive, and land every frame they carry.

        Cuts the space's segment once and draws each exchange's link
        edges from its issue *anchor* to the newly opened segment
        (kind ``"prefetch"``) — the scheduler then charges only the
        part of each transfer that outlived the compute between issue
        and demand; an early arrival stalls nothing.  All frames of a
        redeemed exchange enter the node's tag cache (the scatter/
        gather response arrived as a unit).
        """
        machine = self.machine
        trace = machine.trace
        cache = machine.node_cache[node]
        queue = self.inflight.get(node, {})
        counters = self._wnode(node)
        opened = None
        if trace.is_open(space.uid):
            _, opened = trace.cut(space.uid, label="prefetch-wait")
        for exchange in exchanges:
            # Late-redeem estimator: compare the exchange's modelled
            # wire time against the program clock that elapsed between
            # issue and demand (the demander's when it is the issuer,
            # the issuer's otherwise).  Wire time the compute did not
            # cover is the stall the schedule will charge — the signal
            # to run the queue deeper.
            clock_uid = (space.uid if space.uid == exchange.issuer_uid
                         else exchange.issuer_uid)
            elapsed = 0
            if clock_uid is not None:
                elapsed = max(0, trace.charged(clock_uid)
                              - exchange.issue_charged)
            late = exchange.wire_time - elapsed
            if late > 0:
                counters["late_redeems"] += 1
                counters["late_cycles"] += late
            for frame, generation in exchange.frames:
                # Only tags still queued land here: the tag that
                # triggered the redeem was claimed (and counted used)
                # by take_inflight.
                entry = queue.get(frame.serial)
                if entry is None or entry[1] is not exchange:
                    continue
                del queue[frame.serial]
                if frame.generation != generation:
                    # The producer superseded this sibling in flight:
                    # its arrived bytes carry a dead generation and
                    # must not enter the cache (a demand on the fresh
                    # tag will fetch it properly).
                    self.prefetch_stale += 1
                    counters["prefetch_stale"] += 1
                    continue
                self.prefetch_used += 1
                counters["prefetch_used"] += 1
                if cache.get(frame.serial, -1) < generation:
                    cache[frame.serial] = generation
            if opened is not None and exchange.anchor is not None:
                self._stall_edges(exchange.anchor, opened, exchange.usage,
                                  latency=exchange.latency, kind="prefetch")
                if exchange.retx:
                    self._stall_edges(exchange.anchor, opened,
                                      exchange.retx.usage,
                                      latency=exchange.retx.wait,
                                      kind="retx")

    def flush_inflight(self, kind="prefetch-unused"):
        """End-of-run accounting for exchanges nobody ever redeemed.

        Their wire bytes were counted at issue, but without a
        demanding segment their serialization never entered the trace —
        and on a shared link, speculative traffic delays everyone
        whether or not it is wanted.  For each still-queued exchange
        this emits its link edges from the issue anchor into a fresh
        zero-cycle *sink* segment (no space waits on it), so
        ``schedule()`` makes mispredicted prefetches contend with real
        transfers and reports their residue under ``kind``.  Called by
        the machine once the run drains; queues are cleared, so a
        second call is a no-op.
        """
        flushed = set()
        for node in sorted(self.inflight):
            queue = self.inflight[node]
            for _, exchange, _ in queue.values():
                if id(exchange) in flushed:
                    continue
                flushed.add(id(exchange))
                self._sink_exchange(exchange, node, kind)
            queue.clear()

    def _sink_exchange(self, exchange, node, kind):
        """Emit an undemanded exchange's link edges into a fresh
        zero-cycle sink segment at ``node`` (no space waits on it), so
        ``schedule()`` still makes its wire traffic contend with real
        transfers; the residue reports under ``kind``."""
        if exchange.anchor is None:
            return
        trace = self.machine.trace
        self._sinks += 1
        sink = trace.begin(f"~{kind}{self._sinks}@{node}",
                           node=node, label=kind)
        trace.end(sink.uid)
        self._stall_edges(exchange.anchor, sink, exchange.usage,
                          latency=exchange.latency, kind=kind)
        if exchange.retx:
            self._stall_edges(exchange.anchor, sink,
                              exchange.retx.usage,
                              latency=exchange.retx.wait,
                              kind="retx")

    # -- invariants --------------------------------------------------------

    def conservation_ok(self):
        """True iff every traversed link accounts for every byte it
        sent — delivered plus dropped — and never compressed a payload
        *up*.

        Sender bytes accumulate per wire copy as each serializes onto
        each link of its route (retransmissions and duplicates
        included); receiver bytes are credited per *exchange* from its
        page counts for the clean copy, plus inline for duplicate
        arrivals; dropped bytes are tallied as the loss schedule eats
        copies.  ``sent == received + dropped`` holds per physical link
        only when no protocol step loses, double-counts, or mis-routes
        traffic — on a lossless fabric it reduces to the original
        ``sent == received`` cross-check.
        """
        return all(s.bytes_sent == s.bytes_received + s.dropped_bytes
                   and s.comp_bytes <= s.raw_bytes
                   for s in self.links.values())

    def class_totals(self):
        """Per-class aggregate traffic: {class name -> dict of totals}.

        Sums messages, bytes, pages, and busy cycles over every link of
        each latency/bandwidth class — the rack-vs-core split an
        operator reads to spot oversubscription.
        """
        totals = {}
        for stats in self.links.values():
            agg = totals.setdefault(stats.cls, {
                "links": 0, "messages": 0, "bytes_sent": 0,
                "pages": 0, "raw_bytes": 0, "comp_bytes": 0,
                "busy_cycles": 0, "retx_msgs": 0, "retx_bytes": 0,
                "dropped_msgs": 0,
            })
            agg["links"] += 1
            agg["messages"] += stats.messages
            agg["bytes_sent"] += stats.bytes_sent
            agg["pages"] += stats.pages
            agg["raw_bytes"] += stats.raw_bytes
            agg["comp_bytes"] += stats.comp_bytes
            agg["busy_cycles"] += stats.busy_cycles
            agg["retx_msgs"] += stats.retx_msgs
            agg["retx_bytes"] += stats.retx_bytes
            agg["dropped_msgs"] += stats.dropped_msgs
        return totals

    def __repr__(self):
        retx = f" retx={self.retx_msgs}" if self.retx_msgs else ""
        return (f"<Transport links={len(self.links)} "
                f"msgs={self.messages} "
                f"pages={self.pages_shipped + self.pages_pulled}"
                f"+{self.pages_prefetched}pf "
                f"({self.prefetch_used} used){retx}>")
