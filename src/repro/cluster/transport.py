"""Message-level cluster transport (paper §3.3, rebuilt as a subsystem).

The seed charged cross-node work as scalars: a flat ``migrate_base +
net_msg`` per hop and one independent round trip per demand-fetched
page.  This module replaces that with an explicit protocol over per-link
channels; every cross-node kernel path (migrate, remote fork/join's
copy, demand fetch, merge) now routes its traffic through one
:class:`Transport` owned by the machine.

Message types
-------------

``MIGRATE``
    Carries a space's register file plus its address-space summary
    (``cost.migrate_bytes``), followed by the *delta* of its pages.
``PAGE_BATCH``
    A scatter/gather message moving up to ``cost.msg_batch`` pages
    (each ``PAGE_SIZE + cost.page_hdr`` bytes on the wire), instead of
    one message per page.
``PAGE_REQ``
    A demand-fetch request naming the wanted pages (``cost.msg_ctrl`` +
    8 bytes per page), sent to the node that produced their newest
    content.
``ACK``
    Completion notice on the reverse link.  ACKs are fire-and-forget:
    they occupy wire bytes/messages in the accounting but never delay
    the sending space.

Links and time
--------------

A link is the ordered pair ``(src_node, dst_node)``.  Each message's
serialization cost is ``cost.message(nbytes)`` (framing + bandwidth,
TCP surcharge when the machine runs in ``tcp_mode``).  Transfers that
stall a space are recorded as :meth:`~repro.timing.trace.Trace.link_edge`
trace edges, so the scheduler makes overlapping transfers on one link
contend while leaving the CPUs free — wire time is channel occupancy,
not compute.

Delta shipping
--------------

A migrating space's memory image moves with it.  In ``ship_mode="full"``
every mapped page crosses on every hop (the naive protocol, kept as the
ablation baseline).  In ``ship_mode="delta"`` the kernel enumerates
candidates from the dirty ledger via the space's per-node visit tokens —
only pages written since the space last resided on the target — and the
per-node tag cache then drops pages whose ``(serial, generation)``
content is already present there.  See
:meth:`repro.kernel.kernel.Kernel.migrate`.
"""

import enum

from repro.mem.page import PAGE_SIZE


class MsgType(enum.Enum):
    """Wire message types of the cluster protocol."""

    MIGRATE = "migrate"
    PAGE_REQ = "page_req"
    PAGE_BATCH = "page_batch"
    ACK = "ack"


class LinkStats:
    """Cumulative traffic accounting of one directed link."""

    __slots__ = ("messages", "bytes_sent", "bytes_received", "pages",
                 "busy_cycles", "by_type")

    def __init__(self):
        #: Messages serialized onto the link.
        self.messages = 0
        #: Wire bytes queued at the sending node.
        self.bytes_sent = 0
        #: Wire bytes handed to the receiving node, computed per
        #: exchange from its page counts (independently of the
        #: per-message :attr:`bytes_sent`); links are lossless, so any
        #: mismatch is a protocol accounting bug — the conservation
        #: invariant the transport tests pin down.
        self.bytes_received = 0
        #: Page payloads moved over the link.
        self.pages = 0
        #: Serialization cycles of *every* message on the link,
        #: including fire-and-forget ACKs.  The scheduler's
        #: ``ScheduleResult.link_busy`` counts only space-stalling
        #: transfers (those with a trace link edge), so it reads lower
        #: than this by the ACK/untraced share.
        self.busy_cycles = 0
        #: message-type name -> message count.
        self.by_type = {}

    def as_dict(self):
        """Plain-dict view (reporting)."""
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "pages": self.pages,
            "busy_cycles": self.busy_cycles,
            "by_type": dict(self.by_type),
        }


class Transport:
    """The simulated interconnect of one machine's cluster."""

    def __init__(self, machine):
        self.machine = machine
        #: (src_node, dst_node) -> LinkStats.
        self.links = {}
        #: Migration hops performed (one per MIGRATE message) —
        #: maintained incrementally so NetworkStats never rescans the
        #: trace.
        self.migrations = 0
        #: Pages moved eagerly with migrations (delta or full ship).
        self.pages_shipped = 0
        #: Pages moved by demand-fetch (PAGE_REQ/PAGE_BATCH exchanges).
        self.pages_pulled = 0
        #: PAGE_BATCH messages sent.
        self.batches = 0
        #: All messages, wire bytes, and serialization cycles, summed
        #: over every link.
        self.messages = 0
        self.bytes_total = 0
        self.busy_total = 0

    # -- bookkeeping -------------------------------------------------------

    def link(self, src, dst):
        """The :class:`LinkStats` of the directed link ``src -> dst``."""
        stats = self.links.get((src, dst))
        if stats is None:
            stats = self.links[(src, dst)] = LinkStats()
        return stats

    def _send(self, mtype, src, dst, nbytes, pages=0):
        """Serialize one message onto ``src -> dst``; returns its wire
        (busy) cycles.  Only the *sending* side is accounted here; the
        exchange methods credit ``bytes_received`` from their own
        arithmetic (:meth:`_receive`), so the conservation invariant
        cross-checks the two computations — e.g. a batch split that
        loses pages shows up as a sent/received mismatch."""
        cost = self.machine.cost
        busy = cost.message(nbytes, tcp=self.machine.tcp_mode)
        stats = self.link(src, dst)
        stats.messages += 1
        stats.bytes_sent += nbytes
        stats.pages += pages
        stats.busy_cycles += busy
        stats.by_type[mtype.name] = stats.by_type.get(mtype.name, 0) + 1
        self.messages += 1
        self.bytes_total += nbytes
        self.busy_total += busy
        return busy

    def _receive(self, src, dst, nbytes):
        """Credit ``nbytes`` delivered over ``src -> dst`` (lossless)."""
        self.link(src, dst).bytes_received += nbytes

    def _batch_sizes(self, npages):
        """Split ``npages`` into PAGE_BATCH loads (``cost.msg_batch``)."""
        cap = max(1, self.machine.cost.msg_batch)
        sizes = []
        while npages > 0:
            take = min(cap, npages)
            sizes.append(take)
            npages -= take
        return sizes

    def _ship(self, src, dst, npages):
        """Send ``npages`` as PAGE_BATCH messages; returns wire cycles."""
        cost = self.machine.cost
        busy = 0
        for take in self._batch_sizes(npages):
            busy += self._send(MsgType.PAGE_BATCH, src, dst,
                               take * (PAGE_SIZE + cost.page_hdr),
                               pages=take)
            self.batches += 1
        return busy

    # -- protocol exchanges ------------------------------------------------

    def migrate(self, space, src, dst, shipped):
        """Move ``space`` from ``src`` to ``dst``, shipping ``shipped``
        delta pages with it.

        Sends MIGRATE + PAGE_BATCHes on ``src -> dst`` and an async ACK
        back, then cuts the space's trace segment across a link edge so
        the space resumes on ``dst`` only after the transfer serializes
        (contending with other traffic on the link) and transits one
        ``net_latency``.
        """
        machine = self.machine
        cost = machine.cost
        self.migrations += 1
        self.pages_shipped += shipped
        machine.pages_fetched += shipped
        busy = self._send(MsgType.MIGRATE, src, dst, cost.migrate_bytes)
        busy += self._ship(src, dst, shipped)
        self._send(MsgType.ACK, dst, src, cost.msg_ctrl)
        # Receiver-side accounting from the exchange's own arithmetic
        # (not the per-message sends): conservation cross-checks them.
        self._receive(src, dst, cost.migrate_bytes
                      + shipped * (PAGE_SIZE + cost.page_hdr))
        self._receive(dst, src, cost.msg_ctrl)
        trace = machine.trace
        if trace.is_open(space.uid):
            closed, opened = trace.move_node(space.uid, dst)
            trace.link_edge(closed, opened, link=(src, dst), busy=busy,
                            latency=cost.net_latency)

    def fetch(self, space, origin, node, npages):
        """Demand-fetch ``npages`` for ``space`` (resident on ``node``)
        from the node that produced their newest content.

        One PAGE_REQ out, batched PAGE_BATCHes back, async ACK.  The
        space stalls until the response serializes on ``origin -> node``
        and transits one ``net_latency``; the request's (small)
        serialization contends on the forward link without adding
        transit time of its own — the exchange is modelled as a single
        pipelined round trip, as the seed's per-page charge was.
        """
        machine = self.machine
        cost = machine.cost
        self.pages_pulled += npages
        machine.pages_fetched += npages
        req_busy = self._send(MsgType.PAGE_REQ, node, origin,
                              cost.msg_ctrl + 8 * npages)
        resp_busy = self._ship(origin, node, npages)
        self._send(MsgType.ACK, node, origin, cost.msg_ctrl)
        self._receive(node, origin, 2 * cost.msg_ctrl + 8 * npages)
        self._receive(origin, node, npages * (PAGE_SIZE + cost.page_hdr))
        trace = machine.trace
        if trace.is_open(space.uid):
            closed, opened = trace.cut(space.uid, label="fetch")
            trace.link_edge(closed, opened, link=(node, origin),
                            busy=req_busy)
            trace.link_edge(closed, opened, link=(origin, node),
                            busy=resp_busy, latency=cost.net_latency)

    # -- invariants --------------------------------------------------------

    def conservation_ok(self):
        """True iff every link delivered exactly the bytes it sent.

        Sender bytes accumulate per message as each serializes; receiver
        bytes are credited per *exchange* from its page counts.  The two
        computations agree only when no protocol step loses, duplicates,
        or mis-sizes traffic (links themselves are lossless).
        """
        return all(s.bytes_sent == s.bytes_received
                   for s in self.links.values())

    def __repr__(self):
        return (f"<Transport links={len(self.links)} "
                f"msgs={self.messages} pages="
                f"{self.pages_shipped + self.pages_pulled}>")
