"""High-level cluster runner."""

from repro.cluster.network import NetworkStats
from repro.cluster.spec import ClusterSpec
from repro.kernel.machine import Machine


class ClusterResult:
    """Outcome of a :meth:`Cluster.run`."""

    def __init__(self, machine, result, nnodes, cpus_per_node):
        self.machine = machine
        self.result = result
        self.nnodes = nnodes
        if machine.cpus_per_node != cpus_per_node:
            raise AssertionError(
                f"cpus_per_node disagreement: machine ran under "
                f"{machine.cpus_per_node}, result asked to schedule on "
                f"{cpus_per_node} — configure it on the ClusterSpec")
        self._cpus = {node: cpus_per_node for node in range(nnodes)}
        #: The root program's return value.
        self.value = result.r0
        #: Network traffic accounting.
        self.network = NetworkStats(machine)

    def makespan(self):
        """Virtual completion time with the cluster's CPU configuration."""
        return self.result.makespan(cpus_per_node=self._cpus)

    def __repr__(self):
        return (
            f"<ClusterResult nodes={self.nnodes} "
            f"makespan={self.makespan():,} value={self.value!r}>"
        )


class Cluster:
    """A homogeneous cluster of ``nnodes`` machines (paper §3.3, §6.3).

    >>> cluster = Cluster(nnodes=8)                     # doctest: +SKIP
    >>> result = cluster.run(my_distributed_program)
    >>> result.makespan(), result.network.summary()
    """

    def __init__(self, nnodes, spec=None, **knobs):
        self.nnodes = nnodes
        #: The validated :class:`~repro.cluster.spec.ClusterSpec` every
        #: machine this cluster builds will run under.  Legacy keyword
        #: knobs (``ship_mode=...``, ``loss=...``, ...) are accepted via
        #: the shared ``ClusterSpec.from_kwargs`` shim and produce
        #: bit-identical machines to the equivalent ``spec=``.
        self.spec = ClusterSpec.from_kwargs(spec=spec, **knobs)

    @property
    def cpus_per_node(self):
        return self.spec.cpus_per_node

    def run(self, entry, args=()):
        """Run ``entry(g, *args)`` as the root program; returns a
        :class:`ClusterResult`.  Raises if the program faults."""
        machine = Machine(nnodes=self.nnodes, spec=self.spec)
        with machine:
            result = machine.run(entry, args)
            if result.trap.name not in ("EXIT", "RET"):
                raise RuntimeError(
                    f"cluster program faulted: {result.trap.name} "
                    f"{result.trap_info}"
                )
            return ClusterResult(machine, result, self.nnodes,
                                 self.spec.cpus_per_node)


def sweep_nodes(entry_builder, node_counts, spec=None, check_value=True,
                **knobs):
    """Run ``entry_builder(nnodes)``'s program across cluster sizes.

    Returns ``{nnodes: (speedup_vs_first, ClusterResult)}``.  With
    ``check_value`` (default) every size must compute the same value —
    distribution is semantically transparent (§3.3), and a ``loss``
    schedule must never break it (faults are cost-only).  One
    :class:`~repro.cluster.spec.ClusterSpec` (given as ``spec=`` or
    assembled from legacy keyword knobs) applies to *every* size, so
    sweeps compare like with like; pass ``topology`` as a preset string
    or an ``nnodes -> Topology`` builder, since each size gets its own
    fabric.
    """
    spec = ClusterSpec.from_kwargs(spec=spec, **knobs)
    series = {}
    base_time = None
    base_value = None
    for nnodes in node_counts:
        cluster = Cluster(nnodes, spec=spec)
        result = cluster.run(entry_builder(nnodes))
        time = result.makespan()
        if base_time is None:
            base_time, base_value = time, result.value
        if check_value and result.value != base_value:
            raise AssertionError(
                f"value drift at {nnodes} nodes: "
                f"{result.value!r} != {base_value!r}"
            )
        series[nnodes] = (base_time / time if time else 1.0, result)
    return series
