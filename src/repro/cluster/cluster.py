"""High-level cluster runner."""

from repro.cluster.network import NetworkStats
from repro.kernel.machine import Machine


class ClusterResult:
    """Outcome of a :meth:`Cluster.run`."""

    def __init__(self, machine, result, nnodes, cpus_per_node):
        self.machine = machine
        self.result = result
        self.nnodes = nnodes
        self._cpus = {node: cpus_per_node for node in range(nnodes)}
        #: The root program's return value.
        self.value = result.r0
        #: Network traffic accounting.
        self.network = NetworkStats(machine)

    def makespan(self):
        """Virtual completion time with the cluster's CPU configuration."""
        return self.result.makespan(cpus_per_node=self._cpus)

    def __repr__(self):
        return (
            f"<ClusterResult nodes={self.nnodes} "
            f"makespan={self.makespan():,} value={self.value!r}>"
        )


class Cluster:
    """A homogeneous cluster of ``nnodes`` machines (paper §3.3, §6.3).

    >>> cluster = Cluster(nnodes=8)                     # doctest: +SKIP
    >>> result = cluster.run(my_distributed_program)
    >>> result.makespan(), result.network.summary()
    """

    def __init__(self, nnodes, cpus_per_node=1, cost=None, tcp_mode=False,
                 dirty_tracking=True, ship_mode="delta", topology=None,
                 placement=None, prefetch_depth=None, compression=False,
                 loss=None, control=None, shard_workers=0):
        self.nnodes = nnodes
        self.cpus_per_node = cpus_per_node
        self.cost = cost
        self.tcp_mode = tcp_mode
        #: Generation-tagged dirty tracking: the per-node read-only page
        #: cache keys on ``(serial, generation)`` content tags, so an
        #: unchanged frame revisiting a node never crosses the wire twice.
        self.dirty_tracking = dirty_tracking
        #: Migration shipping policy ("delta" or "full"); see
        #: :class:`repro.cluster.transport.Transport`.
        self.ship_mode = ship_mode
        #: Fabric the transport routes over ("flat", "two_tier:<rack>",
        #: "fat_tree:<rack>", a Topology, or a builder) and the policy
        #: placing program node numbers onto it ("round_robin",
        #: "locality", "identity", or a PlacementPolicy).
        self.topology = topology
        self.placement = placement
        #: Async prefetch-queue depth per node (None -> cost model's
        #: knob; 0 = stop-and-wait) and PAGE_BATCH wire compression.
        self.prefetch_depth = prefetch_depth
        self.compression = compression
        #: Deterministic fault schedule (None = lossless; a drop rate,
        #: LossSchedule kwargs dict, or LossSchedule instance) — see
        #: :mod:`repro.cluster.faults`.  Retransmission timing comes
        #: from the cost model (``retx_timeout``/``retx_limit``).
        self.loss = loss
        #: Deterministic adaptive control plane (None = static knobs;
        #: "adaptive", a Controller kwargs dict, or a Controller) — see
        #: :mod:`repro.cluster.control`.
        self.control = control
        #: Sharded host execution: fork up to this many host processes
        #: at eligible rendezvous barriers and run sibling subtrees
        #: concurrently, bit-identically (repro.kernel.shard).  0 or 1
        #: keeps the serial engine.
        self.shard_workers = shard_workers

    def run(self, entry, args=()):
        """Run ``entry(g, *args)`` as the root program; returns a
        :class:`ClusterResult`.  Raises if the program faults."""
        machine = Machine(
            cost=self.cost, nnodes=self.nnodes, tcp_mode=self.tcp_mode,
            dirty_tracking=self.dirty_tracking, ship_mode=self.ship_mode,
            topology=self.topology, placement=self.placement,
            prefetch_depth=self.prefetch_depth, compression=self.compression,
            loss=self.loss, control=self.control,
            shard_workers=self.shard_workers,
        )
        with machine:
            result = machine.run(entry, args)
            if result.trap.name not in ("EXIT", "RET"):
                raise RuntimeError(
                    f"cluster program faulted: {result.trap.name} "
                    f"{result.trap_info}"
                )
            return ClusterResult(machine, result, self.nnodes,
                                 self.cpus_per_node)


def sweep_nodes(entry_builder, node_counts, cpus_per_node=1, cost=None,
                check_value=True, tcp_mode=False, dirty_tracking=True,
                ship_mode="delta", topology=None, placement=None,
                prefetch_depth=None, compression=False, loss=None,
                control=None, shard_workers=0):
    """Run ``entry_builder(nnodes)``'s program across cluster sizes.

    Returns ``{nnodes: (speedup_vs_first, ClusterResult)}``.  With
    ``check_value`` (default) every size must compute the same value —
    distribution is semantically transparent (§3.3), and a ``loss``
    schedule must never break it (faults are cost-only).  The machine
    configuration knobs (``tcp_mode``, ``dirty_tracking``,
    ``ship_mode``, ``topology``, ``placement``, ``prefetch_depth``,
    ``compression``, ``loss``, ``shard_workers``) apply to *every*
    size, so sweeps compare like with like; pass ``topology`` as a
    preset string or an ``nnodes -> Topology`` builder, since each size
    gets its own fabric.  ``shard_workers`` bounds the forked host
    workers running sibling subtrees in parallel per size — host-side
    only, bit-identical results (DESIGN §7).
    """
    series = {}
    base_time = None
    base_value = None
    for nnodes in node_counts:
        cluster = Cluster(nnodes, cpus_per_node, cost, tcp_mode=tcp_mode,
                          dirty_tracking=dirty_tracking, ship_mode=ship_mode,
                          topology=topology, placement=placement,
                          prefetch_depth=prefetch_depth,
                          compression=compression, loss=loss,
                          control=control, shard_workers=shard_workers)
        result = cluster.run(entry_builder(nnodes))
        time = result.makespan()
        if base_time is None:
            base_time, base_value = time, result.value
        if check_value and result.value != base_value:
            raise AssertionError(
                f"value drift at {nnodes} nodes: "
                f"{result.value!r} != {base_value!r}"
            )
        series[nnodes] = (base_time / time if time else 1.0, result)
    return series
