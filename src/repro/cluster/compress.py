"""Page-granularity wire compression: zero suppression + zero-run RLE.

Demand-paged and migrated frames dominate cluster wire bytes, and most
of them are nowhere near random: program images are sparse, freshly
zero-filled heaps are literally zero, and numeric workloads ship arrays
of small integers whose upper bytes are zero (a little-endian ``int32``
below 256 is one payload byte followed by three zero bytes).  Because
execution is deterministic, compressing a frame can never perturb
results — the payload is bit-identical on both sides regardless of how
it crossed the wire — so the transport is free to trade encode/decode
cycles for bandwidth.

Two schemes, chosen per frame:

``SCHEME_ZERO``
    The frame is entirely zero: nothing crosses the wire beyond the
    batch's per-page header (zero-page suppression).
``SCHEME_RLE``
    Zero-run run-length coding.  The stream is a sequence of tokens,
    each led by one control byte ``C``: ``C < 0x80`` introduces a
    literal run of ``C + 1`` bytes (which follow); ``C >= 0x80`` is a
    zero run of ``C - 0x7F`` bytes (1..128, longer runs repeat tokens).
    Zero runs shorter than :data:`MIN_ZERO_RUN` are folded into the
    surrounding literal — a 2-byte run costs the same either way and a
    token split would only add control bytes.
``SCHEME_RAW``
    Chosen whenever RLE fails to beat the raw frame (high-entropy
    pages): the original 4096 bytes ship unchanged.  Compression is
    therefore *never* a pessimization in wire bytes — the conservation
    invariant ``compressed <= raw`` holds per page, per link, always.

The codec is a real round-tripping implementation, not an estimate:
:func:`encode_page` / :func:`decode_page` are property-tested on
random, zero, and sparse frames, and the transport charges wire bytes
from the actual encoded length (cached per frame content tag).
"""

import re

from repro.mem.page import PAGE_SIZE

#: Scheme tags carried in the PAGE_BATCH per-page header.
SCHEME_ZERO = "zero"
SCHEME_RLE = "rle"
SCHEME_RAW = "raw"

#: Shortest zero run encoded as a run token.  At 3 the token (1 byte)
#: beats keeping the zeros in a literal (3 bytes, possibly splitting a
#: control byte); below 3 it never can.
MIN_ZERO_RUN = 3

#: Longest run/literal one control byte can describe.
_MAX_LIT = 0x80        # C in 0x00..0x7F -> 1..128 literal bytes
_RUN_SPAN = 0x80       # C in 0x80..0xFF -> 1..128 zero bytes

_ZERO_PAGE = bytes(PAGE_SIZE)
_ZERO_RUN_RE = re.compile(rb"\x00{%d,}" % MIN_ZERO_RUN)


def _emit_literal(out, chunk):
    """Append literal tokens covering ``chunk`` (may exceed 128 bytes)."""
    for start in range(0, len(chunk), _MAX_LIT):
        piece = chunk[start:start + _MAX_LIT]
        out.append(bytes((len(piece) - 1,)))
        out.append(bytes(piece))


def _emit_zero_run(out, length):
    """Append zero-run tokens covering ``length`` zero bytes."""
    while length > 0:
        take = min(length, _RUN_SPAN)
        out.append(bytes((0x80 + take - 1,)))
        length -= take


def encode_page(data):
    """Encode one 4 KiB frame; returns ``(scheme, payload_bytes)``.

    The scheme is chosen to minimize wire bytes: all-zero frames ship
    nothing, RLE only when it actually beats raw — so
    ``len(payload) <= PAGE_SIZE`` unconditionally.
    """
    data = bytes(data)
    if len(data) != PAGE_SIZE:
        raise ValueError(f"page payload must be {PAGE_SIZE} bytes")
    if data == _ZERO_PAGE:
        return SCHEME_ZERO, b""
    out = []
    pos = 0
    for match in _ZERO_RUN_RE.finditer(data):
        if match.start() > pos:
            _emit_literal(out, data[pos:match.start()])
        _emit_zero_run(out, match.end() - match.start())
        pos = match.end()
    if pos < PAGE_SIZE:
        _emit_literal(out, data[pos:])
    payload = b"".join(out)
    if len(payload) >= PAGE_SIZE:
        return SCHEME_RAW, data
    return SCHEME_RLE, payload


def decode_page(scheme, payload):
    """Invert :func:`encode_page`; returns the original 4096 bytes."""
    if scheme == SCHEME_ZERO:
        if payload:
            raise ValueError("zero-page payload must be empty")
        return _ZERO_PAGE
    if scheme == SCHEME_RAW:
        if len(payload) != PAGE_SIZE:
            raise ValueError("raw payload must be one full page")
        return bytes(payload)
    if scheme != SCHEME_RLE:
        raise ValueError(f"unknown scheme {scheme!r}")
    out = bytearray()
    pos = 0
    n = len(payload)
    while pos < n:
        control = payload[pos]
        pos += 1
        if control < 0x80:
            take = control + 1
            if pos + take > n:
                raise ValueError("truncated literal token")
            out += payload[pos:pos + take]
            pos += take
        else:
            out += bytes(control - 0x7F)
    if len(out) != PAGE_SIZE:
        raise ValueError(
            f"decoded {len(out)} bytes, expected {PAGE_SIZE}")
    return bytes(out)


def wire_size(data):
    """Wire payload bytes of one frame under compression.

    ``wire_size(d) == len(encode_page(d)[1])``, and is bounded by
    ``PAGE_SIZE`` because raw is always a candidate scheme.
    """
    return len(encode_page(data)[1])
