"""Real localhost wire for the cluster protocol (``backend="real"``).

The simulated transport exchanges typed messages (MIGRATE / PAGE_REQ /
PAGE_BATCH / ACK) over modeled links.  This module gives the same
message vocabulary a *real* serialization: length-prefixed binary
frames over localhost TCP sockets, one :class:`Channel` per
coordinator<->worker link, with per-direction frame/byte/page ledgers
mirroring the simulated conservation discipline (every byte sent is
received or accounted lost — here, any shortfall is a typed error).

Frame layout (network byte order)::

    magic "DET\\x01" | version u8 | msg-type u8 | src i32 | dst i32
    | payload-length u32 | payload

Payload encodings per message type:

* ``MIGRATE`` / ``ACK`` — a pickled ``dict`` (control messages; the
  hand-back MIGRATE carries the shard delta payload).
* ``PAGE_REQ`` — ``u32 count`` then ``count`` u64 frame serials (the
  simulated cost model prices PAGE_REQ at 8 bytes per requested page,
  matching this encoding exactly).
* ``PAGE_BATCH`` — ``u32 count`` then per page ``u64 serial | u64
  generation | u8 scheme | u32 size | size bytes``, where ``scheme``
  selects the shared compression codec (zero / RLE / raw — the same
  ``repro.cluster.compress`` bytes the simulation accounts).

Every decode failure — bad magic, unknown version or type, truncated
frame, oversized length field, corrupt pickle, inconsistent page
sizes, socket timeout or close mid-frame — raises
:class:`~repro.common.errors.WireError`; nothing in this module hangs
past the channel deadline or leaks a raw ``struct``/``pickle``/
``socket`` exception.
"""

import pickle
import socket
import struct

from repro.cluster.compress import SCHEME_RAW, SCHEME_RLE, SCHEME_ZERO
from repro.cluster.transport import MsgType
from repro.common.errors import WireError
from repro.mem.page import PAGE_SIZE

#: Endpoint id of the coordinating (parent) process on the real wire;
#: workers are addressed by their non-negative worker index.
COORD = -1

#: Default per-channel deadline (seconds).  Generous because a worker's
#: hand-back only starts after its whole subtree ran; worker *death*
#: closes the socket and surfaces immediately regardless.
DEFAULT_DEADLINE = 60.0

MAGIC = b"DET\x01"
VERSION = 1

#: Hard ceiling on one frame's payload: a corrupted length field must
#: fail as a typed error, not a multi-gigabyte allocation.
MAX_PAYLOAD = 64 << 20

_HEADER = struct.Struct("!4sBBiiI")
_COUNT = struct.Struct("!I")
_SERIAL = struct.Struct("!Q")
_PAGE_HDR = struct.Struct("!QQBI")   # serial, generation, scheme, size

_TYPE_CODES = {mtype: code for code, mtype in enumerate(MsgType)}
_CODE_TYPES = dict(enumerate(MsgType))
_SCHEME_CODES = {SCHEME_ZERO: 0, SCHEME_RLE: 1, SCHEME_RAW: 2}
_CODE_SCHEMES = {code: scheme for scheme, code in _SCHEME_CODES.items()}


def localhost_available():
    """True when a localhost TCP socket can be bound (the real backend
    and its tests skip gracefully where the sandbox forbids it)."""
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
    except OSError:
        return False
    return True


# -- payload codecs ---------------------------------------------------------

def encode_payload(mtype, obj):
    """Serialize one message's payload per the frame layout above."""
    if mtype in (MsgType.MIGRATE, MsgType.ACK):
        if not isinstance(obj, dict):
            raise WireError(f"{mtype.name} payload must be a dict, "
                            f"got {type(obj).__name__}")
        return pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
    if mtype is MsgType.PAGE_REQ:
        parts = [_COUNT.pack(len(obj))]
        parts.extend(_SERIAL.pack(serial) for serial in obj)
        return b"".join(parts)
    if mtype is MsgType.PAGE_BATCH:
        parts = [_COUNT.pack(len(obj))]
        for serial, generation, scheme, payload in obj:
            code = _SCHEME_CODES.get(scheme)
            if code is None:
                raise WireError(f"unknown page scheme {scheme!r}")
            if len(payload) > PAGE_SIZE:
                raise WireError(f"page payload of {len(payload)} bytes "
                                f"exceeds PAGE_SIZE")
            parts.append(_PAGE_HDR.pack(serial, generation, code,
                                        len(payload)))
            parts.append(bytes(payload))
        return b"".join(parts)
    raise WireError(f"unencodable message type {mtype!r}")


def decode_payload(mtype, data):
    """Inverse of :func:`encode_payload`; any malformation raises
    :class:`WireError`."""
    if mtype in (MsgType.MIGRATE, MsgType.ACK):
        try:
            obj = pickle.loads(data)
        except Exception as exc:
            raise WireError(
                f"corrupt {mtype.name} payload: {exc}") from exc
        if not isinstance(obj, dict):
            raise WireError(f"{mtype.name} payload decoded to "
                            f"{type(obj).__name__}, expected dict")
        return obj
    if mtype is MsgType.PAGE_REQ:
        if len(data) < _COUNT.size:
            raise WireError("truncated PAGE_REQ payload")
        (count,) = _COUNT.unpack_from(data)
        if len(data) != _COUNT.size + count * _SERIAL.size:
            raise WireError(
                f"PAGE_REQ length {len(data)} inconsistent with "
                f"count {count}")
        return [_SERIAL.unpack_from(data, _COUNT.size + i * _SERIAL.size)[0]
                for i in range(count)]
    if mtype is MsgType.PAGE_BATCH:
        if len(data) < _COUNT.size:
            raise WireError("truncated PAGE_BATCH payload")
        (count,) = _COUNT.unpack_from(data)
        pages = []
        pos = _COUNT.size
        for _ in range(count):
            if len(data) - pos < _PAGE_HDR.size:
                raise WireError("truncated PAGE_BATCH page header")
            serial, generation, code, size = _PAGE_HDR.unpack_from(data, pos)
            pos += _PAGE_HDR.size
            scheme = _CODE_SCHEMES.get(code)
            if scheme is None:
                raise WireError(f"unknown page scheme code {code}")
            if size > PAGE_SIZE or len(data) - pos < size:
                raise WireError(f"PAGE_BATCH page size {size} overruns "
                                f"the frame")
            pages.append((serial, generation, scheme, data[pos:pos + size]))
            pos += size
        if pos != len(data):
            raise WireError(f"{len(data) - pos} trailing bytes after "
                            f"PAGE_BATCH pages")
        return pages
    raise WireError(f"undecodable message type {mtype!r}")


def encode_frame(mtype, src, dst, obj):
    """One complete wire frame (header + payload) as bytes."""
    payload = encode_payload(mtype, obj)
    if len(payload) > MAX_PAYLOAD:
        raise WireError(f"frame payload of {len(payload)} bytes exceeds "
                        f"MAX_PAYLOAD")
    return _HEADER.pack(MAGIC, VERSION, _TYPE_CODES[mtype], src, dst,
                        len(payload)) + payload


# -- channels ---------------------------------------------------------------

def _zeroed():
    return {"frames": 0, "bytes": 0, "pages": 0}


class Channel:
    """One socket carrying framed protocol messages, with per-directed-
    link ledgers (``(src, dst) -> {frames, bytes, pages}``) on both the
    send and receive side — the real-wire analogue of the simulated
    per-link conservation accounting."""

    def __init__(self, sock, deadline=DEFAULT_DEADLINE):
        sock.settimeout(deadline)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass            # AF_UNIX socketpairs etc. have no Nagle
        self.sock = sock
        self.deadline = deadline
        self.sent = {}
        self.received = {}

    @staticmethod
    def _note(table, src, dst, nbytes, pages):
        entry = table.setdefault((src, dst), _zeroed())
        entry["frames"] += 1
        entry["bytes"] += nbytes
        entry["pages"] += pages

    def send(self, mtype, src, dst, obj):
        frame = encode_frame(mtype, src, dst, obj)
        try:
            self.sock.sendall(frame)
        except socket.timeout:
            raise WireError(
                f"send of {mtype.name} timed out after "
                f"{self.deadline}s") from None
        except OSError as exc:
            raise WireError(f"send of {mtype.name} failed: {exc}") from exc
        pages = len(obj) if mtype is MsgType.PAGE_BATCH else 0
        self._note(self.sent, src, dst, len(frame), pages)

    def recv(self, expect=None):
        """Receive one frame as ``(mtype, src, dst, payload)``; with
        ``expect`` set, any other message type is a protocol error."""
        head = self._exact(_HEADER.size)
        magic, version, code, src, dst, length = _HEADER.unpack(head)
        if magic != MAGIC:
            raise WireError(f"bad frame magic {magic!r}")
        if version != VERSION:
            raise WireError(f"unsupported wire version {version}")
        mtype = _CODE_TYPES.get(code)
        if mtype is None:
            raise WireError(f"unknown message type code {code}")
        if length > MAX_PAYLOAD:
            raise WireError(f"frame length {length} exceeds MAX_PAYLOAD")
        obj = decode_payload(mtype, self._exact(length) if length else b"")
        pages = len(obj) if mtype is MsgType.PAGE_BATCH else 0
        self._note(self.received, src, dst, _HEADER.size + length, pages)
        if expect is not None and mtype is not expect:
            raise WireError(f"expected {expect.name}, got {mtype.name}")
        return mtype, src, dst, obj

    def _exact(self, n):
        chunks = []
        got = 0
        while got < n:
            try:
                chunk = self.sock.recv(min(n - got, 1 << 20))
            except socket.timeout:
                raise WireError(
                    f"receive timed out after {self.deadline}s "
                    f"({got}/{n} bytes)") from None
            except OSError as exc:
                raise WireError(f"receive failed: {exc}") from exc
            if not chunk:
                raise WireError(
                    f"connection closed mid-frame ({got}/{n} bytes)")
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def ledger(self):
        """Snapshot of both directions' counters (pickle-friendly)."""
        return {
            "sent": {link: dict(entry) for link, entry in self.sent.items()},
            "received": {link: dict(entry)
                         for link, entry in self.received.items()},
        }

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


# -- endpoint helpers -------------------------------------------------------

def listen(deadline=DEFAULT_DEADLINE, backlog=16):
    """A listening localhost socket on an ephemeral port."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.settimeout(deadline)
        sock.bind(("127.0.0.1", 0))
        sock.listen(backlog)
    except OSError as exc:
        sock.close()
        raise WireError(f"cannot listen on localhost: {exc}") from exc
    return sock


def accept(listener, deadline=DEFAULT_DEADLINE):
    """Accept one connection as a :class:`Channel` (timeout -> WireError)."""
    try:
        sock, _addr = listener.accept()
    except socket.timeout:
        raise WireError(f"accept timed out after {deadline}s "
                        f"(worker never connected)") from None
    except OSError as exc:
        raise WireError(f"accept failed: {exc}") from exc
    return Channel(sock, deadline)


def connect(addr, deadline=DEFAULT_DEADLINE):
    """Connect to the coordinator as a :class:`Channel`."""
    try:
        sock = socket.create_connection(addr, timeout=deadline)
    except OSError as exc:
        raise WireError(f"connect to {addr} failed: {exc}") from exc
    return Channel(sock, deadline)
