"""Placement policies: mapping program node numbers onto fabric nodes.

Programs address cluster nodes through the node field of child
references (``child_ref(local, node=...)``).  Those numbers are
*virtual*: the machine maps each one to a physical node the first time
it is used, and the mapping is sticky for the rest of the run (spaces
keep meeting where they expect to).  The mapping is a bijection over
``range(nnodes)``, so placement can never change *what* a program
computes — only where its traffic lands on the fabric.

Two policies, plus the trivial identity:

``round_robin``
    Stripe virtual nodes across racks (node 0 in rack 0, node 1 in
    rack 1, ...) — the classic load-spreading default.  On the flat
    fabric (one rack) this degenerates to the identity, which keeps
    pre-topology behavior bit-identical.
``locality``
    Pack by communication affinity: contiguous virtual node blocks
    share a rack (the tree workloads split contiguous node ranges, so
    neighbors in virtual node space are exactly the pairs that talk).
    When the natural rack is full the spill rack is chosen by live
    per-link transport stats — the rack whose core uplinks carry the
    least occupancy so far wins.
"""


class PlacementPolicy:
    """Identity placement: virtual node ``v`` runs on physical node ``v``."""

    name = "identity"

    def assign(self, machine, caller, vnode):
        """Choose the physical node for first-used virtual ``vnode``.

        ``caller`` is the space whose syscall forced the assignment (or
        None for the root); policies may read any machine state —
        topology, current ``node_map``, live transport counters — but
        must return an unused physical node in ``range(machine.nnodes)``.
        """
        return vnode


class RoundRobinPlacement(PlacementPolicy):
    """Stripe consecutive virtual nodes across racks."""

    name = "round_robin"

    def assign(self, machine, caller, vnode):
        racks = machine.topology.racks()
        order = []
        for slot in range(max(len(rack) for rack in racks)):
            for rack in racks:
                if slot < len(rack):
                    order.append(rack[slot])
        return order[vnode]


class LocalityAwarePlacement(PlacementPolicy):
    """Pack contiguous virtual node blocks into racks; spill by load.

    The affinity signal is the virtual node number itself: the cluster
    workloads fork over contiguous node ranges, so virtual neighbors
    communicate.  The natural home of ``vnode`` is the rack that holds
    physical node ``vnode`` (block packing).  If that rack has no free
    slot, the spill rack is picked from the transport's live per-link
    stats: least core-uplink occupancy first, then most free slots,
    then lowest rack index — all deterministic.
    """

    name = "locality"

    def assign(self, machine, caller, vnode):
        topo = machine.topology
        used = set(machine.node_map.values())
        racks = topo.racks()
        home = racks[topo.rack_of(vnode)]
        for node in home:
            if node not in used:
                return node
        links = machine.transport.links
        best = None
        for ridx, rack in enumerate(racks):
            free = [n for n in rack if n not in used]
            if not free:
                continue
            uplink_busy = sum(links[link].busy_cycles
                              for link in topo.uplinks(ridx) if link in links)
            key = (uplink_busy, -len(free), ridx)
            if best is None or key < best[0]:
                best = (key, free[0])
        if best is None:
            raise ValueError(f"no free node for virtual node {vnode}")
        return best[1]


#: Policy name -> class.
POLICIES = {
    policy.name: policy
    for policy in (PlacementPolicy, RoundRobinPlacement,
                   LocalityAwarePlacement)
}


def resolve_placement(spec):
    """Build a placement policy from None (round-robin default), a
    policy name, a :class:`PlacementPolicy` subclass, or an instance."""
    if spec is None:
        return RoundRobinPlacement()
    if isinstance(spec, PlacementPolicy):
        return spec
    if isinstance(spec, type) and issubclass(spec, PlacementPolicy):
        return spec()
    if isinstance(spec, str):
        try:
            return POLICIES[spec]()
        except KeyError:
            raise ValueError(f"unknown placement policy {spec!r} "
                             f"(have {sorted(POLICIES)})") from None
    raise ValueError(f"cannot interpret placement spec {spec!r}")
