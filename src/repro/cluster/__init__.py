"""Cluster-level conveniences over the kernel's space migration (§3.3).

The migration mechanism itself lives in the kernel (node fields in child
numbers, demand paging, the read-only page cache); this package adds the
operator-facing layer:

* :class:`Cluster` — construct, run and time a multi-node machine with
  one call;
* :class:`NetworkStats` — per-node traffic accounting derived from the
  run (messages, pages, bytes, estimated wire time);
* :func:`sweep_nodes` — run the same program across cluster sizes and
  collect the speedup series (the Figure 11 primitive).
"""

from repro.cluster.network import NetworkStats
from repro.cluster.cluster import Cluster, ClusterResult, sweep_nodes

__all__ = ["NetworkStats", "Cluster", "ClusterResult", "sweep_nodes"]
