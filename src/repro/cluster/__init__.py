"""Cluster distribution: routed transport + operator conveniences (§3.3).

The kernel decides *what* crosses nodes (node fields in child numbers,
migration deltas, demand paging against the tag cache); this package
owns *how* it crosses and what that costs:

* :class:`~repro.cluster.topology.Topology` — the routed fabric:
  ``flat`` (legacy full mesh), ``two_tier`` (racks behind one
  oversubscribed core switch), and ``fat_tree`` (leaf-spine, full
  bisection) presets, each link carrying a latency/bandwidth
  :class:`~repro.cluster.topology.LinkClass`;
* :class:`~repro.cluster.transport.Transport` — the simulated
  interconnect: typed messages (MIGRATE, PAGE_REQ, PAGE_BATCH, ACK)
  routed hop-by-hop over the fabric, with migration deltas and demand
  fetches coalesced into batched scatter/gather messages; every
  traversed link accrues occupancy, so shared cross-rack uplinks
  contend in ``schedule()``.  Per-node *async fetch queues*
  (``Machine(prefetch_depth=...)``) pipeline predicted-next frames
  behind compute, and ``Machine(compression=True)`` ships PAGE_BATCH
  payloads zero-suppressed/RLE-encoded
  (:mod:`repro.cluster.compress`);
* :class:`~repro.cluster.faults.LossSchedule` — deterministic fault
  injection (``Machine(loss=...)``): per-link drop/duplicate/reorder
  decisions keyed on ``(link, msg_serial)`` replay bit-identically;
  the transport retransmits dropped copies (``cost.retx_timeout`` /
  ``retx_limit``), keeps a per-link retransmit ledger
  (``NetworkStats.retx_table()``), and charges timeout waits as
  ``kind="retx"`` stall edges — loss is cost-only, never touching
  computed values;
* placement policies (:mod:`repro.cluster.placement`) — map
  program-visible node numbers onto fabric nodes: ``round_robin``
  stripes across racks, ``locality`` packs by communication affinity
  using the transport's live per-link stats;
* the real-process backend (:mod:`repro.cluster.backend` over
  :mod:`repro.cluster.realnet`) — ``ClusterSpec(backend="real")`` runs
  each cluster-node subtree in a real host process with the protocol's
  typed messages framed over real localhost sockets; the simulated run
  stays the bit-identical oracle for values, memory images, and
  ledgers, while measured wall-clock joins simulated cycles as a
  second timing column (:func:`run_real`, :class:`RealRunResult`);
* :class:`Cluster` — construct, run and time a multi-node machine with
  one call;
* :class:`NetworkStats` — traffic accounting derived from the
  transport's live counters: migration hops, page/byte/message totals,
  per-class (rack vs cross-rack) aggregates
  (``NetworkStats.class_table()``), and a per-link breakdown
  (``NetworkStats.link_table()``);
* :func:`sweep_nodes` — run the same program across cluster sizes and
  collect the speedup series (the Figure 11 primitive).
"""

from repro.cluster.network import NetworkStats
from repro.cluster.backend import (
    RealRunResult,
    RealShardCoordinator,
    image_digest,
    run_backend,
    run_real,
)
from repro.cluster.cluster import Cluster, ClusterResult, sweep_nodes
from repro.cluster.control import Controller, resolve_control
from repro.cluster.faults import LossSchedule, RetxBill, resolve_loss
from repro.cluster.placement import (
    LocalityAwarePlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    resolve_placement,
)
from repro.cluster.topology import (
    FatTreeTopology,
    FlatTopology,
    LinkClass,
    Topology,
    TwoTierTopology,
    resolve_topology,
)
from repro.cluster.transport import (
    LinkStats,
    MsgType,
    PrefetchExchange,
    TelemetryWindow,
    Transport,
)

__all__ = [
    "NetworkStats", "Cluster", "ClusterResult", "sweep_nodes",
    "RealRunResult", "RealShardCoordinator", "image_digest",
    "run_backend", "run_real",
    "LossSchedule", "RetxBill", "resolve_loss",
    "Controller", "resolve_control", "TelemetryWindow",
    "Transport", "MsgType", "LinkStats", "PrefetchExchange",
    "Topology", "FlatTopology", "TwoTierTopology", "FatTreeTopology",
    "LinkClass", "resolve_topology",
    "PlacementPolicy", "RoundRobinPlacement", "LocalityAwarePlacement",
    "resolve_placement",
]
