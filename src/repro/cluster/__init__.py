"""Cluster distribution: message transport + operator conveniences (§3.3).

The kernel decides *what* crosses nodes (node fields in child numbers,
migration deltas, demand paging against the tag cache); this package
owns *how* it crosses and what that costs:

* :class:`~repro.cluster.transport.Transport` — the simulated
  interconnect: typed messages (MIGRATE, PAGE_REQ, PAGE_BATCH, ACK)
  over per-link latency/bandwidth channels, with migration deltas and
  demand fetches coalesced into batched scatter/gather messages;
* :class:`Cluster` — construct, run and time a multi-node machine with
  one call;
* :class:`NetworkStats` — traffic accounting derived from the
  transport's live counters: migration hops, page/byte/message totals,
  and a per-link breakdown (``NetworkStats.link_table()``) of messages,
  pages, bytes, and wire occupancy per directed channel;
* :func:`sweep_nodes` — run the same program across cluster sizes and
  collect the speedup series (the Figure 11 primitive).
"""

from repro.cluster.network import NetworkStats
from repro.cluster.cluster import Cluster, ClusterResult, sweep_nodes
from repro.cluster.transport import LinkStats, MsgType, Transport

__all__ = [
    "NetworkStats", "Cluster", "ClusterResult", "sweep_nodes",
    "Transport", "MsgType", "LinkStats",
]
