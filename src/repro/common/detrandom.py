"""A small deterministic pseudo-random generator.

The baseline ("Linux") simulator needs schedule jitter that is repeatable
for a given seed but *not* correlated with the structure of the simulated
program.  We implement SplitMix64, which is tiny, fast, well distributed,
and — unlike :mod:`random` — guaranteed stable across Python versions, so
recorded experiment outputs never drift with the interpreter.
"""

_MASK = (1 << 64) - 1


class DeterministicRandom:
    """SplitMix64 generator with convenience helpers.

    >>> r = DeterministicRandom(42)
    >>> r.next_u64() == DeterministicRandom(42).next_u64()
    True
    """

    def __init__(self, seed=0):
        self._state = seed & _MASK

    def next_u64(self):
        """Return the next 64-bit unsigned integer."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        return z ^ (z >> 31)

    def uniform(self, lo=0.0, hi=1.0):
        """Return a float uniformly distributed in ``[lo, hi)``."""
        return lo + (hi - lo) * (self.next_u64() / float(1 << 64))

    def randint(self, lo, hi):
        """Return an integer uniformly distributed in ``[lo, hi]``."""
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def jitter(self, value, fraction):
        """Return ``value`` dilated by a uniform factor in ``[1, 1+fraction)``.

        Used to perturb segment durations in the nondeterministic baseline:
        real machines never give two threads identical timing.
        """
        return value * self.uniform(1.0, 1.0 + fraction)

    def choice(self, seq):
        """Return a pseudo-random element of a non-empty sequence."""
        if not seq:
            raise IndexError("choice from empty sequence")
        return seq[self.next_u64() % len(seq)]

    def shuffle(self, seq):
        """Fisher-Yates shuffle of a mutable sequence, in place."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def fork(self):
        """Return an independent generator derived from this one's stream."""
        return DeterministicRandom(self.next_u64())
