"""Exception hierarchy for the Determinator reproduction.

Two distinct families exist:

* *Host errors* (bugs in code using the library): subclasses of
  :class:`ReproError`, raised and propagated like normal Python exceptions.

* *Guest traps*: conditions that, on real Determinator, would stop a space
  and return a trap code to its parent (illegal access, merge conflict,
  instruction-limit expiry).  Inside guest code these are raised as
  exceptions; the kernel converts uncaught ones into a stopped space with
  a trap code, exactly as processor traps cause an implicit Ret (§3.2).
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Memory subsystem
# --------------------------------------------------------------------------

class MemoryError_(ReproError):
    """Base class for simulated-memory errors.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class PageFaultError(MemoryError_):
    """Access to an unmapped virtual address."""

    def __init__(self, addr, message=""):
        self.addr = addr
        super().__init__(message or f"page fault at {addr:#010x}")


class PermissionFault(MemoryError_):
    """Access violating the page permissions set via the Perm option."""

    def __init__(self, addr, needed, message=""):
        self.addr = addr
        self.needed = needed
        super().__init__(
            message or f"permission fault at {addr:#010x} (needed {needed})"
        )


class MergeConflictError(MemoryError_):
    """A byte changed in both parent and child since the reference snapshot.

    The paper treats this "as a programming error like an illegal memory
    access or divide-by-zero" (§3.2): the kernel raises it during a
    Get/Merge, and it surfaces in the *parent* space.
    """

    def __init__(self, addr, message=""):
        self.addr = addr
        super().__init__(
            message or f"write/write conflict at byte {addr:#010x}"
        )


# --------------------------------------------------------------------------
# Kernel
# --------------------------------------------------------------------------

class KernelError(ReproError):
    """Misuse of the kernel API detected by the simulated kernel."""


class BadChildError(KernelError):
    """A syscall referenced an invalid child number."""


class NetworkLossError(KernelError):
    """A cluster message exhausted its retransmission budget.

    Raised by the transport when a hop's deterministic loss schedule
    drops every copy of a message through ``cost.retx_limit`` retries —
    the link is effectively dead.  Deterministic like everything else:
    a given (schedule, program) pair either always raises or never
    does.
    """


class BackendError(KernelError):
    """The real-process backend (``ClusterSpec(backend="real")``) failed
    outside the simulated semantics: an incompatible spec, a worker
    process that died or hung mid-protocol, or a wire-level failure.

    The simulated state is never half-mutated by one of these — the
    coordinator aborts before adoption — but the run's results are
    gone, so the error propagates to the caller instead of falling
    back silently.
    """


class WireError(BackendError):
    """A malformed, truncated, corrupted, or timed-out frame on the real
    socket wire (``repro.cluster.realnet``).  Always raised as a typed
    error within the channel deadline — never a hang, never a raw
    ``struct``/``pickle``/``socket`` exception."""


class GuestKilled(BaseException):
    """Injected into a guest thread to unwind it when its space is destroyed.

    Derives from :class:`BaseException` so ordinary ``except Exception``
    handlers inside guest code cannot swallow it.
    """


class GuestTrap(ReproError):
    """Raised inside guest code for conditions that become trap codes."""

    def __init__(self, trapcode, message=""):
        self.trapcode = trapcode
        super().__init__(message or f"guest trap {trapcode}")


# --------------------------------------------------------------------------
# User-level runtime
# --------------------------------------------------------------------------

class RuntimeApiError(ReproError):
    """Misuse of the user-level runtime (process/thread/file APIs)."""


class FileSystemError(RuntimeApiError):
    """Error from the user-level shared file system."""


class FileConflictError(FileSystemError):
    """Attempt to open a file whose conflict flag is set (§4.2)."""

    def __init__(self, name, message=""):
        self.name = name
        super().__init__(message or f"file {name!r} is marked conflicted")


class DeadlockError(RuntimeApiError):
    """The deterministic scheduler detected that no thread can make progress."""


# --------------------------------------------------------------------------
# Post-mortem debugger
# --------------------------------------------------------------------------

class DebugApiError(ReproError):
    """Misuse of the post-mortem inspector (repro.debug)."""


class ReplayDivergence(ReproError):
    """A deterministic re-execution produced a different trace than the
    original run — by construction impossible unless the program or the
    machine configuration changed between the runs, so the debugger
    refuses to present state from the divergent replay."""
