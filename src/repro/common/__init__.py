"""Shared infrastructure used by every Determinator-reproduction subsystem.

This package deliberately has no dependencies on the rest of :mod:`repro`
so that low-level substrates (memory, timing) can import it freely.
"""

from repro.common.errors import (
    ReproError,
    MemoryError_,
    PageFaultError,
    PermissionFault,
    MergeConflictError,
    KernelError,
    BadChildError,
    GuestKilled,
    GuestTrap,
    RuntimeApiError,
    FileSystemError,
    FileConflictError,
    DeadlockError,
)
from repro.common.detrandom import DeterministicRandom

__all__ = [
    "ReproError",
    "MemoryError_",
    "PageFaultError",
    "PermissionFault",
    "MergeConflictError",
    "KernelError",
    "BadChildError",
    "GuestKilled",
    "GuestTrap",
    "RuntimeApiError",
    "FileSystemError",
    "FileConflictError",
    "DeadlockError",
    "DeterministicRandom",
]
