"""Benchmarks and figure regeneration (paper §6).

* :mod:`repro.bench.api` — a thin parallel-programming surface the
  workloads are written against once and executed on both Determinator
  (private workspace threads / deterministic scheduler) and the Linux
  baseline (direct shared memory).
* :mod:`repro.bench.workloads` — md5, matmult, qsort, blackscholes, fft,
  lu (contiguous and non-contiguous), reimplementing each benchmark's
  communication/synchronization pattern with real computation where
  cheap enough to verify results.
* :mod:`repro.bench.cluster_workloads` — md5-circuit, md5-tree and
  matmult-tree across cluster nodes via space migration (§6.3).
* :mod:`repro.bench.harness` — single-call runners returning virtual
  makespans.
* :mod:`repro.bench.figures` — one generator per paper figure/table.
"""

from repro.bench.harness import run_determinator, run_linux, RunResult

__all__ = ["run_determinator", "run_linux", "RunResult"]
