"""lu: SPLASH-2 blocked LU decomposition, contiguous and non-contiguous
variants (§6.2).

Right-looking blocked LU without pivoting, with a **barrier after every
block step** — the textbook fine-grained SPLASH-2 kernel.  At each step
k: one worker factors the diagonal block and panel; after a barrier, all
workers update their share of the trailing submatrix; another barrier
ends the step.  The frequent barriers mean Determinator re-copies,
re-snapshots and re-merges the shared matrix every few hundred thousand
instructions, which is exactly why lu shows the highest determinism cost
in Figure 7.

``contiguous=True`` assigns workers contiguous *row bands* of the
trailing matrix (the "lu_cont" layout: few pages per write set);
``contiguous=False`` assigns interleaved rows ("lu_noncont": the write
set touches almost every page of the matrix, inflating merge work).

The arithmetic is real float64 (verified as L·U ≈ A in tests).
"""

import numpy as np

from repro.mem.layout import SHARED_BASE

MATRIX_ADDR = SHARED_BASE + 0x500_0000

#: Modelled instructions per fused multiply-add in the update.
CYCLES_PER_FLOP = 2


def default_params(nworkers, n=128, block=16, contiguous=True, seed=13):
    return {
        "nworkers": nworkers,
        "n": n,
        "block": block,
        "contiguous": contiguous,
        "seed": seed,
    }


def make_matrix(n, seed):
    """Random diagonally dominant matrix (LU without pivoting is stable)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a + n * np.eye(n)


def _rows_for(tid, nworkers, lo, hi, contiguous):
    """The trailing-matrix rows worker ``tid`` updates in [lo, hi)."""
    rows = np.arange(lo, hi)
    if contiguous:
        chunks = np.array_split(rows, nworkers)
        return chunks[tid]
    return rows[rows % nworkers == tid]


def _step_update(api, tid, round_, n, block, nworkers, contiguous):
    """One barrier phase of one block step (see `run` for the protocol)."""
    k, phase = divmod(round_, 2)
    col = k * block
    if col >= n:
        return 0
    blk = min(block, n - col)
    if phase == 0:
        # Phase A: worker 0 factors the diagonal block + panels.
        if tid != 0:
            return 0
        a = api.array_read(MATRIX_ADDR, np.float64, n * n).reshape(n, n)
        diag = a[col:col + blk, col:col + blk]
        for j in range(blk):
            diag[j + 1:, j] /= diag[j, j]
            diag[j + 1:, j + 1:] -= np.outer(diag[j + 1:, j], diag[j, j + 1:])
        # Panel updates: L21 and U12.
        l_inv_cost = blk * blk * (n - col - blk)
        if col + blk < n:
            u12 = a[col:col + blk, col + blk:]
            for j in range(blk):
                u12[j + 1:, :] -= np.outer(diag[j + 1:, j], u12[j, :])
            l21 = a[col + blk:, col:col + blk]
            upper = np.triu(diag)
            a[col + blk:, col:col + blk] = np.linalg.solve(upper.T, l21.T).T
        api.work((blk ** 3 + 2 * l_inv_cost) * CYCLES_PER_FLOP)
        api.array_write(MATRIX_ADDR, a)
        return 1
    # Phase B: all workers update their rows of the trailing matrix.
    lo = col + blk
    if lo >= n:
        return 0
    mine = _rows_for(tid, nworkers, lo, n, contiguous)
    if len(mine) == 0:
        return 0
    a = api.array_read(MATRIX_ADDR, np.float64, n * n).reshape(n, n)
    l_part = a[mine, col:col + blk]
    u_part = a[col:col + blk, lo:]
    update = l_part @ u_part
    api.work(2 * len(mine) * blk * (n - lo) * CYCLES_PER_FLOP)
    for row_idx, row in enumerate(mine):
        row_vals = a[row, lo:] - update[row_idx]
        api.array_write(
            MATRIX_ADDR + (row * n + lo) * 8, row_vals
        )
    return len(mine)


def run(api, nworkers, n, block, contiguous, seed):
    """Factor the matrix in place; returns (verified, checksum)."""
    a = make_matrix(n, seed)
    api.array_write(MATRIX_ADDR, a)
    api.work(n * n)
    nsteps = (n + block - 1) // block
    api.parallel_rounds(
        nworkers,
        2 * nsteps,
        lambda w, tid, round_: _step_update(
            w, tid, round_, n, block, nworkers, contiguous
        ),
    )
    lu = api.array_read(MATRIX_ADDR, np.float64, n * n).reshape(n, n)
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    verified = bool(np.allclose(lower @ upper, a, atol=1e-6 * n))
    return (verified, float(np.round(np.abs(lu).sum(), 2)))
