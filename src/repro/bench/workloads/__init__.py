"""The paper's seven parallel benchmarks (§6.2), written once against
:mod:`repro.bench.api` and runnable on Determinator or the Linux baseline.

Each module exposes ``run(api, **params)`` plus a ``default_params(
nworkers)`` helper, reproduces the paper benchmark's communication and
synchronization *pattern*, performs real computation where cheap enough
to verify, and charges its algorithmic instruction cost to the virtual
clock via ``api.work``.
"""

from repro.bench.workloads import md5 as md5_workload
from repro.bench.workloads import matmult as matmult_workload
from repro.bench.workloads import qsort as qsort_workload
from repro.bench.workloads import blackscholes as blackscholes_workload
from repro.bench.workloads import fft as fft_workload
from repro.bench.workloads import lu as lu_workload

#: name -> (module, extra params) for every Figure 7/8 benchmark.
ALL = {
    "md5": (md5_workload, {}),
    "matmult": (matmult_workload, {}),
    "qsort": (qsort_workload, {}),
    "blackscholes": (blackscholes_workload, {}),
    "fft": (fft_workload, {}),
    "lu_cont": (lu_workload, {"contiguous": True}),
    "lu_noncont": (lu_workload, {"contiguous": False}),
}
