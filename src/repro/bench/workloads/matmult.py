"""matmult: parallel dense integer matrix multiply (§6.2).

"matmult multiplies two 1024 x 1024 integer matrices."

One fork/join phase: worker *t* computes a contiguous block of C's rows
from its private replica of A and B (reads) and writes only its block —
the canonical coarse-grained private-workspace workload.  The multiply
is real (numpy int32); the modelled cost is the classic 2·n³ inner-loop
instructions divided across workers.
"""

import numpy as np

from repro.mem.layout import SHARED_BASE

#: Shared-memory layout of the three matrices.
A_ADDR = SHARED_BASE + 0x10_0000


def _addrs(n):
    nbytes = n * n * 4
    a = A_ADDR
    b = (a + nbytes + 0xFFF) & ~0xFFF
    c = (b + nbytes + 0xFFF) & ~0xFFF
    return a, b, c


def default_params(nworkers, n=256, seed=7):
    return {"nworkers": nworkers, "n": n, "seed": seed}


def _multiply_block(api, tid, n, row0, rows):
    """Worker: C[row0:row0+rows, :] = A[row0:...,:] @ B."""
    if rows <= 0:
        return 0
    a_addr, b_addr, c_addr = _addrs(n)
    a_block = api.array_read(a_addr + row0 * n * 4, np.int32, rows * n)
    b = api.array_read(b_addr, np.int32, n * n)
    a_block = a_block.reshape(rows, n)
    b = b.reshape(n, n)
    c_block = a_block @ b
    api.work(2 * rows * n * n)
    api.array_write(c_addr + row0 * n * 4, c_block.astype(np.int32))
    return rows


def run(api, nworkers, n, seed):
    """Initialize A and B, multiply in parallel, return a checksum."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 100, size=(n, n), dtype=np.int32)
    b = rng.integers(0, 100, size=(n, n), dtype=np.int32)
    a_addr, b_addr, c_addr = _addrs(n)
    api.array_write(a_addr, a)
    api.array_write(b_addr, b)
    api.work(2 * n * n)  # initialization cost

    rows_per = (n + nworkers - 1) // nworkers
    args = []
    for tid in range(nworkers):
        row0 = tid * rows_per
        args.append((n, row0, max(0, min(rows_per, n - row0))))
    api.fork_join(_multiply_block, args)

    c = api.array_read(c_addr, np.int32, n * n).reshape(n, n)
    return int(c.sum() & 0xFFFFFFFF)


def expected_checksum(n, seed):
    """Reference checksum for verification in tests."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 100, size=(n, n), dtype=np.int32)
    b = rng.integers(0, 100, size=(n, n), dtype=np.int32)
    return int((a @ b).sum() & 0xFFFFFFFF)
