"""fft: SPLASH-2-style parallel Fast Fourier Transform (§6.2).

Radix-2 decimation-in-time over a worker tree: the array is split by
sample parity, children compute sub-FFTs of the decimated halves
(recursively, to the fork depth), and each parent performs the real
twiddle-factor combine of its children's spectra.  The combines above
the leaves are serial in the parents, which is why fft "levels off after
four processors" in the paper's Figure 8 while remaining comparable to
Linux overall (Figure 7).

Computation is real complex128 math; leaves use numpy's FFT as the
sequential kernel and charge the textbook 5·n·log2(n) flops.
"""

import numpy as np

from repro.mem.layout import SHARED_BASE

DATA_ADDR = SHARED_BASE + 0x400_0000

#: Modelled instructions per butterfly stage element.
CYCLES_PER_POINT_STAGE = 14


def default_params(nworkers, n=1 << 14, seed=5):
    depth = max(0, (nworkers - 1).bit_length())
    return {"nworkers": nworkers, "n": n, "seed": seed, "depth": depth}


def _fft_range(api, tid, addr, n, depth):
    """FFT of ``n`` complex points at ``addr`` (contiguous), in place."""
    if depth == 0 or n < 4:
        data = api.array_read(addr, np.complex128, n)
        out = np.fft.fft(data)
        api.work(int(5 * n * max(1, np.log2(n)) * CYCLES_PER_POINT_STAGE / 5))
        api.array_write(addr, out)
        return n
    half = n // 2
    data = api.array_read(addr, np.complex128, n)
    # Decimate: evens first, odds second (real data movement).
    api.array_write(addr, np.concatenate([data[0::2], data[1::2]]))
    api.work(n * 2)
    # Child transforms the even half concurrently; we do the odd half.
    handle = api.spawn(_fft_range, (addr, half, depth - 1))
    _fft_range(api, tid, addr + half * 16, half, depth - 1)
    api.join(handle)
    # Serial combine in the parent: real butterflies.
    even = api.array_read(addr, np.complex128, half)
    odd = api.array_read(addr + half * 16, np.complex128, half)
    twiddle = np.exp(-2j * np.pi * np.arange(half) / n)
    top = even + twiddle * odd
    bottom = even - twiddle * odd
    api.work(n * CYCLES_PER_POINT_STAGE)
    api.array_write(addr, np.concatenate([top, bottom]))
    return n


def run(api, nworkers, n, seed, depth):
    """Transform a random signal; returns (verified, checksum)."""
    rng = np.random.default_rng(seed)
    signal = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    api.array_write(DATA_ADDR, signal.astype(np.complex128))
    api.work(n)
    _fft_range(api, 0, DATA_ADDR, n, depth)
    out = api.array_read(DATA_ADDR, np.complex128, n)
    reference = np.fft.fft(signal)
    verified = bool(np.allclose(out, reference, atol=1e-6 * n))
    return (verified, float(np.round(np.abs(out).sum(), 2)))
