"""serving: an open-loop request-serving workload (tail latency, not makespan).

Every other workload in the repo is one batch job measured by makespan.
This module supplies the pieces of a *service*: a deterministic open-loop
arrival trace (seeded Poisson process with diurnal burst segments) and a
per-request guest program small enough that hundreds of them fit in one
run — an md5 probe burst or a Black-Scholes pricing burst per request,
reading real shared input data that rides the cluster transport.

Everything here is exactly reproducible across platforms and Python
versions: arrival sampling is pure 64-bit integer arithmetic (a
Bernoulli-per-tick geometric process — no ``math.log``), request values
derive from :mod:`hashlib` digests, and the diurnal rate multipliers are
rationals.  The cluster-side dispatcher that turns these pieces into
latency percentiles lives in :mod:`repro.cluster.serving`.
"""

import hashlib

from repro.bench.workloads.blackscholes import CYCLES_PER_OPTION, make_options
from repro.bench.workloads.md5 import ALPHABET, CYCLES_PER_CANDIDATE, candidate
from repro.common.detrandom import DeterministicRandom
from repro.mem.layout import SHARED_BASE
from repro.mem.page import PAGE_SIZE

# ---------------------------------------------------------------------------
# Shared-input layout: the request "application state" every node needs
# ---------------------------------------------------------------------------

#: Base of the serving share window (above the md5/matmult/skew regions).
SERVING_BASE = SHARED_BASE + 0x40_0000
#: Page holding the md5 search target digest (shared input data).
TARGET_ADDR = SERVING_BASE
#: Page holding the option parameter table (NOPTIONS x 5 float64 rows).
OPTIONS_ADDR = SERVING_BASE + PAGE_SIZE
#: First of NDATA_PAGES reference-data pages requests consult.
DATA_ADDR = SERVING_BASE + 2 * PAGE_SIZE
#: Reference-data pages (each request touches one, keyed on its id).
NDATA_PAGES = 6
#: Bytes of shared application state a node must hold to serve requests.
SHARE_SIZE = (2 + NDATA_PAGES) * PAGE_SIZE
#: The (addr, size) window forked to every request child.
SHARE = (SERVING_BASE, SHARE_SIZE)

#: md5 request: candidate-string length and probes scanned per request.
MD5_LENGTH = 3
MD5_PROBES = 40
#: blackscholes request: option-table shape and pricing passes.
NOPTIONS = 64
OPTIONS_SEED = 3
BS_RUNS = 120

#: Request-kind cycle: two md5 probes for every pricing request.
KINDS = ("md5", "md5", "bs")


def _md5_space():
    return len(ALPHABET) ** MD5_LENGTH


def _target_digest():
    """The planted md5 search target (same planting rule as the batch
    md5 workload: 70% of the way through the candidate space)."""
    return hashlib.md5(
        candidate(_md5_space() * 7 // 10, MD5_LENGTH).encode()).hexdigest()


def publish_inputs(g):
    """Write the shared application state into the serving window.

    Called once by the dispatcher before the first fork; every request
    child receives a copy-on-write snapshot of this window, so remote
    nodes pull it over the cluster transport like any other pages.
    """
    g.write(TARGET_ADDR, _target_digest().encode().ljust(PAGE_SIZE, b"\x00"))
    g.array_write(OPTIONS_ADDR, make_options(NOPTIONS, OPTIONS_SEED))
    for page in range(NDATA_PAGES):
        pattern = hashlib.md5(b"serving-data-%d" % page).digest()
        g.write(DATA_ADDR + page * PAGE_SIZE,
                pattern * (PAGE_SIZE // len(pattern)))


# ---------------------------------------------------------------------------
# Deterministic open-loop arrival trace
# ---------------------------------------------------------------------------

#: Default diurnal rate profile, as (numerator, denominator) multipliers
#: on the base arrival rate: night trough, shoulder, burst, shoulder.
DIURNAL = ((1, 2), (1, 1), (3, 1), (1, 1))


def make_arrivals(nrequests, mean_gap, seed, segments=DIURNAL,
                  segment_cycles=None):
    """Deterministic Poisson arrival times with diurnal rate segments.

    Returns a strictly increasing tuple of ``nrequests`` virtual-cycle
    arrival times.  The process is sampled as a Bernoulli trial per
    ``tick`` (a geometric — i.e. discretized exponential — interarrival
    law) using exact 64-bit integer comparisons, so the trace is
    bit-identical on every platform and Python version; ``math.log``
    never enters.  ``segments`` scales the instantaneous rate by the
    rational ``num/den`` of the segment active at each tick, cycling
    every ``segment_cycles`` (default: the trace spans roughly two full
    diurnal cycles at the base rate).
    """
    if nrequests < 1:
        raise ValueError(f"nrequests must be >= 1, got {nrequests}")
    if mean_gap < 1:
        raise ValueError(f"mean_gap must be >= 1, got {mean_gap}")
    if segment_cycles is None:
        segment_cycles = max(1, nrequests * mean_gap
                             // (2 * len(segments)))
    rng = DeterministicRandom(seed)
    tick = max(1, mean_gap // 64)
    arrivals = []
    t = 0
    while len(arrivals) < nrequests:
        num, den = segments[(t // segment_cycles) % len(segments)]
        # Accept with probability (tick * num) / (mean_gap * den),
        # compared exactly against a 64-bit uniform draw.
        if rng.next_u64() * mean_gap * den < (tick * num) << 64:
            arrivals.append(t)
        t += tick
    return tuple(arrivals)


# ---------------------------------------------------------------------------
# The per-request guest program
# ---------------------------------------------------------------------------

def request_kind(rid):
    """Request ``rid``'s kind — a pure function of the request id (never
    of the arrival seed), so request *values* are trace-independent."""
    return KINDS[rid % len(KINDS)]


def serve_request(g, rid):
    """Guest entry of one request child: serve request ``rid``.

    Reads the shared inputs out of this space's copy of the serving
    window (they crossed the wire to reach a remote node) and performs a
    small burst of real compute.  The returned value is a pure function
    of ``rid`` and the shared inputs — :func:`request_value` is the
    host-side oracle.
    """
    # Touch this request's reference-data page (keeps a data dependency
    # on the share beyond the input tables).
    page = rid % NDATA_PAGES
    salt = g.read(DATA_ADDR + page * PAGE_SIZE, 16)
    if request_kind(rid) == "md5":
        digest = g.read(TARGET_ADDR, 32).decode()
        g.alloc_work(MD5_PROBES * CYCLES_PER_CANDIDATE)
        space = _md5_space()
        start = (rid * 131) % space
        for index in range(start, start + MD5_PROBES):
            text = candidate(index % space, MD5_LENGTH)
            if hashlib.md5(text.encode()).hexdigest() == digest:
                return index % space + 1
        return int.from_bytes(
            hashlib.md5(salt + b"%d" % rid).digest()[:4], "little")
    row = g.read(OPTIONS_ADDR + (rid % NOPTIONS) * 40, 40)
    g.work(BS_RUNS * CYCLES_PER_OPTION)
    return int.from_bytes(
        hashlib.md5(row + salt + b"%d" % rid).digest()[:4], "little")


def request_value(rid):
    """Host-side oracle for :func:`serve_request`'s return value."""
    salt = hashlib.md5(b"serving-data-%d" % (rid % NDATA_PAGES)).digest()
    if request_kind(rid) == "md5":
        digest = _target_digest()
        space = _md5_space()
        start = (rid * 131) % space
        for index in range(start, start + MD5_PROBES):
            text = candidate(index % space, MD5_LENGTH)
            if hashlib.md5(text.encode()).hexdigest() == digest:
                return index % space + 1
        return int.from_bytes(
            hashlib.md5(salt + b"%d" % rid).digest()[:4], "little")
    row = make_options(NOPTIONS, OPTIONS_SEED)[rid % NOPTIONS].tobytes()
    return int.from_bytes(
        hashlib.md5(row + salt + b"%d" % rid).digest()[:4], "little")


def fold_checksum(values):
    """Order-sensitive 32-bit fold of per-request values (the run's
    single scalar "answer", used by the determinism oracles)."""
    total = 0
    for value in values:
        total = (total * 0x10001 + value) & 0xFFFFFFFF
    return total
