"""md5: brute-force search for a string with a given MD5 hash (§6.2).

"The md5 benchmark searches for an ASCII string yielding a particular
MD5 hash, as in a brute-force password cracker."

Embarrassingly parallel with *repeated* fork/join rounds (the candidate
space is searched in chunks so the search can stop early), which is
where the Linux thread-system contention shows at high core counts and
Determinator's near-zero merge volume (workers share almost no data)
lets it pull ahead — the paper measures a 2.25x md5 speedup over Linux
on 12 cores.

The search is real: a target password is hashed with :mod:`hashlib` and
workers genuinely find it; the modelled cost per candidate stands in for
the native MD5 throughput.
"""

import hashlib

from repro.mem.layout import SHARED_BASE

#: Modelled instructions to generate + hash one candidate.
CYCLES_PER_CANDIDATE = 900

#: Candidate alphabet (kept small so test search spaces stay tiny).
ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: Where the found candidate index is published in shared memory.
RESULT_ADDR = SHARED_BASE + 0x100


def candidate(index, length):
    """The ``index``-th candidate string of ``length`` letters."""
    letters = []
    for _ in range(length):
        index, rem = divmod(index, len(ALPHABET))
        letters.append(ALPHABET[rem])
    return "".join(letters)


def default_params(nworkers, length=4, rounds=8):
    """Search the full space of ``length``-letter strings for a planted
    target, in ``rounds`` fork/join chunks."""
    target = candidate((len(ALPHABET) ** length) * 7 // 10, length)
    digest = hashlib.md5(target.encode()).hexdigest()
    return {
        "nworkers": nworkers,
        "length": length,
        "digest": digest,
        "rounds": rounds,
    }


def _search_chunk(api, tid, start, count, length, digest):
    """Worker: scan ``count`` candidates from ``start``; real MD5.

    Candidate generation allocates strings, so this is allocation-heavy
    compute: on Linux it contends in the shared heap ([54], §2.4)."""
    api.alloc_work(count * CYCLES_PER_CANDIDATE)
    for index in range(start, start + count):
        text = candidate(index, length)
        if hashlib.md5(text.encode()).hexdigest() == digest:
            api.store(RESULT_ADDR, index + 1)
            return index + 1
    return 0


def run(api, nworkers, length, digest, rounds):
    """Run the chunked parallel search; returns the found candidate."""
    space = len(ALPHABET) ** length
    api.store(RESULT_ADDR, 0)
    per_round = (space + rounds - 1) // rounds
    found = 0
    for round_ in range(rounds):
        base = round_ * per_round
        per_worker = (per_round + nworkers - 1) // nworkers
        args = []
        for tid in range(nworkers):
            start = base + tid * per_worker
            count = max(0, min(per_worker, space - start))
            args.append((start, count, length, digest))
        results = api.fork_join(_search_chunk, args, base=0x100 + round_ * 64)
        hits = [r for r in results if r]
        if hits:
            found = hits[0] - 1
            break
    return candidate(found, length)
