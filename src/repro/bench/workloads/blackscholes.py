"""blackscholes: PARSEC option-pricing benchmark (§6.2).

"Porting the blackscholes benchmark to Determinator required no changes
as it uses deterministically scheduled pthreads (Section 4.5).  The
deterministic scheduler's quantization, however, incurs a fixed
performance cost of about 35% for the chosen quantum of 10 million
instructions."

So, uniquely among the benchmarks, the Determinator version runs under
:class:`repro.runtime.dsched.DetScheduler` — legacy pthreads emulation
with instruction-limit quanta — while the baseline uses plain pthreads.
Pricing is real (vectorized Black-Scholes via an erf-based normal CDF);
each option charges a modelled per-option instruction cost.
"""

import math

import numpy as np

from repro.mem.layout import SHARED_BASE
from repro.runtime.dsched import DetScheduler

OPTIONS_ADDR = SHARED_BASE + 0x300_0000

#: Modelled instructions to price one option (exp/log/sqrt/CDF chain).
CYCLES_PER_OPTION = 220

#: Options priced per inner chunk (granularity of preemption checks).
CHUNK = 2048


def default_params(nworkers, noptions=1 << 15, seed=3,
                   quantum=10_000_000, nruns=1):
    """``nruns`` mirrors PARSEC's NUM_RUNS loop: the option table is
    re-priced that many times, raising compute density per byte."""
    return {
        "nworkers": nworkers,
        "noptions": noptions,
        "seed": seed,
        "quantum": quantum,
        "nruns": nruns,
    }


def _erf(x):
    """Vectorized erf (Abramowitz & Stegun 7.1.26, |err| < 1.5e-7)."""
    sign = np.sign(x)
    x = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * x)
    poly = t * (0.254829592 + t * (-0.284496736 + t * (
        1.421413741 + t * (-1.453152027 + t * 1.061405429))))
    return sign * (1.0 - poly * np.exp(-x * x))


def _norm_cdf(x):
    """Standard normal CDF via erf (vectorized, dependency-free)."""
    return 0.5 * (1.0 + _erf(np.asarray(x, dtype=np.float64) / math.sqrt(2.0)))


def price(spot, strike, rate, vol, tte):
    """Vectorized Black-Scholes call price."""
    d1 = (np.log(spot / strike) + (rate + 0.5 * vol * vol) * tte) / (
        vol * np.sqrt(tte)
    )
    d2 = d1 - vol * np.sqrt(tte)
    return spot * _norm_cdf(d1) - strike * np.exp(-rate * tte) * _norm_cdf(d2)


def make_options(noptions, seed):
    """Random but reproducible option parameter table (n x 5 float64)."""
    rng = np.random.default_rng(seed)
    return np.column_stack([
        rng.uniform(10, 200, noptions),      # spot
        rng.uniform(10, 200, noptions),      # strike
        rng.uniform(0.01, 0.08, noptions),   # rate
        rng.uniform(0.05, 0.9, noptions),    # volatility
        rng.uniform(0.1, 3.0, noptions),     # time to expiry
    ])


def _price_slice(handle, options_addr, out_addr, start, count, nruns):
    """Price ``count`` options ``nruns`` times in CHUNK batches
    (each batch boundary is a preemption opportunity)."""
    g = handle.g if hasattr(handle, "g") else handle.h
    for _run in range(nruns):
        done = 0
        while done < count:
            batch = min(CHUNK, count - done)
            row0 = start + done
            table = g.array_read(options_addr + row0 * 40, np.float64, batch * 5)
            table = table.reshape(batch, 5)
            prices = price(table[:, 0], table[:, 1], table[:, 2],
                           table[:, 3], table[:, 4])
            g.work(batch * CYCLES_PER_OPTION)
            g.array_write(out_addr + row0 * 8, prices)
            done += batch
    return count


def run(api, nworkers, noptions, seed, quantum, nruns=1):
    """Price the option table in parallel; returns a checksum."""
    options = make_options(noptions, seed)
    out_addr = (OPTIONS_ADDR + noptions * 40 + 0xFFF) & ~0xFFF
    api.array_write(OPTIONS_ADDR, options)
    api.work(noptions * 4)

    per = (noptions + nworkers - 1) // nworkers
    slices = []
    for tid in range(nworkers):
        start = tid * per
        slices.append((start, max(0, min(per, noptions - start))))

    if api.kind == "determinator":
        # Legacy pthreads under the deterministic scheduler (§4.5).
        sched = DetScheduler(api.h, quantum=quantum)
        for start, count in slices:
            sched.spawn(
                _det_slice_thread,
                (OPTIONS_ADDR, out_addr, start, count, nruns),
            )
        sched.run()
    else:
        api.fork_join(
            _linux_slice_thread,
            [(OPTIONS_ADDR, out_addr, start, count, nruns)
             for start, count in slices],
        )

    prices = api.array_read(out_addr, np.float64, noptions)
    return float(np.round(prices.sum(), 3))


def _det_slice_thread(dt, options_addr, out_addr, start, count, nruns):
    return _price_slice(dt, options_addr, out_addr, start, count, nruns)


def _linux_slice_thread(api, tid, options_addr, out_addr, start, count, nruns):
    return _price_slice(api, options_addr, out_addr, start, count, nruns)


def expected_checksum(noptions, seed):
    """Reference result for verification."""
    table = make_options(noptions, seed)
    prices = price(table[:, 0], table[:, 1], table[:, 2], table[:, 3],
                   table[:, 4])
    return float(np.round(prices.sum(), 3))
