"""qsort: recursive parallel quicksort on an integer array (§6.2).

Forks a tree of threads: each level partitions its range around a pivot
(in its private replica), then forks a child for the lower half and
recurses on the upper half; leaves sort sequentially.  Partitioning is
real (numpy), and the merge volume at each join is the child's whole
half-range — exactly the interaction pattern that makes qsort scale
poorly under virtual-memory-based determinism (paper Fig. 8) while
staying competitive at large problem sizes (Fig. 10).
"""

import numpy as np

from repro.mem.layout import SHARED_BASE

ARRAY_ADDR = SHARED_BASE + 0x200_0000

import math

#: Modelled instructions per element per partition pass; leaves charge
#: the same coefficient times log2 of their range, so the total modelled
#: work is ~4·n·log2(n) regardless of fork depth (as for real quicksort).
PARTITION_PER_ELEM = 4


def default_params(nworkers, n=1 << 16, seed=11):
    depth = max(0, (nworkers - 1).bit_length())
    return {"n": n, "seed": seed, "depth": depth, "nworkers": nworkers}


def _sort_range(api, tid, n, lo, hi, depth):
    """Sort elements [lo, hi) of the shared array, forking to ``depth``."""
    count = hi - lo
    if count <= 1:
        return 0
    if depth == 0:
        values = api.array_read(ARRAY_ADDR + lo * 4, np.int32, count)
        values.sort()
        api.work(int(count * PARTITION_PER_ELEM * max(1, math.log2(count))))
        api.array_write(ARRAY_ADDR + lo * 4, values)
        return count
    values = api.array_read(ARRAY_ADDR + lo * 4, np.int32, count)
    pivot = int(values[count // 2])
    lower = values[values < pivot]
    equal = values[values == pivot]
    upper = values[values > pivot]
    api.work(count * PARTITION_PER_ELEM)
    rearranged = np.concatenate([lower, equal, upper])
    api.array_write(ARRAY_ADDR + lo * 4, rearranged)
    mid_lo = lo + len(lower)
    mid_hi = mid_lo + len(equal)
    # Child sorts the lower part *concurrently* with our recursion on the
    # upper part; the join merges its half back.
    handle = api.spawn(_sort_range, (n, lo, mid_lo, depth - 1))
    _sort_range(api, tid, n, mid_hi, hi, depth - 1)
    api.join(handle)
    return count


def run(api, nworkers, n, seed, depth):
    """Sort a random array; returns a correctness checksum."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1 << 30, size=n, dtype=np.int32)
    api.array_write(ARRAY_ADDR, data)
    api.work(n)
    _sort_range(api, 0, n, 0, n, depth)
    out = api.array_read(ARRAY_ADDR, np.int32, n)
    is_sorted = bool(np.all(out[:-1] <= out[1:]))
    return (is_sorted, int(out.sum() & 0xFFFFFFFF))
