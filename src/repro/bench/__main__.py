"""Regenerate the paper's evaluation from the command line.

    python -m repro.bench                 # everything
    python -m repro.bench fig7 fig11      # selected artifacts
    python -m repro.bench --list
    python -m repro.bench --profile fig11 # + cProfile hotspot report

Prints each figure/table as an aligned text series (the same generators
the ``benchmarks/`` suite asserts against).  With ``--profile`` each
selected artifact additionally runs under cProfile: the top cumulative
entries print after the artifact and the full stats land in
``benchmarks/out/profile_<name>.pstats`` for ``pstats``/snakeviz.
"""

import argparse
import cProfile
import os
import pstats
import sys
import time

from repro.bench import figures
from repro.bench.codesize import table3


def _fig4():
    result = figures.figure4()
    lines = ["Figure 4: parallel make on 2 CPUs (virtual cycles)"]
    for scenario, makespan in result.items():
        lines.append(f"  {scenario:20s} {makespan:>12,}")
    return "\n".join(lines)


def _serving():
    result = figures.figure_serving()
    cdf = figures.format_series(
        "Serving: latency CDF (cycles at percentile, 4 nodes)",
        result["cdf"], value_fmt="{:,}")
    metrics = figures.format_series(
        "Serving: summary metrics (cycles; goodput = req / Gcycle)",
        result["metrics"], value_fmt="{:,}")
    return cdf + "\n\n" + metrics


ARTIFACTS = {
    "fig4": _fig4,
    "serving": _serving,
    "fig7": lambda: figures.format_series(
        "Figure 7: Determinator relative to Linux (>1 = faster)",
        figures.figure7()),
    "fig8": lambda: figures.format_series(
        "Figure 8: speedup vs own single-CPU performance",
        figures.figure8()),
    "fig9": lambda: figures.format_series(
        "Figure 9: matmult size sweep (ratio vs Linux)",
        {"matmult": figures.figure9()}),
    "fig10": lambda: figures.format_series(
        "Figure 10: qsort size sweep (ratio vs Linux)",
        {"qsort": figures.figure10()}),
    "fig11": lambda: figures.format_series(
        "Figure 11: cluster speedup vs 1-node local execution",
        figures.figure11()),
    "fig12": lambda: figures.format_series(
        "Figure 12: dist-Linux time / Determinator time",
        figures.figure12(), value_fmt="{:7.3f}"),
    "table3": lambda: "Table 3: implementation code size\n" + table3()[0],
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the OSDI'10 Determinator evaluation.",
    )
    parser.add_argument("artifacts", nargs="*",
                        help=f"subset of: {', '.join(ARTIFACTS)}")
    parser.add_argument("--list", action="store_true",
                        help="list available artifacts and exit")
    parser.add_argument("--profile", action="store_true",
                        help="run each artifact under cProfile; dump "
                             "pstats to benchmarks/out/ and print the "
                             "top cumulative-time entries")
    args = parser.parse_args(argv)
    if args.list:
        print("\n".join(ARTIFACTS))
        return 0
    selected = args.artifacts or list(ARTIFACTS)
    unknown = [name for name in selected if name not in ARTIFACTS]
    if unknown:
        parser.error(f"unknown artifacts: {', '.join(unknown)}")
    for name in selected:
        start = time.time()
        if args.profile:
            profiler = cProfile.Profile()
            print(profiler.runcall(ARTIFACTS[name]))
            out_dir = os.path.join("benchmarks", "out")
            os.makedirs(out_dir, exist_ok=True)
            stats_path = os.path.join(out_dir, f"profile_{name}.pstats")
            profiler.dump_stats(stats_path)
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(12)
            print(f"[profile: {stats_path}]")
        else:
            print(ARTIFACTS[name]())
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
