"""Regenerate the paper's evaluation from the command line.

    python -m repro.bench                 # everything
    python -m repro.bench fig7 fig11      # selected artifacts
    python -m repro.bench --list
    python -m repro.bench --profile fig11 # + cProfile hotspot report
    python -m repro.bench md5 --backend=real   # real host processes

Prints each figure/table as an aligned text series (the same generators
the ``benchmarks/`` suite asserts against).  With ``--profile`` each
selected artifact additionally runs under cProfile: the top cumulative
entries print after the artifact and the full stats land in
``benchmarks/out/profile_<name>.pstats`` for ``pstats``/snakeviz.
"""

import argparse
import cProfile
import os
import pstats
import sys
import time

from repro.bench import figures
from repro.bench.codesize import table3


def _fig4():
    result = figures.figure4()
    lines = ["Figure 4: parallel make on 2 CPUs (virtual cycles)"]
    for scenario, makespan in result.items():
        lines.append(f"  {scenario:20s} {makespan:>12,}")
    return "\n".join(lines)


def _md5(backend="sim"):
    """The md5-circuit workload on either backend: identical computed
    value and memory image, measured wall-clock next to simulated
    cycles (the real backend's own timing column)."""
    from repro.bench.cluster_workloads import md5_circuit_main
    from repro.cluster.backend import image_digest, run_backend
    from repro.cluster.spec import ClusterSpec

    result = run_backend(md5_circuit_main(3), nnodes=4,
                         spec=ClusterSpec(backend=backend))
    lines = [
        f"md5-circuit: 4 nodes, length 3, backend={backend}",
        f"  found plaintext       {result.value}",
        f"  image digest          {image_digest(result.image)[:16]}",
        f"  simulated makespan    {result.makespan:>14,} cycles",
        f"  measured wall-clock   {result.wall_seconds:>14.3f} s",
    ]
    if backend == "real":
        stats = result.shard_stats
        verdict = "ok" if result.wire_ok else "VIOLATED"
        lines.append(
            f"  real processes        forked={stats['forked']} "
            f"adopted={stats['adopted']} fallbacks={stats['fallbacks']}")
        lines.append(
            f"  real wire             {len(result.wire)} links, "
            f"conservation {verdict}")
    return "\n".join(lines) + "\n\n" + result.network.summary()


def _serving(backend="sim"):
    if backend == "real":
        return _serving_real()
    result = figures.figure_serving()
    cdf = figures.format_series(
        "Serving: latency CDF (cycles at percentile, 4 nodes)",
        result["cdf"], value_fmt="{:,}")
    metrics = figures.format_series(
        "Serving: summary metrics (cycles; goodput = req / Gcycle)",
        result["metrics"], value_fmt="{:,}")
    return cdf + "\n\n" + metrics


def _serving_real():
    """A compact serving trace on the real backend: same latency table
    as the simulation, plus the measured wall-clock."""
    from repro.cluster.serving import serve_trace
    from repro.cluster.spec import ClusterSpec

    start = time.perf_counter()
    result = serve_trace(4, spec=ClusterSpec(backend="real"), requests=48)
    wall = time.perf_counter() - start
    return "\n".join([
        "Serving: 48-request open-loop trace, 4 nodes, backend=real",
        f"  p50 / p95 / p99       {result.p50:,} / {result.p95:,} / "
        f"{result.p99:,} cycles",
        f"  goodput               {result.goodput} req/Gcycle",
        f"  simulated span        {result.span:>14,} cycles",
        f"  measured wall-clock   {wall:>14.3f} s",
        f"  response checksum     {result.checksum}",
    ])


#: Artifacts that accept a --backend argument.
BACKEND_AWARE = {"md5", "serving"}

ARTIFACTS = {
    "fig4": _fig4,
    "md5": _md5,
    "serving": _serving,
    "fig7": lambda: figures.format_series(
        "Figure 7: Determinator relative to Linux (>1 = faster)",
        figures.figure7()),
    "fig8": lambda: figures.format_series(
        "Figure 8: speedup vs own single-CPU performance",
        figures.figure8()),
    "fig9": lambda: figures.format_series(
        "Figure 9: matmult size sweep (ratio vs Linux)",
        {"matmult": figures.figure9()}),
    "fig10": lambda: figures.format_series(
        "Figure 10: qsort size sweep (ratio vs Linux)",
        {"qsort": figures.figure10()}),
    "fig11": lambda: figures.format_series(
        "Figure 11: cluster speedup vs 1-node local execution",
        figures.figure11()),
    "fig12": lambda: figures.format_series(
        "Figure 12: dist-Linux time / Determinator time",
        figures.figure12(), value_fmt="{:7.3f}"),
    "table3": lambda: "Table 3: implementation code size\n" + table3()[0],
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the OSDI'10 Determinator evaluation.",
    )
    parser.add_argument("artifacts", nargs="*",
                        help=f"subset of: {', '.join(ARTIFACTS)}")
    parser.add_argument("--list", action="store_true",
                        help="list available artifacts and exit")
    parser.add_argument("--profile", action="store_true",
                        help="run each artifact under cProfile; dump "
                             "pstats to benchmarks/out/ and print the "
                             "top cumulative-time entries")
    parser.add_argument("--backend", choices=("sim", "real"), default="sim",
                        help="execution backend for the backend-aware "
                             f"artifacts ({', '.join(sorted(BACKEND_AWARE))})"
                             ": 'sim' (modeled wire) or 'real' (host "
                             "processes + localhost sockets)")
    args = parser.parse_args(argv)
    if args.list:
        print("\n".join(ARTIFACTS))
        return 0
    selected = args.artifacts or list(ARTIFACTS)
    unknown = [name for name in selected if name not in ARTIFACTS]
    if unknown:
        parser.error(f"unknown artifacts: {', '.join(unknown)}")
    if args.backend != "sim":
        unaware = [name for name in selected if name not in BACKEND_AWARE]
        if unaware:
            parser.error(
                f"--backend={args.backend} applies only to "
                f"{sorted(BACKEND_AWARE)}; got {', '.join(unaware)}")
    for name in selected:
        start = time.time()
        if name in BACKEND_AWARE:
            def artifact(name=name):
                return ARTIFACTS[name](args.backend)
        else:
            artifact = ARTIFACTS[name]
        if args.profile:
            profiler = cProfile.Profile()
            print(profiler.runcall(artifact))
            out_dir = os.path.join("benchmarks", "out")
            os.makedirs(out_dir, exist_ok=True)
            stats_path = os.path.join(out_dir, f"profile_{name}.pstats")
            profiler.dump_stats(stats_path)
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(12)
            print(f"[profile: {stats_path}]")
        else:
            print(artifact())
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
