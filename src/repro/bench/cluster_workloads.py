"""Distributed benchmarks via space migration (paper §6.3, Figures 11/12).

* **md5-circuit** — "the master space acts like a traveling salesman,
  migrating serially to each worker node to fork child processes, then
  retracing the same circuit to collect their results."
* **md5-tree** — "forks workers recursively in a binary tree: the master
  space forks children on two nodes, those children each fork two
  children on two nodes, etc."
* **matmult-tree** — matrix multiply with the same recursive work
  distribution; the matrix data rides the kernel's demand-paging
  protocol, which is why it levels off at two nodes.

All three run in the (logically) shared-memory model via Snap/Merge,
exactly as on a single machine — distribution is only node numbers in
child references.
"""

import hashlib

import numpy as np

from repro.bench.workloads import matmult as matmult_workload
from repro.bench.workloads.md5 import (
    CYCLES_PER_CANDIDATE,
    ALPHABET,
    candidate,
)
from repro.kernel.kernel import child_ref
from repro.kernel.machine import Machine
from repro.mem.layout import SHARED_BASE
from repro.mem.page import PAGE_SIZE

SHARE = (SHARED_BASE, 0x1000_0000)  # 256 MB window is plenty for these

#: Where the md5 target digest lives in the share: real shared input
#: data that rides the cluster transport to every worker (one page).
DIGEST_ADDR = SHARED_BASE + 0x1000


def _publish_digest(g, digest):
    """Write the search target into shared memory for the workers."""
    g.write(DIGEST_ADDR, digest.encode().ljust(PAGE_SIZE, b"\x00"))


def _read_digest(g):
    """Read the search target back out of the (copied) share."""
    return g.read(DIGEST_ADDR, 32).decode()


def _fork_on(g, local, node, entry, args):
    ref = child_ref(local, node=node)
    addr, size = SHARE
    g.kcharge(g.cost.fork_image_pages * g.cost.page_map)
    g.put(ref, regs={"entry": entry, "args": tuple(args)},
          copy=(addr, size), snap=(addr, size), start=True)
    return ref


def _join(g, ref):
    g.kcharge(g.cost.fork_image_pages * g.cost.page_scan)
    return g.get(ref, regs=True, merge=True)["r0"]


# ---------------------------------------------------------------------------
# md5
# ---------------------------------------------------------------------------

def _md5_params(length=4):
    target = candidate((len(ALPHABET) ** length) * 7 // 10, length)
    return length, hashlib.md5(target.encode()).hexdigest()


def _md5_node_worker(g, start, count, length):
    """Per-node worker: scan a contiguous candidate range (real MD5).

    The target digest is *shared input data*, read out of the worker's
    copy of the share — it reaches remote nodes over the cluster
    transport like any other page, not through a register side channel.
    """
    digest = _read_digest(g)
    g.alloc_work(count * CYCLES_PER_CANDIDATE)
    for index in range(start, start + count):
        if hashlib.md5(candidate(index, length).encode()).hexdigest() == digest:
            return index + 1
    return 0


def md5_circuit(g, nnodes, length, digest):
    """Master migrates serially around the node circuit (§6.3)."""
    _publish_digest(g, digest)
    space = len(ALPHABET) ** length
    per = (space + nnodes - 1) // nnodes
    refs = []
    for node in range(nnodes):
        start = node * per
        count = max(0, min(per, space - start))
        refs.append(
            _fork_on(g, 1, node, _md5_node_worker,
                     (start, count, length))
        )
    found = 0
    for ref in refs:          # retrace the same circuit to collect
        hit = _join(g, ref)
        if hit:
            found = hit - 1
    return candidate(found, length)


def _md5_tree_worker(g, node_lo, node_hi, start, count, length):
    """Tree worker on node ``node_lo``: split nodes, fork two subtrees,
    search the local share."""
    nodes = node_hi - node_lo
    if nodes > 1:
        mid = node_lo + nodes // 2
        left_count = (count * (mid - node_lo)) // nodes
        right_count = count - left_count
        left = _fork_on(
            g, 2, node_lo, _md5_tree_worker,
            (node_lo, mid, start, left_count, length))
        right = _fork_on(
            g, 3, mid, _md5_tree_worker,
            (mid, node_hi, start + left_count, right_count, length))
        # Children recurse; this space searches nothing itself.
        hit_l = _join(g, left)
        hit_r = _join(g, right)
        return hit_l or hit_r
    return _md5_node_worker(g, start, count, length)


def md5_tree(g, nnodes, length, digest):
    """Recursive binary-tree distribution of the same search."""
    _publish_digest(g, digest)
    space = len(ALPHABET) ** length
    ref = _fork_on(g, 1, 0, _md5_tree_worker,
                   (0, nnodes, 0, space, length))
    hit = _join(g, ref)
    return candidate((hit or 1) - 1, length)


# ---------------------------------------------------------------------------
# matmult
# ---------------------------------------------------------------------------

def _matmult_tree_worker(g, node_lo, node_hi, n, row0, rows):
    nodes = node_hi - node_lo
    if nodes > 1 and rows > 1:
        mid_node = node_lo + nodes // 2
        mid_rows = rows * (mid_node - node_lo) // nodes
        left = _fork_on(g, 2, node_lo, _matmult_tree_worker,
                        (node_lo, mid_node, n, row0, mid_rows))
        right = _fork_on(g, 3, mid_node, _matmult_tree_worker,
                         (mid_node, node_hi, n, row0 + mid_rows,
                          rows - mid_rows))
        _join(g, left)
        _join(g, right)
        return rows
    from repro.bench.api import DetApi
    return matmult_workload._multiply_block(DetApi(g), 0, n, row0, rows)


def matmult_tree(g, nnodes, n, seed):
    """Matrix multiply with recursive cross-node work distribution."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 100, size=(n, n), dtype=np.int32)
    b = rng.integers(0, 100, size=(n, n), dtype=np.int32)
    a_addr, b_addr, c_addr = matmult_workload._addrs(n)
    g.array_write(a_addr, a)
    g.array_write(b_addr, b)
    g.work(2 * n * n)
    ref = _fork_on(g, 1, 0, _matmult_tree_worker, (0, nnodes, n, 0, n))
    _join(g, ref)
    c = g.array_read(c_addr, np.int32, n * n)
    return int(c.sum() & 0xFFFFFFFF)


# ---------------------------------------------------------------------------
# matmult_skewed: no single static prefetch depth wins both phases
# ---------------------------------------------------------------------------

#: Phase-A ring slices live well above the matmult arrays and the md5
#: digest page, inside the SHARE window (so fork copy/snap covers them).
SKEW_BASE = SHARED_BASE + 0x20_0000


def _skew_slice(i, width):
    """Byte range of ring slice ``i`` (``width`` pages each)."""
    return SKEW_BASE + i * width * PAGE_SIZE, width * PAGE_SIZE


def _skew_worker(g, sl, width, work, salt):
    """Round worker: scan the round's hot slice, compute per page."""
    addr, _ = _skew_slice(sl, width)
    total = salt
    for p in range(width):
        total = (total + g.read(addr + p * PAGE_SIZE, 4)[0] + p) & 0xFF
        g.work(work)
    return total


def matmult_skewed(g, nnodes, n, rounds, width, work, seed):
    """Two-phase workload where no single prefetch depth wins (the
    adaptive ablation's any-static-loses case).

    **Phase A** marches a hot window through a ring of rewritten-every-
    round shared slices: each round the root regenerates *all* slices
    (hot shared pages), then forks one worker per node that copies and
    scans only the round's slice — the next round's workers scan the
    next slice, and so on around the ring.  The demand miss on the hot
    slice makes the kernel's sequential re-prime speculate up to
    ``4 * depth`` pages past it, and the migration ledger primes each
    visited node's queue with the freshly rewritten ring — but the root
    rewrites every slice again before the march arrives, so at static
    depth ``d`` roughly ``d`` queued transfers per node per round come
    back as ``prefetch_stale`` demand misses: wire waste depth 0 never
    pays, so shallow queues win phase A.  **Phase B** is the ordinary
    matmult tree, whose one-shot bulk streams reward exactly the deep
    queues phase A punishes.  A static knob must pick one phase to
    lose; the control plane sheds depth while phase A's stale telemetry
    accumulates, then restores it on phase B's demand bursts.
    """
    nslices = 3
    checksum = 0
    for r in range(rounds):
        # Regenerate the whole ring: every slice's every page gets a
        # fresh generation, so anything queued beyond the current hot
        # slice is doomed speculation.
        for sl in range(nslices):
            addr, _ = _skew_slice(sl, width)
            for p in range(width):
                g.write(addr + p * PAGE_SIZE, bytes([(sl + r + p) & 0xFF]) * 4)
        hot = r % nslices
        addr, size = _skew_slice(hot, width)
        # Circuit-style serial visits (fork_i, join_i): every visit is
        # a quantum boundary, so a depth lesson learned on one node's
        # churn reprices the very next node's fork — the fastest the
        # control loop can possibly react.
        for i in range(nnodes):
            ref = child_ref(16 + i, node=i)
            g.kcharge(g.cost.fork_image_pages * g.cost.page_map)
            g.put(ref, regs={"entry": _skew_worker,
                             "args": (hot, width, work, r + i)},
                  copy=(addr, size), snap=(addr, size), start=True)
            checksum = (checksum + _join(g, ref)) & 0xFFFFFFFF
    # Phase B: bulk-streaming matmult trees on the same cluster, whose
    # one-shot streams reward exactly the depth phase A punished.
    total = 0
    for rep in range(3):
        total = (total + matmult_tree(g, nnodes, n, seed + rep)) & 0xFFFFFFFF
    return (checksum * 0x10001 + total) & 0xFFFFFFFF


def matmult_skewed_main(n=192, rounds=8, width=8, work=30_000, seed=7):
    def main(g, nnodes):
        return matmult_skewed(g, nnodes, n, rounds, width, work, seed)

    return main


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------

def run_cluster(entry_builder, nnodes, spec=None, **knobs):
    """Run a cluster benchmark on ``nnodes`` uniprocessor nodes.

    ``entry_builder(g, nnodes)`` is the guest main.  Returns
    ``(makespan, machine, value)``; the makespan uses one CPU per node,
    as in the paper's cluster (§6.3).  Configuration comes from a
    :class:`~repro.cluster.spec.ClusterSpec` (``spec=``) or from the
    legacy keyword knobs it replaces (``ship_mode="full"`` for the
    naive every-page-every-hop migration baseline, ``topology``/
    ``placement`` for the routed fabric, ``prefetch_depth``/
    ``compression`` for the async fetch queues and wire compression,
    ``loss`` for the deterministic fault schedule, ``control`` for the
    adaptive control plane, ``shard_workers`` for forked host
    execution); both spellings build bit-identical machines through the
    shared ``ClusterSpec.from_kwargs`` shim.
    """
    from repro.cluster.spec import ClusterSpec
    spec = ClusterSpec.from_kwargs(spec=spec, **knobs)
    machine = Machine(nnodes=nnodes, spec=spec)

    def main(g):
        return entry_builder(g, nnodes)

    with machine:
        result = machine.run(main)
        if result.trap.name not in ("EXIT", "RET"):
            raise RuntimeError(
                f"cluster workload faulted: {result.trap.name} {result.trap_info}"
            )
        cpus = {node: spec.cpus_per_node for node in range(nnodes)}
        return result.makespan(cpus_per_node=cpus), machine, result.r0


def md5_circuit_main(length=4):
    length, digest = _md5_params(length)

    def main(g, nnodes):
        return md5_circuit(g, nnodes, length, digest)

    return main


def md5_tree_main(length=4):
    length, digest = _md5_params(length)

    def main(g, nnodes):
        return md5_tree(g, nnodes, length, digest)

    return main


def matmult_tree_main(n=128, seed=7):
    def main(g, nnodes):
        return matmult_tree(g, nnodes, n, seed)

    return main
