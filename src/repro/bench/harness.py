"""Single-call benchmark runners for both systems.

Determinator runs record a trace independent of CPU count: one run
yields makespans for any number of CPUs.  Baseline runs embed the
contention model, which depends on the core count, so the harness runs
the baseline once per CPU configuration.
"""

from repro.baseline.threadsim import LinuxMachine
from repro.bench.api import DetApi, LinuxApi
from repro.kernel.machine import Machine


class RunResult:
    """Uniform result wrapper for either backend."""

    def __init__(self, kind, value, makespan_fn, machine):
        self.kind = kind
        #: The workload's return value (checksums/verification flags).
        self.value = value
        self._makespan = makespan_fn
        #: The underlying Machine or LinuxMachine (for counters).
        self.machine = machine

    def makespan(self, ncpus=None, cpus_per_node=None):
        """Virtual completion time."""
        return self._makespan(ncpus, cpus_per_node)

    def __repr__(self):
        return f"<RunResult {self.kind} value={self.value!r}>"


def run_determinator(workload, params, cost=None, nnodes=1, tcp_mode=False,
                     dirty_tracking=True):
    """Run ``workload.run(api, **params)`` on a Determinator machine."""
    machine = Machine(cost=cost, nnodes=nnodes, tcp_mode=tcp_mode,
                      dirty_tracking=dirty_tracking)

    def main(g):
        return workload.run(DetApi(g), **params)

    with machine:
        result = machine.run(main)
        if result.trap.name not in ("EXIT", "RET"):
            raise RuntimeError(
                f"workload faulted on Determinator: {result.trap.name} "
                f"{result.trap_info}"
            )

        def makespan(ncpus=None, cpus_per_node=None):
            return result.makespan(ncpus=ncpus, cpus_per_node=cpus_per_node)

        return RunResult("determinator", result.r0, makespan, machine)


def run_linux(workload, params, ncpus, cost=None, seed=None):
    """Run ``workload.run(api, **params)`` on the Linux baseline with
    ``ncpus`` cores."""
    machine = LinuxMachine(cost=cost, ncpus=ncpus, seed=seed)

    def main(lt):
        return workload.run(LinuxApi(lt), **params)

    result = machine.run(main)

    def makespan(ncpus_=None, cpus_per_node=None):
        return result.makespan(ncpus=ncpus_ if ncpus_ is not None else ncpus)

    return RunResult("linux", result.value, makespan, machine)
