"""Table 3 analogue: implementation code size by component.

The paper counts lines containing semicolons per component of
Determinator and its PIOS instructional subset.  The Python analogue
counts non-blank, non-comment source lines per component of this
reproduction, mapped onto the paper's component rows.
"""

import os

#: Paper component -> list of package-relative source directories.
COMPONENTS = {
    "Kernel core": ["kernel", "mem"],
    "Hardware/device drivers": ["timing", "cluster"],
    "User-level runtime": ["runtime"],
    "Generic library code": ["common", "bench/api.py", "bench/harness.py"],
    "User-level programs": ["bench/workloads", "bench/cluster_workloads.py",
                            "bench/figures.py", "bench/codesize.py"],
}


def _iter_py_files(path):
    if os.path.isfile(path):
        yield path
        return
    for root, _dirs, files in os.walk(path):
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def count_lines(path):
    """Non-blank, non-comment (and non-docstring-only) lines in one file."""
    total = 0
    in_doc = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if in_doc:
                if stripped.endswith('"""') or stripped.endswith("'''"):
                    in_doc = False
                continue
            if stripped.startswith("#"):
                continue
            if stripped.startswith(('"""', "'''")):
                quote = stripped[:3]
                body = stripped[3:]
                if not (body.endswith(quote) and len(body) >= 3) and \
                        not stripped == quote * 2:
                    if not body.endswith(quote):
                        in_doc = True
                continue
            total += 1
    return total


def component_sizes(src_root=None):
    """Dict component -> source-line count, plus a 'Total' entry."""
    if src_root is None:
        src_root = os.path.dirname(os.path.abspath(__file__))
        src_root = os.path.dirname(src_root)   # .../repro
    sizes = {}
    for component, paths in COMPONENTS.items():
        count = 0
        for rel in paths:
            full = os.path.join(src_root, rel)
            if not os.path.exists(full):
                continue
            for path in _iter_py_files(full):
                count += count_lines(path)
        sizes[component] = count
    sizes["Total"] = sum(sizes.values())
    return sizes


def table3(src_root=None):
    """Formatted Table 3 analogue (component, lines)."""
    sizes = component_sizes(src_root)
    rows = [
        "Component                       Source lines",
        "-" * 45,
    ]
    for component, count in sizes.items():
        if component == "Total":
            rows.append("-" * 45)
        rows.append(f"{component:30s} {count:>12,}")
    return "\n".join(rows), sizes
