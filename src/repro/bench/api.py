"""Common parallel API so each workload is written exactly once.

The memory/compute surface (``work``, ``read``/``write``, typed loads,
array transfers) is identical on both backends by construction (the
:class:`~repro.kernel.guest.Guest` and
:class:`~repro.baseline.threadsim.LinuxThread` share it).  This module
adds the two parallel constructs the benchmarks need:

* ``fork_join(body, args_list)`` — run one child per argument tuple and
  collect their return values;
* ``parallel_rounds(nworkers, nrounds, body)`` — barrier-style phases:
  every worker runs ``body(api, tid, round)`` once per round, with all
  workers' shared-memory writes visible to everyone at the next round.

On Determinator these map to private-workspace thread fork/join and
barrier cycles (Snap/Merge); on the baseline to pthread create/join and
cheap barrier arrivals (workers re-dispatched per round, charged at
barrier cost rather than thread-creation cost).
"""

from repro.runtime.threads import ThreadGroup, barrier_arrive


class DetApi:
    """Determinator backend: private workspace threads (§4.4)."""

    kind = "determinator"

    def __init__(self, g):
        self.h = g
        self._spawn_tg = None
        self._spawn_seq = 0
        # Delegate the common memory/compute surface.
        for name in ("work", "alloc_work", "read", "write", "load", "store",
                     "array_read", "array_write", "charge"):
            setattr(self, name, getattr(g, name))

    def fork_join(self, body, args_list, base=0x100):
        """One private-workspace child per args tuple; merge at joins."""
        tg = ThreadGroup(self.h, base=base)
        for tid, args in enumerate(args_list):
            tg.fork(_det_worker, (body, tid, tuple(args)))
        return tg.join_all()

    def spawn(self, body, args, base=0x4000):
        """Start one child asynchronously; the caller keeps computing and
        must :meth:`join` the returned handle (tree-recursive workloads)."""
        if self._spawn_tg is None:
            self._spawn_tg = ThreadGroup(self.h, base=base)
        seq = self._spawn_seq
        self._spawn_seq += 1
        return self._spawn_tg.fork(_det_worker, (body, seq, tuple(args)))

    def join(self, handle):
        """Join a spawned child, merging its shared-memory changes."""
        return self._spawn_tg.join(handle)

    def parallel_rounds(self, nworkers, nrounds, body, base=0x100):
        """Barrier phases via merge + re-snapshot cycles (§4.4)."""
        tg = ThreadGroup(self.h, base=base)
        for tid in range(nworkers):
            tg.fork(_det_round_worker, (body, tid, nrounds))
        return tg.run_barrier_rounds(max_rounds=nrounds + 1)


def _det_worker(g, body, tid, args):
    return body(DetApi(g), tid, *args)


def _det_round_worker(g, body, tid, nrounds):
    api = DetApi(g)
    value = None
    for round_ in range(nrounds):
        value = body(api, tid, round_)
        if round_ < nrounds - 1:
            barrier_arrive(g)
    return value


class LinuxApi:
    """Baseline backend: direct shared memory, pthreads costs."""

    kind = "linux"

    def __init__(self, lt):
        self.h = lt
        self._spawn_seq = 0
        for name in ("work", "alloc_work", "read", "write", "load", "store",
                     "array_read", "array_write", "charge"):
            setattr(self, name, getattr(lt, name))

    def fork_join(self, body, args_list, base=None):
        handles = [
            self.h.spawn(_linux_worker, (body, tid, tuple(args)))
            for tid, args in enumerate(args_list)
        ]
        return [self.h.join(handle) for handle in handles]

    def spawn(self, body, args, base=None):
        """pthread_create analogue of :meth:`DetApi.spawn`."""
        seq = self._spawn_seq
        self._spawn_seq += 1
        return self.h.spawn(_linux_worker, (body, seq, tuple(args)))

    def join(self, handle):
        return self.h.join(handle)

    def parallel_rounds(self, nworkers, nrounds, body, base=None):
        """Per-round dispatch charged at barrier cost (pthread_barrier),
        not thread-creation cost."""
        results = [None] * nworkers
        for round_ in range(nrounds):
            handles = [
                self.h.spawn(_linux_worker, (body, tid, (round_,)), light=True)
                for tid in range(nworkers)
            ]
            for tid, handle in enumerate(handles):
                results[tid] = self.h.join(handle, light=True)
        return results


def _linux_worker(lt, body, tid, args):
    return body(LinuxApi(lt), tid, *args)
