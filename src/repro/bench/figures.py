"""One generator per evaluation figure/table (paper §6).

Every function returns plain dict/list series (and can pretty-print
them), so the ``benchmarks/`` harness and EXPERIMENTS.md are generated
from the same code.  Absolute cycle counts are model outputs; what is
compared against the paper is the *shape*: who wins, by what factor,
where scaling levels off.
"""

from repro.baseline.distsim import DistLinux
from repro.bench import cluster_workloads as cw
from repro.bench.harness import run_determinator, run_linux
from repro.bench.workloads import ALL
from repro.cluster.serving import serve_trace
from repro.cluster.spec import ClusterSpec
from repro.kernel.machine import Machine
from repro.runtime.make import Make, MakeRule
from repro.runtime.process import unix_root
from repro.timing.model import CostModel

#: Figure-scale workload parameters (scaled from the paper's sizes so a
#: full regeneration runs in seconds on a laptop; see EXPERIMENTS.md).
FIG7_SIZES = {
    "md5": {"length": 4, "rounds": 8},
    "matmult": {"n": 512},
    "qsort": {"n": 1 << 18},
    "blackscholes": {"noptions": 1 << 15, "nruns": 32,
                     "quantum": 5_000_000},
    "fft": {"n": 1 << 14},
    "lu_cont": {"n": 128, "block": 16},
    "lu_noncont": {"n": 128, "block": 16},
}

CPU_COUNTS = (1, 2, 4, 8, 12)


def _params_for(name, nworkers):
    """Figure-scale parameters; overrides pass through ``default_params``
    so derived values (planted digest, fork depth) stay consistent."""
    mod, extra = ALL[name]
    kwargs = dict(FIG7_SIZES.get(name, {}))
    kwargs.update(extra)
    return mod, mod.default_params(nworkers, **kwargs)


# ---------------------------------------------------------------------------
# Figures 7 & 8: single-node multicore
# ---------------------------------------------------------------------------

def figure7(cpu_counts=CPU_COUNTS, benchmarks=None):
    """Determinator performance relative to Linux/pthreads.

    Returns {benchmark: {ncpus: linux_time / determinator_time}} — values
    above 1.0 mean Determinator is faster.
    """
    series = {}
    for name in benchmarks or ALL:
        series[name] = {}
        for ncpus in cpu_counts:
            mod, params = _params_for(name, ncpus)
            det = run_determinator(mod, params)
            lin = run_linux(mod, params, ncpus=ncpus)
            assert det.value == lin.value, f"{name}: result mismatch"
            series[name][ncpus] = lin.makespan() / det.makespan(ncpus)
    return series


def figure8(cpu_counts=CPU_COUNTS, benchmarks=None):
    """Determinator parallel speedup over its own 1-CPU performance.

    Returns {benchmark: {ncpus: speedup}}.
    """
    series = {}
    for name in benchmarks or ALL:
        mod, params1 = _params_for(name, 1)
        base = run_determinator(mod, params1).makespan(1)
        series[name] = {}
        for ncpus in cpu_counts:
            mod, params = _params_for(name, ncpus)
            det = run_determinator(mod, params)
            series[name][ncpus] = base / det.makespan(ncpus)
    return series


# ---------------------------------------------------------------------------
# Figures 9 & 10: granularity sweeps
# ---------------------------------------------------------------------------

def figure9(sizes=(16, 32, 64, 128, 256, 512), ncpus=12):
    """matmult vs Linux for varying matrix size: {n: ratio}."""
    mod, _ = ALL["matmult"]
    series = {}
    for n in sizes:
        params = mod.default_params(ncpus, n=n)
        det = run_determinator(mod, params)
        lin = run_linux(mod, params, ncpus=ncpus)
        assert det.value == lin.value
        series[n] = lin.makespan() / det.makespan(ncpus)
    return series


def figure10(sizes=(1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18), ncpus=12):
    """qsort vs Linux for varying array size: {n: ratio}."""
    mod, _ = ALL["qsort"]
    series = {}
    for n in sizes:
        params = mod.default_params(ncpus, n=n)
        det = run_determinator(mod, params)
        lin = run_linux(mod, params, ncpus=ncpus)
        assert det.value == lin.value
        series[n] = lin.makespan() / det.makespan(ncpus)
    return series


# ---------------------------------------------------------------------------
# Figure 11: distributed speedup over 1-node local execution
# ---------------------------------------------------------------------------

FIG11_NODES = (1, 2, 4, 8, 16, 32)


def figure11(node_counts=FIG11_NODES, md5_length=4, matmult_n=512):
    """Cluster speedup (log-log in the paper): {series: {nodes: speedup}}.

    ``matmult-naive`` replays matmult-tree over the paper's simplistic
    protocol (full-image shipping, one message per page) — the
    configuration whose data volume makes it level off at two nodes, as
    the paper reports.  ``matmult-tree`` runs the delta+batched
    transport, which lifts the plateau but stays data-movement-bound
    (see DESIGN.md on this deliberate divergence).
    """
    naive_spec = ClusterSpec(ship_mode="full", cost=CostModel(msg_batch=1))
    builders = {
        "md5-circuit": (lambda: cw.md5_circuit_main(md5_length),
                        ClusterSpec()),
        "md5-tree": (lambda: cw.md5_tree_main(md5_length), ClusterSpec()),
        "matmult-tree": (lambda: cw.matmult_tree_main(matmult_n),
                         ClusterSpec()),
        "matmult-naive": (lambda: cw.matmult_tree_main(matmult_n),
                          naive_spec),
    }
    series = {}
    for name, (build, spec) in builders.items():
        base_time, _, base_value = cw.run_cluster(build(), nnodes=1,
                                                  spec=spec)
        series[name] = {}
        for nodes in node_counts:
            time, _, value = cw.run_cluster(build(), nnodes=nodes, spec=spec)
            assert value == base_value, f"{name}: result drift at {nodes} nodes"
            series[name][nodes] = base_time / time
    return series


#: Fabric presets compared by :func:`figure11_topology` — rack size 2
#: keeps every preset multi-rack from 4 nodes up.
FIG11_TOPOLOGIES = (
    ("flat", "flat"),
    ("two-tier", "two_tier:2"),
    ("fat-tree", "fat_tree:2"),
)


#: Demand-paging configurations compared by :func:`figure11_prefetch`:
#: the summary-only migration protocol, stop-and-wait vs pipelined
#: prefetch vs pipelined + wire compression, with the eager delta
#: default as the envelope.
FIG11_PREFETCH_CELLS = (
    ("eager-delta", ClusterSpec()),
    ("stopwait", ClusterSpec(ship_mode="demand")),
    ("pipelined", ClusterSpec(ship_mode="demand", prefetch_depth=32)),
    ("pipelined+comp", ClusterSpec(ship_mode="demand", prefetch_depth=32,
                                   compression=True)),
)


def figure11_prefetch(node_counts=(1, 2, 4, 8), matmult_n=256,
                      topology="two_tier:2"):
    """Figure 11's data-bound series under demand paging, per transport
    feature: stop-and-wait vs pipelined prefetch vs prefetch +
    compression.

    Returns ``{cell: {nodes: speedup}}`` for matmult-tree on the
    oversubscribed two-tier fabric, all cells sharing the 1-node
    baseline (a single node never touches the wire).  Stop-and-wait
    demand paging is the lower envelope; the async fetch queues lift
    it by overlapping transfers with compute, and compression lifts it
    further by shrinking what must serialize on the core links.  The
    eager delta-shipping default rides along as the upper envelope.
    """
    base_time, _, base_value = cw.run_cluster(
        cw.matmult_tree_main(matmult_n), nnodes=1)
    series = {}
    for label, cell in FIG11_PREFETCH_CELLS:
        spec = cell.with_(topology=topology)
        series[label] = {}
        for nodes in node_counts:
            if nodes == 1:
                series[label][1] = 1.0
                continue
            time, _, value = cw.run_cluster(
                cw.matmult_tree_main(matmult_n), nnodes=nodes, spec=spec)
            assert value == base_value, \
                f"{label}: result drift at {nodes} nodes"
            series[label][nodes] = base_time / time
    return series


def figure11_topology(node_counts=(1, 2, 4, 8), matmult_n=256,
                      placement="round_robin"):
    """Figure 11's data-bound series, re-run per fabric.

    Returns ``{topology: {nodes: speedup}}`` for matmult-tree — the
    workload whose scaling the network sets.  All fabrics share the
    1-node baseline (a single node never touches the wire), so the
    series are directly comparable: the flat fabric is the legacy
    upper envelope, the oversubscribed two-tier fabric bends the knee
    earliest, and the full-bisection fat tree sits between.
    """
    base_time, _, base_value = cw.run_cluster(
        cw.matmult_tree_main(matmult_n), nnodes=1)
    series = {}
    for label, preset in FIG11_TOPOLOGIES:
        spec = ClusterSpec(topology=preset, placement=placement)
        series[label] = {}
        for nodes in node_counts:
            if nodes == 1:
                # A single node never touches the wire: every fabric's
                # 1-node cell *is* the shared baseline.
                series[label][1] = 1.0
                continue
            time, _, value = cw.run_cluster(
                cw.matmult_tree_main(matmult_n), nnodes=nodes, spec=spec)
            assert value == base_value, \
                f"{label}: result drift at {nodes} nodes"
            series[label][nodes] = base_time / time
    return series


# ---------------------------------------------------------------------------
# Figure 12: Determinator vs distributed-memory Linux equivalents
# ---------------------------------------------------------------------------

#: Deterministic drop rates of figure 12's loss series: the reliability
#: dimension the TCP-mode comparison was missing.  Schedules are nested
#: across rates (one seed), so the series moves monotonically.
FIG12_LOSS_RATES = (("loss-0.1%", 0.001), ("loss-1%", 0.01))


def figure12(node_counts=(1, 2, 4, 8, 16), md5_length=4, matmult_n=512):
    """{benchmark: {nodes: linux_dist_time / determinator_time}}.

    Also checks the paper's §6.3 claim that TCP-like framing on the
    Determinator protocol costs < 2%: returned under key ``"tcp-impact"``
    (measured on the data-heavy matmult-tree, the worst case).  A
    ``"comp-saving"`` series reports the fraction of matmult-tree's
    page payload bytes that zero-suppression/RLE wire compression
    removes at each cluster size (0 at one node — nothing crosses).
    The ``"loss-*"`` series report matmult-tree's relative slowdown
    under deterministic packet loss with retransmission (0 / 0.1% / 1%
    drop; the zero-rate run *is* the ``matmult-tree`` denominator) —
    computed values are asserted identical, so what the series shows is
    purely the retransmission surcharge.
    """
    from repro.bench.workloads.md5 import ALPHABET, CYCLES_PER_CANDIDATE
    from repro.cluster import NetworkStats

    space = len(ALPHABET) ** md5_length
    md5_total = space * CYCLES_PER_CANDIDATE
    mm_total = 2 * matmult_n ** 3 * 2  # flops * cycles-per-flop
    mm_bytes = matmult_n * matmult_n * 4

    series = {"md5-tree": {}, "matmult-tree": {}, "tcp-impact": {},
              "comp-saving": {}}
    series.update({name: {} for name, _ in FIG12_LOSS_RATES})
    for nodes in node_counts:
        det_md5, _, _ = cw.run_cluster(cw.md5_tree_main(md5_length), nodes)
        lin_md5 = DistLinux(nnodes=nodes).run_master_workers(
            worker_cycles=md5_total // nodes, input_bytes=256,
            output_bytes=64, tree=True,
        )
        series["md5-tree"][nodes] = lin_md5 / det_md5

        det_mm, _, mm_value = cw.run_cluster(
            cw.matmult_tree_main(matmult_n), nodes)
        lin_mm = DistLinux(nnodes=nodes).run_master_workers(
            worker_cycles=mm_total // nodes,
            input_bytes=mm_bytes + mm_bytes // nodes,
            output_bytes=mm_bytes // nodes, tree=True,
        )
        series["matmult-tree"][nodes] = lin_mm / det_mm

        det_tcp, _, _ = cw.run_cluster(
            cw.matmult_tree_main(matmult_n), nodes,
            spec=ClusterSpec(tcp_mode=True)
        )
        series["tcp-impact"][nodes] = det_tcp / det_mm - 1.0

        det_comp, comp_machine, _ = cw.run_cluster(
            cw.matmult_tree_main(matmult_n), nodes,
            spec=ClusterSpec(compression=True)
        )
        assert det_comp <= det_mm, "compression must never slow a run"
        series["comp-saving"][nodes] = \
            1.0 - NetworkStats(comp_machine).compression_ratio()

        for name, rate in FIG12_LOSS_RATES:
            det_loss, loss_machine, loss_value = cw.run_cluster(
                cw.matmult_tree_main(matmult_n), nodes,
                spec=ClusterSpec(loss=rate))
            assert loss_value == mm_value, \
                f"loss must be cost-only ({name}, {nodes} nodes)"
            assert loss_machine.transport.conservation_ok()
            series[name][nodes] = det_loss / det_mm - 1.0
    return series


# ---------------------------------------------------------------------------
# Serving figure: request-latency CDFs (tail latency, not makespan)
# ---------------------------------------------------------------------------

#: Scenario cells of :func:`figure_serving`, each one ClusterSpec built
#: once and passed through — the production-shaped compositions of the
#: existing machinery (loss, oversubscription, placement).
FIG_SERVING_CELLS = (
    ("lossless", ClusterSpec()),
    ("loss-1%", ClusterSpec(loss=0.01)),
    ("loss-5%", ClusterSpec(loss=0.05)),
    ("two-tier", ClusterSpec(topology="two_tier:2")),
    ("two-tier+locality", ClusterSpec(topology="two_tier:2",
                                      placement="locality")),
)

#: Percentile grid the latency CDF is reported on.
SERVING_CDF_GRID = (10, 25, 50, 75, 90, 95, 99, 100)


def figure_serving(nnodes=4, requests=160, mean_gap=240_000, seed=11,
                   cells=FIG_SERVING_CELLS):
    """Per-request latency CDFs of the open-loop serving trace.

    The first figure in the repo measured in *request latency* rather
    than makespan: one deterministic arrival trace (seeded Poisson with
    diurnal bursts) served under each scenario spec, reduced to a
    latency-at-percentile table (cycles at each grid percentile — the
    CDF transposed) plus the summary metrics a service owner reads.

    Returns ``{"cdf": {cell: {percentile: cycles}},
    "metrics": {cell: {p50, p95, p99, goodput}}}``.  All integers,
    bit-identical for a given seed.
    """
    cdf = {}
    metrics = {}
    for label, spec in cells:
        result = serve_trace(nnodes, spec=spec, requests=requests,
                             mean_gap=mean_gap, seed=seed)
        cdf[label] = {q: result.percentile(q) for q in SERVING_CDF_GRID}
        metrics[label] = {
            "p50": result.p50, "p95": result.p95, "p99": result.p99,
            "goodput": result.goodput,
        }
    return {"cdf": cdf, "metrics": metrics}


# ---------------------------------------------------------------------------
# Figure 4: parallel make scheduling scenarios
# ---------------------------------------------------------------------------

FIG4_TASKS = (3_000_000, 500_000, 1_500_000)   # long, short, medium


def _unix_make_makespan(tasks, jobs, ncpus=2):
    """Analytic first-to-finish-wait schedule (Unix semantics)."""
    import heapq

    pending = list(tasks)
    running = []   # heap of finish times
    now = 0
    slots = ncpus if jobs is None else min(jobs, ncpus)
    while pending or running:
        while pending and len(running) < slots:
            heapq.heappush(running, now + pending.pop(0))
        now = heapq.heappop(running)   # wait() returns first finisher
    return now


def _det_make_makespan(tasks, jobs, ncpus=2):
    """Real run of the mini-make under the deterministic runtime."""
    rules = [MakeRule(f"task{i + 1}", duration=d) for i, d in enumerate(tasks)]

    def init(rt):
        Make(rt, rules).build(jobs=jobs)
        return 0

    with Machine() as machine:
        result = machine.run(unix_root(init))
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        return result.makespan(ncpus=ncpus)


def figure4(tasks=FIG4_TASKS, ncpus=2):
    """The four Figure 4 scenarios: makespans for (a) Unix -j,
    (b) Determinator -j, (c) Unix -j2, (d) Determinator -j2."""
    return {
        "unix -j": _unix_make_makespan(tasks, None, ncpus),
        "determinator -j": _det_make_makespan(tasks, None, ncpus),
        "unix -j2": _unix_make_makespan(tasks, 2, ncpus),
        "determinator -j2": _det_make_makespan(tasks, 2, ncpus),
    }


# ---------------------------------------------------------------------------
# Pretty printing
# ---------------------------------------------------------------------------

def format_series(title, series, value_fmt="{:6.2f}"):
    """Render a {row: {col: value}} dict as an aligned text table."""
    lines = [title]
    cols = sorted({col for row in series.values() for col in row})
    header = f"{'':16s}" + "".join(f"{col:>10}" for col in cols)
    lines.append(header)
    for row_name, row in series.items():
        cells = "".join(
            f"{value_fmt.format(row[col]):>10}" if col in row else f"{'-':>10}"
            for col in cols
        )
        lines.append(f"{row_name:16s}{cells}")
    return "\n".join(lines)
