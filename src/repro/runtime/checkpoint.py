"""Checkpoint/rollback of space subtrees via the kernel Tree option.

The paper's introduction motivates determinism as "the foundation of
replay debugging, fault tolerance and accountability": if execution is
deterministic, a checkpoint plus the input log *is* the recovery story.
This module provides that mechanism as user-level runtime code:

* a **freezer** child space whose own children hold frozen copies of
  computation subtrees (registers + memory + descendants, all
  copy-on-write, so checkpoints are cheap);
* ``save(slot, tag)`` — Tree-copy the caller's child into the freezer;
* ``restore(slot, tag)`` — Tree-copy a frozen image back over the child;
* combined with instruction limits, this quantizes a computation into
  checkpointable epochs (see ``examples/fault_tolerance.py``).

Because execution is deterministic, re-running from a restored
checkpoint reproduces the original execution exactly — including any
crash — unless the supervisor changes the subtree's inputs first.

**Restartability convention.**  Real Determinator freezes the CPU
register state mid-instruction; our register file holds function-entry
continuations (DESIGN.md), so a *restored* space restarts at its entry.
Checkpointable computations must therefore keep their progress in
simulated memory — which is exactly the state the freezer preserves —
and derive their position from it on entry (the standard
checkpoint-restart loop structure).  Spaces parked by instruction limits
that are *not* restored resume in place as usual.
"""

from repro.common.errors import RuntimeApiError

#: Default child slot that hosts the freezer space.
FREEZER_SLOT = 0xF000

#: Freezer-space register that mirrors the tag -> child-number map.  The
#: freezer is pure storage (never started, never Tree-copied), so its
#: register file is free metadata space; the mirror makes a finished
#: machine's checkpoints enumerable *post mortem* (``repro.debug``)
#: without access to the live :class:`Checkpointer`.  Written host-side
#: — like :meth:`Checkpointer.drop`'s direct ``destroy()`` — so keeping
#: the directory costs no virtual time.
TAG_REGISTER = "r7"


class Checkpointer:
    """Manage frozen images of one space's children.

    Used from guest code::

        ckpt = Checkpointer(g)
        g.put(1, regs={...}, start=True, limit=QUANTUM)
        g.get(1, regs=True)              # child parked at the limit
        ckpt.save(1, "epoch-0")          # freeze it
        ...
        ckpt.restore(1, "epoch-0")       # roll back
        g.put(1, start=True, limit=QUANTUM)
    """

    def __init__(self, g, freezer_slot=FREEZER_SLOT):
        self.g = g
        self.freezer_slot = freezer_slot
        #: tag -> freezer-child number.
        self._tags = {}
        self._next = 1
        #: tag -> pages the child dirtied since its previous save (None
        #: for a first/full save or when the ledger is unavailable).
        #: This is the incremental-checkpoint size a delta-encoded
        #: freezer would ship (DESIGN.md).
        self.delta_pages = {}
        #: child_slot -> dirty-ledger token at the last save.
        self._save_tokens = {}
        # Materialize the freezer space (never started; pure storage).
        g.put(freezer_slot)
        self._publish_tags()

    def _publish_tags(self):
        """Mirror the tag directory into the freezer space's
        :data:`TAG_REGISTER` (host-side; see the constant's docstring)."""
        freezer = self.g.space.children.get(self.freezer_slot)
        if freezer is not None:
            freezer.regs[TAG_REGISTER] = dict(self._tags)

    def _record_delta(self, child_slot, tag):
        """Record the dirty delta since the previous save of this slot."""
        child = self.g.space.children.get(child_slot)
        if child is None:
            return None
        aspace = child.addrspace
        if not aspace.tracks_dirty():
            self.delta_pages[tag] = None
            return None
        prev = self._save_tokens.get(child_slot)
        delta = None
        # Tokens are bare clock values: only honor one minted by this
        # very address space (a Tree-copy or restore installs a fresh
        # clone with a fresh clock, making old tokens meaningless).
        if prev is not None and prev[0] is aspace:
            dirty = aspace.dirty_since(prev[1])
            delta = len(dirty) if dirty is not None else None
            if delta is not None:
                # The ledger walk that sizes the delta.
                self.g.kcharge(delta * self.g.cost.page_track)
        self._save_tokens[child_slot] = (aspace, aspace.dirty_token())
        self.delta_pages[tag] = delta
        return delta

    def save(self, child_slot, tag):
        """Freeze the subtree at ``child_slot`` under ``tag``.

        The child must be stopped (Ret, trap, instruction limit, or
        exit); overwrites any previous checkpoint with the same tag.
        Records the dirty-page delta since the previous save of the same
        slot in :attr:`delta_pages`.
        """
        tagno = self._tags.get(tag)
        if tagno is None:
            tagno = self._next
            self._next += 1
        self.g.put(self.freezer_slot, tree=(child_slot, tagno))
        # Bookkeeping only after the Tree-copy succeeded: a failed save
        # (e.g. the child still running) must not advance the token or
        # record a delta for a checkpoint that never existed.
        self._record_delta(child_slot, tag)
        self._tags[tag] = tagno
        self._publish_tags()
        return tag

    def restore(self, child_slot, tag):
        """Replace ``child_slot``'s subtree with the frozen image."""
        tagno = self._tags.get(tag)
        if tagno is None:
            raise RuntimeApiError(f"no checkpoint tagged {tag!r}")
        self.g.get(self.freezer_slot, tree=(tagno, child_slot))
        # The restored child is a fresh clone with a fresh write clock;
        # the old token would misread as "nothing dirty".  Drop it so
        # the next save of this slot is a full one.
        self._save_tokens.pop(child_slot, None)

    def drop(self, tag):
        """Discard a checkpoint (frees its copy-on-write references)."""
        tagno = self._tags.pop(tag, None)
        if tagno is None:
            raise RuntimeApiError(f"no checkpoint tagged {tag!r}")
        freezer = self.g.space.children.get(self.freezer_slot)
        frozen = freezer.children.get(tagno) if freezer else None
        if frozen is not None:
            frozen.destroy()
        self._publish_tags()

    def tags(self):
        """Currently saved checkpoint tags, in save order."""
        return sorted(self._tags, key=self._tags.get)


# -- post-mortem enumeration (the debugger's entry points) -----------------

def find_freezers(root):
    """Every (owner_space, freezer_space) pair under ``root``.

    A freezer is recognized by its :data:`TAG_REGISTER` directory (a
    dict), which :class:`Checkpointer` maintains from construction on —
    so an empty freezer is still found.  Walk order is deterministic
    (depth-first, children by number).
    """
    out = []
    for space in root.walk():
        for num in sorted(space.children):
            child = space.children[num]
            if isinstance(child.regs.get(TAG_REGISTER), dict):
                out.append((space, child))
    return out


def checkpoint_tags(freezer):
    """Tags saved in ``freezer``, in save order (tagno order)."""
    directory = freezer.regs.get(TAG_REGISTER)
    if not isinstance(directory, dict):
        raise RuntimeApiError(
            f"space {freezer.uid} carries no checkpoint directory")
    return sorted(directory, key=directory.get)


def frozen_image(freezer, tag):
    """The frozen :class:`~repro.kernel.space.Space` saved under ``tag``."""
    directory = freezer.regs.get(TAG_REGISTER)
    tagno = directory.get(tag) if isinstance(directory, dict) else None
    frozen = freezer.children.get(tagno) if tagno is not None else None
    if frozen is None:
        raise RuntimeApiError(f"no checkpoint tagged {tag!r}")
    return frozen


def run_with_checkpoints(g, entry, args=(), quantum=1_000_000,
                         child_slot=0x700, keep=4):
    """Drive ``entry`` in a child space, checkpointing every quantum.

    Returns ``(final_regs_view, checkpointer, epochs)`` — the caller can
    roll back to any retained epoch tag (``"epoch-N"``) and re-drive.
    """
    from repro.kernel.traps import Trap

    ckpt = Checkpointer(g)
    g.put(child_slot, regs={"entry": entry, "args": tuple(args)},
          start=True, limit=quantum)
    epochs = 0
    while True:
        view = g.get(child_slot, regs=True)
        if view["trap"] is not Trap.INSN_LIMIT:
            return view, ckpt, epochs
        ckpt.save(child_slot, f"epoch-{epochs}")
        if epochs >= keep:
            try:
                ckpt.drop(f"epoch-{epochs - keep}")
            except RuntimeApiError:
                pass
        epochs += 1
        g.put(child_slot, start=True, limit=quantum)
