"""Shared-memory multithreading in the private workspace model (§4.4).

``thread_fork`` copies the shared region into a child space, snapshots
it, and starts the child; ``thread_join`` merges the child's changes back
into the parent, detecting write/write conflicts.  Reads therefore see
only causally-prior writes — the Figure 1 actor update pattern is
race-free — and concurrent writes to the same bytes are reliably reported
at the join, independent of any schedule.

``ThreadGroup`` adds the barrier pattern: "the parent calls Get with
Merge to collect each child's changes before the barrier, then calls Put
with Copy and Snap to resume each child with a new shared memory snapshot
containing all threads' prior results."

Thread stacks are host-Python stacks and thus automatically
thread-private, matching the paper's default placement of stacks outside
the shared region.
"""

from repro.common.errors import RuntimeApiError
from repro.kernel.traps import Trap
from repro.mem.layout import SHARED_BASE, SHARED_END

#: Default shared region (the heap + globals analogue).
DEFAULT_SHARE = (SHARED_BASE, SHARED_END - SHARED_BASE)

#: Ret status a child uses to announce it reached the barrier.
ST_BARRIER = 0x7E01


def image_map_cost(g):
    """Cycles to COW-map the program image's pages at a fresh fork.

    Copying the image's page mappings (text/data/runtime) is a fixed
    per-fork cost beyond the workload's own pages, independent of dirty
    tracking — the mappings must exist either way."""
    return g.cost.fork_image_pages * g.cost.page_map


def image_resnap_cost(g):
    """Cycles to refresh a thread's reference snapshot over the image.

    With the dirty ledger the kernel re-snaps incrementally
    (Snapshot.recapture): unchanged image pages cost one ledger probe,
    not a fresh COW mapping."""
    cost = g.cost
    per_page = cost.page_track if g.machine.dirty_tracking else cost.page_map
    return cost.fork_image_pages * per_page


def image_scan_cost(g):
    """Cycles Merge spends deciding the image pages are unchanged.

    The dirty ledger never visits clean pages, so with tracking the
    image costs a ledger walk (page_track) instead of a PTE scan
    (page_scan) per page."""
    cost = g.cost
    per_page = cost.page_track if g.machine.dirty_tracking else cost.page_scan
    return cost.fork_image_pages * per_page


class ThreadFault(RuntimeApiError):
    """A joined thread stopped on a fault trap."""

    def __init__(self, childno, trap, info):
        self.childno = childno
        self.trap = trap
        super().__init__(f"thread {childno} faulted: {trap.name} ({info})")


def thread_fork(g, childno, entry, args=(), share=DEFAULT_SHARE, limit=None):
    """Fork a child thread: Copy + Snap + Regs + Start in one Put (§4.4)."""
    addr, size = share
    g.kcharge(image_map_cost(g))
    g.put(
        childno,
        regs={"entry": entry, "args": tuple(args)},
        copy=(addr, size),
        snap=(addr, size),
        start=True,
        limit=limit,
    )


def thread_join(g, childno, merge=True):
    """Join a child thread: Get with Merge collects its shared-memory
    changes; returns the child's r0 (its entry's return value).

    Write/write conflicts surface here as
    :class:`~repro.common.errors.MergeConflictError` — at the join of the
    second conflicting child, exactly as in the paper's §2.2 example.
    """
    g.kcharge(image_scan_cost(g))
    view = g.get(childno, regs=True, merge=merge)
    trap = view["trap"]
    if trap not in (Trap.EXIT, Trap.RET):
        raise ThreadFault(childno, trap, view["trap_info"])
    return view["r0"]


def barrier_arrive(g, value=0):
    """Called by a child thread: stop at a barrier until released."""
    g.ret(status=ST_BARRIER, r0=value)


class ThreadGroup:
    """Manage a set of fork/join threads with optional barrier rounds.

    >>> def worker(g, i):          # doctest: +SKIP
    ...     g.store(SHARED_BASE + 8 * i, i)
    >>> tg = ThreadGroup(g)        # doctest: +SKIP
    >>> for i in range(4):
    ...     tg.fork(worker, (i,))
    >>> tg.join_all()
    """

    def __init__(self, g, base=0x100, share=DEFAULT_SHARE):
        self.g = g
        self.base = base
        self.share = share
        self._next = 0
        self._live = {}

    def fork(self, entry, args=(), limit=None):
        """Start a new thread; returns its thread id."""
        tid = self._next
        self._next += 1
        childno = self.base + tid
        thread_fork(self.g, childno, entry, args, self.share, limit)
        self._live[tid] = childno
        return tid

    def join(self, tid):
        """Join one thread (merging its changes); returns its result."""
        childno = self._live.pop(tid)
        return thread_join(self.g, childno)

    def join_all(self):
        """Join every live thread in tid order; returns their results."""
        return [self.join(tid) for tid in sorted(self._live)]

    # -- barriers ----------------------------------------------------------

    def run_barrier_rounds(self, max_rounds=None):
        """Drive threads through barrier rounds until all exit (§4.4).

        Each round: merge every thread's pre-barrier changes into the
        master, then hand every still-running thread a fresh snapshot of
        the combined state.  Returns the list of exit values in tid order.
        """
        results = {}
        rounds = 0
        addr, size = self.share
        while self._live:
            at_barrier = []
            for tid in sorted(self._live):
                childno = self._live[tid]
                self.g.kcharge(image_scan_cost(self.g))
                view = self.g.get(childno, regs=True, merge=True)
                trap = view["trap"]
                if trap is Trap.EXIT:
                    results[tid] = view["r0"]
                    del self._live[tid]
                elif trap is Trap.RET and view["status"] == ST_BARRIER:
                    at_barrier.append(tid)
                else:
                    raise ThreadFault(childno, trap, view["trap_info"])
            for tid in at_barrier:
                childno = self._live[tid]
                # Re-snap over the image is incremental under tracking.
                self.g.kcharge(image_resnap_cost(self.g))
                self.g.put(
                    childno,
                    copy=(addr, size),
                    snap=(addr, size),
                    start=True,
                )
            rounds += 1
            if max_rounds is not None and rounds > max_rounds:
                raise RuntimeApiError(f"exceeded {max_rounds} barrier rounds")
        return [results[tid] for tid in sorted(results)]
