"""Unix-style processes: fork / exec / wait / console I/O (paper §4.1, §4.3).

A *process* is a space running under this runtime with a full file-system
replica in its image.  The runtime provides:

* ``fork(fn, *args)`` — one Put call copies the parent's image into a
  child space and starts it.  PIDs come from a process-local counter, so
  "one process's PIDs are unrelated to, and may numerically conflict
  with, PIDs in other processes" (§4.1).
* ``waitpid(pid)`` — synchronizes with a child's Ret, services its I/O
  requests transparently, reconciles file systems, and returns its exit
  status.
* ``wait()`` — waits for "the earliest-forked child whose status was not
  yet collected": the deterministic replacement for Unix's
  first-to-finish wait (§4.1, Figure 4).
* ``exec(name, args)`` — replaces the program while carrying over the
  file system and PID state (§4.1).
* ``read_console``/``write_console`` — console I/O as file-system
  synchronization: output accumulates in the process's console-out file
  and propagates toward the root at sync points; input requests flow up
  the hierarchy via Ret until a process with I/O privileges (the root)
  asks the kernel's device (§4.3).

Divergence from the paper, documented in DESIGN.md: ``fork`` takes the
child's entry function (spawn semantics) because a Python guest cannot
return twice from the same call.
"""

from repro.common.errors import RuntimeApiError
from repro.kernel.traps import Trap
from repro.mem.layout import FS_BASE, SCRATCH_BASE, SHARED_BASE, SHARED_END
from repro.runtime import fs as fslib
from repro.runtime.fs import (
    CONSOLE_IN,
    CONSOLE_OUT,
    F_EOF,
    FileSystem,
    IMAGE_SIZE,
    NFILES,
    O_RDONLY,
    O_WRONLY,
    reconcile,
)

#: Ret status codes the runtime uses to talk to the parent runtime.
ST_IO_REQUEST = 0x7F01     # blocked reading console input
ST_SYNC = 0x7F02           # fsync: reconcile me and resume
ST_TIME = 0x7F03           # gettimeofday: parent supplies a timestamp

#: Child-number base for process children (leaves low numbers for the
#: application's own raw spaces).
_PROC_SLOT_BASE = 0x400

#: Where a child's image is staged inside the parent during reconciliation.
_CHILD_IMG = SCRATCH_BASE + 0x200_0000
#: Where fork stages the child's fresh superblock/base pages.
_STAGE = SCRATCH_BASE

#: Full image size, page aligned.
_IMAGE_BYTES = (IMAGE_SIZE + 0xFFF) & ~0xFFF


class _ExecImage(Exception):
    """Internal control-flow signal implementing exec().

    The argument vector is stored as ``argv`` because ``Exception.args``
    is reserved by the built-in exception machinery.
    """

    def __init__(self, name, argv):
        super().__init__(name)
        self.name = name
        self.argv = argv


class ProcessRuntime:
    """Per-process user-level runtime state (all persistent state lives in
    the simulated image, so it survives fork and exec)."""

    def __init__(self, g, fresh=False):
        self.g = g
        self.fs = FileSystem(g)
        if fresh:
            self.fs.format()
            self.fs.init_fd_table()
            # Conventional descriptors 0 (stdin) and 1 (stdout).
            self.fs.open(CONSOLE_IN, O_RDONLY)
            self.fs.open(CONSOLE_OUT, O_WRONLY)

    # -- properties ---------------------------------------------------------

    @property
    def is_root(self):
        """True when this process holds I/O privileges (the root)."""
        return self.g.space.io_privilege

    # -- fork ---------------------------------------------------------------

    def _slot(self, pid):
        return _PROC_SLOT_BASE + pid

    def fork(self, fn, *args):
        """Fork a child process running ``fn(rt, *args)``; returns its PID."""
        g = self.g
        sbu = self.fs._u32
        pid = sbu(fslib.SB_NEXT_PID)
        self.fs._set_u32(fslib.SB_NEXT_PID, pid + 1)
        slot = self._slot(pid)

        # One Put copies the entire parent image (shared region + file
        # system) into the child, copy-on-write (§4.1 "only one Put").
        g.put(
            slot,
            copy=[
                (SHARED_BASE, SHARED_END - SHARED_BASE),
                (FS_BASE, _IMAGE_BYTES),
            ],
        )

        # Stage the child's private superblock page (fresh PID namespace,
        # empty fork log) and base tables (versions/sizes as of this fork).
        stage = FileSystem(g, base=_STAGE)
        g.zero_range(_STAGE, 0x3000)
        stage._set_u32(fslib.SB_MAGIC, fslib.MAGIC)
        stage._set_u32(fslib.SB_NEXT_PID, 1)
        stage._set_u32(fslib.SB_FORK_COUNT, 0)
        stage._set_u32(fslib.SB_OUT_PUSHED, 0)
        for idx in range(NFILES):
            ver = self.fs.inode_version(idx)
            if ver or self.fs.inode_flags(idx):
                stage.set_base(idx, ver, self.fs.inode_size(idx))
        g.put(
            slot,
            copy=[
                (_STAGE + fslib.SB_OFF, FS_BASE + fslib.SB_OFF, 0x1000),
                (_STAGE + fslib.BASE_OFF, FS_BASE + fslib.BASE_OFF, 0x1000),
            ],
        )

        # Record the fork order (drives deterministic wait()).
        count = sbu(fslib.SB_FORK_COUNT)
        if count >= fslib.SB_FORK_LOG_MAX:
            raise RuntimeApiError("fork log full")
        g.store(FS_BASE + fslib.SB_FORK_LOG + 2 * count, pid, size=2)
        self.fs._set_u32(fslib.SB_FORK_COUNT, count + 1)

        g.put(slot, regs={"entry": _process_entry, "args": (fn, args)}, start=True)
        return pid

    # -- wait ---------------------------------------------------------------

    def waitpid(self, pid):
        """Wait for ``pid``, servicing its I/O requests; returns its status.

        Raises :class:`RuntimeApiError` if the child stopped on a fault.
        """
        g = self.g
        slot = self._slot(pid)
        while True:
            view = g.get(slot, regs=True)
            trap = view["trap"]
            if trap is Trap.EXIT:
                self._sync_child(slot, resume=False)
                self._collect(pid)
                return view["r0"]
            if trap is Trap.RET and view["status"] == ST_IO_REQUEST:
                self._sync_child(slot, resume=True, need_input=True)
                continue
            if trap is Trap.RET and view["status"] == ST_SYNC:
                self._sync_child(slot, resume=True)
                continue
            if trap is Trap.RET and view["status"] == ST_TIME:
                # Supply (or synthesize) a timestamp: this is the §2.1
                # interception point — override provide_time() to log,
                # replay, or fake time for a whole process subtree.
                g.put(slot, regs={"r1": self.provide_time()}, start=True)
                continue
            if trap is Trap.RET:
                # Plain exit via ret(status).
                self._sync_child(slot, resume=False)
                self._collect(pid)
                return view["status"]
            raise RuntimeApiError(
                f"child {pid} stopped on {trap.name}: {view['trap_info']}"
            )

    def wait(self):
        """Deterministic wait(): collect the earliest-forked pending child.

        Returns ``(pid, status)``.  This is the §4.1 semantics that gives
        'make -j2' the non-optimal-but-deterministic schedule of Fig. 4(d).
        """
        count = self.fs._u32(fslib.SB_FORK_COUNT)
        for i in range(count):
            pid = self.g.load(FS_BASE + fslib.SB_FORK_LOG + 2 * i, 2)
            if pid != 0xFFFF:
                return pid, self.waitpid(pid)
        raise RuntimeApiError("no children to wait for")

    def has_children(self):
        """True if any forked child is still uncollected."""
        count = self.fs._u32(fslib.SB_FORK_COUNT)
        return any(
            self.g.load(FS_BASE + fslib.SB_FORK_LOG + 2 * i, 2) != 0xFFFF
            for i in range(count)
        )

    def _collect(self, pid):
        count = self.fs._u32(fslib.SB_FORK_COUNT)
        for i in range(count):
            addr = FS_BASE + fslib.SB_FORK_LOG + 2 * i
            if self.g.load(addr, 2) == pid:
                self.g.store(addr, 0xFFFF, size=2)
                return

    # -- reconciliation ------------------------------------------------------

    def _sync_child(self, slot, resume, need_input=False):
        """Pull a stopped child's file system, reconcile, optionally push
        the merged image back and restart the child."""
        g = self.g
        g.get(slot, copy=(FS_BASE, _CHILD_IMG, _IMAGE_BYTES))
        child_fs = FileSystem(g, base=_CHILD_IMG)
        reconcile(self.fs, child_fs)
        if self.is_root:
            self.flush_console()
        if need_input:
            self._provide_input()
            # Propagate the fresh input into the child's image.
            reconcile(self.fs, child_fs)
        if resume:
            g.put(slot, copy=(_CHILD_IMG, FS_BASE, _IMAGE_BYTES))
            g.put(slot, start=True)

    def _provide_input(self):
        """Obtain new console input: from the device if we are the root,
        else by forwarding the request to our own parent (§4.3)."""
        g = self.g
        if self.is_root:
            data = g.console_read()
            idx = self.fs.lookup(CONSOLE_IN)
            if data:
                size = self.fs.inode_size(idx)
                self.fs.write_data(idx, size, data)
                self.fs.set_inode(idx, size=size + len(data))
                self.fs._bump_version(idx)
            else:
                flags = self.fs.inode_flags(idx)
                self.fs.set_inode(idx, flags=flags | F_EOF)
                self.fs._bump_version(idx)
        else:
            g.ret(status=ST_IO_REQUEST)
            # Parent has reconciled new input into our image; continue.

    # -- console I/O (libc layer) ------------------------------------------------

    def read_console(self, n=4096):
        """Read standard input (fd 0).

        On the real console this blocks via the hierarchy until data or
        EOF (§4.3); when fd 0 has been redirected (dup2) to a regular
        file, end of file is immediate EOF, as on Unix."""
        from repro.runtime.fs import F_CONSOLE_IN
        while True:
            data = self.fs.read(0, n)
            if data:
                return data
            inode = self.fs._fd_fields(0)[0]
            flags = self.fs.inode_flags(inode)
            if not flags & F_CONSOLE_IN or flags & F_EOF:
                return b""
            self._provide_input()

    def write_console(self, data):
        """Write to the console output file; the root pushes to the device
        immediately, others at the next synchronization point (§4.3)."""
        self.fs.write(1, data)
        if self.is_root:
            self.flush_console()

    def flush_console(self):
        """Root only: push unpushed console-out bytes to the kernel device."""
        if not self.is_root:
            return
        idx = self.fs.lookup(CONSOLE_OUT)
        size = self.fs.inode_size(idx)
        pushed = self.fs._u32(fslib.SB_OUT_PUSHED)
        if size > pushed:
            self.g.console_write(self.fs.read_data(idx, pushed, size - pushed))
            self.fs._set_u32(fslib.SB_OUT_PUSHED, size)

    def time(self):
        """gettimeofday(): an explicit nondeterministic input (§2.1).

        The root asks the kernel's clock device; everyone else asks its
        parent via Ret, so any supervising process can log, replay or
        synthesize the timestamps its subtree observes."""
        g = self.g
        if self.is_root:
            return g.time_now()
        g.ret(status=ST_TIME)
        return g.reg("r1")

    def provide_time(self):
        """Hook: the timestamp handed to a requesting child.  Subclass
        and override to intercept a subtree's notion of time."""
        return self.time()

    def fsync(self):
        """Request immediate output propagation toward the root (§4.3)."""
        if self.is_root:
            self.flush_console()
        else:
            self.g.ret(status=ST_SYNC)

    # -- exec -----------------------------------------------------------------------

    def exec(self, program_name, args=()):
        """Replace this process's program, keeping FS and PID state (§4.1).

        ``program_name`` must be registered with the machine (the
        program registry stands in for binaries on disk).  Never returns.
        """
        raise _ExecImage(program_name, tuple(args))


def _run_body(rt, fn, args):
    """Run a process body, handling exec chains.

    Returns the body's raw return value (the exit status by convention,
    but callers may transport arbitrary results through r0)."""
    while True:
        try:
            return fn(rt, *args)
        except _ExecImage as image:
            # Discard the old program's working memory; keep FS + PIDs.
            rt.g.zero_range(SHARED_BASE, SHARED_END - SHARED_BASE)
            fn = rt.g.machine.programs.get(image.name)
            if fn is None:
                raise RuntimeApiError(f"exec: no program {image.name!r}") from None
            args = image.argv


def _process_entry(g, fn, args):
    """Entry point of every forked process."""
    rt = ProcessRuntime(g)
    return _run_body(rt, fn, args)


def unix_root(fn, *args):
    """Wrap ``fn(rt, *args)`` as a machine root program with a formatted
    file system — the 'init' process.

    >>> from repro.kernel import Machine
    >>> def init(rt):
    ...     rt.write_console(b"hi\\n")
    >>> with Machine() as m:                      # doctest: +SKIP
    ...     m.run(unix_root(init))
    """
    def main(g):
        rt = ProcessRuntime(g, fresh=True)
        status = _run_body(rt, fn, args)
        rt.flush_console()
        return status

    return main
