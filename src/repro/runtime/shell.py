"""A Unix-style shell on the process runtime (paper §5).

"The system provides text-based console I/O and a Unix-style shell
supporting redirection and both scripted and interactive use."

The shell is itself a guest program: it parses commands from its console
input (scripted) or from a string, forks a child process per external
command, waits deterministically, and supports:

* built-ins: ``echo``, ``cat``, ``ls``, ``pwd`` (trivial), ``exit`` and
  — because PIDs are process-local — ``ps`` is a built-in exactly as the
  paper notes ("commands like 'ps' must be built into shells for the
  same reason that 'cd' already is", §4.1);
* output redirection ``>`` and ``>>`` into the shared file system;
* input redirection ``<``;
* running registered guest programs by name with arguments;
* sequential composition with ``;``.

Interactive job control (background jobs via first-to-finish wait) is
deliberately absent: it would require the "nondeterministic I/O
privileges" the prototype does not implement (§4.1).
"""

import shlex

from repro.common.errors import FileSystemError, RuntimeApiError
from repro.runtime.fs import O_APPEND, O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY


class ShellError(RuntimeApiError):
    """Command failed in a way the shell reports rather than raises."""


class Shell:
    """A scripted command interpreter bound to a :class:`ProcessRuntime`."""

    def __init__(self, rt):
        self.rt = rt
        self._builtins = {
            "echo": self._echo,
            "cat": self._cat,
            "ls": self._ls,
            "ps": self._ps,
            "true": lambda argv, stdin: ("", 0),
            "false": lambda argv, stdin: ("", 1),
        }
        #: PIDs forked by this shell, for the built-in ``ps``.
        self._jobs = []
        self._pipe_seq = 0

    # -- command execution ----------------------------------------------------

    def run_script(self, script):
        """Run a whole script (newline/';'-separated); returns the last
        command's exit status."""
        status = 0
        for line in script.replace(";", "\n").splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            status = self.run_command(line)
            if line.split()[0] == "exit":
                break
        return status

    def run_command(self, line):
        """Run one command line (possibly a pipeline); returns its exit
        status.

        Pipelines are staged deterministically through temporary files in
        the shared file system: stage k completes and its output
        reconciles into the shell's replica before stage k+1 starts.
        Truly concurrent pipes would need the non-hierarchical
        synchronization the prototype does not support (paper §5).
        """
        stages, stdout_target, append, stdin_source = self._parse(line)
        stages = [argv for argv in stages if argv]
        if not stages:
            return 0
        if stages[0][0] == "exit":
            argv = stages[0]
            return int(argv[1]) if len(argv) > 1 else 0

        if stdin_source is not None and self.rt.fs.lookup(stdin_source) < 0:
            self._emit(f"sh: {stdin_source}: no such file\n", None, False)
            return 1

        prev_name = stdin_source
        temp_names = []
        status = 0
        for idx, argv in enumerate(stages):
            last = idx == len(stages) - 1
            if last:
                out_spec = (stdout_target, append) if stdout_target else None
            else:
                self._pipe_seq += 1
                pipe_name = f".pipe.{self._pipe_seq}"
                temp_names.append(pipe_name)
                out_spec = (pipe_name, False)
            status = self._run_stage(argv, prev_name, out_spec)
            prev_name = out_spec[0] if out_spec else None
        for name in temp_names:
            try:
                self.rt.fs.unlink(name)
            except FileSystemError:
                pass
        return status

    def _run_stage(self, argv, stdin_name, out_spec):
        """Run one pipeline stage with fd-level redirection."""
        if argv[0] in self._builtins:
            stdin_data = b""
            if stdin_name is not None and self.rt.fs.lookup(stdin_name) >= 0:
                stdin_data = self.rt.fs.read_file(stdin_name)
            output, status = self._builtins[argv[0]](argv[1:], stdin_data)
            if out_spec is None:
                self._emit(output, None, False)
            else:
                self._emit(output, out_spec[0], out_spec[1], create_empty=True)
            return status
        return self._run_external(argv, stdin_name, out_spec)

    def _parse(self, line):
        """Tokenize into pipeline stages plus redirections.

        ``<`` applies to the first stage, ``>``/``>>`` to the last."""
        tokens = shlex.split(line)
        stages, argv = [], []
        stdout_target, append, stdin_source = None, False, None
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if token == "|":
                stages.append(argv)
                argv = []
                i += 1
            elif token in (">", ">>"):
                if i + 1 >= len(tokens):
                    raise ShellError("missing redirection target")
                stdout_target, append = tokens[i + 1], token == ">>"
                i += 2
            elif token == "<":
                if i + 1 >= len(tokens):
                    raise ShellError("missing redirection source")
                stdin_source = tokens[i + 1]
                i += 2
            else:
                argv.append(token)
                i += 1
        stages.append(argv)
        return stages, stdout_target, append, stdin_source

    def _emit(self, output, target, append, create_empty=False):
        if isinstance(output, str):
            output = output.encode()
        if not output and not (create_empty and target):
            return
        if target is None:
            self.rt.write_console(output)
            return
        fs = self.rt.fs
        flags = O_WRONLY | O_CREAT | (O_APPEND if append else O_TRUNC)
        fd = fs.open(target, flags)
        try:
            if output:
                fs.write(fd, output)
        finally:
            fs.close(fd)

    def _run_external(self, argv, stdin_name, out_spec):
        """Fork a child process to run a registered program, with its
        fd 0/1 redirected (dup2) per the stage's plumbing."""
        program = self.rt.g.machine.programs.get(argv[0])
        if program is None:
            self._emit(f"sh: {argv[0]}: command not found\n", None, False)
            return 127
        pid = self.rt.fork(
            _external_entry, program, tuple(argv[1:]), stdin_name, out_spec
        )
        self._jobs.append((pid, argv[0]))
        status = self.rt.waitpid(pid)
        return status if isinstance(status, int) else 0

    # -- built-ins -----------------------------------------------------------

    def _echo(self, argv, stdin):
        return " ".join(argv) + "\n", 0

    def _cat(self, argv, stdin):
        if not argv:
            return stdin, 0
        chunks = []
        for name in argv:
            try:
                chunks.append(self.rt.fs.read_file(name))
            except FileSystemError:
                return f"cat: {name}: no such file\n", 1
        return b"".join(chunks), 0

    def _ls(self, argv, stdin):
        names = [
            name for name in sorted(self.rt.fs.list_names())
            if not name.startswith("/dev/") and not name.startswith(".")
        ]
        return "".join(name + "\n" for name in names), 0

    def _ps(self, argv, stdin):
        """Process listing — a built-in because the PID namespace is
        local to this shell's process (paper §4.1)."""
        lines = ["  PID CMD\n"]
        for pid, cmd in self._jobs:
            lines.append(f"{pid:>5} {cmd}\n")
        return "".join(lines), 0


def _external_entry(rt, program, argv, stdin_name, out_spec):
    """Child-process wrapper for shell externals: plumb fd 0/1 via dup2
    (real Unix-style descriptor redirection), then run the program."""
    if stdin_name is not None and rt.fs.lookup(stdin_name) >= 0:
        fd = rt.fs.open(stdin_name, O_RDONLY)
        rt.fs.dup2(fd, 0)
        rt.fs.close(fd)
    if out_spec is not None:
        name, append = out_spec
        flags = O_WRONLY | O_CREAT | (O_APPEND if append else O_TRUNC)
        fd = rt.fs.open(name, flags)
        rt.fs.dup2(fd, 1)
        rt.fs.close(fd)
    return program(rt, *argv)


def shell_main(rt, script):
    """Root program: run ``script`` through a shell (for Machine.run)."""
    return Shell(rt).run_script(script)
