"""Deterministic scheduling of legacy (pthreads-style) code (paper §4.5).

For code written with *nondeterministic* synchronization (mutexes), the
process's master space never runs application code: it acts as a
deterministic scheduler.  Each application thread runs in a child space
and is preempted by the kernel's **instruction limit** after a fixed
quantum; shared-memory changes propagate only at quantum boundaries via
Merge (a weak consistency model ordering only synchronization
operations, like DMP-B).

Mutexes follow the paper's ownership protocol: a mutex is always *owned*
by some thread; the owner locks and unlocks without scheduler
interaction (plain stores to its private working copy, merged at quantum
end); any other thread needing the mutex invokes the scheduler via Ret,
and the scheduler *steals* the mutex from its owner at the owner's next
quantum boundary if it is unlocked, else queues the requester.

The master is a scaling bottleneck unless quanta are large (§4.5) — and
that serial per-round merge work is exactly what reproduces the ~35 %
deterministic-scheduling overhead of blackscholes in Figure 7.
"""

from repro.common.errors import DeadlockError, RuntimeApiError
from repro.kernel.traps import Trap
from repro.mem.layout import SHARED_BASE, SHARED_END
from repro.runtime.threads import image_map_cost, image_resnap_cost

#: Scheduler-call Ret status; the operation is in r1, its argument in r2.
ST_SCHED = 0x7D01

OP_LOCK = 1
OP_YIELD = 2
OP_COND_WAIT = 3
OP_COND_SIGNAL = 4
OP_COND_BROADCAST = 5

#: Number of condition variables (ids are small integers, like mutexes).
NCOND = 1024

#: Mutex table lives at the top of the shared region (16 bytes per mutex:
#: owner word, locked word), so lock state merges like any shared data.
NMUTEX = 1024
MUTEX_TABLE = SHARED_END - 0x10_0000

#: Default quantum: 10 million instructions, the paper's choice (§6.2).
DEFAULT_QUANTUM = 10_000_000


def _mutex_addr(mid):
    if not 0 <= mid < NMUTEX:
        raise RuntimeApiError(f"mutex id {mid} out of range")
    return MUTEX_TABLE + mid * 16


class DetThread:
    """Guest-side handle a scheduled thread uses for synchronization."""

    def __init__(self, g, tid):
        self.g = g
        #: This thread's index under the deterministic scheduler.
        self.tid = tid

    def _sched_call(self, op, arg):
        self.g.ret(status=ST_SCHED, r1=op, r2=arg)

    def mutex_lock(self, mid):
        """Lock mutex ``mid`` (pthread_mutex_lock equivalent).

        Fast path: the mutex's owner locks with a plain private-copy
        store.  Slow path: ask the scheduler for ownership and return
        once granted (§4.5).
        """
        addr = _mutex_addr(mid)
        owner = self.g.load(addr, 4)
        if owner != self.tid + 1:
            self._sched_call(OP_LOCK, mid)
            # Resumed with a fresh snapshot in which we are the owner.
        self.g.store(addr + 4, 1, size=4)

    def mutex_unlock(self, mid):
        """Unlock mutex ``mid``; a plain store, scheduler-free."""
        self.g.store(_mutex_addr(mid) + 4, 0, size=4)

    def sched_yield(self):
        """Voluntarily end this thread's quantum."""
        self._sched_call(OP_YIELD, 0)

    def cond_wait(self, cid, mid):
        """pthread_cond_wait: release ``mid``, sleep on ``cid``, return
        holding ``mid`` again (re-granted by the scheduler)."""
        if not 0 <= cid < NCOND:
            raise RuntimeApiError(f"cond id {cid} out of range")
        self.g.store(_mutex_addr(mid) + 4, 0, size=4)   # release the mutex
        self._sched_call(OP_COND_WAIT, (cid << 16) | mid)
        # Resumed with mutex ownership re-granted; take the lock.
        self.g.store(_mutex_addr(mid) + 4, 1, size=4)

    def cond_signal(self, cid):
        """pthread_cond_signal: wake the longest-waiting thread."""
        self._sched_call(OP_COND_SIGNAL, cid)

    def cond_broadcast(self, cid):
        """pthread_cond_broadcast: wake every waiter."""
        self._sched_call(OP_COND_BROADCAST, cid)


class _ThreadState:
    __slots__ = ("tid", "childno", "entry", "args", "status", "result", "waiting")

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"

    def __init__(self, tid, childno, entry, args):
        self.tid = tid
        self.childno = childno
        self.entry = entry
        self.args = args
        self.status = self.RUNNABLE
        self.result = None
        self.waiting = None  # mutex id while BLOCKED


def _det_thread_entry(g, entry, tid, args):
    return entry(DetThread(g, tid), *args)


class DetScheduler:
    """The master-space deterministic scheduler."""

    def __init__(self, g, quantum=DEFAULT_QUANTUM, base=0x300,
                 share=(SHARED_BASE, SHARED_END - SHARED_BASE)):
        self.g = g
        self.quantum = quantum
        self.base = base
        self.share = share
        self._threads = []
        #: mutex id -> owner tid (mirrors the table in shared memory).
        self._mutex_owner = {}
        #: mutex id -> FIFO of blocked tids.
        self._mutex_queue = {}
        #: cond id -> FIFO of (tid, mutex id) sleepers.
        self._cond_queue = {}
        #: Rounds executed (tests/ablations read this).
        self.rounds = 0

    def spawn(self, entry, args=()):
        """Register a thread running ``entry(dt, *args)``; returns its tid."""
        tid = len(self._threads)
        self._threads.append(
            _ThreadState(tid, self.base + tid, entry, tuple(args))
        )
        return tid

    # -- scheduling rounds ---------------------------------------------------

    def run(self):
        """Run all spawned threads to completion; returns results by tid."""
        g = self.g
        addr, size = self.share
        started = set()
        while any(t.status != _ThreadState.DONE for t in self._threads):
            runnable = [t for t in self._threads if t.status == _ThreadState.RUNNABLE]
            if not runnable:
                blocked = {t.tid: t.waiting for t in self._threads
                           if t.status == _ThreadState.BLOCKED}
                raise DeadlockError(f"all threads blocked on mutexes: {blocked}")
            # Phase 1: start every runnable thread for one quantum.  All
            # quanta run logically concurrently (trace edges fan out from
            # this master segment).
            for t in runnable:
                regs = None
                if t.tid not in started:
                    started.add(t.tid)
                    regs = {
                        "entry": _det_thread_entry,
                        "args": (t.entry, t.tid, t.args),
                    }
                # First dispatch COW-maps the whole image; each further
                # quantum only re-snaps it (incremental under tracking).
                if regs is not None:
                    g.kcharge(image_map_cost(g))
                else:
                    g.kcharge(image_resnap_cost(g))
                g.put(
                    t.childno,
                    regs=regs,
                    copy=(addr, size),
                    snap=(addr, size),
                    start=True,
                    limit=self.quantum,
                )
            # Phase 2: rendezvous with each, merging its quantum's writes.
            requests = []
            for t in runnable:
                # Override mode: racy legacy programs get a repeatable,
                # merge-order-defined outcome instead of a conflict (§4.5).
                view = g.get(t.childno, regs=True, merge=True, merge_mode="override")
                trap = view["trap"]
                if trap is Trap.EXIT:
                    t.status = _ThreadState.DONE
                    t.result = view["r0"]
                elif trap is Trap.INSN_LIMIT:
                    pass  # preempted mid-code; runs again next round
                elif trap is Trap.RET and view["status"] == ST_SCHED:
                    requests.append((t, view["r1"], view["r2"]))
                else:
                    raise RuntimeApiError(
                        f"thread {t.tid} stopped unexpectedly: {trap.name} "
                        f"{view['trap_info']}"
                    )
            # Phase 3: process synchronization ops in tid order, then
            # steal unlocked mutexes for queued waiters (§4.5).
            for t, op, arg in requests:
                if op == OP_YIELD:
                    continue
                if op == OP_LOCK:
                    t.status = _ThreadState.BLOCKED
                    t.waiting = arg
                    self._mutex_queue.setdefault(arg, []).append(t.tid)
                elif op == OP_COND_WAIT:
                    cid, mid = arg >> 16, arg & 0xFFFF
                    t.status = _ThreadState.BLOCKED
                    t.waiting = ("cond", cid)
                    self._cond_queue.setdefault(cid, []).append((t.tid, mid))
                elif op == OP_COND_SIGNAL:
                    self._wake_cond(arg, all_waiters=False)
                elif op == OP_COND_BROADCAST:
                    self._wake_cond(arg, all_waiters=True)
                else:
                    raise RuntimeApiError(f"unknown scheduler op {op}")
            self._grant_mutexes()
            self.rounds += 1
        return [t.result for t in self._threads]

    def _wake_cond(self, cid, all_waiters):
        """Move sleeper(s) from a condition queue to their mutex queues;
        they run again once the mutex is (re)granted, like any locker."""
        queue = self._cond_queue.get(cid, [])
        count = len(queue) if all_waiters else min(1, len(queue))
        for _ in range(count):
            tid, mid = queue.pop(0)
            thread = self._threads[tid]
            thread.waiting = mid
            self._mutex_queue.setdefault(mid, []).append(tid)

    def _grant_mutexes(self):
        """Transfer ownership of unlocked, contended mutexes (the steal)."""
        g = self.g
        for mid in sorted(self._mutex_queue):
            queue = self._mutex_queue[mid]
            if not queue:
                continue
            addr = _mutex_addr(mid)
            locked = g.load(addr + 4, 4)
            if locked:
                continue  # owner still holds it; steal at a later boundary
            new_owner = queue.pop(0)
            self._mutex_owner[mid] = new_owner
            g.store(addr, new_owner + 1, size=4)
            thread = self._threads[new_owner]
            thread.status = _ThreadState.RUNNABLE
            thread.waiting = None


def det_pthreads_run(g, workers, quantum=DEFAULT_QUANTUM):
    """Convenience: run ``workers`` (list of (entry, args)) under the
    deterministic scheduler; returns their results."""
    sched = DetScheduler(g, quantum=quantum)
    for entry, args in workers:
        sched.spawn(entry, args)
    return sched.run()
