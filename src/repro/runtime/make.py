"""A miniature parallel ``make`` on the process runtime (paper Fig. 4).

Each rule forks a child process that performs its (modelled) work and
writes its target file into the child's file-system replica; the outputs
merge into the parent's replica at ``wait()``, like the parallel-compile
example of §4.2.

Scheduling uses the runtime's deterministic ``wait()``: with a worker
quota ('make -jN'), the parent waits for the *earliest-forked* running
task, not the first to finish — reproducing the non-optimal-but-
deterministic schedule of Figure 4(d).  With unlimited parallelism
('make -j') scheduling is left to the system and matches Unix (Fig. 4(b)).
"""

from repro.common.errors import RuntimeApiError


class MakeRule:
    """One build rule: produce ``target`` from ``deps`` in ``duration``
    modelled instructions."""

    def __init__(self, target, deps=(), duration=1_000_000):
        self.target = target
        self.deps = tuple(deps)
        self.duration = duration

    def __repr__(self):
        return f"<MakeRule {self.target} <- {list(self.deps)} ({self.duration})>"


def _task_entry(rt, target, duration):
    """Child process body: do the work, write the output file."""
    rt.g.work(duration)
    rt.fs.write_file(target, f"built {target}".encode())
    return 0


class Make:
    """Deterministic parallel make driver.

    >>> rules = [MakeRule("a.o", duration=100), MakeRule("b.o", duration=50),
    ...          MakeRule("prog", deps=("a.o", "b.o"), duration=20)]
    >>> Make(rt, rules).build("prog", jobs=2)     # doctest: +SKIP
    """

    def __init__(self, rt, rules):
        self.rt = rt
        self.rules = {rule.target: rule for rule in rules}
        if len(self.rules) != len(rules):
            raise RuntimeApiError("duplicate make targets")
        self.order = [rule.target for rule in rules]

    def _ready(self, built, started):
        for target in self.order:
            if target in built or target in started:
                continue
            if all(dep in built for dep in self.rules[target].deps):
                yield target

    def build(self, goal=None, jobs=None):
        """Build ``goal`` (default: everything).  ``jobs=None`` means
        unlimited parallelism ('make -j'); an integer imposes a user-level
        worker quota ('make -jN').

        Returns the list of targets in completion-observed order (which,
        under deterministic wait(), is fork order).
        """
        needed = self._closure(goal)
        built = set()
        running = {}   # pid -> target
        finished_order = []
        while len(built) < len(needed):
            for target in list(self._ready(built, set(running.values()))):
                if target not in needed:
                    continue
                if jobs is not None and len(running) >= jobs:
                    break
                rule = self.rules[target]
                pid = self.rt.fork(_task_entry, target, rule.duration)
                running[pid] = target
            if not running:
                raise RuntimeApiError("make: dependency cycle")
            pid, status = self.rt.wait()
            target = running.pop(pid)
            if status != 0:
                raise RuntimeApiError(f"make: target {target} failed ({status})")
            built.add(target)
            finished_order.append(target)
        return finished_order

    def _closure(self, goal):
        if goal is None:
            return set(self.order)
        needed = set()
        stack = [goal]
        while stack:
            target = stack.pop()
            if target in needed:
                continue
            if target not in self.rules:
                raise RuntimeApiError(f"make: no rule for {target!r}")
            needed.add(target)
            stack.extend(self.rules[target].deps)
        return needed
