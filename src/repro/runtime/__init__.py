"""Determinator's user-level runtime (paper §4).

Everything in this package is *guest code*: it runs inside spaces and
uses only the :class:`repro.kernel.guest.Guest` API, exactly as the real
runtime is unprivileged user-space code.  Kernel bugs excepted, nothing
here can break the kernel's determinism guarantee (§1).

Modules:

* :mod:`repro.runtime.fs` — the logically shared file system kept as a
  replica in every process image, with file versioning, reconciliation,
  append-only console/log merging and conflict flags (§4.2, §4.3).
* :mod:`repro.runtime.process` — fork/exec/wait with process-local PIDs
  and deterministic ``wait()`` (§4.1), plus hierarchical console I/O.
* :mod:`repro.runtime.threads` — shared-memory threads in the private
  workspace model via kernel Snap/Merge; fork/join and barriers (§4.4).
* :mod:`repro.runtime.dsched` — the deterministic scheduler emulating
  nondeterministic legacy pthreads with instruction-limit quanta and
  mutex-ownership stealing (§4.5).
* :mod:`repro.runtime.make` — a miniature parallel ``make`` used to
  reproduce the Figure 4 scheduling scenarios.
"""

from repro.runtime.fs import FileSystem, O_RDONLY, O_WRONLY, O_RDWR, O_CREAT, O_APPEND, O_TRUNC
from repro.runtime.threads import ThreadGroup, thread_fork, thread_join
from repro.runtime.process import ProcessRuntime, unix_root
from repro.runtime.dsched import DetScheduler, DetThread
from repro.runtime.make import Make, MakeRule
from repro.runtime.shell import Shell
from repro.runtime.checkpoint import Checkpointer

__all__ = [
    "FileSystem",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_APPEND",
    "O_TRUNC",
    "ThreadGroup",
    "thread_fork",
    "thread_join",
    "ProcessRuntime",
    "unix_root",
    "DetScheduler",
    "DetThread",
    "Make",
    "MakeRule",
    "Shell",
    "Checkpointer",
]
