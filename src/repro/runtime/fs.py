"""The user-level shared file system (paper §4.2 and §4.3).

Each process's address space contains a **complete replica** of the
logically shared file system.  ``open``/``read``/``write`` touch only the
local replica; replicas diverge as processes run and are *reconciled* at
synchronization points (``wait``) using file versioning in the style of
Parker et al. [47]:

* a file changed in only one replica propagates to the other;
* a file changed in both replicas is a **conflict**: one copy is
  discarded and the file's conflict flag is set, so later ``open``
  attempts fail (§4.2) — except *append-only* files (console, logs),
  whose concurrent appends are merged so every replica accumulates all
  writes, possibly in different orders (§4.3);
* special console files hold real data in the image: a process's console
  input file accumulates everything it has received, its console output
  file everything it has written; the root process bridges them to the
  kernel's devices.

On-image layout (offsets from the image base, default ``FS_BASE``)::

    page 0          superblock: magic, next-pid, fork-order log
    page 1          file-descriptor table (inherited across fork)
    page 2          reconciliation base tables: version + size at the
                    last synchronization with the parent
    pages 4..11     inode table: NFILES fixed slots of 128 bytes
    0x10000 +       file data: one fixed 64 KiB slot per inode

The fixed-slot data area mirrors the prototype's limitation that the
file system must fit in an address space (§4.2).
"""

import struct

from repro.common.errors import FileConflictError, FileSystemError
from repro.mem.layout import FS_BASE

# ---------------------------------------------------------------------------
# Layout constants
# ---------------------------------------------------------------------------

MAGIC = 0xDF51_2010
NFILES = 256
NFDS = 32
NAME_MAX = 63
FILE_SLOT = 0x1_0000          # 64 KiB per file
INODE_SIZE = 128

SB_OFF = 0x0000               # superblock page
FD_OFF = 0x1000               # fd table page
BASE_OFF = 0x2000             # reconciliation base tables
INODE_OFF = 0x4000            # inode table (256 * 128 = 32 KiB)
DATA_OFF = 0x1_0000           # file data slots
IMAGE_SIZE = DATA_OFF + NFILES * FILE_SLOT   # 16 MiB + tables

# Superblock field offsets.
SB_MAGIC = 0
SB_NEXT_PID = 4
SB_FORK_COUNT = 8
SB_OUT_PUSHED = 12            # console-out bytes already pushed to device
SB_FORK_LOG = 64              # u16 per forked pid, 0xFFFF = collected
SB_FORK_LOG_MAX = 1024

# Inode field offsets.
I_NAME = 0
I_SIZE = 64
I_VERSION = 68
I_FLAGS = 72

# Inode flags.
F_EXISTS = 1
F_APPEND = 2
F_CONFLICT = 4
F_CONSOLE_IN = 8
F_CONSOLE_OUT = 16
#: Input stream closed: reads at end-of-data return EOF instead of blocking.
F_EOF = 32

# Open flags (Unix-style).
O_RDONLY = 1
O_WRONLY = 2
O_RDWR = 3
O_CREAT = 4
O_APPEND = 8
O_TRUNC = 16
O_EXCL = 32

#: Names of the special console files (paper §4.3).
CONSOLE_IN = "/dev/console-in"
CONSOLE_OUT = "/dev/console-out"


def _name_hash(name):
    """Stable FNV-1a hash of a file name onto an inode slot."""
    h = 0x811C9DC5
    for byte in name.encode():
        h = ((h ^ byte) * 0x0100_0193) & 0xFFFF_FFFF
    return h % NFILES


class FileSystem:
    """A view of one file-system image inside the calling space.

    ``FileSystem(g)`` is the process's own replica; ``FileSystem(g,
    base=SCRATCH_BASE)`` views a child's image copied into the scratch
    region during reconciliation.
    """

    def __init__(self, g, base=FS_BASE):
        self.g = g
        self.base = base

    # -- raw accessors ------------------------------------------------------

    def _u32(self, off):
        return self.g.load(self.base + off, 4)

    def _set_u32(self, off, value):
        self.g.store(self.base + off, value & 0xFFFFFFFF, 4)

    def _inode_off(self, idx):
        return INODE_OFF + idx * INODE_SIZE

    def _data_off(self, idx):
        return DATA_OFF + idx * FILE_SLOT

    def inode_name(self, idx):
        raw = self.g.read(self.base + self._inode_off(idx) + I_NAME, NAME_MAX + 1)
        return raw.split(b"\x00", 1)[0].decode()

    def inode_size(self, idx):
        return self._u32(self._inode_off(idx) + I_SIZE)

    def inode_version(self, idx):
        return self._u32(self._inode_off(idx) + I_VERSION)

    def inode_flags(self, idx):
        return self._u32(self._inode_off(idx) + I_FLAGS)

    def set_inode(self, idx, name=None, size=None, version=None, flags=None):
        off = self._inode_off(idx)
        if name is not None:
            encoded = name.encode()
            if len(encoded) > NAME_MAX:
                raise FileSystemError(f"name too long: {name!r}")
            self.g.write(self.base + off + I_NAME, encoded.ljust(NAME_MAX + 1, b"\x00"))
        if size is not None:
            self._set_u32(off + I_SIZE, size)
        if version is not None:
            self._set_u32(off + I_VERSION, version)
        if flags is not None:
            self._set_u32(off + I_FLAGS, flags)

    def read_data(self, idx, start, length):
        if length <= 0:
            return b""
        return self.g.read(self.base + self._data_off(idx) + start, length)

    def write_data(self, idx, start, data):
        if start + len(data) > FILE_SLOT:
            raise FileSystemError(
                f"file slot full ({start + len(data)} > {FILE_SLOT}); the "
                "prototype's file size is limited (paper §4.2)"
            )
        self.g.write(self.base + self._data_off(idx) + start, data)

    # -- base (reconciliation) tables ------------------------------------------

    def base_version(self, idx):
        return self._u32(BASE_OFF + idx * 8)

    def base_size(self, idx):
        return self._u32(BASE_OFF + idx * 8 + 4)

    def set_base(self, idx, version, size):
        self._set_u32(BASE_OFF + idx * 8, version)
        self._set_u32(BASE_OFF + idx * 8 + 4, size)

    # -- formatting / lookup -----------------------------------------------------

    def format(self):
        """Initialize an empty image with the console special files."""
        self._set_u32(SB_MAGIC, MAGIC)
        self._set_u32(SB_NEXT_PID, 1)
        self._set_u32(SB_FORK_COUNT, 0)
        self._set_u32(SB_OUT_PUSHED, 0)
        cin = self._alloc_inode(CONSOLE_IN)
        self.set_inode(cin, flags=F_EXISTS | F_APPEND | F_CONSOLE_IN, version=1)
        cout = self._alloc_inode(CONSOLE_OUT)
        self.set_inode(cout, flags=F_EXISTS | F_APPEND | F_CONSOLE_OUT, version=1)
        self.set_base(cin, 1, 0)
        self.set_base(cout, 1, 0)

    def is_formatted(self):
        return self._u32(SB_MAGIC) == MAGIC

    def lookup(self, name):
        """Inode index for ``name``, or -1.

        Placement is by deterministic name hash with linear probing, so
        lookups probe from the hash slot; a deleted slot does not stop
        the probe (versions keep history), only NFILES misses do.
        """
        start = _name_hash(name)
        for step in range(NFILES):
            idx = (start + step) % NFILES
            if self.inode_flags(idx) & F_EXISTS and self.inode_name(idx) == name:
                return idx
        return -1

    def _alloc_inode(self, name):
        """Allocate the inode for ``name`` at its deterministic hash slot.

        Hash placement (rather than first-free) means independent
        replicas creating *different* new files almost always pick
        different inode slots, so their creations reconcile cleanly;
        replicas creating the *same* name pick the same slot, so the
        write/write conflict is detected (§4.2).  Two different new names
        probing into the same slot in diverged replicas is reported as a
        (false) conflict — a documented limitation of fixed-slot images.
        """
        start = _name_hash(name)
        for step in range(NFILES):
            idx = (start + step) % NFILES
            if not self.inode_flags(idx) & F_EXISTS:
                self.set_inode(idx, name=name, size=0, version=0, flags=F_EXISTS)
                return idx
        raise FileSystemError("out of inodes")

    def list_names(self):
        """Names of all existing files, in inode order (deterministic)."""
        return [
            self.inode_name(idx)
            for idx in range(NFILES)
            if self.inode_flags(idx) & F_EXISTS
        ]

    # -- file descriptors -----------------------------------------------------------

    def _fd_off(self, fd):
        return FD_OFF + fd * 16

    def _fd_fields(self, fd):
        raw = self.g.read(self.base + self._fd_off(fd), 12)
        return struct.unpack("<iII", raw)

    def _set_fd(self, fd, inode, pos, flags):
        self.g.write(self.base + self._fd_off(fd), struct.pack("<iII", inode, pos, flags))

    def init_fd_table(self):
        for fd in range(NFDS):
            self._set_fd(fd, -1, 0, 0)

    # -- Unix-style file API ------------------------------------------------------------

    def open(self, name, flags=O_RDONLY):
        """Open ``name``; returns the lowest free file descriptor.

        Descriptor numbers come from the process-private table, so they
        are deterministic and reveal no shared state (§2.4).
        """
        idx = self.lookup(name)
        if idx < 0:
            if not flags & O_CREAT:
                raise FileSystemError(f"no such file: {name!r}")
            idx = self._alloc_inode(name)
            self._bump_version(idx)
        else:
            if flags & O_EXCL:
                raise FileSystemError(f"file exists: {name!r}")
            if self.inode_flags(idx) & F_CONFLICT:
                raise FileConflictError(name)
        if flags & O_TRUNC and flags & (O_WRONLY & O_RDWR):
            self.set_inode(idx, size=0)
            self._bump_version(idx)
        for fd in range(NFDS):
            if self._fd_fields(fd)[0] == -1:
                pos = self.inode_size(idx) if flags & O_APPEND else 0
                self._set_fd(fd, idx, pos, flags)
                return fd
        raise FileSystemError("out of file descriptors")

    def close(self, fd):
        self._check_fd(fd)
        self._set_fd(fd, -1, 0, 0)

    def _check_fd(self, fd):
        if not 0 <= fd < NFDS or self._fd_fields(fd)[0] == -1:
            raise FileSystemError(f"bad file descriptor {fd}")

    def read(self, fd, n):
        """Read up to ``n`` bytes; returns b'' at end of file."""
        self._check_fd(fd)
        inode, pos, flags = self._fd_fields(fd)
        if not flags & O_RDONLY:
            raise FileSystemError("descriptor not open for reading")
        size = self.inode_size(inode)
        n = max(0, min(n, size - pos))
        data = self.read_data(inode, pos, n)
        self._set_fd(fd, inode, pos + n, flags)
        return data

    def write(self, fd, data):
        """Write ``data``; append-only files always write at end (§4.3)."""
        self._check_fd(fd)
        if isinstance(data, str):
            data = data.encode()
        inode, pos, flags = self._fd_fields(fd)
        if not flags & O_WRONLY:
            raise FileSystemError("descriptor not open for writing")
        if self.inode_flags(inode) & F_APPEND or flags & O_APPEND:
            pos = self.inode_size(inode)
        self.write_data(inode, pos, data)
        new_size = max(self.inode_size(inode), pos + len(data))
        self.set_inode(inode, size=new_size)
        self._bump_version(inode)
        self._set_fd(fd, inode, pos + len(data), flags)
        return len(data)

    def dup2(self, fd, fd2):
        """Duplicate ``fd`` onto ``fd2`` (Unix dup2): descriptor-level
        redirection — pointing fd 1 at a regular file redirects stdout."""
        self._check_fd(fd)
        if not 0 <= fd2 < NFDS:
            raise FileSystemError(f"bad file descriptor {fd2}")
        inode, pos, flags = self._fd_fields(fd)
        self._set_fd(fd2, inode, pos, flags)
        return fd2

    def seek(self, fd, pos):
        self._check_fd(fd)
        inode, _, flags = self._fd_fields(fd)
        self._set_fd(fd, inode, pos, flags)

    def tell(self, fd):
        self._check_fd(fd)
        return self._fd_fields(fd)[1]

    def unlink(self, name):
        idx = self.lookup(name)
        if idx < 0:
            raise FileSystemError(f"no such file: {name!r}")
        self.set_inode(idx, flags=0, size=0)
        self._bump_version(idx)

    def stat(self, name):
        """Dict of size/version/flags for ``name``."""
        idx = self.lookup(name)
        if idx < 0:
            raise FileSystemError(f"no such file: {name!r}")
        return {
            "inode": idx,
            "size": self.inode_size(idx),
            "version": self.inode_version(idx),
            "flags": self.inode_flags(idx),
        }

    def _bump_version(self, idx):
        self.set_inode(idx, version=self.inode_version(idx) + 1)

    # -- whole-file conveniences ----------------------------------------------------------

    def write_file(self, name, data, append=False):
        fd = self.open(name, O_WRONLY | O_CREAT | (O_APPEND if append else 0))
        try:
            self.write(fd, data)
        finally:
            self.close(fd)

    def read_file(self, name):
        fd = self.open(name, O_RDONLY)
        try:
            return self.read(fd, FILE_SLOT)
        finally:
            self.close(fd)


# ---------------------------------------------------------------------------
# Reconciliation (paper §4.2/§4.3)
# ---------------------------------------------------------------------------

def reconcile(parent_fs, child_fs):
    """Bidirectionally reconcile two replicas using file versioning.

    ``child_fs`` is a child's image (typically viewed in the parent's
    scratch region); its base tables record the versions at the last
    synchronization with the parent.  After reconciliation both images
    agree and both base tables are updated.

    Returns a dict mapping file names to one of ``'push'`` (parent took
    the child's copy), ``'pull'`` (child took the parent's), ``'append'``
    (append-only bidirectional merge), or ``'conflict'``.
    """
    outcome = {}
    for idx in range(NFILES):
        p_ver = parent_fs.inode_version(idx)
        c_ver = child_fs.inode_version(idx)
        base_ver = child_fs.base_version(idx)
        if p_ver == base_ver and c_ver == base_ver:
            continue
        name = parent_fs.inode_name(idx) or child_fs.inode_name(idx)
        p_changed = p_ver != base_ver
        c_changed = c_ver != base_ver
        if c_changed and not p_changed:
            _adopt(parent_fs, child_fs, idx)
            outcome[name] = "push"
        elif p_changed and not c_changed:
            _adopt(child_fs, parent_fs, idx)
            outcome[name] = "pull"
        else:
            flags = parent_fs.inode_flags(idx) | child_fs.inode_flags(idx)
            if flags & F_APPEND:
                _merge_appends(parent_fs, child_fs, idx)
                outcome[name] = "append"
            else:
                # Discard the child's copy and mark the conflict (§4.2).
                new_ver = max(p_ver, c_ver) + 1
                p_flags = parent_fs.inode_flags(idx) | F_CONFLICT
                parent_fs.set_inode(idx, version=new_ver, flags=p_flags)
                _adopt(child_fs, parent_fs, idx)
                outcome[name] = "conflict"
        # Only the *child's* base table records the parent<->child sync
        # state; the parent's own base table tracks its sync with the
        # grandparent and must not be touched here.
        child_fs.set_base(idx, parent_fs.inode_version(idx), parent_fs.inode_size(idx))
    return outcome


def _adopt(dst_fs, src_fs, idx):
    """Copy one file (inode + data) from ``src_fs`` to ``dst_fs``."""
    size = src_fs.inode_size(idx)
    dst_fs.set_inode(
        idx,
        name=src_fs.inode_name(idx) or None,
        size=size,
        version=src_fs.inode_version(idx),
        flags=src_fs.inode_flags(idx),
    )
    if size:
        dst_fs.write_data(idx, 0, src_fs.read_data(idx, 0, size))


def _merge_appends(parent_fs, child_fs, idx):
    """Append-only merge: each side appends the other's new tail (§4.3).

    Every replica accumulates all writes; different replicas may observe
    them in different orders, exactly as the paper specifies.
    """
    base_size = child_fs.base_size(idx)
    p_size = parent_fs.inode_size(idx)
    c_size = child_fs.inode_size(idx)
    p_tail = parent_fs.read_data(idx, base_size, p_size - base_size)
    c_tail = child_fs.read_data(idx, base_size, c_size - base_size)
    new_ver = max(parent_fs.inode_version(idx), child_fs.inode_version(idx)) + 1
    if c_tail:
        parent_fs.write_data(idx, p_size, c_tail)
    parent_fs.set_inode(idx, size=p_size + len(c_tail), version=new_ver)
    if p_tail:
        child_fs.write_data(idx, c_size, p_tail)
    child_fs.set_inode(idx, size=c_size + len(p_tail), version=new_ver)
