"""Sharded host execution: run sibling subtrees in forked host processes.

The simulation is deterministic (the Kahn-network argument of paper
§3.2): a started space's entire subtree computes the same values, the
same trace segments and the same page images no matter *when* the
engine runs it, because it can interact only with its own children
until it stops.  The serial engine exploits none of that — at a
rendezvous it runs the joined child to completion on the caller's
thread while every other started sibling sits READY.

This module adds the obvious parallelism without giving up bit
identity.  At a rendezvous where several siblings are READY and none
has ever run, the coordinator forks one host process per sibling
(waves bounded by ``Machine(shard_workers=...)``).  Each worker runs
exactly one sibling's subtree against the fork-time copy of the
machine, then ships back a *delta*: the sibling's space graph, the new
trace suffix, and every machine/transport counter it advanced.  The
parent blocks until all workers are collected (workers only ever see
fork-time state), then *adopts* each result lazily — at the rendezvous
that would have run that sibling — renumbering frame serials, space
uids and trace segment ids by the parent's counters at adoption time.
Because the serial engine would have run the sibling at exactly that
point with exactly those counter values, adoption reproduces the
serial run's numbering, trace and memory images bit for bit.

Adoption is guarded, not assumed.  Before splicing a result in, the
coordinator re-checks everything the worker's run depended on that the
parent may have changed since the fork (frame refcounts and
generations reachable from the sibling, placement assignments); the
worker likewise refuses to report if its run touched anything that
cannot be replayed from a delta (the console-input or clock cursor).
Any doubt discards the result and runs the sibling inline on the
current state — the serial path is always correct, forked results are
only ever a cache of it.

Gates (all must hold or the rendezvous stays serial):

* ``shard_workers >= 2`` and ``os.fork`` exists;
* ``loss is None`` — fault schedules key off global message serials,
  which workers would interleave differently;
* ``ship_mode`` is ``"delta"`` or ``"full"`` and ``prefetch_depth`` is
  0 — the async prefetch queues read cross-subtree dirty hints, the
  one machine-global the adoption delta deliberately drops;
* the placement policy is content-independent (``identity`` /
  ``round_robin``), so a worker's first-use node assignments replay.
"""

import os
import pickle

from repro.kernel.space import SpaceState
from repro.timing.trace import Segment

#: Transport counters that are pure accumulations (order-independent
#: sums), shipped from workers as deltas and added on adoption.
_TRANSPORT_SCALARS = (
    "migrations", "pages_shipped", "pages_pulled", "pages_prefetched",
    "prefetch_used", "prefetch_stale", "batches", "messages", "hops",
    "bytes_total", "busy_total", "raw_total", "comp_total",
    "codec_cycles", "msg_serial", "drops", "dropped_bytes", "retx_msgs",
    "retx_bytes", "dups", "reorders", "retx_wait",
)

#: Additive per-link counter fields of ``LinkStats`` (everything except
#: the ``cls`` label and the ``by_type`` dict, merged separately).
_LINK_FIELDS = (
    "messages", "bytes_sent", "bytes_received", "pages", "raw_bytes",
    "comp_bytes", "busy_cycles", "retx_msgs", "retx_bytes",
    "dropped_msgs", "dropped_bytes", "dup_msgs", "dup_bytes",
    "reorder_msgs",
)

#: Placement policies whose ``assign`` reads only static state (the
#: topology and the virtual node number), so a worker-side first-use
#: assignment can be re-verified at adoption time.
_REPLAYABLE_PLACEMENTS = ("identity", "round_robin")


def _walk_page_slots(space):
    """Yield every frame reference held by ``space``'s subtree: one
    entry per mapping and per snapshot pin (the exact multiset the
    refcounts count)."""
    for sp in space.walk():
        for page in sp.addrspace._pages.values():
            yield page
        if sp.snapshot is not None:
            for page in sp.snapshot._frames.values():
                yield page


def _uid_index(uid):
    """Numeric suffix of a machine-assigned space uid (``"s42"`` -> 42);
    None for the root's or any foreign uid shape."""
    if isinstance(uid, str) and uid[:1] == "s" and uid[1:].isdigit():
        return int(uid[1:])
    return None


class ShardCoordinator:
    """Fork/collect/adopt state machine attached to one Machine."""

    #: Fewest never-run READY siblings worth sharding.  The pipe-based
    #: coordinator needs >= 2 (one sibling runs inline just as fast);
    #: the real-process backend overrides to 1 — a single subtree in a
    #: separate host process is exactly the point there.
    MIN_SIBLINGS = 2

    def __init__(self, machine, workers):
        self.machine = machine
        #: Maximum forked workers alive at once (wave size).
        self.workers = workers
        #: Space -> collected worker payload awaiting adoption.
        self.pending = {}
        #: Space -> fork-time frame snapshot {serial: (page, refs, gen)}.
        self.snapshots = {}
        # Fork-time counter bases (identical for every pending result).
        self._base = None
        # -- statistics (tests and reporting) --
        #: Sibling subtrees handed to forked workers.
        self.forked = 0
        #: Worker results spliced in at a rendezvous.
        self.adopted = 0
        #: Worker results discarded (worker refused, validation failed,
        #: or the transport failed); the sibling ran inline instead.
        self.fallbacks = 0

    # -- entry point (called by Kernel._rendezvous) ------------------------

    def execute(self, caller, child):
        """Run READY ``child`` via the shard machinery if possible.

        Returns True when a forked worker's result was adopted for
        ``child`` (the rendezvous must not run it again); False when
        the caller should fall back to the inline engine.
        """
        if child in self.pending:
            payload = self.pending.pop(child)
            snap = self.snapshots.pop(child)
            if payload is not None and self._adopt(child, payload, snap):
                self.adopted += 1
                return True
            self.fallbacks += 1
            return False
        if self.pending or not self._gates_open():
            return False
        siblings = [
            c for c in caller.children.values()
            if c.state is SpaceState.READY and (c.ctx is None or c.ctx.dead)
        ]
        if len(siblings) < self.MIN_SIBLINGS or child not in siblings:
            return False
        self._fork_all(caller, siblings)
        return self.execute(caller, child)

    def _gates_open(self):
        machine = self.machine
        return (
            self.workers >= 2
            and hasattr(os, "fork")
            and machine.loss is None
            and machine.ship_mode in ("delta", "full")
            and machine.prefetch_depth == 0
            and machine.control is None
            and machine.placement.name in _REPLAYABLE_PLACEMENTS
        )

    # -- forking -----------------------------------------------------------

    def _fork_all(self, caller, siblings):
        """Fork one worker per sibling (waves of ``self.workers``),
        collect every payload before returning.  The parent mutates
        nothing between the first fork and the last join, so every
        worker sees the identical fork-time machine."""
        machine = self.machine
        trace = machine.trace
        self._base = {
            "serial": machine.frames._next_serial,
            "uid": machine._uid_counter,
            "segments": len(trace.segments),
        }
        for sib in siblings:
            self.snapshots[sib] = {
                page.serial: (page, page.refs, page.generation)
                for page in _walk_page_slots(sib)
            }
        for i in range(0, len(siblings), self.workers):
            wave = siblings[i:i + self.workers]
            handles = [self._spawn(caller, sib) for sib in wave]
            self._wave_started(handles)
            for handle in handles:
                self.pending[handle[0]] = self._collect(handle)
                self.forked += 1

    def _spawn(self, caller, sibling):
        """Start one worker for ``sibling``; returns an opaque handle
        whose first element is the sibling (backends extend the rest)."""
        pid, rfd = self._fork_worker(caller, sibling)
        return (sibling, pid, rfd)

    def _wave_started(self, handles):
        """Hook between a wave's last spawn and its first collect; the
        real backend serves the forward page exchanges here so workers
        start computing concurrently."""

    def close(self):
        """Release backend resources at machine close (no-op here: pipe
        workers are always joined inside ``_fork_all``)."""

    def _fork_worker(self, caller, sibling):
        """Fork a worker that runs ``sibling`` and writes its pickled
        payload (length-prefixed) to a pipe.  Returns (pid, read_fd).

        Fork safety: the forking thread is the caller's guest thread —
        the sole holder of the execution baton, so every other guest
        thread is parked in a condition wait holding no locks.  The
        worker's surviving thread drives the sibling on a fresh guest
        thread and exits with ``os._exit`` (no unwinding of the cloned,
        threadless parent contexts).
        """
        rfd, wfd = os.pipe()
        pid = os.fork()
        if pid == 0:
            try:
                os.close(rfd)
                try:
                    payload = self._run_worker(caller, sibling)
                    data = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
                except BaseException:
                    data = b""
                os.write(wfd, len(data).to_bytes(8, "little"))
                view = memoryview(data)
                while view:
                    view = view[os.write(wfd, view):]
                os.close(wfd)
            finally:
                os._exit(0)
        os.close(wfd)
        return pid, rfd

    def _collect(self, handle):
        """Read one worker's payload; None on any shortfall."""
        _sibling, pid, rfd = handle
        try:
            chunks = []
            while True:
                chunk = os.read(rfd, 1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
            data = b"".join(chunks)
        finally:
            os.close(rfd)
            os.waitpid(pid, 0)
        if len(data) < 8:
            return None
        size = int.from_bytes(data[:8], "little")
        if size == 0 or len(data) != size + 8:
            return None
        try:
            return pickle.loads(data[8:])
        except Exception:
            return None

    # -- worker side -------------------------------------------------------

    def _run_worker(self, caller, sibling):
        """Inside the forked process: run ``sibling``'s subtree on the
        fork-time machine and return the delta payload (or None to
        demand the serial fallback)."""
        machine = self.machine
        trace = machine.trace
        transport = machine.transport
        machine.shard = None        # no nested sharding inside workers
        machine.engine._contexts = []   # parent ctxs have no threads here

        base = self._base
        pre_open = dict(trace._open)
        pre_last = dict(trace._last)
        edges0 = len(trace.edges)
        transfers0 = len(trace.transfers)
        caller_seg = pre_open.get(caller.uid)
        caller_cycles = caller_seg.cycles if caller_seg is not None else None
        t0 = pre_open.get(sibling.uid)
        # Fork-time frame slots, to detect which pre-fork frames the
        # run replaced (COW breaks, unmaps, re-pins): only their
        # refcounts condition the run's COW decisions.
        fork_slots = []
        for sp in sibling.walk():
            fork_slots.append((sp.addrspace._pages, dict(sp.addrspace._pages)))
            if sp.snapshot is not None:
                fork_slots.append((sp.snapshot._frames,
                                   dict(sp.snapshot._frames)))
        time0 = machine._time_idx
        console0 = machine._console_pos
        out0 = len(machine.console_output)
        dbg0 = len(machine.debug_lines)
        fetched0 = machine.pages_fetched
        alloc0 = machine.frames.frames_allocated
        merges0 = len(machine.merge_stats_total)
        msec0 = machine.merge_seconds
        map0 = len(machine.node_map)
        cache0 = {n: dict(c) for n, c in machine.node_cache.items()}
        origin0 = dict(machine.frame_origin)
        scalars0 = {k: getattr(transport, k) for k in _TRANSPORT_SCALARS}
        links0 = {link: ls.as_dict() for link, ls in transport.links.items()}

        machine.engine.run_until_stopped(sibling)

        # Refuse anything a delta cannot replay: a still-running
        # sibling, cursor-device reads (values depend on global order),
        # outstanding prefetch exchanges, or work leaking into the
        # caller's open segment.
        if sibling.state is SpaceState.READY:
            return None
        if machine._time_idx != time0 or machine._console_pos != console0:
            return None
        if any(machine.transport.inflight.values()):
            return None
        if caller_seg is not None and caller_seg.cycles != caller_cycles:
            return None

        serial0 = base["serial"]
        replaced = sorted({
            page.serial
            for container, before in fork_slots
            for vpn, page in before.items()
            if page.serial <= serial0 and container.get(vpn) is not page
        })

        def diff_nested(now, before):
            out = {}
            for key, cur in now.items():
                prev = before.get(key, {})
                delta = {k: v for k, v in cur.items() if prev.get(k) != v}
                if delta:
                    out[key] = delta
            return out

        link_delta = {}
        for link, ls in transport.links.items():
            prev = links0.get(link)
            cur = ls.as_dict()
            fields = {
                k: cur[k] - (prev[k] if prev else 0) for k in _LINK_FIELDS
            }
            by_type = {
                t: n - (prev["by_type"].get(t, 0) if prev else 0)
                for t, n in cur["by_type"].items()
            }
            fields["by_type"] = {t: n for t, n in by_type.items() if n}
            if any(v for v in fields.values() if not isinstance(v, dict)) \
                    or fields["by_type"]:
                fields["cls"] = cur["cls"]
                link_delta[link] = fields

        for sp in sibling.walk():
            sp.machine = None
            sp.ctx = None
            sp.addrspace.allocator = None
        sibling.parent = None

        return {
            "spaces": sibling,
            "replaced": replaced,
            "t0": None if t0 is None else (t0.id, t0.cycles, t0.closed),
            "segments": [
                (s.id, s.uid, s.node, s.cycles, s.label, s.closed)
                for s in trace.segments[base["segments"]:]
            ],
            "edges": trace.edges[edges0:],
            "transfers": trace.transfers[transfers0:],
            "open": {
                uid: seg.id for uid, seg in trace._open.items()
                if pre_open.get(uid) is not seg
            },
            "last": {
                uid: seg.id for uid, seg in trace._last.items()
                if pre_last.get(uid) is not seg
            },
            "uid_count": machine._uid_counter - base["uid"],
            "serials": machine.frames._next_serial - base["serial"],
            "frames_allocated": machine.frames.frames_allocated - alloc0,
            "pages_fetched": machine.pages_fetched - fetched0,
            "console_out": bytes(machine.console_output[out0:]),
            "debug_lines": machine.debug_lines[dbg0:],
            "merge_stats": machine.merge_stats_total[merges0:],
            "merge_seconds": machine.merge_seconds - msec0,
            "node_cache": diff_nested(machine.node_cache, cache0),
            "frame_origin": {
                s: n for s, n in machine.frame_origin.items()
                if origin0.get(s) != n
            },
            "placements": list(machine.node_map.items())[map0:],
            "transport": {
                k: getattr(transport, k) - scalars0[k]
                for k in _TRANSPORT_SCALARS
            },
            "links": link_delta,
        }

    # -- adoption (parent side) --------------------------------------------

    def _adopt(self, child, payload, snap):
        """Validate a worker result against the *current* parent state
        and splice it in, renumbering by the current counters.  Returns
        False (mutating nothing) when validation fails."""
        machine = self.machine
        trace = machine.trace
        base = self._base
        serial0 = base["serial"]

        # The worker computed against fork-time frames.  The sibling's
        # own (still unadopted) references pin every reachable frame's
        # content, so generations cannot have moved; refcounts matter
        # only for the frames the worker *wrote or replaced* — a
        # parent-side reference loss there (refs could have reached 1)
        # might have turned the worker's COW into an in-place write.
        # Reference gains are safe: more sharing still copies-on-write.
        for serial, (page, refs, generation) in snap.items():
            if page.generation != generation:
                return False
        for serial in payload["replaced"]:
            entry = snap.get(serial)
            if entry is None or entry[0].refs < entry[1]:
                return False
        # First-use placements made inside the worker must replay:
        # same assignment from the current map, no bijection clash.
        node_map = machine.node_map
        used = set(node_map.values())
        for vnode, phys in payload["placements"]:
            current = node_map.get(vnode)
            if current is None:
                if phys in used or \
                        machine.placement.assign(machine, None, vnode) != phys:
                    return False
                used.add(phys)
            elif current != phys:
                return False
        # Collect the adopted graph's frame slots; any pre-fork serial
        # must resolve to a fork-time frame of this sibling.
        adopted = payload["spaces"]
        page_slots = {}          # id(page) -> [page, slot_count]
        for page in _walk_page_slots(adopted):
            entry = page_slots.get(id(page))
            if entry is None:
                page_slots[id(page)] = [page, 1]
            else:
                entry[1] += 1
        for page, _count in page_slots.values():
            if page.serial <= serial0 and page.serial not in snap:
                return False

        # -- validation passed: splice (no failure paths below) --
        delta_s = machine.frames._next_serial - serial0
        delta_u = machine._uid_counter - base["uid"]
        delta_l = len(trace.segments) - base["segments"]
        uid_base = base["uid"]

        def remap_uid(uid):
            index = _uid_index(uid)
            if index is not None and index > uid_base:
                return f"s{index + delta_u}"
            return uid

        # Exact refcounts: the sibling's old image releases every
        # reference it held, the adopted image re-takes its own.
        for page in _walk_page_slots(child):
            page.decref()
        pre_fork = {}            # unpickled pre-fork copy -> live frame
        for page, count in page_slots.values():
            if page.serial <= serial0:
                live = snap[page.serial][0]
                pre_fork[id(page)] = live
                for _ in range(count):
                    live.incref()
            else:
                page.serial += delta_s
                page.refs = count
        if pre_fork:
            # Restore identity of pre-fork frames (the pickle copied
            # them): point every adopted slot back at the live frame.
            for sp in adopted.walk():
                pages = sp.addrspace._pages
                for vpn, page in pages.items():
                    live = pre_fork.get(id(page))
                    if live is not None:
                        pages[vpn] = live
                if sp.snapshot is not None:
                    frames = sp.snapshot._frames
                    for vpn, page in frames.items():
                        live = pre_fork.get(id(page))
                        if live is not None:
                            frames[vpn] = live

        for sp in adopted.walk():
            sp.machine = machine
            sp.ctx = None
            sp.addrspace.allocator = machine.frames
            sp.uid = remap_uid(sp.uid)

        # Splice the adopted image into the existing Space object (the
        # caller's child table and the trace keep referring to it).
        child.addrspace = adopted.addrspace
        child.regs = adopted.regs
        child.snapshot = adopted.snapshot
        child.children = adopted.children
        for grandchild in child.children.values():
            grandchild.parent = child
        child.state = adopted.state
        child.trap = adopted.trap
        child.trap_info = adopted.trap_info
        child.insn_limit = adopted.insn_limit
        child.visit_tokens = adopted.visit_tokens
        child.cur_node = adopted.cur_node
        child.killed = adopted.killed
        child.ctx = None

        # Trace suffix: segment ids shift by the parent's growth since
        # the fork; the sibling's fork-time open segment takes its
        # final charge.
        seg_base = base["segments"]
        new_segments = {}
        for sid, uid, node, cycles, label, closed in payload["segments"]:
            seg = Segment(sid + delta_l, remap_uid(uid), node, label)
            seg.cycles = cycles
            seg.closed = closed
            trace.segments.append(seg)
            new_segments[sid] = seg

        def remap_sid(sid):
            return sid + delta_l if sid >= seg_base else sid

        trace.edges.extend(
            (remap_sid(a), remap_sid(b), lat)
            for a, b, lat in payload["edges"])
        trace.transfers.extend(
            (remap_sid(a), remap_sid(b), link, busy, lat, cls, kind)
            for a, b, link, busy, lat, cls, kind in payload["transfers"])
        if payload["t0"] is not None:
            t0_id, t0_cycles, t0_closed = payload["t0"]
            t0 = trace.segments[t0_id]
            t0.cycles = t0_cycles
            t0.closed = t0_closed

        def resolve(sid):
            return new_segments[sid] if sid >= seg_base \
                else trace.segments[sid]

        for uid, sid in payload["open"].items():
            trace._open[remap_uid(uid)] = resolve(sid)
        for uid, sid in payload["last"].items():
            trace._last[remap_uid(uid)] = resolve(sid)

        # Machine and transport ledgers (pure accumulations).
        machine._uid_counter += payload["uid_count"]
        machine.frames._next_serial += payload["serials"]
        machine.frames.frames_allocated += payload["frames_allocated"]
        machine.pages_fetched += payload["pages_fetched"]
        machine.console_output.extend(payload["console_out"])
        machine.debug_lines.extend(payload["debug_lines"])
        machine.merge_stats_total.extend(payload["merge_stats"])
        machine.merge_seconds += payload["merge_seconds"]
        for node, entries in payload["node_cache"].items():
            cache = machine.node_cache[node]
            for serial, generation in entries.items():
                if serial > serial0:
                    serial += delta_s
                cache[serial] = generation
        for serial, node in payload["frame_origin"].items():
            if serial > serial0:
                serial += delta_s
            machine.frame_origin[serial] = node
        for vnode, phys in payload["placements"]:
            machine.node_map.setdefault(vnode, phys)
        transport = machine.transport
        for key, delta in payload["transport"].items():
            setattr(transport, key, getattr(transport, key) + delta)
        for link, fields in payload["links"].items():
            stats = transport.link(link)
            for key in _LINK_FIELDS:
                setattr(stats, key, getattr(stats, key) + fields[key])
            for mtype, count in fields["by_type"].items():
                stats.by_type[mtype] = stats.by_type.get(mtype, 0) + count
        return True
