"""Spaces: the kernel's only execution abstraction (paper §3.1).

A space holds CPU register state for a single control flow plus a private
virtual address space.  It can interact only with its immediate parent
and children, cannot outlive its parent, and has a private namespace of
child numbers managed entirely by user code.
"""

import enum

from repro.common.errors import KernelError
from repro.kernel.traps import Trap
from repro.mem.addrspace import AddressSpace

#: Register names every space carries.  ``entry``/``args`` stand in for
#: the instruction pointer + argument registers (a child starts at a named
#: function entry — see DESIGN.md on this divergence); ``r0``–``r7`` are
#: general-purpose value registers parents and children exchange; ``status``
#: is the conventional exit/status register.
REG_NAMES = ("entry", "args", "status", "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7")


def fresh_regs():
    """A zeroed register file."""
    regs = {name: 0 for name in REG_NAMES}
    regs["entry"] = None
    regs["args"] = ()
    return regs


class SpaceState(enum.Enum):
    """Lifecycle of a space."""

    #: Created but never started.
    IDLE = "idle"
    #: Started and runnable (will execute when the kernel schedules it).
    READY = "ready"
    #: Stopped by Ret or a trap; parent may inspect and resume it.
    STOPPED = "stopped"
    #: Entry function returned; restartable with a fresh entry.
    EXITED = "exited"


class Space:
    """One node in the space hierarchy."""

    def __init__(self, machine, parent, uid, home_node=0):
        self.machine = machine
        self.parent = parent
        #: Stable identifier, used as the trace context id.
        self.uid = uid
        self.addrspace = AddressSpace(
            allocator=machine.frames,
            track_dirty=machine.dirty_tracking,
        )
        #: Child-number -> Space.  Numbers are chosen by user code (§2.4).
        self.children = {}
        self.regs = fresh_regs()
        #: Reference snapshot installed by the Snap option, used by Merge.
        self.snapshot = None
        self.state = SpaceState.IDLE
        self.trap = Trap.NONE
        #: Human-readable detail for fault traps (exception text).
        self.trap_info = ""
        #: Remaining instruction budget, or None for unlimited.
        self.insn_limit = None
        #: Node where this space was created; it returns here to meet its
        #: parent (§3.3).
        self.home_node = home_node
        #: Node where the space currently executes.
        self.cur_node = home_node
        #: node -> dirty-ledger clock when this space last left that
        #: node.  Migration back ships only pages written since (the
        #: ledger-driven delta); nodes never visited need a full
        #: tag-filtered walk instead.
        self.visit_tokens = {}
        #: True only for the root space (and spaces explicitly delegated
        #: I/O privileges): may invoke device pseudo-calls.
        self.io_privilege = False
        #: Set when the machine is shutting down; unwinds the guest thread.
        self.killed = False
        #: Guest execution context (created lazily by the engine).
        self.ctx = None

    # -- hierarchy ---------------------------------------------------------

    @property
    def is_root(self):
        return self.parent is None

    def child(self, num):
        """The child space at ``num``, or None."""
        return self.children.get(num)

    def depth(self):
        """Distance from the root space."""
        d, s = 0, self
        while s.parent is not None:
            d, s = d + 1, s.parent
        return d

    def walk(self):
        """Yield this space and all descendants, depth-first."""
        yield self
        for num in sorted(self.children):
            yield from self.children[num].walk()

    def slot_path(self):
        """Child numbers from the root down to this space (``[]`` for
        the root) — the address a parent chain uses to reach it, and the
        symbolic name the debugger prints next to the uid."""
        path, space = [], self
        while space.parent is not None:
            for num, child in space.parent.children.items():
                if child is space:
                    path.append(num)
                    break
            else:
                raise KernelError(
                    f"space {self.uid} detached from parent {space.parent.uid}")
            space = space.parent
        path.reverse()
        return path

    # -- state -------------------------------------------------------------

    def is_stopped(self):
        """True if a parent may safely inspect/modify this space."""
        return self.state in (SpaceState.IDLE, SpaceState.STOPPED, SpaceState.EXITED)

    def set_regs(self, updates):
        """Apply a Put/Regs update (validated against the register file)."""
        for name, value in updates.items():
            if name not in self.regs:
                raise KernelError(f"unknown register {name!r}")
            self.regs[name] = value

    def reg_view(self):
        """Copy of the register file plus stop metadata (for Get/Regs)."""
        view = dict(self.regs)
        view["trap"] = self.trap
        view["trap_info"] = self.trap_info
        return view

    def destroy(self):
        """Tear down this space and every descendant (kill guest threads,
        release memory and snapshots)."""
        for child in list(self.children.values()):
            child.destroy()
        self.children.clear()
        self.killed = True
        if self.ctx is not None:
            self.ctx.kill()
            self.ctx = None
        if self.snapshot is not None:
            self.snapshot.release()
            self.snapshot = None
        self.addrspace.drop_all()
        if self.parent is not None:
            for num, child in list(self.parent.children.items()):
                if child is self:
                    del self.parent.children[num]

    def __repr__(self):
        return (
            f"<Space {self.uid} {self.state.value} trap={self.trap.name} "
            f"node={self.cur_node} children={len(self.children)}>"
        )
