"""The Determinator kernel simulator.

Implements the paper's §3: an arbitrarily deep hierarchy of
single-threaded *spaces* (private registers + private virtual memory),
interacting **only** through the three system calls Put, Get and Ret
(Tables 1–2), with rendezvous synchronization, copy-on-write Copy/Snap,
byte-granularity Merge, page permissions, subtree copy, instruction
limits, and space migration across cluster nodes (§3.3).

Entry point for users: :class:`repro.kernel.machine.Machine`.
"""

from repro.kernel.traps import Trap
from repro.kernel.space import Space, SpaceState
from repro.kernel.guest import Guest
from repro.kernel.kernel import Kernel, child_ref
from repro.kernel.machine import Machine, MachineResult

__all__ = [
    "Trap",
    "Space",
    "SpaceState",
    "Guest",
    "Kernel",
    "child_ref",
    "Machine",
    "MachineResult",
]
