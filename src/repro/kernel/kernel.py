"""Put/Get/Ret: the entire kernel API (paper §3.2, Tables 1 and 2).

Option arguments accepted by :meth:`Kernel.sys_put` / :meth:`Kernel.sys_get`:

===========  ====  ====  =====================================================
option        Put   Get   meaning
===========  ====  ====  =====================================================
``regs``      X     X    Put: dict of register updates for the child.
                         Get: pass ``regs=True`` to receive the child's
                         register file + trap status.
``copy``      X     X    ``(src, dst, size)`` or ``(addr, size)`` or a list
                         of either: copy memory to (Put) / from (Get) the
                         child, copy-on-write, page-aligned.
``zero``      X     X    ``(addr, size)`` or list: zero-fill a range
                         (in the child for Put, in the caller for Get).
``snap``      X          ``(addr, size)``: snapshot the child's memory as
                         the reference for later Merge.
``start``     X          Start (or resume) the child executing.
``limit``     X          Instruction limit for this start (None=unlimited).
``merge``           X    ``True`` (whole snapshot range) or ``(addr, size)``:
                         merge child's changes since its snapshot into the
                         caller; write/write conflicts raise
                         MergeConflictError in the caller.
``perm``      X     X    ``(addr, size, perm)``: set page permissions
                         (child range on Put, caller range on Get).
``tree``      X     X    ``(src_child, dst_child)``: copy a (grand)child
                         subtree between the caller's and the child's child
                         namespaces (down for Put, up for Get).
``grant_io``  X          Delegate I/O privilege to the child (paper §3.1:
                         "I/O privileges delegated by the root space").
===========  ====  ====  =====================================================

High bits of the child number select the node to interact on (§3.3):
use :func:`child_ref` to build cross-node child numbers.
"""

import time

from repro.common.errors import BadChildError, KernelError, MergeConflictError
from repro.kernel.space import SpaceState
from repro.kernel.traps import Trap
from repro.mem.merge import MergeStats, merge_range
from repro.mem.page import PAGE_SHIFT
from repro.mem.snapshot import Snapshot

#: Bit position where the node-number field starts in a child number.
NODE_SHIFT = 16
#: Mask of the local child-number field.
LOCAL_MASK = (1 << NODE_SHIFT) - 1


def child_ref(local, node=None):
    """Build a child number addressing ``local`` on ``node``.

    ``node=None`` (or omitted) leaves the node field zero, which the
    kernel interprets as the calling space's *home* node — so programs
    that never pass a node keep their whole hierarchy on one node, as the
    paper specifies (§3.3).
    """
    if not 0 <= local <= LOCAL_MASK:
        raise ValueError(f"local child number {local} out of range")
    if node is None:
        return local
    return ((node + 1) << NODE_SHIFT) | local


def _normalize_ranges(spec, what):
    """Normalize copy/zero specs to a list of (src, dst, size) tuples."""
    if spec is None:
        return []
    if isinstance(spec, tuple):
        spec = [spec]
    out = []
    for item in spec:
        if len(item) == 2:
            addr, size = item
            out.append((addr, addr, size))
        elif len(item) == 3:
            out.append(tuple(item))
        else:
            raise KernelError(f"bad {what} spec {item!r}")
    return out


class Kernel:
    """Implements the three system calls over a machine's space hierarchy."""

    def __init__(self, machine):
        self.machine = machine

    # -- helpers ----------------------------------------------------------

    def kcharge(self, space, cycles):
        """Charge kernel work to ``space``'s open trace segment."""
        if cycles:
            self.machine.trace.charge(space.uid, cycles)

    def _decode_child(self, caller, childno):
        """Node selected by the child number's high bits (§3.3).

        The *full* child number — node field included — is the key in
        the parent's child namespace: child 1 on node 2 and child 1 on
        node 3 are distinct children.  Node numbers in child references
        are *virtual*: the machine's placement policy maps each one to a
        physical fabric node on first use (``Machine.place``), so the
        same program can be packed by rack affinity or striped across
        racks without changing a line of guest code.
        """
        node_field = childno >> NODE_SHIFT
        if node_field == 0:
            return childno, caller.home_node
        vnode = node_field - 1
        if not 0 <= vnode < self.machine.nnodes:
            raise KernelError(f"node {vnode} does not exist")
        return childno, self.machine.place(vnode, caller)

    def _lookup(self, caller, childno, create=True):
        child = caller.children.get(childno)
        if child is None:
            if not create:
                raise BadChildError(f"no child {childno} in space {caller.uid}")
            child = self.machine.new_space(caller, home_node=caller.cur_node)
            caller.children[childno] = child
            self.kcharge(caller, self.machine.cost.space_create)
        return child

    def _rendezvous(self, caller, child):
        """Block the caller until a running child stops (paper §3.2)."""
        if child.state is not SpaceState.READY:
            return
        shard = self.machine.shard
        if shard is None or not shard.execute(caller, child):
            self.machine.engine.run_until_stopped(child)
        trace = self.machine.trace
        _, opened = trace.cut(caller.uid, label="rendezvous")
        last = trace.last_closed(child.uid)
        if last is not None:
            trace.edge(last, opened)
        # Quantum boundary: the control plane (if any) takes one decision
        # pass here, on the just-cut telemetry, so its knob deltas apply
        # from the next quantum on (repro.cluster.control).
        control = self.machine.control
        if control is not None:
            control.on_quantum(self.machine, caller)

    def migrate(self, space, target_node):
        """Move a space's execution to another node (paper §3.3).

        The space's memory image travels with it as a *delta*: the dirty
        ledger (via the space's per-node visit tokens) names the pages
        written since the space last resided on the target, and the
        target's tag cache drops the ones whose content already lives
        there.  The transport coalesces the survivors into batched
        scatter/gather messages behind a MIGRATE header.

        In ``ship_mode="demand"`` nothing ships eagerly: the same
        ledger enumeration instead seeds the *async prefetch queue* —
        the pages written since the space last visited the target are
        exactly the ones about to fault there, so their fetch is issued
        pipelined behind the MIGRATE message while the space resumes
        computing (migration-ledger-informed prediction).
        """
        if target_node == space.cur_node:
            return
        machine = self.machine
        cost = machine.cost
        src = space.cur_node
        shipped, walked, tracked, candidates = \
            self._migration_delta(space, target_node)
        # CPU-side work: pack register state + walk the candidate set
        # (ledger entries with tracking, PTEs without).
        self.kcharge(space, cost.migrate_base
                     + walked * (cost.page_track if tracked
                                 else cost.page_scan))
        # Ledger harvest for the predictor: what this space wrote while
        # resident at src is what src will be asked to serve next.
        machine.note_dirty_hints(src, candidates)
        space.visit_tokens[src] = space.addrspace.dirty_token()
        machine.transport.migrate(space, src, target_node, shipped)
        space.cur_node = target_node
        if machine.ship_mode == "demand":
            self._issue_prefetch(space, target_node, candidates)

    def _migration_delta(self, space, target_node):
        """Pages to ship with a migration:
        ``(shipped_frames, walked, tracked, candidates)``.

        Registers every shipped page's content tag in the target node's
        cache (the pages really arrive there).  ``walked`` counts
        enumeration work for cost charging; ``tracked`` says whether the
        dirty ledger answered (cheap per entry) or a full mapped-page
        walk was needed; ``candidates`` is the enumerated vpn set (the
        predictor's input).  In ``ship_mode="demand"`` no frames ship
        and no enumeration work is charged — the MIGRATE message
        carries only the summary.
        """
        machine = self.machine
        aspace = space.addrspace
        cache = machine.node_cache[target_node]
        mode = machine.ship_mode
        candidates = None
        tracked = False
        if mode != "full":
            token = space.visit_tokens.get(target_node)
            if token is not None:
                candidates = aspace.dirty_vpns_since(token)
                tracked = candidates is not None
        if candidates is None:
            candidates = aspace.mapped_vpns()
        if mode == "demand":
            return [], 0, tracked, candidates
        shipped = []
        for vpn in candidates:
            frame = aspace.frame(vpn)
            if frame is None:
                continue
            if mode != "full" and cache.get(frame.serial) == frame.generation:
                continue
            cache[frame.serial] = frame.generation
            shipped.append(frame)
        return shipped, len(candidates), tracked, candidates

    def _issue_prefetch(self, space, node, vpn_stream, hint_origins=()):
        """Fill ``node``'s async fetch queue with predicted-next frames.

        ``vpn_stream`` is the prediction, in priority order (the
        sequential window past a faulting range, or the migration
        ledger's candidate set); ``hint_origins`` optionally extends it
        with each named node's recently written vpns
        (``machine.dirty_hints``), nearest fabric neighbors first.
        Candidates already cached, already in flight, or served locally
        are skipped; at most ``prefetch_depth - in_flight`` issue, so
        the queue never exceeds its depth.  Must run right after a cut
        (the transport anchors the exchange at the last closed
        segment).
        """
        machine = self.machine
        depth = machine.prefetch_depth_for(node)
        if depth <= 0 or machine.nnodes <= 1:
            return
        transport = machine.transport
        # Entries rewritten since they were issued are dead weight:
        # drop them (counted stale) before sizing the refill, so hot
        # pages churning under speculation re-pay their wire every
        # rewrite instead of squatting in the queue forever.
        transport.purge_superseded(node)
        budget = depth - transport.queue_len(node)
        if budget <= 0:
            return
        aspace = space.addrspace
        cache = machine.node_cache[node]
        origin_of = machine.frame_origin
        queue = transport.inflight.get(node, {})
        by_origin = {}
        seen = set()
        walked = 0

        def consider(vpn):
            frame = aspace.frame(vpn)
            if frame is None or frame.serial in seen:
                return 0
            seen.add(frame.serial)
            cached = cache.get(frame.serial)
            if cached == frame.generation:
                return 0
            if frame.serial in queue:
                return 0
            origin = origin_of.get(frame.serial, space.home_node)
            if origin == node:
                return 0
            by_origin.setdefault(origin, []).append(frame)
            if cached is not None:
                # Re-speculating on a page this node already fetched
                # once: its producer rewrote it since.  Recurring
                # refreshes are the churn signal the control plane's
                # collapse rule keys on — pages rewritten every round
                # make any depth's speculation a running wire tax.
                transport._wnode(node)["prefetch_refresh"] += 1
            return 1

        for vpn in vpn_stream:
            if budget <= 0:
                break
            walked += 1
            budget -= consider(vpn)
        topo = machine.topology
        for origin in sorted(hint_origins,
                             key=lambda o: (topo.distance(o, node), o)):
            for vpn in reversed(machine.dirty_hints.get(origin, ())):
                if budget <= 0:
                    break
                walked += 1
                budget -= consider(vpn)
        # The predictor walks ledger entries, not page tables.
        self.kcharge(space, walked * machine.cost.page_track)
        for origin in sorted(by_origin):
            transport.prefetch(space, origin, node, by_origin[origin])

    def touch(self, space, addr, size, write=False):
        """Cluster demand paging: account for page fetches when a space
        accesses memory away from where its frames were last materialized.

        Unchanged frames (same ``(serial, generation)`` content tag) are
        served from the per-node read-only page cache, reproducing the
        §3.3 optimization that lets program text move free when a space
        revisits a node.  Writers bump the frame generation (in
        ``AddressSpace._ensure_writable``), so a mutated frame carries a
        fresh tag and every other node refetches it on next use.

        Misses are pulled through the transport as one batched
        PAGE_REQ/PAGE_BATCH exchange per producing node — a scatter/
        gather round trip, not N independent per-page fetches.  A miss
        already *in flight* on the node's async prefetch queue redeems
        its exchange instead: the space waits only for whatever part of
        the transfer the compute since its issue did not hide.  Each
        demand batch also re-primes the queue with the predicted next
        frames (sequential past the faulted range, plus the producing
        nodes' recent-write hints).
        """
        machine = self.machine
        if machine.nnodes <= 1 or size == 0:
            return
        node = space.cur_node
        cache = machine.node_cache[node]
        origin_of = machine.frame_origin
        transport = machine.transport
        aspace = space.addrspace
        vpn0 = addr >> PAGE_SHIFT
        vpn1 = (addr + size - 1) >> PAGE_SHIFT
        # vpn-ascending batched pulls, grouped by producing node.
        fetch_by_origin = {}
        redeems = []
        # Unmapped vpns have nothing to fetch or cache.  Walk whichever
        # side is smaller: the range itself (scalar accesses stay O(1))
        # or the mapped-page set (huge sparse ranges — whole-share
        # merges — stay O(mapped) instead of O(range)).
        if vpn1 - vpn0 + 1 <= aspace.mapped_page_count():
            vpns = range(vpn0, vpn1 + 1)
        else:
            vpns = aspace.mapped_vpns_in(vpn0, vpn1 + 1)
        for vpn in vpns:
            frame = aspace.frame(vpn)
            if frame is None:
                continue
            # The cache maps serial -> newest generation seen at this
            # node; older generations can never be served again, so
            # replacing (rather than accumulating) bounds the cache to
            # live frames.
            if write:
                cache[frame.serial] = frame.generation
                origin_of[frame.serial] = node
                machine.note_dirty_hints(node, (vpn,))
            elif cache.get(frame.serial) != frame.generation:
                exchange = transport.take_inflight(node, frame.serial,
                                                   frame.generation)
                cache[frame.serial] = frame.generation
                if exchange is not None:
                    if exchange not in redeems:
                        redeems.append(exchange)
                else:
                    origin = origin_of.get(frame.serial, space.home_node)
                    fetch_by_origin.setdefault(origin, []).append(frame)
        if redeems:
            transport.redeem_exchanges(space, node, redeems)
        for origin in sorted(fetch_by_origin):
            transport.fetch(space, origin, node, fetch_by_origin[origin])
        depth = machine.prefetch_depth_for(node)
        if fetch_by_origin and not write and depth > 0:
            self._issue_prefetch(space, node,
                                 aspace.mapped_vpns_in(
                                     vpn1 + 1,
                                     vpn1 + 1 + 4 * depth),
                                 hint_origins=sorted(fetch_by_origin))

    def _copy_subtree(self, caller, src_space, new_parent):
        """Deep COW clone of a space subtree (Tree option)."""
        if not src_space.is_stopped():
            raise KernelError("cannot Tree-copy a running space")
        clone = self.machine.new_space(new_parent, home_node=new_parent.cur_node)
        clone.addrspace = src_space.addrspace.clone()
        clone.regs = dict(src_space.regs)
        clone.trap = src_space.trap
        clone.state = (
            SpaceState.IDLE if src_space.state is SpaceState.IDLE else SpaceState.STOPPED
        )
        for num, grandchild in src_space.children.items():
            clone.children[num] = self._copy_subtree(caller, grandchild, clone)
        self.kcharge(
            caller,
            self.machine.cost.space_create
            + src_space.addrspace.mapped_page_count() * self.machine.cost.page_map,
        )
        return clone

    def _apply_copy(self, caller, dst_space, src_space, ranges):
        cost = self.machine.cost
        for src, dst, size in ranges:
            # Cross-node: the caller just migrated to the child's node, so
            # source pages it hasn't cached there must come over the wire.
            self.touch(src_space, src, size)
            dst_space.addrspace.copy_range_from(
                src_space.addrspace, src, dst, size
            )
            npages = len(
                src_space.addrspace.mapped_vpns_in(
                    src >> PAGE_SHIFT, (src + size) >> PAGE_SHIFT
                )
            )
            self.kcharge(caller, cost.syscall // 10 + npages * cost.page_map)

    # -- Put ---------------------------------------------------------------

    def sys_put(
        self,
        caller,
        childno,
        regs=None,
        copy=None,
        zero=None,
        snap=None,
        perm=None,
        start=False,
        limit=None,
        tree=None,
        grant_io=False,
    ):
        """The Put system call.  See the module docstring for options."""
        cost = self.machine.cost
        self.kcharge(caller, cost.syscall)
        key, node = self._decode_child(caller, childno)
        self.migrate(caller, node)
        child = self._lookup(caller, key)
        self._rendezvous(caller, child)

        if regs:
            child.set_regs(regs)
        if grant_io:
            if not caller.io_privilege:
                raise KernelError("cannot delegate I/O privilege without it")
            child.io_privilege = True
        self._apply_copy(caller, child, caller, _normalize_ranges(copy, "copy"))
        for _, addr, size in _normalize_ranges(zero, "zero"):
            child.addrspace.zero_range(addr, size)
            self.kcharge(caller, cost.syscall // 10)
        if perm is not None:
            addr, size, p = perm
            child.addrspace.set_perm(addr, size, p)
        if snap is not None:
            addr, size = snap
            recap = None
            old = child.snapshot
            if old is not None and (old.addr, old.size) == (addr, size):
                # Incremental re-snap: only pages dirtied since the last
                # Snap are re-shared — O(dirty), not O(mapped).
                recap = old.recapture(child.addrspace)
            if recap is None:
                if old is not None:
                    old.release()
                child.snapshot = Snapshot.capture(child.addrspace, addr, size)
                self.kcharge(caller,
                             child.snapshot.page_count() * cost.page_map)
            else:
                # page_track per ledger entry walked, page_map per frame
                # actually re-pinned (never more than the full capture of
                # the same end state would charge).
                repinned, walked = recap
                self.kcharge(caller, walked * cost.page_track
                             + repinned * cost.page_map)
        if tree is not None:
            src_child, dst_child = tree
            src = caller.children.get(src_child)
            if src is None:
                raise BadChildError(f"no child {src_child} to Tree-copy")
            old = child.children.get(dst_child)
            if old is not None:
                old.destroy()
            child.children[dst_child] = self._copy_subtree(caller, src, child)

        if start:
            self._start_child(caller, child, limit)
        return None

    def _start_child(self, caller, child, limit):
        cost = self.machine.cost
        trace = self.machine.trace
        if child.trap is Trap.INSN_LIMIT:
            self.kcharge(caller, cost.limit_resume)
        child.trap = Trap.NONE
        child.trap_info = ""
        child.insn_limit = limit
        child.state = SpaceState.READY
        closed, _ = trace.cut(caller.uid, label="put-start")
        if trace.is_open(child.uid):
            trace.edge(closed, trace.current(child.uid))
        else:
            seg = trace.begin(child.uid, node=child.cur_node, label="start")
            trace.edge(closed, seg)

    # -- Get ---------------------------------------------------------------

    def sys_get(
        self,
        caller,
        childno,
        regs=False,
        copy=None,
        zero=None,
        merge=None,
        merge_mode=None,
        perm=None,
        tree=None,
    ):
        """The Get system call.  Returns the child's register view when
        ``regs=True``, else None."""
        cost = self.machine.cost
        self.kcharge(caller, cost.syscall)
        key, node = self._decode_child(caller, childno)
        self.migrate(caller, node)
        child = self._lookup(caller, key)
        self._rendezvous(caller, child)

        self._apply_copy(caller, caller, child, _normalize_ranges(copy, "copy"))
        if perm is not None:
            addr, size, p = perm
            caller.addrspace.set_perm(addr, size, p)
        for _, addr, size in _normalize_ranges(zero, "zero"):
            caller.addrspace.zero_range(addr, size)
            self.kcharge(caller, cost.syscall // 10)
        if merge is not None and merge is not False:
            self._apply_merge(caller, child, merge, merge_mode)
        if tree is not None:
            src_child, dst_child = tree
            src = child.children.get(src_child)
            if src is None:
                raise BadChildError(f"no grandchild {src_child} to Tree-copy")
            old = caller.children.get(dst_child)
            if old is not None:
                old.destroy()
            caller.children[dst_child] = self._copy_subtree(caller, src, caller)
        if regs:
            return child.reg_view()
        return None

    def _apply_merge(self, caller, child, merge, merge_mode=None):
        if child.snapshot is None:
            raise KernelError(
                f"Merge requires a prior Snap on child of {caller.uid}"
            )
        if merge is True:
            addr = size = None
        else:
            addr, size = merge
        maddr = child.snapshot.addr if addr is None else addr
        msize = child.snapshot.size if size is None else size
        self.touch(child, maddr, msize)
        stats = MergeStats()
        t0 = time.perf_counter()
        try:
            merge_range(
                caller.addrspace,
                child.addrspace,
                child.snapshot,
                addr,
                size,
                mode=merge_mode or self.machine.merge_mode,
                stats=stats,
            )
        except MergeConflictError:
            # A conflict is still a merge that performed scan/diff work
            # (and, on the legacy path, may have written pages): account
            # it before re-raising.  Argument-validation errors, by
            # contrast, propagate without leaving a stats record.
            self._finish_merge(caller, stats, t0)
            raise
        self._finish_merge(caller, stats, t0)

    def _finish_merge(self, caller, stats, t0):
        """Post-merge accounting shared by the success and conflict paths."""
        cost = self.machine.cost
        # Host wall-clock spent merging (reporting only — never feeds
        # back into virtual time, so determinism is unaffected).
        self.machine.merge_seconds += time.perf_counter() - t0
        # The merge changed these parent pages (diff writes, adoptions):
        # register their fresh tags at the merging node so the caller is
        # never charged a fetch for pages it just produced.  Only the
        # written pages — untouched parent pages whose content lives on
        # another node must still be fetched on next access.  The list is
        # consumed here so the retained stats log stays O(1) per merge.
        written = stats.written_vpns
        stats.written_vpns = ()
        if written and self.machine.nnodes > 1:
            node = caller.cur_node
            cache = self.machine.node_cache[node]
            aspace = caller.addrspace
            for vpn in written:
                frame = aspace.frame(vpn)
                if frame is not None:
                    cache[frame.serial] = frame.generation
                    self.machine.frame_origin[frame.serial] = node
            # Merged-in pages are fresh cross-node content: feed the
            # prefetch predictor's per-node recent-write hints.
            self.machine.note_dirty_hints(node, written)
        # Dirty-ledger enumeration inspects a ledger entry per candidate
        # (page_track); a page-table scan inspects a PTE (page_scan).
        scan_cost = cost.page_track if stats.tracked else cost.page_scan
        self.kcharge(
            caller,
            stats.pages_scanned * scan_cost
            + stats.batch_ops * cost.batch_diff
            + stats.pages_diffed * cost.page_diff
            + stats.pages_adopted * cost.page_adopt
            + stats.bytes_merged * cost.byte_merge,
        )
        self.machine.merge_stats_total.append(stats)

    # -- Ret ---------------------------------------------------------------

    def sys_ret(self, space):
        """The Ret system call: stop and wait for the parent.

        Migration back to the home node happens in the engine's stop
        path, which also covers traps and program exit (§3.3)."""
        self.kcharge(space, self.machine.cost.syscall)
        space.ctx._stop(Trap.RET)
