"""The guest API: everything a program running inside a space may do.

Real Determinator runs native machine code; the hardware confines it to
its private address space and the three system calls.  Here guest code is
a Python callable ``entry(g, *args)`` receiving a :class:`Guest`; the
confinement is that *all* interaction with simulated state goes through
``g``.  Every operation charges deterministic "instructions" to the
space's virtual-time meter, which is also what instruction limits (§3.2)
count.

Memory access:

* ``read``/``write`` and the typed ``load``/``store`` helpers move bytes
  to/from the space's private address space;
* ``array_read``/``array_write``/``mapped`` move numpy arrays (bulk data
  for the compute benchmarks);
* ``view`` returns a true zero-copy view for single-page data.

Compute is modelled with :meth:`Guest.work`, which charges cycles without
touching memory (the benchmarks charge their real algorithmic cost and,
where cheap, also perform the real computation so results are checkable).
"""

import contextlib
import struct

import numpy as np

from repro.common.errors import KernelError
from repro.kernel.traps import Trap

#: Base instruction charge of a memory API call.
_MEM_BASE = 6
#: One extra instruction per this many bytes moved (vectorized accesses).
_BYTES_PER_INSN = 16


class Guest:
    """Capability handle guest code uses to act as its space."""

    def __init__(self, kernel, space):
        self.kernel = kernel
        self.space = space
        self.machine = kernel.machine
        self.cost = kernel.machine.cost

    # -- accounting ---------------------------------------------------------

    @property
    def uid(self):
        """The space's stable identifier."""
        return self.space.uid

    def charge(self, n):
        """Charge ``n`` guest instructions (counts against the limit)."""
        self.machine.trace.charge(self.space.uid, n)
        limit = self.space.insn_limit
        if limit is not None:
            limit -= n
            if limit <= 0:
                self.space.insn_limit = None
                self.space.ctx._stop(Trap.INSN_LIMIT)
                return
            self.space.insn_limit = limit

    def kcharge(self, n):
        """Charge kernel-side cycles (exempt from the instruction limit)."""
        self.machine.trace.charge(self.space.uid, n)

    def work(self, n):
        """Model ``n`` instructions of pure computation."""
        self.charge(int(n))

    def alloc_work(self, n):
        """Model ``n`` instructions of allocation-heavy computation.

        On Determinator this is identical to :meth:`work`: memory
        namespaces are thread-private (§2.4), so allocation never
        contends.  The Linux baseline dilates it with core count.
        """
        self.charge(int(n))

    # -- byte memory access ---------------------------------------------------

    def read(self, addr, n):
        """Read ``n`` bytes of private memory at ``addr``."""
        self.charge(_MEM_BASE + (n >> 4))
        self.kernel.touch(self.space, addr, n)
        return self.space.addrspace.read(addr, n, check_perm=True)

    def write(self, addr, data):
        """Write bytes to private memory, charging COW/zero-fill faults."""
        n = len(data)
        self.charge(_MEM_BASE + (n >> 4))
        self.kernel.touch(self.space, addr, n)
        counters = self.space.addrspace.counters
        cow0, zero0 = counters.cow_breaks, counters.demand_zero
        self.space.addrspace.write(addr, data, check_perm=True)
        self.kcharge(
            (counters.cow_breaks - cow0) * self.cost.page_cow
            + (counters.demand_zero - zero0) * self.cost.page_zero
        )
        self.kernel.touch(self.space, addr, n, write=True)

    # -- typed scalar access ---------------------------------------------------

    def load(self, addr, size=8, signed=False):
        """Load an integer of ``size`` bytes (little-endian)."""
        return int.from_bytes(self.read(addr, size), "little", signed=signed)

    def store(self, addr, value, size=8):
        """Store an integer of ``size`` bytes (little-endian)."""
        self.write(addr, int(value).to_bytes(size, "little", signed=value < 0))

    def load_f64(self, addr):
        """Load a float64."""
        return struct.unpack("<d", self.read(addr, 8))[0]

    def store_f64(self, addr, value):
        """Store a float64."""
        self.write(addr, struct.pack("<d", float(value)))

    # -- bulk array access --------------------------------------------------------

    def array_read(self, addr, dtype, count):
        """Read ``count`` elements of ``dtype`` into a private numpy array."""
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        self.charge(_MEM_BASE + (nbytes >> 4))
        self.kernel.touch(self.space, addr, nbytes)
        raw = self.space.addrspace.read(addr, nbytes, check_perm=True)
        return np.frombuffer(raw, dtype=dtype).copy()

    def array_write(self, addr, arr):
        """Write a numpy array into private memory."""
        self.write(addr, np.ascontiguousarray(arr).tobytes())

    @contextlib.contextmanager
    def mapped(self, addr, dtype, count):
        """Context manager: read an array, let the body mutate it, write it
        back on exit.  The simulated-memory analogue of computing in place.
        """
        arr = self.array_read(addr, dtype, count)
        yield arr
        self.array_write(addr, arr)

    def zero_range(self, addr, size):
        """Zero-fill a page-aligned range of this space's own memory
        (used e.g. by exec() to discard the old program image)."""
        self.charge(_MEM_BASE)
        removed = self.space.addrspace.zero_range(addr, size)
        self.kcharge(removed * self.cost.page_map)

    def view(self, addr, count, dtype=np.uint8, write=False):
        """Zero-copy typed view; must not cross a page boundary if writable."""
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        self.charge(_MEM_BASE + (nbytes >> 4))
        if write:
            # Materialize the private frame first (bumping its content
            # tag), then register the *post-bump* tag at this node so the
            # writer is never charged a fetch for its own page.
            raw = self.space.addrspace.as_array(addr, nbytes, writable=True,
                                                check_perm=True)
            self.kernel.touch(self.space, addr, nbytes, write=True)
        else:
            self.kernel.touch(self.space, addr, nbytes)
            zero0 = self.space.addrspace.counters.demand_zero
            raw = self.space.addrspace.as_array(addr, nbytes, writable=False,
                                                check_perm=True)
            if self.space.addrspace.counters.demand_zero != zero0:
                # The view demand-zeroed a frame; it was born on this
                # node, so register its tag charge-free (the write=True
                # branch of touch caches without counting a fetch).
                self.kernel.touch(self.space, addr, nbytes, write=True)
        return raw.view(dtype)

    # -- registers -----------------------------------------------------------------

    def reg(self, name):
        """Read one of this space's own registers."""
        return self.space.regs[name]

    def set_reg(self, name, value):
        """Write one of this space's own registers (e.g. a result in r0)."""
        self.space.set_regs({name: value})

    # -- system calls -----------------------------------------------------------------

    def put(self, childno, **options):
        """Put system call (paper Tables 1-2).  See Kernel.sys_put."""
        return self.kernel.sys_put(self.space, childno, **options)

    def get(self, childno, **options):
        """Get system call (paper Tables 1-2).  See Kernel.sys_get."""
        return self.kernel.sys_get(self.space, childno, **options)

    def ret(self, status=None, **regs):
        """Ret system call: stop and wait for the parent (paper Table 1).

        Returns when the parent next restarts this space with Put/Start.
        """
        if status is not None:
            regs["status"] = status
        if regs:
            self.space.set_regs(regs)
        self.kernel.sys_ret(self.space)

    # -- devices (root space / delegated I/O privilege only, §3.1) ----------------------

    def _require_io(self):
        if not self.space.io_privilege:
            raise KernelError(
                f"space {self.space.uid} has no I/O privilege "
                "(only the root space touches devices, paper §3.1)"
            )

    def console_write(self, data):
        """Write bytes to the console device."""
        self._require_io()
        if isinstance(data, str):
            data = data.encode()
        self.charge(_MEM_BASE + (len(data) >> 4))
        self.machine.dev_console_write(data)

    def console_read(self, n=1 << 16):
        """Read up to ``n`` pending bytes of scripted console input."""
        self._require_io()
        self.charge(_MEM_BASE)
        return self.machine.dev_console_read(n)

    def time_now(self):
        """Read the clock device (scripted values; explicit input, §2.1)."""
        self._require_io()
        self.charge(_MEM_BASE)
        return self.machine.dev_time()

    def debug(self, message):
        """The kernel's raw debug output call (paper §6.1) — available to
        every space, bypasses the deterministic console for debugging."""
        self.machine.dev_debug(self.space, str(message))
