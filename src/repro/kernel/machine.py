"""The Machine: one simulated computer (or homogeneous cluster).

The machine owns the space hierarchy, the guest engine, the execution
trace, and the I/O devices.  It plays the role of "everything outside the
root space": it supplies the root's nondeterministic inputs explicitly
(console input script, clock script) so a run is replayable byte for byte
— the paper's §2.1 discipline of turning nondeterminism into explicit,
controllable I/O.

Typical use::

    from repro.kernel import Machine

    def main(g):
        g.console_write(b"hello deterministic world\\n")
        return 0

    with Machine() as machine:
        result = machine.run(main)
        print(result.console.decode())
        print(result.makespan(ncpus=4))
"""

from collections import defaultdict

from repro.common.errors import KernelError
from repro.kernel.engine import Engine
from repro.kernel.guest import Guest
from repro.kernel.kernel import Kernel
from repro.kernel.space import Space, SpaceState
from repro.mem.page import FrameAllocator
from repro.timing.schedule import schedule
from repro.timing.trace import Trace


class MachineResult:
    """Outcome of a completed :meth:`Machine.run`."""

    def __init__(self, machine):
        self.machine = machine
        root = machine.root
        #: The root space's status register at stop.
        self.status = root.regs["status"]
        #: The root space's r0 register (entry function's return value).
        self.r0 = root.regs["r0"]
        #: Why the root stopped (RET, EXIT, or a fault trap).
        self.trap = root.trap
        self.trap_info = root.trap_info
        #: Everything written to the console device, in order.
        self.console = bytes(machine.console_output)
        #: Raw debug lines (paper §6.1's "real console" call).
        self.debug = list(machine.debug_lines)
        #: The recorded execution trace.
        self.trace = machine.trace

    def makespan(self, ncpus=None, cpus_per_node=None):
        """Virtual completion time on ``ncpus`` CPUs per node."""
        if ncpus is None:
            ncpus = self.machine.cost.ncpus
        return schedule(self.trace, ncpus=ncpus, cpus_per_node=cpus_per_node).makespan

    def total_cycles(self):
        """Total work performed (1-CPU lower bound)."""
        return self.trace.total_cycles()

    def __repr__(self):
        return f"<MachineResult trap={self.trap.name} status={self.status!r}>"


class Machine:
    """A simulated Determinator computer."""

    def __init__(
        self,
        nnodes=1,
        console_input=b"",
        time_script=(),
        merge_mode="strict",
        programs=None,
        spec=None,
        **knobs,
    ):
        # Imported lazily: the cluster package's public modules import
        # Machine, so a module-level import here would cycle.
        from repro.cluster.spec import ClusterSpec
        #: The validated configuration this machine runs under.  Every
        #: cross-cutting knob (ship_mode, topology, loss, ...) lives on
        #: the spec; legacy keyword arguments are accepted through the
        #: shared ``ClusterSpec.from_kwargs`` shim and are bit-identical
        #: to passing the equivalent ``spec=``.
        self.spec = spec = ClusterSpec.from_kwargs(spec=spec, **knobs)
        #: Cost model used for all virtual-time charging.
        self.cost = spec.resolved_cost()
        #: Number of cluster nodes (1 = single machine; §3.3).
        self.nnodes = nnodes
        #: CPUs per node the run's trace is meant to be scheduled on.
        #: The machine itself charges work per-space; consumers that
        #: call ``schedule()`` (ClusterResult, the serving latency
        #: extractor) read this so every makespan/latency figure is
        #: computed against the same CPU count.
        self.cpus_per_node = spec.cpus_per_node
        #: Default merge conflict mode (see repro.mem.merge.merge_range).
        self.merge_mode = merge_mode
        #: Model TCP-like framing on cluster messages (§6.3).
        self.tcp_mode = spec.tcp_mode
        #: Generation-tagged dirty-page tracking (DESIGN.md).  Disable to
        #: get the legacy O(mapped) Snap/Merge behavior (the ablation
        #: baseline of benchmarks/bench_ablation_dirtytrack.py).
        self.dirty_tracking = spec.dirty_tracking
        #: Migration page-shipping policy: ``"delta"`` ships only pages
        #: whose content the target node does not already hold (visit
        #: tokens answered from the dirty ledger + per-node tag cache);
        #: ``"full"`` re-ships every mapped page on every hop (the naive
        #: protocol, kept as the delta-ship ablation baseline);
        #: ``"demand"`` ships nothing eagerly — the MIGRATE message
        #: carries only the address-space summary and pages fault over
        #: on first touch (the paper's baseline §3.3 protocol, and the
        #: stage for the stop-and-wait vs pipelined-prefetch ablation).
        self.ship_mode = spec.ship_mode
        #: Depth of each node's async prefetch queue: how many
        #: predicted-next frames may be in flight per node.  ``None``
        #: takes the cost model's ``prefetch_depth`` knob; 0 is
        #: stop-and-wait (every page crosses only inside a demand round
        #: trip or a migration delta).
        self.prefetch_depth = spec.resolve_prefetch_depth(self.cost)
        #: Wire compression of PAGE_BATCH payloads (zero-page
        #: suppression + zero-run RLE; see repro.cluster.compress).
        self.compression = spec.compression
        #: Machine-owned frame serial source (no cross-machine state).
        self.frames = FrameAllocator()

        self.trace = Trace()
        self.engine = Engine(self)
        self.kernel = Kernel(self)
        self.root = None

        #: Named guest programs (resolvable by exec / string entries).
        self.programs = dict(programs or {})

        # Devices.
        if isinstance(console_input, str):
            console_input = console_input.encode()
        self._console_in = bytes(console_input)
        self._console_pos = 0
        self.console_output = bytearray()
        self._time_script = list(time_script)
        self._time_idx = 0
        self.debug_lines = []

        # Cluster bookkeeping.
        #: node -> {frame serial: newest generation materialized at that
        #: node} (§3.3 read-only page cache, keyed on content tags).
        self.node_cache = defaultdict(dict)
        #: frame serial -> node that produced its newest content; the
        #: transport pulls demand-fetched pages from there.
        self.frame_origin = {}
        #: node -> recent vpns written by spaces while resident there
        #: (harvested from the migration ledger and merge write-backs).
        #: The prefetch predictor reads a miss's producing node's list
        #: to guess what that producer will be asked for next.
        self.dirty_hints = defaultdict(list)
        #: Total pages that crossed the wire (migration-shipped plus
        #: demand-fetched; the transport keeps the split).
        self.pages_fetched = 0
        # Transport is also a lazy import (same Machine cycle as spec).
        from repro.cluster.transport import Transport
        #: Deterministic fault schedule of the fabric: None (lossless,
        #: the default — bit-identical to the pre-fault transport), a
        #: drop rate, a dict of LossSchedule kwargs, or a LossSchedule.
        #: Faults are cost-only: computed values and memory images are
        #: identical under any schedule (see repro.cluster.faults).
        self.loss = spec.resolve_loss()
        #: Routed fabric the transport prices traffic over: "flat"
        #: (legacy full mesh, the default), "two_tier", "fat_tree", or a
        #: Topology instance/builder (see repro.cluster.topology).
        self.topology = spec.resolve_topology(nnodes)
        #: Placement policy mapping program-visible (virtual) node
        #: numbers onto fabric nodes — "round_robin" (default; identity
        #: on the flat fabric), "locality", "identity", or a
        #: PlacementPolicy instance (see repro.cluster.placement).
        self.placement = spec.resolve_placement()
        #: virtual node number -> physical node (sticky; see place()).
        self.node_map = {}
        #: Message-level interconnect all cross-node paths route through.
        self.transport = Transport(self)
        #: Deterministic adaptive control plane: None (static knobs, the
        #: default — byte-identical to the pre-control transport),
        #: "adaptive", a Controller kwargs dict, or a Controller.  The
        #: kernel invokes it at quantum boundaries; it tunes per-node
        #: prefetch depth, per-route retransmit timeouts, and placement
        #: from the transport's telemetry windows (repro.cluster.control).
        self.control = spec.resolve_control()
        if self.control is not None:
            self.control.reset(self)
        #: Which execution backend this machine runs under ("sim" or
        #: "real"); results are bit-identical, only timing differs.
        self.backend = spec.backend
        #: Sharded host execution (repro.kernel.shard): at a rendezvous
        #: with >= 2 never-run READY siblings, fork up to this many
        #: host processes and run the sibling subtrees concurrently,
        #: adopting each result bit-identically where the serial engine
        #: would have run it.  0 or 1 keeps the serial engine alone.
        #: Under backend="real" the workers are real host processes
        #: speaking the cluster protocol over localhost sockets
        #: (repro.cluster.backend), one per cluster-node subtree by
        #: default.
        if spec.backend == "real":
            from repro.cluster.backend import RealShardCoordinator
            workers = spec.shard_workers if spec.shard_workers >= 1 \
                else max(1, nnodes)
            self.shard = RealShardCoordinator(self, workers)
        elif spec.shard_workers >= 2:
            from repro.kernel.shard import ShardCoordinator
            self.shard = ShardCoordinator(self, spec.shard_workers)
        else:
            self.shard = None

        #: MergeStats of every kernel merge (tests, ablations).
        self.merge_stats_total = []
        #: Host wall-clock seconds spent inside merge_range (reporting
        #: only; never affects virtual time).
        self.merge_seconds = 0.0

        self._uid_counter = 0
        self._closed = False

    # -- cluster bookkeeping -------------------------------------------------

    #: Bound on each node's dirty-hint list (predictor input, not state
    #: the simulation depends on — determinism needs the *content* to be
    #: reproducible, which it is, not unbounded).
    DIRTY_HINT_CAP = 128

    def note_dirty_hints(self, node, vpns):
        """Record recently written vpns at ``node`` for the prefetch
        predictor, newest last, bounded by :data:`DIRTY_HINT_CAP`."""
        hints = self.dirty_hints[node]
        hints.extend(vpns)
        if len(hints) > self.DIRTY_HINT_CAP:
            del hints[:len(hints) - self.DIRTY_HINT_CAP]

    # -- adaptive knob reads -------------------------------------------------

    def prefetch_depth_for(self, node):
        """Effective prefetch-queue depth of ``node``: the controller's
        adaptive per-node depth when a control plane is attached, else
        the static ``prefetch_depth`` knob."""
        if self.control is not None:
            return self.control.depth_for(node)
        return self.prefetch_depth

    def retx_timeout_for(self, src, dst):
        """Effective retransmit timeout of the ``src``/``dst`` route:
        the controller's SRTT-derived per-route timer when a control
        plane is attached (falling back to the static knob before the
        route's first clean sample), else ``cost.retx_timeout``."""
        if self.control is not None:
            timeout = self.control.timeout_for(src, dst)
            if timeout is not None:
                return timeout
        return self.cost.retx_timeout

    # -- placement ----------------------------------------------------------

    def place(self, vnode, caller=None):
        """Physical node of program-visible node number ``vnode``.

        The placement policy chooses on first use (reading topology and
        live transport stats); afterwards the assignment is sticky, so a
        program always finds its children where it left them.  The map
        is a bijection over ``range(nnodes)`` — placement relocates
        traffic, never semantics.
        """
        phys = self.node_map.get(vnode)
        if phys is None:
            phys = self.placement.assign(self, caller, vnode)
            if not 0 <= phys < self.nnodes:
                raise KernelError(
                    f"placement policy {self.placement.name!r} returned "
                    f"node {phys} for virtual node {vnode}")
            if phys in self.node_map.values():
                raise KernelError(
                    f"placement policy {self.placement.name!r} reused "
                    f"node {phys} (virtual node {vnode})")
            self.node_map[vnode] = phys
        return phys

    # -- space management ---------------------------------------------------

    def new_space(self, parent, home_node=0):
        """Allocate a space (kernel-internal)."""
        self._uid_counter += 1
        return Space(self, parent, f"s{self._uid_counter}", home_node)

    def register_program(self, name, entry):
        """Register a named guest program (for exec and string entries)."""
        self.programs[name] = entry
        return entry

    def resolve_entry(self, space):
        """Resolve a space's entry register to a callable."""
        entry = space.regs["entry"]
        if callable(entry):
            return entry
        if isinstance(entry, str):
            try:
                return self.programs[entry]
            except KeyError:
                raise KernelError(f"no program named {entry!r}") from None
        raise KernelError(f"space {space.uid} started with no entry")

    def make_guest(self, space):
        """Build the guest API handle for a space (engine callback)."""
        return Guest(self.kernel, space)

    def find_space(self, uid):
        """The space with trace context id ``uid``, or None.  Uids name
        trace segments, so this is the bridge from a scheduling artifact
        back to the live kernel object (``repro.debug``)."""
        if self.root is None:
            return None
        for space in self.root.walk():
            if space.uid == uid:
                return space
        return None

    # -- running -----------------------------------------------------------

    def run(self, entry, args=(), limit=None):
        """Create the root space, run it to completion, drain stragglers.

        ``entry`` may be a callable ``entry(g, *args)`` or the name of a
        registered program.  Returns a :class:`MachineResult`.
        """
        if self.root is not None:
            raise KernelError("machine already ran; create a fresh Machine")
        root = self.new_space(None, home_node=self.place(0))
        root.io_privilege = True
        root.regs["entry"] = entry
        root.regs["args"] = tuple(args)
        root.insn_limit = limit
        root.state = SpaceState.READY
        self.root = root
        self.trace.begin(root.uid, node=0, label="root")
        self.engine.run_until_stopped(root)
        self._drain()
        # Mispredicted prefetches still in flight must occupy their
        # links in the schedule even though nobody waits on them.
        self.transport.flush_inflight()
        self.trace.finish()
        return MachineResult(self)

    def _drain(self):
        """Run spaces that were started but never joined, so their work
        appears in the trace (they cannot affect anyone's results —
        isolation — but they do occupy CPUs)."""
        progress = True
        while progress:
            progress = False
            for space in self.root.walk():
                if space.state is SpaceState.READY:
                    self.engine.run_until_stopped(space)
                    progress = True

    # -- devices -----------------------------------------------------------

    def dev_console_write(self, data):
        """Console output device (root-mediated)."""
        self.console_output.extend(data)

    def dev_console_read(self, n):
        """Console input device: the next ``n`` scripted bytes."""
        data = self._console_in[self._console_pos : self._console_pos + n]
        self._console_pos += len(data)
        return data

    def dev_time(self):
        """Clock device: scripted timestamps, then a deterministic ramp."""
        if self._time_idx < len(self._time_script):
            value = self._time_script[self._time_idx]
        else:
            value = 10**6 + self._time_idx
        self._time_idx += 1
        return value

    def dev_debug(self, space, message):
        """Immediate debug output, reflecting true execution order (§6.1)."""
        self.debug_lines.append(f"[{space.uid}] {message}")

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Kill all guest threads and release memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.engine.shutdown()
        if self.shard is not None:
            self.shard.close()
        if self.root is not None:
            self.root.destroy()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
