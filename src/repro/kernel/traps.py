"""Trap/stop codes a space reports to its parent.

"Finally, the Ret system call stops the calling space, returning control
to the space's parent.  Exceptions such as divide-by-zero also cause a
Ret, providing the parent a status code indicating why the child
stopped." (paper §3.2)
"""

import enum


class Trap(enum.IntEnum):
    """Why a space most recently stopped."""

    #: Space has not stopped (still runnable or never started).
    NONE = 0
    #: Explicit Ret system call.
    RET = 1
    #: The space's entry function returned (program exit).
    EXIT = 2
    #: Uncaught exception in guest code (divide-by-zero analogue).
    EXC = 3
    #: Access to an invalid simulated address.
    PAGE_FAULT = 4
    #: Access violating page permissions (Perm option).
    PERM_FAULT = 5
    #: Instruction limit expired (deterministic preemption, §3.2).
    INSN_LIMIT = 6
    #: Merge detected a write/write conflict (surfaced in the parent).
    CONFLICT = 7

    def is_fault(self):
        """True for abnormal stops (exceptions rather than Ret/exit/limit)."""
        return self in (Trap.EXC, Trap.PAGE_FAULT, Trap.PERM_FAULT, Trap.CONFLICT)
