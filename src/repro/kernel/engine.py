"""Guest execution engine: one host thread per started space, exactly one
runnable at a time.

Real Determinator runs user code natively and regains control via traps.
We run guest Python functions on dedicated host threads and pass a single
*execution baton* between the kernel driver and guest threads: a guest
runs only between ``resume_and_wait`` and its next ``park``, so the
simulated system is single-threaded in effect and every scheduling
decision is made explicitly by the simulated kernel.  That, plus the
shared-nothing memory model, is what makes execution deterministic
(the Kahn-network argument of paper §3.2).

Host threads (not generators) are used because a space must be resumable
from arbitrarily deep inside guest code — e.g. when an instruction limit
preempts a thread in the middle of the deterministic scheduler's quantum
(§4.5) — which requires capturing the whole Python stack.
"""

import threading

from repro.common.errors import (
    GuestKilled,
    MergeConflictError,
    PageFaultError,
    PermissionFault,
)
from repro.kernel.space import SpaceState
from repro.kernel.traps import Trap


class GuestContext:
    """Host-thread wrapper executing one space's guest code."""

    def __init__(self, engine, space, make_guest):
        self.engine = engine
        self.space = space
        self._make_guest = make_guest
        self._cv = threading.Condition()
        self._run = False      # baton is with the guest
        self._parked = False   # guest has announced it is waiting
        self._dead = False
        self.thread = threading.Thread(
            target=self._main, name=f"guest-{space.uid}", daemon=True
        )
        self.thread.start()

    # -- kernel side --------------------------------------------------------

    def resume_and_wait(self):
        """Hand the baton to the guest; return when it parks again."""
        with self._cv:
            if self._dead:
                raise RuntimeError(f"resuming dead guest {self.space.uid}")
            while not self._parked:   # wait for the guest to reach park()
                self._cv.wait()
            self._parked = False
            self._run = True
            self._cv.notify_all()
            while not self._parked:   # wait for it to park again
                self._cv.wait()

    def kill(self):
        """Unwind the guest thread (machine shutdown / space destruction)."""
        with self._cv:
            if self._dead:
                return
            self.space.killed = True
            while not self._parked:
                self._cv.wait()
            self._parked = False
            self._run = True
            self._cv.notify_all()
            while not self._parked:
                self._cv.wait()

    @property
    def dead(self):
        return self._dead

    # -- guest side -----------------------------------------------------------

    def park(self):
        """Give the baton back to the kernel; return on next resume."""
        with self._cv:
            self._parked = True
            self._cv.notify_all()
            while not self._run:
                self._cv.wait()
            self._run = False
        if self.space.killed:
            raise GuestKilled()

    def _die(self):
        with self._cv:
            self._dead = True
            self._parked = True
            self._cv.notify_all()

    def _stop(self, trap, info="", state=SpaceState.STOPPED):
        """Record why the space stopped and park."""
        space = self.space
        # "A space has a home node, to which the space migrates when
        # interacting with its parent on a Ret or trap" (§3.3).
        if space.cur_node != space.home_node:
            self.engine.machine.kernel.migrate(space, space.home_node)
        space.trap = trap
        space.trap_info = info
        space.state = state
        # Close the current trace segment so the parent's wake-up can
        # depend on it; reopen for a potential resumption.
        trace = self.engine.machine.trace
        if trace.is_open(space.uid):
            trace.cut(space.uid, label=trap.name.lower())
        self.park()

    # -- thread main ------------------------------------------------------------

    def _main(self):
        try:
            self.park()  # wait for the first resume
            while True:
                space = self.space
                try:
                    guest = self._make_guest(space)
                    entry = self.engine.machine.resolve_entry(space)
                    args = space.regs["args"] or ()
                    result = entry(guest, *args)
                    if result is not None:
                        space.regs["r0"] = result
                    self._stop(Trap.EXIT, state=SpaceState.EXITED)
                    # Parent may restart us with a fresh entry (exec).
                except MergeConflictError as exc:
                    self._stop(Trap.CONFLICT, str(exc))
                except PermissionFault as exc:
                    self._stop(Trap.PERM_FAULT, str(exc))
                except PageFaultError as exc:
                    self._stop(Trap.PAGE_FAULT, str(exc))
                except GuestKilled:
                    raise
                except BaseException as exc:  # noqa: BLE001 - trap semantics
                    self._stop(Trap.EXC, f"{type(exc).__name__}: {exc}")
        except GuestKilled:
            pass
        finally:
            self._die()


class Engine:
    """Owns all guest contexts of one machine."""

    def __init__(self, machine):
        self.machine = machine
        self._contexts = []

    def run_until_stopped(self, space):
        """Run ``space`` until it parks (Ret, trap, limit, or exit).

        May be called from the machine driver thread *or* from inside a
        guest thread performing a rendezvous: in both cases the caller
        holds the baton and blocks until the target gives it back.
        """
        if space.state is not SpaceState.READY:
            return
        if space.ctx is None or space.ctx.dead:
            space.ctx = GuestContext(self, space, self.machine.make_guest)
            self._contexts.append(space.ctx)
        space.ctx.resume_and_wait()

    def shutdown(self):
        """Kill every guest thread (idempotent)."""
        for ctx in self._contexts:
            ctx.kill()
        self._contexts.clear()
