"""Physical page frames with reference counting for copy-on-write."""

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4096, as on the paper's 32-bit x86 prototype

_ZERO_BYTES = bytes(PAGE_SIZE)


class Page:
    """A simulated physical page frame.

    ``refs`` counts how many page-table entries (and snapshots) reference
    the frame.  A frame with ``refs > 1`` is logically read-only: writers
    must copy it first (:meth:`repro.mem.addrspace.AddressSpace` handles
    this).  This mirrors the kernel's copy-on-write optimization that makes
    whole-address-space Copy and Snap cheap (paper §3.2, §4.2).
    """

    __slots__ = ("data", "refs", "serial")

    #: Monotonic frame serial source.  Serials identify frame *versions*
    #: for the cluster's read-only page cache (§3.3): a frame's content
    #: never changes while shared, so caching by serial is sound.
    _next_serial = 0

    def __init__(self, data=None):
        if data is None:
            self.data = bytearray(PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise ValueError(f"page data must be {PAGE_SIZE} bytes")
            self.data = bytearray(data)
        self.refs = 1
        Page._next_serial += 1
        self.serial = Page._next_serial

    @classmethod
    def new_serial(cls):
        """Allocate a fresh frame-version serial (cluster cache bump)."""
        cls._next_serial += 1
        return cls._next_serial

    def incref(self):
        """Add a reference; returns self for chaining."""
        self.refs += 1
        return self

    def decref(self):
        """Drop a reference.  Frames are garbage-collected by Python."""
        if self.refs <= 0:
            raise AssertionError("page refcount underflow")
        self.refs -= 1

    def fork_copy(self):
        """Return a private writable copy of this frame (COW break)."""
        return Page(self.data)

    def is_zero(self):
        """True if every byte of the frame is zero."""
        return bytes(self.data) == _ZERO_BYTES

    def __repr__(self):
        return f"<Page refs={self.refs}>"
