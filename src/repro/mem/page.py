"""Physical page frames with reference counting for copy-on-write."""

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4096, as on the paper's 32-bit x86 prototype

_ZERO_BYTES = bytes(PAGE_SIZE)


class FrameAllocator:
    """Machine-owned source of frame serials.

    Serials identify frame *identities*; combined with a frame's
    ``generation`` they tag frame content versions for the cluster's
    read-only page cache (§3.3) and for snapshot baselines.  Each
    :class:`~repro.kernel.machine.Machine` owns one allocator, so serial
    streams are isolated per machine instead of flowing from a global
    class counter shared across every machine in a process.
    """

    __slots__ = ("_next_serial", "frames_allocated")

    def __init__(self):
        self._next_serial = 0
        #: Total frames ever allocated from this allocator (introspection).
        self.frames_allocated = 0

    def next_serial(self):
        """Allocate a fresh frame serial."""
        self._next_serial += 1
        self.frames_allocated += 1
        return self._next_serial


#: Fallback allocator for frames created outside any machine (unit tests
#: and standalone AddressSpace use).
DEFAULT_ALLOCATOR = FrameAllocator()


class Page:
    """A simulated physical page frame.

    ``refs`` counts how many page-table entries (and snapshots) reference
    the frame.  A frame with ``refs > 1`` is logically read-only: writers
    must copy it first (:meth:`repro.mem.addrspace.AddressSpace` handles
    this).  This mirrors the kernel's copy-on-write optimization that makes
    whole-address-space Copy and Snap cheap (paper §3.2, §4.2).

    ``generation`` counts in-place mutations of the frame's bytes: the
    owning address space bumps it on every write it vectors through
    ``_ensure_writable``.  The pair ``(serial, generation)`` — see
    :meth:`tag` — therefore identifies frame *content*: a frame's content
    never changes while shared, so caching and skipping by tag is sound.
    """

    __slots__ = ("data", "refs", "serial", "generation")

    def __init__(self, data=None, allocator=None):
        if data is None:
            self.data = bytearray(PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise ValueError(f"page data must be {PAGE_SIZE} bytes")
            self.data = bytearray(data)
        self.refs = 1
        self.serial = (allocator or DEFAULT_ALLOCATOR).next_serial()
        self.generation = 0

    def tag(self):
        """Content-version tag ``(serial, generation)``."""
        return (self.serial, self.generation)

    def bump(self):
        """Record an in-place mutation; returns the new generation."""
        self.generation += 1
        return self.generation

    def incref(self):
        """Add a reference; returns self for chaining."""
        self.refs += 1
        return self

    def decref(self):
        """Drop a reference.  Frames are garbage-collected by Python."""
        if self.refs <= 0:
            raise AssertionError("page refcount underflow")
        self.refs -= 1

    def fork_copy(self, allocator=None):
        """Return a private writable copy of this frame (COW break)."""
        return Page(self.data, allocator)

    def is_zero(self):
        """True if every byte of the frame is zero."""
        return bytes(self.data) == _ZERO_BYTES

    def __repr__(self):
        return f"<Page refs={self.refs} tag={self.tag()}>"
