"""Byte-granularity three-way merge — the kernel Merge option (paper §3.2).

    "A Merge is like a Copy, except the kernel copies only bytes that
    differ between the child's current and reference snapshots into the
    parent space, leaving other bytes in the parent untouched.  The
    kernel also detects conflicts: if a byte changed in both the child's
    and parent's spaces since the snapshot, the kernel generates an
    exception."

The fast paths matter: most pages are untouched (frame identity equals the
snapshot frame) or changed on only one side (whole-frame adoption).  Only
pages written on both sides need the numpy byte-diff.
"""

import numpy as np

from repro.common.errors import MergeConflictError
from repro.mem.page import PAGE_SHIFT, PAGE_SIZE

_ZEROS = np.zeros(PAGE_SIZE, dtype=np.uint8)


class MergeStats:
    """Cost-relevant accounting returned by :func:`merge_range`."""

    __slots__ = ("pages_scanned", "pages_diffed", "pages_adopted", "bytes_merged")

    def __init__(self):
        self.pages_scanned = 0
        self.pages_diffed = 0
        self.pages_adopted = 0
        self.bytes_merged = 0

    def __repr__(self):
        return (
            f"<MergeStats scanned={self.pages_scanned} diffed={self.pages_diffed}"
            f" adopted={self.pages_adopted} bytes={self.bytes_merged}>"
        )


def _page_array(space_page):
    """uint8 view of a frame's bytes, or the shared zero array if None."""
    if space_page is None:
        return _ZEROS
    return np.frombuffer(space_page.data, dtype=np.uint8)


#: Valid merge conflict-handling modes.
MODES = ("strict", "lenient", "override")


def merge_range(parent, child, snapshot, addr=None, size=None, mode="strict"):
    """Merge the child's changes since ``snapshot`` into ``parent``.

    Parameters
    ----------
    parent, child:
        :class:`~repro.mem.addrspace.AddressSpace` objects.
    snapshot:
        The child's reference :class:`~repro.mem.snapshot.Snapshot`
        (captured from the parent's image at fork time).
    addr, size:
        Page-aligned subrange to merge; defaults to the snapshot's range.
    mode:
        ``"strict"`` (the paper's semantics): a byte changed on *both*
        sides raises :class:`MergeConflictError` even when both sides
        wrote the same value.  ``"lenient"``: identical concurrent writes
        are tolerated (ablation in ``benchmarks/bench_ablation_merge.py``).
        ``"override"``: no conflict detection — the child's changes win,
        which is what the deterministic legacy-pthreads scheduler (§4.5)
        needs to give racy programs a repeatable, merge-order-defined
        outcome instead of an error.

    Returns
    -------
    MergeStats
        Page/byte counts for cost-model charging.
    """
    if mode not in MODES:
        raise ValueError(f"unknown merge mode {mode!r}")
    if addr is None:
        addr, size = snapshot.addr, snapshot.size
    if addr % PAGE_SIZE or size % PAGE_SIZE:
        raise ValueError("merge range must be page-aligned")
    stats = MergeStats()
    vpn0 = addr >> PAGE_SHIFT
    vpn1 = vpn0 + (size >> PAGE_SHIFT)
    if not (snapshot.covers(vpn0) and (size == 0 or snapshot.covers(vpn1 - 1))):
        raise ValueError(
            f"merge range {addr:#x}+{size:#x} outside snapshot range"
        )
    # Only pages mapped somewhere can differ from anything: iterate the
    # union of child/parent/snapshot mappings, never the raw page range.
    candidates = set(child.mapped_vpns_in(vpn0, vpn1))
    candidates.update(parent.mapped_vpns_in(vpn0, vpn1))
    candidates.update(snapshot.frame_vpns_in(vpn0, vpn1))
    for vpn in sorted(candidates):
        snap_frame = snapshot.frame(vpn)
        child_frame = child.frame(vpn)
        parent_frame = parent.frame(vpn)
        stats.pages_scanned += 1

        # Fast path 1: the child never broke COW on this page -> unchanged.
        if child_frame is snap_frame:
            continue

        child_arr = _page_array(child_frame)
        snap_arr = _page_array(snap_frame)
        child_diff = child_arr != snap_arr
        if not child_diff.any():
            continue

        # Fast path 2: parent still maps the snapshot frame -> parent
        # unchanged; adopt the child's whole frame copy-on-write.
        if parent_frame is snap_frame:
            if child_frame is None:
                parent.zero_range(vpn << PAGE_SHIFT, PAGE_SIZE)
            else:
                parent.copy_range_from(
                    child, vpn << PAGE_SHIFT, vpn << PAGE_SHIFT, PAGE_SIZE
                )
            stats.pages_adopted += 1
            stats.bytes_merged += int(child_diff.sum())
            continue

        parent_arr = _page_array(parent_frame)
        parent_diff = parent_arr != snap_arr
        both = child_diff & parent_diff
        stats.pages_diffed += 1
        if both.any() and mode != "override":
            if mode == "strict":
                idx = int(np.flatnonzero(both)[0])
                raise MergeConflictError((vpn << PAGE_SHIFT) + idx)
            hard = both & (child_arr != parent_arr)
            if hard.any():
                idx = int(np.flatnonzero(hard)[0])
                raise MergeConflictError((vpn << PAGE_SHIFT) + idx)

        take = child_diff if mode != "lenient" else child_diff & ~parent_diff
        nbytes = int(take.sum())
        if nbytes == 0:
            continue
        # Write the differing bytes into a privately-owned parent frame.
        page, _ = parent._ensure_writable(vpn)
        dst = np.frombuffer(page.data, dtype=np.uint8)
        dst[take] = child_arr[take]
        stats.bytes_merged += nbytes
    return stats
