"""Byte-granularity three-way merge — the kernel Merge option (paper §3.2).

    "A Merge is like a Copy, except the kernel copies only bytes that
    differ between the child's current and reference snapshots into the
    parent space, leaving other bytes in the parent untouched.  The
    kernel also detects conflicts: if a byte changed in both the child's
    and parent's spaces since the snapshot, the kernel generates an
    exception."

The fast paths matter: most pages are untouched (frame identity/tag
equals the snapshot baseline) or changed on only one side (whole-frame
adoption).  Only pages written on both sides need a byte-level diff.

Two implementations live here (DESIGN.md):

* the **tracked** path — used when the snapshot was captured from a
  dirty-tracking child — enumerates candidates from the child's dirty
  ledger in O(written-since-snap), adopts parent-unchanged pages
  (parent frame still the pinned snapshot frame, which *is* the
  baseline-tag check) without reading their bytes, and diffs the
  remaining
  both-sides-dirty pages as one stacked ``(N, 4096)`` uint8 ndarray
  operation instead of a Python per-page loop;
* the **legacy** path — kept for untracked spaces and as the ablation
  baseline (``benchmarks/bench_ablation_dirtytrack.py``) — scans the
  union of mapped pages and byte-diffs every COW-broken page.

On success both paths produce identical parent memory, and both raise
on exactly the same triples with the same first-conflict address; only
the work (and therefore :class:`MergeStats` and the charged cost)
differs.  The one observable difference is the parent's state *after a
raised conflict*: the tracked path checks a whole batch (``BATCH_PAGES``
both-dirty pages) for conflicts before writing any of it — atomic-on-
conflict for any merge whose both-dirty set fits one batch — while the
legacy path, like the paper's kernel, may already have merged
lower-addressed pages.  Programs should treat a conflicted parent
region as indeterminate.

One more deliberate accounting divergence: when a child COW-breaks a
page but writes back the very same bytes, the tracked path adopts the
child's (byte-identical) frame without noticing — reading the bytes to
find out would cost exactly the compare the ledger exists to avoid —
while the legacy path compares and skips.  Parent memory is identical
either way; only frame identity, ``pages_adopted``, and downstream
cluster-cache residency differ.
"""

import numpy as np

from repro.common.errors import MergeConflictError
from repro.mem.page import PAGE_SHIFT, PAGE_SIZE

_ZEROS = np.zeros(PAGE_SIZE, dtype=np.uint8)


class MergeStats:
    """Cost-relevant accounting returned by :func:`merge_range`.

    ``pages_scanned`` counts candidate pages examined; ``tracked`` tells
    whether they were enumerated from the dirty ledger (charged at the
    cheaper ``page_track`` rate) or by scanning mapped page tables
    (``page_scan``).  ``pages_diffed`` counts pages whose *bytes* were
    compared; ``batch_ops`` counts stacked ndarray diff operations
    (charged at ``batch_diff`` each).  ``bytes_merged`` counts bytes
    written into parent frames (whole-frame adoptions are COW remaps and
    copy no bytes).
    """

    __slots__ = ("pages_scanned", "pages_diffed", "pages_adopted",
                 "bytes_merged", "batch_ops", "tracked", "written_vpns")

    def __init__(self):
        self.pages_scanned = 0
        self.pages_diffed = 0
        self.pages_adopted = 0
        self.bytes_merged = 0
        self.batch_ops = 0
        self.tracked = False
        #: Vpns whose parent mapping or bytes the merge changed (diff
        #: writes + adoptions) — what the kernel must re-register in the
        #: merging node's page cache.  The kernel empties it once
        #: consumed, so long-lived stats logs stay O(1) per merge.
        self.written_vpns = []

    def __repr__(self):
        return (
            f"<MergeStats scanned={self.pages_scanned} diffed={self.pages_diffed}"
            f" adopted={self.pages_adopted} bytes={self.bytes_merged}"
            f" batches={self.batch_ops} tracked={self.tracked}>"
        )


def _page_array(space_page):
    """uint8 view of a frame's bytes, or the shared zero array if None."""
    if space_page is None:
        return _ZEROS
    return np.frombuffer(space_page.data, dtype=np.uint8)


#: Valid merge conflict-handling modes.
MODES = ("strict", "lenient", "override")

#: Both-sides-dirty pages are diffed in stacked batches of this many
#: pages, bounding the transient ndarray memory (~3 x 16 MB per batch at
#: the default) no matter how much of the space is dirty on both sides.
BATCH_PAGES = 4096


def _adopt(parent, child, child_frame, vpn, stats):
    """Adopt the child's whole page into the parent (parent unchanged
    since the snapshot): a COW remap — or an unmap when the child
    dropped the page — never a byte copy, and never a permission change."""
    if child_frame is None:
        parent.unmap_page(vpn)
    else:
        parent.copy_range_from(
            child, vpn << PAGE_SHIFT, vpn << PAGE_SHIFT, PAGE_SIZE
        )
    stats.pages_adopted += 1
    stats.written_vpns.append(vpn)


def merge_range(parent, child, snapshot, addr=None, size=None, mode="strict",
                stats=None):
    """Merge the child's changes since ``snapshot`` into ``parent``.

    Parameters
    ----------
    parent, child:
        :class:`~repro.mem.addrspace.AddressSpace` objects.
    snapshot:
        The child's reference :class:`~repro.mem.snapshot.Snapshot`
        (captured from the child's image at fork time).
    addr, size:
        Page-aligned subrange to merge; defaults to the snapshot's range.
    mode:
        ``"strict"`` (the paper's semantics): a byte changed on *both*
        sides raises :class:`MergeConflictError` even when both sides
        wrote the same value.  ``"lenient"``: identical concurrent writes
        are tolerated (ablation in ``benchmarks/bench_ablation_merge.py``).
        ``"override"``: no conflict detection — the child's changes win,
        which is what the deterministic legacy-pthreads scheduler (§4.5)
        needs to give racy programs a repeatable, merge-order-defined
        outcome instead of an error.
    stats:
        Optional caller-owned :class:`MergeStats` filled in place, so a
        caller can observe the work performed even when the merge raises
        a conflict mid-way (the kernel charges it either way).

    Returns
    -------
    MergeStats
        Page/byte counts for cost-model charging.
    """
    if mode not in MODES:
        raise ValueError(f"unknown merge mode {mode!r}")
    if addr is None:
        addr, size = snapshot.addr, snapshot.size
    if addr % PAGE_SIZE or size % PAGE_SIZE:
        raise ValueError("merge range must be page-aligned")
    if stats is None:
        stats = MergeStats()
    vpn0 = addr >> PAGE_SHIFT
    vpn1 = vpn0 + (size >> PAGE_SHIFT)
    if not (snapshot.covers(vpn0) and (size == 0 or snapshot.covers(vpn1 - 1))):
        raise ValueError(
            f"merge range {addr:#x}+{size:#x} outside snapshot range"
        )
    tracked = snapshot.dirty_in(child, vpn0, vpn1)
    if tracked is not None:
        _merge_tracked(parent, child, snapshot, sorted(tracked), mode, stats)
    else:
        _merge_legacy(parent, child, snapshot, vpn0, vpn1, mode, stats)
    return stats


# -- tracked fast path -----------------------------------------------------


def _merge_tracked(parent, child, snapshot, candidates, mode, stats):
    """O(dirty) enumeration + batched vectorized diff (DESIGN.md)."""
    stats.tracked = True
    adopt = []     # (vpn, child_frame): parent unchanged -> whole-frame COW
    compare = []   # (vpn, child_frame, snap_frame, parent_frame): both dirty
    for vpn in candidates:
        stats.pages_scanned += 1
        snap_frame = snapshot.frame(vpn)
        child_frame = child.frame(vpn)
        # Fast path 1: the child never replaced this page -> unchanged.
        # (Dirty marks are conservative; a later Copy can restore the
        # snapshot frame, and ledger entries never imply a byte diff.)
        if child_frame is snap_frame:
            continue
        parent_frame = parent.frame(vpn)
        if parent_frame is snap_frame:
            # Fast path 2: parent unchanged since the snapshot -> adopt
            # the child's whole frame copy-on-write, bytes untouched.
            # The snapshot pins its frames (refcounted), so identity is
            # exactly the baseline (serial, generation) check: a pinned
            # frame can never be mutated in place, and within one
            # allocator tag equality implies the same frame object.
            # (Comparing raw tags instead would falsely match across
            # distinct FrameAllocators, whose serial streams collide.)
            adopt.append((vpn, child_frame))
        else:
            compare.append((vpn, child_frame, snap_frame, parent_frame))

    # Stacked (N, 4096) diffs replace the per-page Python loop; batches
    # of BATCH_PAGES bound the transient memory.  Batches run in
    # ascending vpn order and each batch checks conflicts before its own
    # writes, so the raised address is always the lowest conflicting one
    # (as in the legacy path) and a merge whose both-dirty set fits one
    # batch — any realistic one — is atomic-on-conflict.
    for start in range(0, len(compare), BATCH_PAGES):
        chunk = compare[start:start + BATCH_PAGES]
        vpns = [item[0] for item in chunk]
        c_mat = np.stack([_page_array(item[1]) for item in chunk])
        s_mat = np.stack([_page_array(item[2]) for item in chunk])
        p_mat = np.stack([_page_array(item[3]) for item in chunk])
        child_diff = c_mat != s_mat
        parent_diff = p_mat != s_mat
        stats.batch_ops += 1
        stats.pages_diffed += len(chunk)
        if mode != "override":
            both = child_diff & parent_diff
            conflict_mask = both if mode == "strict" else both & (c_mat != p_mat)
            conflict_rows = conflict_mask.any(axis=1)
            if conflict_rows.any():
                row = int(np.argmax(conflict_rows))
                idx = int(np.flatnonzero(conflict_mask[row])[0])
                raise MergeConflictError((vpns[row] << PAGE_SHIFT) + idx)
        take = child_diff if mode != "lenient" else child_diff & ~parent_diff
        counts = take.sum(axis=1)
        for row in np.flatnonzero(counts):
            row = int(row)
            page, _ = parent._ensure_writable(vpns[row])
            dst = np.frombuffer(page.data, dtype=np.uint8)
            dst[take[row]] = c_mat[row][take[row]]
            stats.bytes_merged += int(counts[row])
            stats.written_vpns.append(vpns[row])

    for vpn, child_frame in adopt:
        _adopt(parent, child, child_frame, vpn, stats)


# -- legacy path (untracked spaces; ablation baseline) ---------------------


def _merge_legacy(parent, child, snapshot, vpn0, vpn1, mode, stats):
    """The seed algorithm: scan the union of mapped pages, byte-diff every
    COW-broken page.  Kept bit-compatible as the tracking-disabled
    baseline; produces the same parent memory as the tracked path."""
    # Only pages mapped somewhere can differ from anything: iterate the
    # union of child/parent/snapshot mappings, never the raw page range.
    candidates = set(child.mapped_vpns_in(vpn0, vpn1))
    candidates.update(parent.mapped_vpns_in(vpn0, vpn1))
    candidates.update(snapshot.frame_vpns_in(vpn0, vpn1))
    for vpn in sorted(candidates):
        snap_frame = snapshot.frame(vpn)
        child_frame = child.frame(vpn)
        parent_frame = parent.frame(vpn)
        stats.pages_scanned += 1

        # Fast path 1: the child never broke COW on this page -> unchanged.
        if child_frame is snap_frame:
            continue

        # Without a generation baseline the kernel cannot know whether the
        # COW break actually changed bytes: it must compare.
        child_arr = _page_array(child_frame)
        snap_arr = _page_array(snap_frame)
        child_diff = child_arr != snap_arr
        stats.pages_diffed += 1
        if not child_diff.any():
            continue

        # Fast path 2: parent still maps the snapshot frame -> parent
        # unchanged; adopt the child's whole frame copy-on-write.
        if parent_frame is snap_frame:
            _adopt(parent, child, child_frame, vpn, stats)
            continue

        parent_arr = _page_array(parent_frame)
        parent_diff = parent_arr != snap_arr
        both = child_diff & parent_diff
        if both.any() and mode != "override":
            if mode == "strict":
                idx = int(np.flatnonzero(both)[0])
                raise MergeConflictError((vpn << PAGE_SHIFT) + idx)
            hard = both & (child_arr != parent_arr)
            if hard.any():
                idx = int(np.flatnonzero(hard)[0])
                raise MergeConflictError((vpn << PAGE_SHIFT) + idx)

        take = child_diff if mode != "lenient" else child_diff & ~parent_diff
        nbytes = int(take.sum())
        if nbytes == 0:
            continue
        # Write the differing bytes into a privately-owned parent frame.
        page, _ = parent._ensure_writable(vpn)
        dst = np.frombuffer(page.data, dtype=np.uint8)
        dst[take] = child_arr[take]
        stats.bytes_merged += nbytes
        stats.written_vpns.append(vpn)
