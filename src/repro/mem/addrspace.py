"""Sparse, copy-on-write simulated address spaces.

An :class:`AddressSpace` maps virtual page numbers to :class:`Page`
frames with per-page permissions.  All sharing between spaces is
copy-on-write: ``copy_range_from`` and snapshots share frames and bump
refcounts; the first write through a shared mapping copies the frame.

Demand-zero semantics: reading an unmapped page returns zeros; writing an
unmapped page allocates a fresh zero frame.  This matches how the
user-level runtime experiences memory on the real system (the parent maps
zero-filled regions with the Zero option before starting a child) and
keeps every access deterministic.

Dirty tracking (DESIGN.md): every mutation is vectored through
:meth:`AddressSpace._ensure_writable` (or one of the page-granular range
operations), which records the touched vpn in a per-space *dirty ledger*
stamped with a monotonically increasing write clock.  Snapshots record
the clock at capture time; merges and re-snapshots then enumerate the
pages written since in O(dirty) instead of scanning every mapped page.
"""

import bisect

import numpy as np

from repro.common.errors import PageFaultError, PermissionFault
from repro.mem.page import Page, PAGE_SIZE, PAGE_SHIFT
from repro.mem.layout import VA_SIZE

#: Page permission bits, set via the kernel's Perm option (paper Table 2).
PERM_NONE = 0
PERM_R = 1
PERM_W = 2
PERM_RW = PERM_R | PERM_W


class MemCounters:
    """Cumulative accounting of memory events, for cost charging and tests."""

    __slots__ = ("cow_breaks", "demand_zero", "pages_shared", "pages_zeroed")

    def __init__(self):
        self.cow_breaks = 0
        self.demand_zero = 0
        self.pages_shared = 0
        self.pages_zeroed = 0

    def snapshot(self):
        """Return a plain dict copy of the counters."""
        return {name: getattr(self, name) for name in self.__slots__}


def _check_range(addr, size):
    if size < 0:
        raise ValueError("negative size")
    if addr < 0 or addr + size > VA_SIZE:
        raise PageFaultError(addr, f"range {addr:#x}+{size:#x} outside address space")


def _check_page_aligned(addr, size):
    if addr % PAGE_SIZE or size % PAGE_SIZE:
        raise ValueError(
            f"range {addr:#x}+{size:#x} must be page-aligned for this operation"
        )


class AddressSpace:
    """A private virtual address space, the memory half of a *space* (§3.1)."""

    def __init__(self, allocator=None, track_dirty=True):
        # vpn -> Page
        self._pages = {}
        # vpn -> perm; pages absent from this dict default to PERM_RW.
        self._perms = {}
        #: Frame serial source (machine-owned; None -> module default).
        self.allocator = allocator
        self.counters = MemCounters()
        self._track_dirty = bool(track_dirty)
        #: vpn -> write-clock value of the last mutation touching it.
        self._dirty = {}
        #: Clock-ordered (clock, vpn) mutation events; periodically
        #: compacted to the latest event per vpn, so queries for a recent
        #: token cost O(log + written-since-token), not O(ever-written).
        self._events = []
        self._clock = 0

    # -- introspection ----------------------------------------------------

    def mapped_page_count(self):
        """Number of pages currently mapped."""
        return len(self._pages)

    def mapped_vpns(self):
        """Sorted list of mapped virtual page numbers."""
        return sorted(self._pages)

    def mapped_vpns_in(self, vpn0, vpn1):
        """Sorted mapped vpns in ``[vpn0, vpn1)``.

        Address-space regions are huge (hundreds of MB) but sparse, so all
        range operations iterate mapped pages, never the full page range.
        """
        return sorted(v for v in self._pages if vpn0 <= v < vpn1)

    def frame(self, vpn):
        """The :class:`Page` mapped at ``vpn``, or None."""
        return self._pages.get(vpn)

    def perm(self, vpn):
        """Effective permission for ``vpn`` (unmapped pages default RW)."""
        return self._perms.get(vpn, PERM_RW)

    # -- dirty ledger ------------------------------------------------------

    def tracks_dirty(self):
        """True if this space records a dirty ledger."""
        return self._track_dirty

    def dirty_token(self):
        """Opaque token marking 'now' in this space's write history, or
        None when tracking is disabled.  Pass to :meth:`dirty_since`."""
        return self._clock if self._track_dirty else None

    def dirty_since(self, token):
        """Set of vpns mutated after ``token``, or None if unavailable
        (tracking disabled, or the token came from an untracked space)."""
        if not self._track_dirty or token is None:
            return None
        # First event strictly newer than the token; every page whose
        # latest mutation postdates the token has at least one event in
        # the suffix (compaction always keeps the latest per vpn).
        start = bisect.bisect_left(self._events, (token + 1,))
        return {vpn for _, vpn in self._events[start:]}

    def dirty_page_count(self):
        """Pages ever recorded in the dirty ledger (introspection)."""
        return len(self._dirty)

    def dirty_vpns_since(self, token):
        """Sorted vpns mutated after ``token``, or None if unavailable.

        The deterministic (sorted) enumeration the cluster transport
        ships migration deltas from: a space's per-node visit token is a
        ledger clock, and this answers "what changed since I last
        resided there" in O(written-since), never O(mapped).
        """
        dirty = self.dirty_since(token)
        if dirty is None:
            return None
        return sorted(dirty)

    def _mark_dirty(self, vpn):
        if not self._track_dirty:
            return
        self._clock += 1
        self._dirty[vpn] = self._clock
        self._events.append((self._clock, vpn))
        if len(self._events) > 64 and len(self._events) > 2 * len(self._dirty):
            # Compact superseded events; keeps the log within 2x the
            # number of distinct dirty pages.
            self._events = sorted(
                (clock, vpn) for vpn, clock in self._dirty.items()
            )

    # -- page-level operations --------------------------------------------

    def _map(self, vpn, page, perm=None):
        old = self._pages.get(vpn)
        if old is not None:
            old.decref()
        self._pages[vpn] = page
        if perm is not None:
            self._perms[vpn] = perm
        self._mark_dirty(vpn)

    def _ensure_writable(self, vpn):
        """Return a privately-owned frame for ``vpn``, allocating or
        COW-copying as needed.  Returns (page, cost_event) where cost_event
        is 'hit', 'zero', or 'cow'.  The caller is about to mutate the
        frame, so this also bumps the frame generation and records the
        page in the dirty ledger."""
        page = self._pages.get(vpn)
        if page is None:
            page = Page(allocator=self.allocator)
            self._pages[vpn] = page
            self.counters.demand_zero += 1
            event = "zero"
        elif page.refs > 1:
            page.decref()
            page = page.fork_copy(self.allocator)
            self._pages[vpn] = page
            self.counters.cow_breaks += 1
            event = "cow"
        else:
            event = "hit"
        page.bump()
        self._mark_dirty(vpn)
        return page, event

    # -- byte-level access (used by the guest API) ------------------------

    def read(self, addr, size, check_perm=False):
        """Read ``size`` bytes at ``addr``.  Unmapped pages read as zeros."""
        _check_range(addr, size)
        out = bytearray(size)
        pos = 0
        while pos < size:
            vpn = (addr + pos) >> PAGE_SHIFT
            off = (addr + pos) & (PAGE_SIZE - 1)
            n = min(PAGE_SIZE - off, size - pos)
            if check_perm and not (self.perm(vpn) & PERM_R):
                raise PermissionFault(addr + pos, "read")
            page = self._pages.get(vpn)
            if page is not None:
                out[pos : pos + n] = page.data[off : off + n]
            pos += n
        return bytes(out)

    def write(self, addr, data, check_perm=False):
        """Write ``data`` at ``addr``.  Returns the number of page events
        (COW breaks + demand-zero fills) so callers can charge costs."""
        size = len(data)
        _check_range(addr, size)
        if isinstance(data, (bytes, bytearray, memoryview)):
            view = memoryview(data)
        else:
            view = memoryview(bytes(data))
        events = 0
        pos = 0
        while pos < size:
            vpn = (addr + pos) >> PAGE_SHIFT
            off = (addr + pos) & (PAGE_SIZE - 1)
            n = min(PAGE_SIZE - off, size - pos)
            if check_perm and not (self.perm(vpn) & PERM_W):
                raise PermissionFault(addr + pos, "write")
            page, event = self._ensure_writable(vpn)
            if event != "hit":
                events += 1
            page.data[off : off + n] = view[pos : pos + n]
            pos += n
        return events

    def as_array(self, addr, size, writable=False, check_perm=False):
        """Return a numpy uint8 view covering ``[addr, addr+size)``.

        The range must lie within one page unless it is page-aligned; for
        multi-page ranges a contiguous view is only possible page-by-page,
        so this returns a *copy* for read-only multi-page requests and
        raises for writable ones.  The guest API's ``map_array`` builds
        typed views page-by-page on top of this primitive.
        """
        _check_range(addr, size)
        vpn = addr >> PAGE_SHIFT
        off = addr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            if check_perm:
                need = PERM_W if writable else PERM_R
                if not (self.perm(vpn) & need):
                    raise PermissionFault(addr, "write" if writable else "read")
            if writable:
                page, _ = self._ensure_writable(vpn)
            else:
                page = self._pages.get(vpn)
                if page is None:
                    # Demand-zero for a *read* view: materialize the frame
                    # without bumping its generation or dirtying the
                    # ledger — a read must not look like a write to
                    # Snap/Merge accounting.
                    page = Page(allocator=self.allocator)
                    self._pages[vpn] = page
                    self.counters.demand_zero += 1
            return np.frombuffer(page.data, dtype=np.uint8)[off : off + size]
        if writable:
            raise ValueError("writable views must not cross page boundaries")
        return np.frombuffer(self.read(addr, size, check_perm=check_perm),
                             dtype=np.uint8)

    def privatize_range(self, addr, size):
        """Ensure every page overlapping ``[addr, addr+size)`` is mapped and
        privately owned (pre-faulting for writable array views).

        Returns ``(cow_breaks, zero_fills)`` for cost charging.
        """
        _check_range(addr, size)
        vpn0 = addr >> PAGE_SHIFT
        vpn1 = (addr + size - 1) >> PAGE_SHIFT if size else vpn0 - 1
        cow = zero = 0
        for vpn in range(vpn0, vpn1 + 1):
            _, event = self._ensure_writable(vpn)
            if event == "cow":
                cow += 1
            elif event == "zero":
                zero += 1
        return cow, zero

    def page_bytes(self, vpn):
        """Bytes of the page at ``vpn`` (zeros if unmapped). No copy if mapped."""
        page = self._pages.get(vpn)
        if page is None:
            return None
        return page.data

    # -- range operations (kernel Copy / Zero / Perm, page-aligned) -------

    def copy_range_from(self, src, src_addr, dst_addr, size, perm=None):
        """Logically copy ``[src_addr, src_addr+size)`` of ``src`` into
        ``[dst_addr, ...)`` of self, sharing frames copy-on-write.

        Implements the kernel Copy option (paper §3.2): "the kernel uses
        copy-on-write to optimize large copies".  Returns the number of
        pages whose mappings changed (for cost accounting).
        """
        _check_range(src_addr, size)
        _check_range(dst_addr, size)
        _check_page_aligned(src_addr, size)
        _check_page_aligned(dst_addr, size)
        src_vpn0 = src_addr >> PAGE_SHIFT
        dst_vpn0 = dst_addr >> PAGE_SHIFT
        npages = size >> PAGE_SHIFT
        # Only pages mapped on either side can need work (sparse ranges).
        candidates = set(src.mapped_vpns_in(src_vpn0, src_vpn0 + npages))
        shift = dst_vpn0 - src_vpn0
        candidates.update(
            v - shift for v in self.mapped_vpns_in(dst_vpn0, dst_vpn0 + npages)
        )
        touched = 0
        for svpn in sorted(candidates):
            i = svpn - src_vpn0
            spage = src._pages.get(src_vpn0 + i)
            dvpn = dst_vpn0 + i
            dpage = self._pages.get(dvpn)
            if spage is None:
                if dpage is not None:
                    dpage.decref()
                    del self._pages[dvpn]
                    self._mark_dirty(dvpn)
                    touched += 1
                self._perms.pop(dvpn, None)
                if perm is not None:
                    self._perms[dvpn] = perm
                continue
            if spage is dpage:
                # Already sharing the identical frame: content is in sync,
                # but a requested permission change must still apply.
                if perm is not None:
                    self._perms[dvpn] = perm
                continue
            self._map(dvpn, spage.incref(), perm)
            self.counters.pages_shared += 1
            touched += 1
        return touched

    def unmap_page(self, vpn):
        """Drop the frame at ``vpn`` (demand-zero on next access) without
        touching its permissions.  Merge's zero-adoption uses this:
        Merge transfers *content*, never permissions.  Returns 1 if a
        frame was dropped."""
        page = self._pages.pop(vpn, None)
        if page is None:
            return 0
        page.decref()
        self._mark_dirty(vpn)
        self.counters.pages_zeroed += 1
        return 1

    def zero_range(self, addr, size):
        """Zero-fill a page-aligned range (kernel Zero option).

        Implemented by unmapping: demand-zero reads make this equivalent
        to mapping fresh zero frames, without the cost.
        """
        _check_range(addr, size)
        _check_page_aligned(addr, size)
        vpn0 = addr >> PAGE_SHIFT
        npages = size >> PAGE_SHIFT
        removed = 0
        for vpn in self.mapped_vpns_in(vpn0, vpn0 + npages):
            self._pages.pop(vpn).decref()
            self._mark_dirty(vpn)
            removed += 1
        for vpn in [v for v in self._perms if vpn0 <= v < vpn0 + npages]:
            del self._perms[vpn]
        self.counters.pages_zeroed += removed
        return removed

    def set_perm(self, addr, size, perm):
        """Set page permissions on a page-aligned range (Perm option).

        Permissions are metadata, not content: they do not enter the
        dirty ledger (Merge and snapshots compare bytes only)."""
        _check_range(addr, size)
        _check_page_aligned(addr, size)
        vpn0 = addr >> PAGE_SHIFT
        for vpn in range(vpn0, vpn0 + (size >> PAGE_SHIFT)):
            self._perms[vpn] = perm

    def clone(self):
        """Return a full COW clone of this address space (used by the
        kernel's Tree option and by space migration)."""
        out = AddressSpace(self.allocator, self._track_dirty)
        for vpn, page in self._pages.items():
            out._pages[vpn] = page.incref()
        out._perms = dict(self._perms)
        out.counters.pages_shared += len(self._pages)
        return out

    def drop_all(self):
        """Release every mapping (space destruction)."""
        for page in self._pages.values():
            page.decref()
        self._pages.clear()
        self._perms.clear()
        self._dirty.clear()
        self._events.clear()

    def __repr__(self):
        return (
            f"<AddressSpace pages={len(self._pages)} "
            f"dirty={len(self._dirty)}>"
        )
