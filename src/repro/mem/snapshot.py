"""Address-space snapshots (the kernel Snap option, paper §3.2).

A snapshot records, copy-on-write, the frames mapped over a range of a
space's address space at the instant of the Snap.  It later serves as the
*reference* against which Merge computes what the child changed.
"""

from repro.mem.page import PAGE_SHIFT, PAGE_SIZE


class Snapshot:
    """Immutable reference copy of a range of an address space."""

    def __init__(self, addr, size, frames):
        #: Base address of the snapshotted range.
        self.addr = addr
        #: Size of the snapshotted range in bytes.
        self.size = size
        #: vpn -> Page (refcounted shares); vpns absent were unmapped.
        self._frames = frames

    @classmethod
    def capture(cls, space, addr, size):
        """Snapshot ``[addr, addr+size)`` of ``space`` (page-aligned)."""
        if addr % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError("snapshot range must be page-aligned")
        vpn0 = addr >> PAGE_SHIFT
        frames = {}
        for vpn in space.mapped_vpns_in(vpn0, vpn0 + (size >> PAGE_SHIFT)):
            frames[vpn] = space.frame(vpn).incref()
        space.counters.pages_shared += len(frames)
        return cls(addr, size, frames)

    def frame(self, vpn):
        """The frame snapshotted at ``vpn``, or None if it was unmapped."""
        return self._frames.get(vpn)

    def frame_vpns_in(self, vpn0, vpn1):
        """Vpns of retained frames inside ``[vpn0, vpn1)``."""
        return [v for v in self._frames if vpn0 <= v < vpn1]

    def covers(self, vpn):
        """True if ``vpn`` lies inside the snapshotted range."""
        vpn0 = self.addr >> PAGE_SHIFT
        return vpn0 <= vpn < vpn0 + (self.size >> PAGE_SHIFT)

    def page_count(self):
        """Number of frames retained by the snapshot."""
        return len(self._frames)

    def release(self):
        """Drop all frame references (snapshot discarded/replaced)."""
        for page in self._frames.values():
            page.decref()
        self._frames = {}

    def __repr__(self):
        return (
            f"<Snapshot {self.addr:#x}+{self.size:#x} "
            f"frames={len(self._frames)}>"
        )
