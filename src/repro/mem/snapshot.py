"""Address-space snapshots (the kernel Snap option, paper §3.2).

A snapshot records, copy-on-write, the frames mapped over a range of a
space's address space at the instant of the Snap.  It later serves as the
*reference* against which Merge computes what the child changed.

Beyond the frame shares themselves, a snapshot captures a *baseline* of
``(vpn, serial, generation)`` triples and the source space's dirty-ledger
token (DESIGN.md).  The token lets Merge enumerate candidate pages in
O(written-since-snap) and lets a repeated Snap over the same range update
itself in O(dirty) via :meth:`Snapshot.recapture`.  The baseline records
the content version pinned at each vpn; because a pinned (refcounted)
frame can never be mutated in place, Merge's ``frame is snap_frame``
identity test *is* the baseline comparison, performed without touching
page bytes — :meth:`baseline_tag` exists for introspection, tests, and
delta tooling, not as a separate merge fast path.
"""

from repro.mem.page import PAGE_SHIFT, PAGE_SIZE


class Snapshot:
    """Immutable reference copy of a range of an address space."""

    def __init__(self, addr, size, frames, source=None, token=None):
        #: Base address of the snapshotted range.
        self.addr = addr
        #: Size of the snapshotted range in bytes.
        self.size = size
        #: vpn -> Page (refcounted shares); vpns absent were unmapped.
        #: Holding the reference *pins* each frame: refs >= 2 forces any
        #: writer to COW instead of mutating in place, so a pinned
        #: frame's ``(serial, generation)`` tag is frozen at its
        #: capture-time value — the frames themselves are the baseline.
        self._frames = frames
        #: The AddressSpace the snapshot was captured from (identity only;
        #: used to validate dirty-ledger queries).
        self._source = source
        #: The source's dirty-ledger token at capture, or None when the
        #: source does not track dirty pages.
        self._token = token

    @classmethod
    def capture(cls, space, addr, size):
        """Snapshot ``[addr, addr+size)`` of ``space`` (page-aligned)."""
        if addr % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError("snapshot range must be page-aligned")
        vpn0 = addr >> PAGE_SHIFT
        frames = {}
        for vpn in space.mapped_vpns_in(vpn0, vpn0 + (size >> PAGE_SHIFT)):
            frames[vpn] = space.frame(vpn).incref()
        space.counters.pages_shared += len(frames)
        return cls(addr, size, frames, source=space, token=space.dirty_token())

    def recapture(self, space):
        """Re-snapshot the same range of the same space *incrementally*.

        Visits only the pages ``space`` mutated since this snapshot was
        (re)captured — O(dirty), not O(mapped) — updating the pinned
        frames in place.  Returns ``(repinned, walked)``: pages whose
        frame was re-pinned (page_map-equivalent work) and ledger
        entries enumerated (page_track-equivalent work; dropping the pin
        of a now-unmapped page costs only the walk).  Returns None when
        the incremental path is unavailable (different space, or no
        dirty ledger) and the caller should do a full capture.
        """
        if space is not self._source:
            return None
        dirty = space.dirty_since(self._token)
        if dirty is None:
            return None
        vpn0 = self.addr >> PAGE_SHIFT
        vpn1 = vpn0 + (self.size >> PAGE_SHIFT)
        repinned = 0
        for vpn in dirty:
            if not vpn0 <= vpn < vpn1:
                continue
            old = self._frames.pop(vpn, None)
            if old is not None:
                old.decref()
            frame = space.frame(vpn)
            if frame is not None:
                self._frames[vpn] = frame.incref()
                space.counters.pages_shared += 1
                repinned += 1
        self._token = space.dirty_token()
        return repinned, len(dirty)

    def frame(self, vpn):
        """The frame snapshotted at ``vpn``, or None if it was unmapped."""
        return self._frames.get(vpn)

    def frame_vpns_in(self, vpn0, vpn1):
        """Vpns of retained frames inside ``[vpn0, vpn1)``."""
        return [v for v in self._frames if vpn0 <= v < vpn1]

    def baseline_tag(self, vpn):
        """The ``(serial, generation)`` content tag snapshotted at ``vpn``,
        or None if the page was unmapped at capture.  Read straight off
        the pinned frame — pinning freezes the tag (see ``_frames``)."""
        frame = self._frames.get(vpn)
        return frame.tag() if frame is not None else None

    def dirty_in(self, child, vpn0, vpn1):
        """Vpns in ``[vpn0, vpn1)`` that ``child`` mutated since capture.

        Returns None when the dirty-ledger fast path is unavailable —
        ``child`` is not the space this snapshot was captured from, or it
        does not track dirty pages — in which case Merge falls back to
        scanning the union of mapped pages.
        """
        if child is not self._source:
            return None
        dirty = child.dirty_since(self._token)
        if dirty is None:
            return None
        return [vpn for vpn in dirty if vpn0 <= vpn < vpn1]

    def covers(self, vpn):
        """True if ``vpn`` lies inside the snapshotted range."""
        vpn0 = self.addr >> PAGE_SHIFT
        return vpn0 <= vpn < vpn0 + (self.size >> PAGE_SHIFT)

    def page_count(self):
        """Number of frames retained by the snapshot."""
        return len(self._frames)

    def release(self):
        """Drop all frame references (snapshot discarded/replaced)."""
        for page in self._frames.values():
            page.decref()
        self._frames = {}
        self._source = None
        self._token = None

    def __repr__(self):
        return (
            f"<Snapshot {self.addr:#x}+{self.size:#x} "
            f"frames={len(self._frames)}>"
        )
