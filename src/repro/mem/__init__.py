"""Simulated paged virtual memory.

This package stands in for the x86 MMU + page tables that the real
Determinator kernel manipulates: 4 KiB pages, copy-on-write sharing,
page permissions, address-space snapshots, and the byte-granularity
three-way ``Merge`` with write/write conflict detection (paper §3.2).
"""

from repro.mem.page import Page, FrameAllocator, PAGE_SIZE, PAGE_SHIFT
from repro.mem.layout import (
    VA_SIZE,
    TEXT_BASE,
    SHARED_BASE,
    SHARED_END,
    FS_BASE,
    FS_END,
    SCRATCH_BASE,
    SCRATCH_END,
    PRIVATE_BASE,
    PRIVATE_END,
)
from repro.mem.addrspace import AddressSpace, PERM_NONE, PERM_R, PERM_W, PERM_RW
from repro.mem.snapshot import Snapshot
from repro.mem.merge import merge_range, MergeStats

__all__ = [
    "Page",
    "FrameAllocator",
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "VA_SIZE",
    "TEXT_BASE",
    "SHARED_BASE",
    "SHARED_END",
    "FS_BASE",
    "FS_END",
    "SCRATCH_BASE",
    "SCRATCH_END",
    "PRIVATE_BASE",
    "PRIVATE_END",
    "AddressSpace",
    "PERM_NONE",
    "PERM_R",
    "PERM_W",
    "PERM_RW",
    "Snapshot",
    "merge_range",
    "MergeStats",
]
