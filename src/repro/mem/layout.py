"""Standard virtual-address-space layout used by the user-level runtime.

The kernel itself imposes no layout (a space is just a sparse 32-bit
address space); these constants are the convention the runtime uses,
mirroring the regions the paper describes:

* a *shared* region that multithreaded processes replicate and merge
  (heap + globals, §4.4);
* the *file system image* kept inside every process (§4.2);
* a *scratch* area the runtime uses when reconciling a child's file
  system image (§4.2);
* a *private* region excluded from Snap/Merge (per-thread data; the
  paper keeps thread stacks here, §4.4).
"""

from repro.mem.page import PAGE_SIZE

#: Size of the simulated virtual address space (32-bit, as the prototype).
VA_SIZE = 1 << 32

#: Program text / read-only metadata (the runtime stores the loaded
#: binary's name here so exec() can replace it).
TEXT_BASE = 0x0010_0000

#: Shared region: heap and globals, replicated into threads and merged.
SHARED_BASE = 0x1000_0000
SHARED_END = 0x8000_0000

#: File system image region (one full replica per process).
FS_BASE = 0x8000_0000
FS_END = 0xC000_0000

#: Scratch region for file-system reconciliation.
SCRATCH_BASE = 0xC000_0000
SCRATCH_END = 0xE000_0000

#: Thread/process-private region, never merged.
PRIVATE_BASE = 0xE000_0000
PRIVATE_END = 0xF000_0000


def page_align_down(addr):
    """Round ``addr`` down to a page boundary."""
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr):
    """Round ``addr`` up to a page boundary."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
