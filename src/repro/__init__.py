"""repro — a Python reproduction of **Determinator**:
Aviram, Weng, Hu & Ford, *Efficient System-Enforced Deterministic
Parallelism*, OSDI 2010.

The package rebuilds the paper's entire stack:

* :mod:`repro.mem` — simulated paged virtual memory: copy-on-write
  frames, snapshots, and the byte-granularity Merge with write/write
  conflict detection.
* :mod:`repro.kernel` — the three-syscall kernel (Put/Get/Ret with the
  full Table 2 option set), the space hierarchy, instruction limits,
  devices, and cross-node space migration.
* :mod:`repro.runtime` — the user-level runtime: Unix-style processes
  with a replicated, version-reconciled file system; private-workspace
  shared-memory threads; the deterministic legacy-pthreads scheduler;
  a parallel make.
* :mod:`repro.timing` — the deterministic virtual-time model all
  performance results come from.
* :mod:`repro.baseline` — the nondeterministic Linux/pthreads and
  distributed-memory comparison systems.
* :mod:`repro.bench` — the seven paper benchmarks and a generator for
  every figure and table in the evaluation.

Quickstart::

    from repro import Machine
    from repro.runtime.threads import thread_fork, thread_join
    from repro.mem.layout import SHARED_BASE

    def worker(g, i):
        g.store(SHARED_BASE + 8 * i, i * i)

    def main(g):
        for i in range(4):
            thread_fork(g, i + 1, worker, (i,))
        for i in range(4):
            thread_join(g, i + 1)
        return [g.load(SHARED_BASE + 8 * i) for i in range(4)]

    with Machine() as machine:
        result = machine.run(main)
        print(result.r0)                  # [0, 1, 4, 9] — every run
        print(result.makespan(ncpus=4))   # deterministic virtual time
"""

from repro.common.errors import (
    BackendError,
    DeadlockError,
    FileConflictError,
    FileSystemError,
    KernelError,
    MergeConflictError,
    ReproError,
    RuntimeApiError,
    WireError,
)
from repro.kernel import Machine, MachineResult, Trap, child_ref
from repro.cluster.backend import RealRunResult, run_backend, run_real
from repro.cluster.cluster import Cluster, ClusterResult, sweep_nodes
from repro.cluster.serving import ServingResult, serve_trace
from repro.cluster.spec import ClusterSpec
from repro.timing import CostModel

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineResult",
    "Trap",
    "child_ref",
    "ClusterSpec",
    "Cluster",
    "ClusterResult",
    "sweep_nodes",
    "serve_trace",
    "ServingResult",
    "RealRunResult",
    "run_backend",
    "run_real",
    "CostModel",
    "ReproError",
    "KernelError",
    "BackendError",
    "WireError",
    "MergeConflictError",
    "RuntimeApiError",
    "FileSystemError",
    "FileConflictError",
    "DeadlockError",
    "__version__",
]
