"""Built-in re-runnable scenarios for the post-mortem inspector.

A *recipe* is the inspector's unit of re-execution: a callable
``recipe(prepare=None) -> (machine, result)`` that builds a machine
with a fixed configuration, applies ``prepare(machine)`` (the hook
``goto`` uses to install its trace observer) before running, executes a
fixed workload, and returns the still-open machine with its result.
Because the machine's inputs are all explicit and fixed, every
invocation of a recipe is bit-identical — which is the entire premise
of time-travel debugging here.

Two scenarios ship built in (the CLI's ``--scenario`` flag):

``fault-tolerance``
    The checkpoint/crash/rollback/replay workload of
    ``examples/fault_tolerance.py`` (kept in sync — the example is the
    narrated version): a child computes through 8 epochs with a
    checkpoint per epoch, a poisoned input page crashes it in epoch 5,
    the supervisor rolls back one epoch and replays to the correct
    answer.  Leaves a freezer full of checkpoints to ``diff`` and a
    mid-run EXC trap to ``goto``.

``retx``
    A 2-node run over a catastrophically lossy fabric
    (90% deterministic drop, retransmission budget of 2): the first
    migration exhausts its retransmissions, the transport raises
    NetworkLossError, and the root traps EXC — the "run trapped at
    cycle 40M" the docs walk through debugging.
"""

from repro.common.errors import DebugApiError
from repro.kernel.machine import Machine
from repro.kernel.traps import Trap
from repro.runtime.checkpoint import Checkpointer

# -- fault-tolerance workload (examples/fault_tolerance.py, condensed) -----

STATE = 0x10_0000          # progress counter + accumulator page
ACC = 0x10_0008
POISON = 0x10_1000         # the "input block", on its own page
PHASES = 8
INJECT_AT_EPOCH = 5


def ft_computation(g):
    """Checkpoint-restart style: progress lives in simulated memory."""
    while True:
        if g.load(POISON):
            raise RuntimeError("corrupted input block")
        step = g.load(STATE)
        if step >= PHASES:
            g.ret(status=0)
            continue
        g.work(50_000)
        g.store(ACC, g.load(ACC) + (step + 1) ** 2)
        g.store(STATE, step + 1)
        g.ret(status=1)


def ft_supervisor(g):
    ckpt = Checkpointer(g)
    g.put(1, regs={"entry": ft_computation}, start=True)
    epoch = 0
    crashed_at = None
    while True:
        view = g.get(1, regs=True)
        if view["trap"] is Trap.EXC:
            crashed_at = epoch
            g.debug(f"crash in epoch {epoch}: {view['trap_info']}")
            epoch -= 1
            ckpt.restore(1, f"epoch-{epoch}")
            g.debug(f"rolled back to epoch {epoch}, replaying")
            g.put(1, start=True)
            continue
        if view["status"] == 0:
            g.get(1, copy=(STATE, 0x1000))
            return g.load(ACC), crashed_at
        ckpt.save(1, f"epoch-{epoch}")
        epoch += 1
        if epoch == INJECT_AT_EPOCH and crashed_at is None:
            g.store(POISON, 1)
            g.put(1, copy=(POISON, 0x1000), start=True)
            g.store(POISON, 0)
            g.debug(f"poisoned input before epoch {epoch}")
            continue
        g.put(1, start=True)


def ft_main(g):
    result, crashed_at = ft_supervisor(g)
    expected = sum((i + 1) ** 2 for i in range(PHASES))
    g.console_write(
        f"result={result} expected={expected} "
        f"recovered-from-crash-in-epoch={crashed_at}\n"
    )
    return 0 if result == expected else 1


def fault_tolerance(prepare=None):
    """Recipe: the checkpoint/crash/rollback/replay run (single node)."""
    machine = Machine()
    if prepare is not None:
        prepare(machine)
    result = machine.run(ft_main)
    return machine, result


# -- retransmission-exhaustion trap ----------------------------------------

DATA = 0x20_0000
DATA_PAGES = 4

#: Loss schedule of the retx scenario: at a 90% deterministic drop rate
#: with a retransmission budget of 2, the probability a hop copy
#: survives its whole retry sequence is ~27%, so the multi-message
#: first migration exhausts almost surely.  The seed is pinned to a
#: value (verified by tests/debug) under which the root traps EXC *at
#: its home node* — before its own migration commits — so the trap
#: lands cleanly and the run ends in a reproducible post-mortem state.
RETX_LOSS = {"drop": 0.9, "seed": 11}
RETX_LIMIT = 2


def retx_worker(g, npages):
    total = 0
    for i in range(npages):
        total += g.load(DATA + i * 0x1000)
    g.ret(status=0, r0=total)


def retx_main(g):
    from repro import child_ref
    for i in range(DATA_PAGES):
        g.store(DATA + i * 0x1000, i + 1)
    worker = child_ref(1, node=1)
    g.put(worker, regs={"entry": retx_worker, "args": (DATA_PAGES,)},
          copy=(DATA, DATA_PAGES * 0x1000), start=True)
    view = g.get(worker, regs=True)
    if view["trap"] is not Trap.RET:
        return 1
    g.console_write(f"worker sum={view['r0']}\n")
    return 0


def retx_trap(prepare=None):
    """Recipe: 2-node run whose first migration dies of retransmission
    exhaustion (``NetworkLossError`` -> root Trap.EXC)."""
    from repro.timing.model import CostModel
    machine = Machine(
        nnodes=2,
        loss=dict(RETX_LOSS),
        cost=CostModel(retx_limit=RETX_LIMIT),
    )
    if prepare is not None:
        prepare(machine)
    result = machine.run(retx_main)
    return machine, result


#: CLI name -> recipe.
SCENARIOS = {
    "fault-tolerance": fault_tolerance,
    "retx": retx_trap,
}


def get_scenario(name):
    recipe = SCENARIOS.get(name)
    if recipe is None:
        raise DebugApiError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(sorted(SCENARIOS))}")
    return recipe
