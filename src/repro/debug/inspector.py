"""The post-mortem inspector: one object tying a finished run's
machine, trace, schedule, and checkpoints into a queryable whole.

The paper's opening claim — determinism is "the foundation of replay
debugging" — is operationalized here.  Because a run is a pure function
of its explicit inputs, a finished :class:`~repro.kernel.machine.Machine`
plus a *recipe* that can re-execute it is a complete time-travel
debugger: any cycle of the schedule can be revisited by replaying up to
it (``goto``), and the replay is bit-identical **by construction and by
assertion** (the inspector compares the replay's trace against the
original and raises :class:`~repro.common.errors.ReplayDivergence` on
the first mismatch rather than showing state from a diverged world).

``goto N``'s semantics: the machine state once every segment the
schedule *finished by cycle N* has closed.  The anchor set is computed
from the original trace's schedule (both engines are bit-identical, so
the set is engine-independent), and the capture fires inside the
replay's :attr:`~repro.timing.trace.Trace.on_close` observer the moment
the last anchor segment closes — a deep byte-copy capture
(:func:`~repro.debug.model.freeze_machine`) that takes no COW
references, so the remainder of the replay proceeds untouched and the
trace-equality assertion stays meaningful end to end.

Replays force the serial engine (``machine.shard = None``) even when
the original ran sharded: sharded adoption splices pre-closed segments
into the trace without close events, and serial-vs-sharded
bit-identity is a repo invariant — which makes every sharded ``goto``
double as an oracle check of the sharded execution path.
"""

from repro.common.errors import DebugApiError, ReplayDivergence
from repro.debug.model import (SpaceImage, SpaceDiff, compare_traces,
                               freeze_machine)
from repro.runtime import checkpoint as ckpt_mod
from repro.timing.schedule import schedule
from repro.timing.timeline import Timeline

#: Trace segment labels written by a faulting stop
#: (:class:`~repro.kernel.traps.Trap`.is_fault names the same set).
FAULT_LABELS = ("exc", "page_fault", "perm_fault", "conflict")


class TrapEvent:
    """One faulting stop located on the schedule."""

    __slots__ = ("cycle", "seg_id", "uid", "label", "trap_info")

    def __init__(self, cycle, seg_id, uid, label, trap_info=""):
        self.cycle = cycle
        self.seg_id = seg_id
        self.uid = uid
        self.label = label
        self.trap_info = trap_info

    def __repr__(self):
        return (f"<TrapEvent cycle={self.cycle} uid={self.uid} "
                f"{self.label} seg=#{self.seg_id}>")


class BacktraceFrame:
    """One segment of a space's history, newest first in a backtrace."""

    __slots__ = ("seg_id", "label", "node", "cycles", "start", "finish",
                 "in_edges")

    def __init__(self, seg_id, label, node, cycles, start, finish,
                 in_edges):
        self.seg_id = seg_id
        self.label = label
        self.node = node
        self.cycles = cycles
        self.start = start
        self.finish = finish
        #: Cross-uid arrivals into this segment:
        #: ``(src_uid, src_seg_id, kind)`` — kind None for plain edges,
        #: else the transfer kind ("migrate", "fetch", "retx", ...).
        self.in_edges = in_edges

    def __repr__(self):
        return (f"<Frame #{self.seg_id} {self.label!r} node={self.node} "
                f"[{self.start}, {self.finish}]>")


class GotoResult:
    """State recovered by :meth:`Inspector.goto`."""

    __slots__ = ("cycle", "segments", "image", "replay_result")

    def __init__(self, cycle, segments, image, replay_result):
        #: The requested cycle.
        self.cycle = cycle
        #: Segment ids the schedule had finished by :attr:`cycle` (the
        #: capture anchor set).
        self.segments = segments
        #: The :class:`~repro.debug.model.MachineImage` at that point.
        self.image = image
        #: The replay's MachineResult (ran to completion after capture;
        #: its trace passed the bit-identity assertion).
        self.replay_result = replay_result

    def trapped(self):
        """Space images sitting in a fault trap at the captured point."""
        return [img for img in self.image.spaces() if img.trap.is_fault()]

    def __repr__(self):
        return (f"<GotoResult cycle={self.cycle} "
                f"segments={len(self.segments)} "
                f"spaces={len(self.image.spaces())}>")


class Inspector:
    """Open a finished (or trapped) run for symbolic inspection.

    Parameters
    ----------
    machine:
        A machine whose :meth:`~repro.kernel.machine.Machine.run` has
        returned (successfully or in a trap).
    result:
        The run's MachineResult, when available (summary detail).
    recipe:
        Optional re-execution recipe enabling ``goto``: a callable
        ``recipe(prepare=None) -> (machine, result)`` that builds an
        identically-configured machine, calls ``prepare(machine)`` (when
        given) *before* ``run()``, runs the identical workload, and
        returns without closing the machine.  The scenarios in
        :mod:`repro.debug.scenarios` follow this protocol.
    """

    def __init__(self, machine, result=None, recipe=None):
        if machine.root is None:
            raise DebugApiError(
                "machine has not run; the inspector opens finished runs")
        self.machine = machine
        self.result = result
        self.recipe = recipe
        self.trace = machine.trace
        self._image = None
        self._sched = None
        self._timeline = None

    @classmethod
    def from_recipe(cls, recipe):
        """Run ``recipe`` once and open the result (keeps the recipe for
        ``goto`` replays)."""
        machine, result = recipe(None)
        return cls(machine, result=result, recipe=recipe)

    # -- lazy derived views ------------------------------------------------

    @property
    def ncpus(self):
        """CPUs per node the run is scheduled on: the spec's
        ``cpus_per_node`` for cluster runs, the cost model's core count
        for single-machine runs (mirroring ClusterResult/MachineResult)."""
        machine = self.machine
        return (machine.cpus_per_node if machine.nnodes > 1
                else machine.cost.ncpus)

    @property
    def image(self):
        """Frozen image of the machine's final state."""
        if self._image is None:
            self._image = freeze_machine(self.machine)
        return self._image

    @property
    def sched(self):
        """The run's schedule (same CPU configuration as the machine)."""
        if self._sched is None:
            self._sched = schedule(self.trace, ncpus=self.ncpus)
        return self._sched

    @property
    def timeline(self):
        """Cycle-addressable replay of the schedule (lazy)."""
        if self._timeline is None:
            self._timeline = Timeline(self.trace, ncpus=self.ncpus)
        return self._timeline

    # -- whole-run queries -------------------------------------------------

    def traps(self):
        """Faulting stops in schedule order: every segment a space closed
        by trapping, located at its scheduled finish cycle."""
        events = []
        finish = self.timeline.finish
        for seg in self.trace.segments:
            if seg.label in FAULT_LABELS and seg.id in finish:
                image = self.image.find(seg.uid)
                events.append(TrapEvent(
                    finish[seg.id], seg.id, seg.uid, seg.label,
                    image.trap_info if image is not None else ""))
        events.sort(key=lambda e: (e.cycle, e.seg_id))
        return events

    def backtrace(self, uid, limit=16):
        """``uid``'s segment chain, newest first, with cross-space
        arrivals annotated — the debugger's per-space "backtrace"
        (pykdump's BTstack, transposed to deterministic spaces)."""
        own = [seg for seg in self.trace.segments if seg.uid == uid]
        if not own:
            raise DebugApiError(f"no trace context {uid!r}")
        by_id = self.trace.segments
        in_edges = {}
        for src, dst, _latency in self.trace.edges:
            if by_id[src].uid != by_id[dst].uid:
                in_edges.setdefault(dst, []).append(
                    (by_id[src].uid, src, None))
        for src, dst, _l, _b, _lat, _cls, kind in self.trace.transfers:
            in_edges.setdefault(dst, []).append((by_id[src].uid, src, kind))
        start, finish = self.timeline.start, self.timeline.finish
        frames = []
        for seg in reversed(own[-limit:] if limit else own):
            frames.append(BacktraceFrame(
                seg.id, seg.label, seg.node, seg.cycles,
                start.get(seg.id), finish.get(seg.id),
                sorted(in_edges.get(seg.id, []), key=lambda e: e[1])))
        return frames

    def uids(self):
        """Trace context ids in first-appearance order."""
        seen, out = set(), []
        for seg in self.trace.segments:
            if seg.uid not in seen:
                seen.add(seg.uid)
                out.append(seg.uid)
        return out

    # -- checkpoints -------------------------------------------------------

    def checkpoints(self):
        """Every checkpoint directory in the final space tree:
        ``(owner_uid, freezer_uid, [tags in save order])``."""
        out = []
        for owner, freezer in ckpt_mod.find_freezers(self.machine.root):
            out.append((owner.uid, freezer.uid,
                        ckpt_mod.checkpoint_tags(freezer)))
        return out

    def _find_freezer(self, *tags):
        holders = [
            freezer
            for _owner, freezer in ckpt_mod.find_freezers(self.machine.root)
            if all(t in ckpt_mod.checkpoint_tags(freezer) for t in tags)
        ]
        if not holders:
            raise DebugApiError(
                f"no freezer holds checkpoint(s) {', '.join(map(repr, tags))}")
        if len(holders) > 1:
            raise DebugApiError(
                f"checkpoints {tags!r} exist in {len(holders)} freezers; "
                f"inspect them via repro.runtime.checkpoint directly")
        return holders[0]

    def checkpoint_image(self, tag):
        """Frozen :class:`~repro.debug.model.SpaceImage` saved under
        ``tag``."""
        freezer = self._find_freezer(tag)
        return SpaceImage(ckpt_mod.frozen_image(freezer, tag))

    def diff(self, tag_a, tag_b):
        """Page-granular diff between two checkpoints (tag-skip +
        batched ndarray compare; see :class:`~repro.debug.model.SpaceDiff`)."""
        freezer = self._find_freezer(tag_a, tag_b)
        return SpaceDiff(
            SpaceImage(ckpt_mod.frozen_image(freezer, tag_a)),
            SpaceImage(ckpt_mod.frozen_image(freezer, tag_b)))

    # -- wire state --------------------------------------------------------

    def link_ledgers(self):
        """Final per-link transport ledgers (traffic, retx, drops)."""
        return self.image.links

    def links_at(self, cycle):
        """Wire state at ``cycle``: in-flight transfers and per-link
        occupancy so far — reconstructed by replaying the schedule, not
        recorded during the run (determinism makes the reconstruction
        exact)."""
        timeline = self.timeline
        return {
            "in_flight": timeline.in_flight_at(cycle),
            "link_busy": timeline.link_busy_until(cycle),
            "kinds_started": timeline.kind_counts_until(cycle),
            "running": timeline.running_at(cycle),
        }

    # -- time travel -------------------------------------------------------

    def goto(self, cycle):
        """Re-execute deterministically and capture state at ``cycle``.

        Returns a :class:`GotoResult` whose image is the machine state
        once every segment the original schedule finished by ``cycle``
        has closed in the replay.  The replay then runs to completion
        and its trace is asserted bit-identical to the original
        (:class:`~repro.common.errors.ReplayDivergence` otherwise).
        """
        if self.recipe is None:
            raise DebugApiError(
                "goto needs a re-execution recipe; open the run with "
                "Inspector.from_recipe (see repro.debug.scenarios)")
        anchors = self.timeline.closed_by(cycle)
        if not anchors:
            raise DebugApiError(
                f"cycle {cycle} precedes the first segment completion "
                f"(earliest: {min(self.timeline.finish.values())})")
        # Zero-cycle anchors carry no guest work, and some (the parked
        # post-trap segment, the root's exit segment) only close at
        # trace.end() — long after their scheduled instant.  A zero-cycle
        # segment is fully accounted for the moment it is *created*,
        # i.e. when its same-context predecessor closes — and that
        # predecessor's scheduled finish is <= the zero-cycle segment's,
        # so it is already in the anchor set.  Waiting only on anchors
        # that charged cycles therefore captures at the right moment.
        cycles_of = {seg.id: seg.cycles for seg in self.trace.segments}
        remaining = {sid for sid in anchors if cycles_of[sid] > 0}
        if not remaining:
            remaining = set(anchors)
        capture = {}

        def prepare(machine):
            machine.shard = None    # serial replay; bit-identical by design

            def on_close(segment):
                if segment.id in remaining:
                    remaining.discard(segment.id)
                    if not remaining:
                        capture["image"] = freeze_machine(machine)

            machine.trace.on_close = on_close

        replay_machine, replay_result = self.recipe(prepare)
        try:
            divergence = compare_traces(self.trace, replay_machine.trace)
            if divergence is not None:
                raise ReplayDivergence(
                    f"replay diverged from the original run: {divergence}")
            if "image" not in capture:
                raise ReplayDivergence(
                    f"replay closed every segment yet never crossed the "
                    f"anchor set for cycle {cycle} — trace observer "
                    f"missed {len(remaining)} segment(s)")
        finally:
            replay_machine.close()
        return GotoResult(cycle, frozenset(anchors), capture["image"],
                          replay_result)
