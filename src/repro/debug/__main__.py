"""CLI for the post-mortem inspector: ``python -m repro.debug``.

Opens a built-in scenario (``--scenario``; see
:mod:`repro.debug.scenarios`), runs it once, and inspects the finished
run.  Every subcommand's output is deterministic — same scenario, same
bytes, every time — which is what lets ``benchmarks/check_docs.py``
smoke the documented command lines and CI archive the output.

Subcommands::

    summary              whole-run overview (result, traps, checkpoints)
    tree [--pages]       walk the space tree symbolically
    bt [UID]             per-space backtrace from the trace
    links [--at CYCLE]   link ledgers; with --at, wire state at a cycle
    diff TAG_A TAG_B     page-granular checkpoint diff
    goto CYCLE [--pages] replay to CYCLE and inspect there
"""

import argparse
import sys

from repro.common.errors import DebugApiError, ReplayDivergence
from repro.debug import render
from repro.debug.inspector import Inspector
from repro.debug.scenarios import SCENARIOS, get_scenario


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.debug",
        description="Post-mortem inspector over a deterministic run.")
    parser.add_argument(
        "--scenario", default="fault-tolerance",
        choices=sorted(SCENARIOS),
        help="built-in re-runnable scenario to open "
             "(default: fault-tolerance)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("summary", help="whole-run overview")

    tree = sub.add_parser("tree", help="walk the space tree")
    tree.add_argument("--pages", action="store_true",
                      help="list per-space page tables with content tags")

    bt = sub.add_parser("bt", help="per-space backtrace")
    bt.add_argument("uid", nargs="?", default=None,
                    help="trace context id (default: every space)")
    bt.add_argument("--limit", type=int, default=16,
                    help="frames per backtrace (default 16)")

    links = sub.add_parser("links", help="link ledgers / wire state")
    links.add_argument("--at", type=int, default=None, metavar="CYCLE",
                       help="reconstruct in-flight state at this cycle")

    diff = sub.add_parser("diff", help="diff two checkpoints")
    diff.add_argument("tag_a")
    diff.add_argument("tag_b")

    goto = sub.add_parser("goto", help="replay to a cycle and inspect")
    goto.add_argument("cycle", type=int)
    goto.add_argument("--pages", action="store_true",
                      help="list page tables in the recovered state")
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    recipe = get_scenario(args.scenario)
    insp = Inspector.from_recipe(recipe)
    try:
        if args.command == "summary":
            lines = render.format_summary(insp)
        elif args.command == "tree":
            lines = render.format_tree(insp.image, pages=args.pages)
        elif args.command == "bt":
            uids = [args.uid] if args.uid else insp.uids()
            lines = []
            for uid in uids:
                lines.extend(render.format_backtrace(insp, uid,
                                                     limit=args.limit))
        elif args.command == "links":
            lines = render.format_links(insp, at=args.at)
        elif args.command == "diff":
            lines = render.format_diff(
                insp.diff(args.tag_a, args.tag_b), args.tag_a, args.tag_b)
        elif args.command == "goto":
            lines = render.format_goto(insp.goto(args.cycle),
                                       pages=args.pages)
        else:  # pragma: no cover - argparse enforces the choices
            parser.error(f"unknown command {args.command!r}")
    except (DebugApiError, ReplayDivergence) as exc:
        print(f"repro.debug: {exc}", file=sys.stderr)
        return 1
    finally:
        insp.machine.close()
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
