"""Time-travel debugging over finished runs (``python -m repro.debug``).

Determinism makes a finished :class:`~repro.kernel.machine.Machine` a
*complete* debugging artifact: the trace holds every scheduling event,
the freezer holds every checkpoint, and — because re-execution is
bit-identical — any cycle of the run can be revisited by replaying up
to it.  This package is the inspector over all of that:

* :class:`~repro.debug.inspector.Inspector` — open a finished/trapped
  run; walk the space tree symbolically, print per-space backtraces,
  reconstruct per-link wire state at any cycle, diff checkpoints at
  page granularity, and ``goto(N)`` — replay to cycle N and inspect
  there (asserted bit-identical against the original trace).
* :mod:`~repro.debug.model` — frozen images (deep, COW-free copies) of
  spaces and machines; page-granular diffs over ``(serial,
  generation)`` content tags with batched ndarray byte compares.
* :mod:`~repro.debug.scenarios` — built-in re-runnable recipes (the
  ``--scenario`` CLI flag): the checkpoint/rollback workload and a
  retransmission-exhaustion trap.
* :mod:`~repro.debug.render` — deterministic text rendering shared by
  the CLI and the examples.

See ``docs/debugging.md`` for the guided tour.
"""

from repro.debug.inspector import (BacktraceFrame, GotoResult, Inspector,
                                   TrapEvent)
from repro.debug.model import (MachineImage, PageDelta, SpaceDiff,
                               SpaceImage, compare_traces, diff_pages,
                               freeze_machine)
from repro.debug.scenarios import SCENARIOS, get_scenario

__all__ = [
    "BacktraceFrame",
    "GotoResult",
    "Inspector",
    "MachineImage",
    "PageDelta",
    "SCENARIOS",
    "SpaceDiff",
    "SpaceImage",
    "TrapEvent",
    "compare_traces",
    "diff_pages",
    "freeze_machine",
    "get_scenario",
]
