"""Frozen symbolic images of machine state — the debugger's model layer.

Everything the inspector shows is read from an **image**: a deep,
non-invasive copy of the space tree (registers, traps, per-space page
tables with ``(serial, generation)`` content tags, dirty-ledger
counters) plus the machine-level surfaces (console, per-link transport
ledgers).  Images copy raw page *bytes* instead of taking COW
references on purpose: an ``incref`` would pin frames and force extra
copy-on-write breaks in whatever runs next, perturbing the virtual-time
accounting — fatal inside ``goto``'s replay, where the captured state
must leave the remainder of the re-execution bit-identical to the
original run.

Image equality is structural and total (registers, traps, page bytes,
link ledgers), which is what makes an image usable as a bit-identity
oracle in tests.  Diffing two images is page-granular and reuses the
merge engine's trick: ``(serial, generation)`` tags prove identity
without touching bytes (a shared pinned frame can never mutate in
place), and only tag-mismatched pages pay a stacked ``(N, 4096)``
ndarray compare.
"""

import numpy as np

from repro.mem.page import PAGE_SIZE

#: Pages per stacked ndarray compare (mirrors the merge engine's batch).
BATCH_PAGES = 4096

_ZEROS = np.zeros(PAGE_SIZE, dtype=np.uint8)


class PageImage:
    """One captured page: content tag, permission, raw bytes."""

    __slots__ = ("tag", "perm", "data")

    def __init__(self, tag, perm, data):
        self.tag = tag
        self.perm = perm
        self.data = data

    def __eq__(self, other):
        return (isinstance(other, PageImage) and self.tag == other.tag
                and self.perm == other.perm and self.data == other.data)

    def __repr__(self):
        return f"<PageImage tag={self.tag} perm={self.perm:#o}>"


class SpaceImage:
    """Deep frozen copy of one space (and, recursively, its children)."""

    __slots__ = ("uid", "path", "state", "trap", "trap_info", "regs",
                 "home_node", "cur_node", "insn_limit", "pages",
                 "dirty_tracking", "dirty_page_count", "snapshot_vpns",
                 "children")

    def __init__(self, space):
        self.uid = space.uid
        self.path = tuple(space.slot_path())
        self.state = space.state.value
        self.trap = space.trap
        self.trap_info = space.trap_info
        self.regs = dict(space.regs)
        self.home_node = space.home_node
        self.cur_node = space.cur_node
        self.insn_limit = space.insn_limit
        aspace = space.addrspace
        self.pages = {}
        for vpn in aspace.mapped_vpns():
            page = aspace.frame(vpn)
            self.pages[vpn] = PageImage(
                page.tag(), aspace.perm(vpn), bytes(page.data))
        self.dirty_tracking = aspace.tracks_dirty()
        self.dirty_page_count = (
            aspace.dirty_page_count() if self.dirty_tracking else None)
        snapshot = space.snapshot
        self.snapshot_vpns = (
            tuple(sorted(snapshot._frames)) if snapshot is not None else None)
        self.children = {
            num: SpaceImage(space.children[num])
            for num in sorted(space.children)
        }

    # -- traversal ---------------------------------------------------------

    def walk(self):
        """This image and all descendants, depth-first (space order)."""
        yield self
        for num in sorted(self.children):
            yield from self.children[num].walk()

    def find(self, uid):
        """The descendant image with the given uid, or None."""
        for image in self.walk():
            if image.uid == uid:
                return image
        return None

    @property
    def total_pages(self):
        return len(self.pages)

    @property
    def resident_bytes(self):
        return len(self.pages) * PAGE_SIZE

    # -- equality (the bit-identity oracle) --------------------------------

    def __eq__(self, other):
        if not isinstance(other, SpaceImage):
            return NotImplemented
        return (self.uid == other.uid and self.path == other.path
                and self.state == other.state and self.trap is other.trap
                and self.trap_info == other.trap_info
                and self.regs == other.regs
                and self.home_node == other.home_node
                and self.cur_node == other.cur_node
                and self.pages == other.pages
                and self.dirty_tracking == other.dirty_tracking
                and self.dirty_page_count == other.dirty_page_count
                and self.snapshot_vpns == other.snapshot_vpns
                and self.children == other.children)

    def __repr__(self):
        return (f"<SpaceImage {self.uid} {self.state} trap={self.trap.name} "
                f"pages={len(self.pages)} children={len(self.children)}>")


def _link_sort_key(link):
    """Deterministic ordering for link keys whose endpoints mix node ints
    and switch-name strings (plain sorted() would raise on the mix)."""
    return tuple((0, end, "") if isinstance(end, int) else (1, 0, str(end))
                 for end in link)


class MachineImage:
    """Frozen copy of a whole machine: space tree + devices + fabric."""

    __slots__ = ("root", "console", "debug", "links", "node_map",
                 "pages_fetched", "inflight")

    def __init__(self, machine):
        self.root = SpaceImage(machine.root)
        self.console = bytes(machine.console_output)
        self.debug = tuple(machine.debug_lines)
        transport = machine.transport
        self.links = {
            link: transport.links[link].as_dict()
            for link in sorted(transport.links, key=_link_sort_key)
        }
        self.node_map = dict(machine.node_map)
        self.pages_fetched = machine.pages_fetched
        #: node -> prefetch exchanges still in flight at capture.
        self.inflight = {
            node: len(transport.inflight[node])
            for node in sorted(transport.inflight)
            if transport.inflight[node]
        }

    def spaces(self):
        """All space images, depth-first from the root."""
        return list(self.root.walk())

    def find(self, uid):
        return self.root.find(uid)

    def __eq__(self, other):
        if not isinstance(other, MachineImage):
            return NotImplemented
        return (self.root == other.root and self.console == other.console
                and self.debug == other.debug and self.links == other.links
                and self.node_map == other.node_map
                and self.pages_fetched == other.pages_fetched
                and self.inflight == other.inflight)

    def __repr__(self):
        return (f"<MachineImage spaces={len(self.spaces())} "
                f"links={len(self.links)}>")


def freeze_machine(machine):
    """Capture a :class:`MachineImage` of ``machine`` right now.

    Safe mid-run from a trace ``on_close`` observer: the engine's baton
    protocol guarantees exactly one runnable guest, so the tree is
    quiescent while the observer holds the baton.
    """
    if machine.root is None:
        raise ValueError("machine has not run; nothing to freeze")
    return MachineImage(machine)


# -- page-granular diff ----------------------------------------------------

#: Diff statuses, in display order.
ADDED = "added"
REMOVED = "removed"
CHANGED = "changed"
RETAGGED = "retagged"       # fresh frame, byte-identical content


class PageDelta:
    """One page's difference between two images."""

    __slots__ = ("vpn", "status", "bytes_changed")

    def __init__(self, vpn, status, bytes_changed=0):
        self.vpn = vpn
        self.status = status
        self.bytes_changed = bytes_changed

    def __repr__(self):
        extra = (f" bytes={self.bytes_changed}"
                 if self.status == CHANGED else "")
        return f"<PageDelta vpn={self.vpn:#x} {self.status}{extra}>"


def diff_pages(pages_a, pages_b):
    """Page-granular diff of two ``vpn -> PageImage`` tables.

    Returns ``PageDelta`` entries sorted by vpn.  Tag-equal pages are
    skipped without reading bytes — a ``(serial, generation)`` pair
    names immutable content, the same soundness argument the merge
    engine and the cluster page cache rest on.  Tag-mismatched pairs are
    byte-compared in stacked ``(N, 4096)`` batches; byte-identical pairs
    surface as :data:`RETAGGED` (a rewrite that restored the old
    content — invisible to semantics, visible to provenance).
    """
    deltas = []
    pending = []            # (vpn, bytes_a, bytes_b) awaiting byte compare
    for vpn in sorted(set(pages_a) | set(pages_b)):
        a, b = pages_a.get(vpn), pages_b.get(vpn)
        if a is None:
            deltas.append(PageDelta(vpn, ADDED, PAGE_SIZE))
        elif b is None:
            deltas.append(PageDelta(vpn, REMOVED, PAGE_SIZE))
        elif a.tag != b.tag:
            pending.append((vpn, a.data, b.data))
    for base in range(0, len(pending), BATCH_PAGES):
        chunk = pending[base:base + BATCH_PAGES]
        a_mat = np.stack([np.frombuffer(item[1], dtype=np.uint8)
                          for item in chunk])
        b_mat = np.stack([np.frombuffer(item[2], dtype=np.uint8)
                          for item in chunk])
        diff = a_mat != b_mat
        counts = diff.sum(axis=1)
        for row in np.flatnonzero(counts):
            deltas.append(PageDelta(chunk[row][0], CHANGED,
                                    int(counts[row])))
        for row in np.flatnonzero(counts == 0):
            deltas.append(PageDelta(chunk[row][0], RETAGGED, 0))
    deltas.sort(key=lambda d: d.vpn)
    return deltas


class SpaceDiff:
    """Difference between two space images (one tree level).

    ``pages`` holds the :func:`diff_pages` result; ``regs`` the register
    names whose values differ; ``children`` recurses (keyed by child
    number, present when either side has the child).
    """

    __slots__ = ("a", "b", "pages", "regs", "state_changed", "children")

    def __init__(self, image_a, image_b):
        self.a = image_a
        self.b = image_b
        self.pages = diff_pages(image_a.pages, image_b.pages)
        self.regs = sorted(
            name for name in set(image_a.regs) | set(image_b.regs)
            if image_a.regs.get(name) != image_b.regs.get(name))
        self.state_changed = (image_a.state != image_b.state
                              or image_a.trap is not image_b.trap)
        self.children = {}
        for num in sorted(set(image_a.children) | set(image_b.children)):
            child_a = image_a.children.get(num)
            child_b = image_b.children.get(num)
            if child_a is None or child_b is None:
                self.children[num] = (child_a, child_b)   # added/removed
            else:
                child = SpaceDiff(child_a, child_b)
                if not child.identical:
                    self.children[num] = child

    @property
    def identical(self):
        return (not self.pages and not self.regs and not self.state_changed
                and not self.children)

    def changed_vpns(self):
        """Vpns whose *content* differs at this level (excludes
        :data:`RETAGGED` rewrites)."""
        return [d.vpn for d in self.pages if d.status != RETAGGED]

    def __repr__(self):
        return (f"<SpaceDiff {self.a.uid}/{self.b.uid} "
                f"pages={len(self.pages)} regs={self.regs} "
                f"children={sorted(self.children)}>")


# -- trace comparison (the replay-exactness gate) --------------------------

def compare_traces(a, b):
    """First divergence between two traces, or None if bit-identical.

    Compares segment tuples ``(uid, node, cycles, label)`` by id, then
    edges, transfers, and decision records.  ``goto`` runs this over
    (original, replay) and refuses to present state from a divergent
    replay — determinism is the debugger's correctness argument, so a
    divergence is an error, not a warning.
    """
    if len(a.segments) != len(b.segments):
        return (f"segment count differs: {len(a.segments)} != "
                f"{len(b.segments)}")
    for seg_a, seg_b in zip(a.segments, b.segments):
        if (seg_a.uid, seg_a.node, seg_a.cycles, seg_a.label) != (
                seg_b.uid, seg_b.node, seg_b.cycles, seg_b.label):
            return (f"segment #{seg_a.id} differs: "
                    f"{seg_a!r} != {seg_b!r}")
    if a.edges != b.edges:
        for i, (ea, eb) in enumerate(zip(a.edges, b.edges)):
            if ea != eb:
                return f"edge #{i} differs: {ea} != {eb}"
        return f"edge count differs: {len(a.edges)} != {len(b.edges)}"
    if a.transfers != b.transfers:
        for i, (ta, tb) in enumerate(zip(a.transfers, b.transfers)):
            if ta != tb:
                return f"transfer #{i} differs: {ta} != {tb}"
        return (f"transfer count differs: {len(a.transfers)} != "
                f"{len(b.transfers)}")
    if a.decisions != b.decisions:
        return "control-plane decision records differ"
    return None
