"""Deterministic text rendering of inspector views.

Shared by the ``python -m repro.debug`` CLI and by examples that print
a post-mortem inline (``examples/fault_tolerance.py``).  Every renderer
is a pure function of its inputs with fully deterministic iteration
order, so same-seed reruns print byte-identical reports — asserted by
the inspector test suite, and the property that lets CI archive the
output as a comparable artifact.
"""

from repro.debug.model import CHANGED, RETAGGED
from repro.mem.page import PAGE_SIZE


def _fmt_regs(regs):
    """Registers worth showing: entry/args always, others when nonzero."""
    parts = []
    entry = regs.get("entry")
    if callable(entry):
        parts.append(f"entry={getattr(entry, '__name__', repr(entry))}")
    elif entry:
        parts.append(f"entry={entry!r}")
    args = regs.get("args")
    if args:
        parts.append(f"args={args!r}")
    for name in ("status", "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"):
        value = regs.get(name, 0)
        if value:
            parts.append(f"{name}={value!r}")
    return " ".join(parts)


def _fmt_path(path):
    return "/" + "/".join(f"{num:#x}" if num >= 0x100 else str(num)
                          for num in path) if path else "/"


def format_space(image, pages=False, indent=""):
    """One space image (and children) as an indented tree."""
    lines = []
    dirty = (f" dirty={image.dirty_page_count}"
             if image.dirty_page_count is not None else "")
    snap = (f" snap={len(image.snapshot_vpns)}p"
            if image.snapshot_vpns is not None else "")
    trap = f" trap={image.trap.name}" if image.trap.name != "NONE" else ""
    info = f" ({image.trap_info})" if image.trap_info else ""
    lines.append(
        f"{indent}{image.uid} {_fmt_path(image.path)} [{image.state}]"
        f"{trap}{info} node={image.cur_node}/{image.home_node} "
        f"pages={image.total_pages}{dirty}{snap}")
    regs = _fmt_regs(image.regs)
    if regs:
        lines.append(f"{indent}  regs: {regs}")
    if pages:
        for vpn, page in sorted(image.pages.items()):
            serial, generation = page.tag
            lines.append(
                f"{indent}  page {vpn:#07x}: tag=({serial}, {generation}) "
                f"perm={page.perm:#o}")
    for num in sorted(image.children):
        lines.append(f"{indent}  child {num:#x}:" if num >= 0x100
                     else f"{indent}  child {num}:")
        lines.extend(format_space(image.children[num], pages=pages,
                                  indent=indent + "    "))
    return lines


def format_tree(machine_image, pages=False):
    return format_space(machine_image.root, pages=pages)


def format_summary(insp):
    """Whole-run overview: result, schedule, traps, checkpoints, wire."""
    image = insp.image
    root = image.root
    lines = []
    verdict = ("trapped" if root.trap.is_fault() else
               root.trap.name.lower())
    info = f" ({root.trap_info})" if root.trap_info else ""
    lines.append(f"run: {verdict} {root.trap.name}{info} "
                 f"status={root.regs.get('status')!r} "
                 f"r0={root.regs.get('r0')!r}")
    lines.append(
        f"schedule: makespan={insp.timeline.makespan} cycles on "
        f"{insp.ncpus} CPU(s)/node; {len(insp.trace.segments)} segments, "
        f"{len(image.spaces())} space(s)")
    traps = insp.traps()
    lines.append(f"traps: {len(traps)}")
    for event in traps:
        info = f"  {event.trap_info}" if event.trap_info else ""
        lines.append(f"  cycle {event.cycle:>12}  {event.uid:<4} "
                     f"{event.label:<10} seg=#{event.seg_id}{info}")
    checkpoints = insp.checkpoints()
    lines.append(f"checkpoints: {len(checkpoints)} freezer(s)")
    for owner_uid, freezer_uid, tags in checkpoints:
        lines.append(f"  {owner_uid} -> {freezer_uid}: "
                     f"{' '.join(tags) if tags else '(empty)'}")
    if image.links:
        lines.append(f"links: {len(image.links)}")
        for link, stats in image.links.items():
            retx = (f" retx={stats['retx_msgs']} "
                    f"dropped={stats['dropped_msgs']}"
                    if stats["retx_msgs"] or stats["dropped_msgs"] else "")
            lines.append(
                f"  {link}: {stats['messages']} msgs "
                f"{stats['bytes_sent']} B sent "
                f"{stats['pages']} pages{retx}")
    if image.console:
        lines.append("console:")
        for text in image.console.decode(errors="replace").splitlines():
            lines.append(f"  {text}")
    if image.debug:
        lines.append("debug log:")
        for text in image.debug:
            lines.append(f"  {text}")
    return lines


def format_backtrace(insp, uid, limit=16):
    lines = [f"backtrace of {uid} (newest first):"]
    for frame in insp.backtrace(uid, limit=limit):
        window = (f"[{frame.start}..{frame.finish}]"
                  if frame.start is not None else "[unscheduled]")
        label = frame.label or "run"
        lines.append(f"  #{frame.seg_id:<5} {label:<12} node={frame.node} "
                     f"cycles={frame.cycles:<10} {window}")
        for src_uid, src_seg, kind in frame.in_edges:
            via = f" via {kind}" if kind else ""
            lines.append(f"      <- {src_uid} #{src_seg}{via}")
    return lines


def format_links(insp, at=None):
    lines = []
    if at is None:
        lines.append("final link ledgers:")
        for link, stats in insp.link_ledgers().items():
            lines.append(f"  {link} [{stats['cls']}]:")
            lines.append(
                f"    messages={stats['messages']} "
                f"sent={stats['bytes_sent']}B "
                f"received={stats['bytes_received']}B "
                f"pages={stats['pages']}")
            lines.append(
                f"    retx={stats['retx_msgs']} "
                f"dropped={stats['dropped_msgs']} "
                f"dup={stats['dup_msgs']} "
                f"reorder={stats['reorder_msgs']}")
            by_type = " ".join(f"{name}={count}" for name, count in
                               sorted(stats["by_type"].items()))
            if by_type:
                lines.append(f"    by type: {by_type}")
        return lines
    state = insp.links_at(at)
    lines.append(f"wire state at cycle {at}:")
    lines.append(f"  in flight: {len(state['in_flight'])} transfer(s)")
    for t in state["in_flight"]:
        phase = "serializing" if t.occupies_at(at) else "in transit"
        lines.append(
            f"    {t.link} seg#{t.src} -> seg#{t.dst} kind={t.kind} "
            f"[{t.start}..{t.end}..{t.arrival}) {phase}")
    lines.append("  link occupancy so far:")
    for link in sorted(state["link_busy"], key=repr):
        lines.append(f"    {link}: {state['link_busy'][link]} cycles")
    kinds = state["kinds_started"]
    if kinds:
        started = " ".join(f"{kind}={count}" for kind, count in
                           sorted(kinds.items(), key=lambda kv: str(kv[0])))
        lines.append(f"  transfers started: {started}")
    lines.append(f"  segments running: "
                 f"{' '.join(f'#{s}' for s in state['running']) or '(none)'}")
    return lines


def _diff_lines(diff, indent=""):
    lines = []
    label = f"{diff.a.uid} -> {diff.b.uid}"
    changed = sum(1 for d in diff.pages if d.status != RETAGGED)
    lines.append(f"{indent}{label}: {changed} page(s) differ")
    if diff.state_changed:
        lines.append(
            f"{indent}  state: {diff.a.state}/{diff.a.trap.name} -> "
            f"{diff.b.state}/{diff.b.trap.name}")
    for name in diff.regs:
        lines.append(f"{indent}  reg {name}: {diff.a.regs.get(name)!r} -> "
                     f"{diff.b.regs.get(name)!r}")
    for delta in diff.pages:
        detail = (f" ({delta.bytes_changed}/{PAGE_SIZE} bytes)"
                  if delta.status == CHANGED else "")
        lines.append(
            f"{indent}  page {delta.vpn:#07x}: {delta.status}{detail}")
    for num, child in sorted(diff.children.items()):
        slot = f"{num:#x}" if num >= 0x100 else str(num)
        if isinstance(child, tuple):
            side_a, side_b = child
            status = "added" if side_a is None else "removed"
            lines.append(f"{indent}  child {slot}: {status}")
        else:
            lines.append(f"{indent}  child {slot}:")
            lines.extend(_diff_lines(child, indent + "    "))
    return lines


def format_diff(diff, tag_a, tag_b):
    if diff.identical:
        return [f"checkpoints {tag_a!r} and {tag_b!r} are identical"]
    return [f"diff {tag_a!r} -> {tag_b!r}:"] + _diff_lines(diff, "  ")


def format_goto(result, pages=False):
    lines = [
        f"state at cycle {result.cycle} "
        f"({len(result.segments)} segment(s) complete; replay verified "
        f"bit-identical to the original trace):"
    ]
    lines.extend(format_space(result.image.root, pages=pages, indent="  "))
    trapped = result.trapped()
    if trapped:
        lines.append("trapped at this point:")
        for image in trapped:
            lines.append(f"  {image.uid}: {image.trap.name} "
                         f"{image.trap_info}")
    return lines
