"""Cost model: how many virtual cycles each simulated event costs.

One cycle corresponds loosely to one instruction on the paper's 2.2 GHz
Opteron.  The absolute values are calibrated so the *first-order ratios*
the paper's evaluation depends on hold:

* a kernel crossing costs thousands of cycles, not tens;
* copying/diffing a 4 KiB page costs on the order of a thousand cycles;
* a gigabit-Ethernet page transfer costs tens of thousands of cycles and
  a message round trip hundreds of thousands (so moving a 1024x1024
  matrix across nodes dwarfs a few rendezvous);
* baseline thread operations are cheap but suffer a serialization
  penalty growing with core count (the Linux runqueue/futex contention
  the paper cites for md5's poor Linux scaling [54]).
"""

from dataclasses import dataclass, field, replace


@dataclass
class CostModel:
    """Tunable virtual-cycle costs for every simulated event."""

    # ---- CPUs ----------------------------------------------------------
    #: CPUs per node (the paper's PC has 12 cores; cluster nodes have 1).
    ncpus: int = 12

    # ---- Determinator kernel ------------------------------------------
    #: Trap + kernel entry/exit + context switch for one syscall.
    syscall: int = 3000
    #: Establish one COW page mapping (Copy/Snap share a frame).
    page_map: int = 120
    #: Break copy-on-write: allocate + copy one 4 KiB frame.
    page_cow: int = 1800
    #: Demand-zero fill one frame.
    page_zero: int = 700
    #: Inspect one page-table entry during Merge (fast skip path,
    #: tracking disabled).
    page_scan: int = 25
    #: Inspect one dirty-ledger entry during Snap/Merge (tracking
    #: enabled; a ledger walk touches only written pages, and each
    #: entry is a cache-hot word rather than a PTE hierarchy probe).
    page_track: int = 6
    #: Fixed dispatch overhead of one stacked (N, 4096) batched diff
    #: (gather + one vectorized compare, amortized across its pages).
    batch_diff: int = 900
    #: Byte-diff one page pair during Merge.
    page_diff: int = 1400
    #: Adopt a whole child frame during Merge (parent unchanged).
    page_adopt: int = 200
    #: Per byte actually copied by Merge.
    byte_merge: int = 1
    #: Create a fresh space (allocate kernel structures).
    space_create: int = 5000
    #: Fixed overhead of resuming a space after an instruction-limit trap
    #: (the ReVirt-style performance-counter + debug-trace dance, §5).
    limit_resume: int = 2500
    #: Pages of program image (text, data, runtime) whose mappings every
    #: thread fork copies/snapshots beyond the workload's own data —
    #: the fixed per-interaction cost that makes fine-grained parallelism
    #: expensive under VM-based determinism (§6.2).
    fork_image_pages: int = 400

    # ---- Baseline ("Linux"/pthreads) simulator -------------------------
    #: pthread_create / clone().
    thread_create: int = 14000
    #: pthread_join of a finished thread.
    thread_join: int = 5000
    #: Uncontended lock/unlock or barrier arrival.
    lock_op: int = 250
    #: Serialized cost per create/join/contended-futex, *per active core*:
    #: models the thread-system scaling bottleneck the paper suspects [54].
    runqueue_penalty: int = 1100
    #: Relative timing jitter applied to baseline segments (schedules on
    #: real hardware are never exactly repeatable).
    jitter: float = 0.02
    #: Compute dilation per additional active core for allocation-heavy
    #: baseline code: shared-namespace (heap/futex) contention in the
    #: Linux thread system, the effect §2.4 and [14]/[54] describe and
    #: the paper suspects behind md5's poor Linux scaling.  Determinator
    #: threads have private heaps and pay nothing.
    malloc_contention: float = 0.13
    #: Seed for the baseline's nondeterministic schedule.
    seed: int = 2010

    # ---- Cluster network (raw Ethernet, §3.3) --------------------------
    #: One-way message latency in cycles (~27 us at 2.2 GHz — a switched
    #: GbE segment as in the paper's QEMU cluster).
    net_latency: int = 60_000
    #: Cycles per payload byte (~1 Gb/s at 2.2 GHz).
    net_byte: float = 18.0
    #: Fixed per-message framing/handling cost.
    net_msg: int = 9000
    #: Extra per-message cost when TCP-like round-trip timing and
    #: retransmission framing is enabled (§6.3 measures <2% impact).
    tcp_extra: int = 1200
    #: Migrate a space: register state + address-space summary (§3.3).
    migrate_base: int = 40_000
    #: Maximum pages coalesced into one PAGE_BATCH scatter/gather
    #: message (cluster transport).  1 reproduces the seed's
    #: one-message-per-page protocol; larger values amortize the
    #: per-message latency and framing across the batch.
    msg_batch: int = 32
    #: Per-page scatter/gather header bytes inside a PAGE_BATCH.
    page_hdr: int = 16
    #: Payload bytes of a control message (PAGE_REQ/ACK header; a
    #: PAGE_REQ additionally carries 8 bytes per requested page).
    msg_ctrl: int = 64
    #: Payload bytes of a MIGRATE message: register file plus the
    #: address-space summary that lets the target demand-fault the rest.
    migrate_bytes: int = 512
    #: Default depth of each node's async prefetch queue: how many
    #: predicted-next frames may be in flight (issued but not yet
    #: demanded) per node.  0 reproduces the stop-and-wait protocol —
    #: every page crosses only inside a demand round trip.  A
    #: ``Machine(prefetch_depth=...)`` argument overrides this.
    prefetch_depth: int = 0
    #: Encode cost of wire compression, in cycles per *raw* payload
    #: byte scanned at the sending node (zero-run RLE is a single
    #: sequential pass).  Charged as pipeline latency on the transfer,
    #: never as link occupancy — the codec runs beside the NIC, not on
    #: the wire.
    comp_encode_byte: float = 1.0
    #: Decode cost, in cycles per *compressed* payload byte expanded at
    #: the receiving node (zero pages decode for free: a mapping to the
    #: shared zero frame, not a memset).
    comp_decode_byte: float = 0.5
    #: Cycles a sending endpoint waits before retransmitting a hop copy
    #: the deterministic loss schedule dropped (``Machine(loss=...)``):
    #: ~4x the one-way latency, a conventional link-layer timer.  The
    #: wait is charged to the stalling exchange as a ``kind="retx"``
    #: trace link edge, anchored at the exchange's schedule segments.
    retx_timeout: int = 240_000
    #: Maximum retransmissions per hop copy before the transport
    #: declares the link dead and raises NetworkLossError.
    retx_limit: int = 8
    #: Cycles one control-plane decision pass costs the deciding space
    #: (``Machine(control=...)``): the controller reads the telemetry
    #: window and updates its knobs at a quantum boundary.  Default 0 —
    #: the controller is modelled as running beside the kernel on the
    #: management plane, off the guest's critical path; raise it to
    #: charge decisions to the rendezvousing space instead.
    ctrl_decide: int = 0

    # ---- Misc -----------------------------------------------------------
    extras: dict = field(default_factory=dict)

    def with_(self, **kwargs):
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def page_transfer(self, npages, tcp=False):
        """Cycles to ship ``npages`` demand-fetched pages, one message each."""
        per_msg = self.net_msg + (self.tcp_extra if tcp else 0)
        return int(npages * (4096 * self.net_byte + per_msg))

    def message(self, nbytes, tcp=False):
        """Cycles consumed on the wire by one message of ``nbytes``."""
        return self.link_message(nbytes, tcp=tcp)

    def link_message(self, nbytes, byte_factor=1.0, tcp=False):
        """Cycles one message of ``nbytes`` occupies a fabric link.

        ``byte_factor`` scales the per-byte cost for the link's
        bandwidth class (see :class:`repro.cluster.topology.LinkClass`):
        1.0 is a full-bandwidth edge link, >1 an oversubscribed shared
        link.  Framing (``net_msg``/``tcp_extra``) is paid per hop —
        every switch handles the message again.
        """
        extra = self.tcp_extra if tcp else 0
        return int(self.net_msg + extra + nbytes * self.net_byte * byte_factor)


#: Default model used by tests and examples.
DEFAULT = CostModel()
