"""Deterministic list scheduling of a trace onto CPUs.

Given the segment DAG recorded in a :class:`~repro.timing.trace.Trace`,
compute the makespan achievable with a fixed number of CPUs per node.
Greedy list scheduling (ready segments run FIFO by segment id on the
first free CPU of their node) — the same policy a work-conserving kernel
scheduler approximates — with fully deterministic tie-breaking.

Latency on an edge models network transit: the destination becomes ready
``latency`` cycles after the source finishes, occupying no CPU.

Link edges (:meth:`repro.timing.trace.Trace.link_edge`) additionally
occupy a network channel: a transfer must win its link, serialize for
``busy`` cycles (overlapping transfers on the same link contend, in
deterministic source-finish order), then transit ``latency`` cycles.
Per-link occupancy totals are reported on the result.

Two engines implement the identical policy behind the ``engine=`` seam:

* ``"event"`` (default) — the discrete-event core in
  :mod:`repro.timing.event_core`: compiled CSR adjacency, packed-int
  event heap, interned link/class/kind statistics.  O(log n) per event
  with no per-event tuple/dict churn; this is what makes 64-1024-node
  fat-tree sweeps affordable.
* ``"list"`` — the original list scheduler below, kept verbatim as the
  oracle.  The two are bit-identical on every trace (the equivalence
  suite in ``tests/timing/test_event_core.py`` and the simcore
  ablation enforce this), so either may regenerate any committed
  baseline.

``REPRO_SCHED_ENGINE`` in the environment overrides the default for a
whole process (CI's ablation uses it to run the oracle side).

A link transfer becomes eligible when its *source* segment finishes —
which may be long before the destination's program-order predecessor
does.  An async prefetch anchored at an early segment therefore
overlaps its serialization with CPU busy instead of serializing with
it; only the part of the transfer that outlives the compute it hides
behind stalls the destination.  That residue is reported per transfer
kind in :attr:`ScheduleResult.stall_cycles` — the demand-stall metric
the prefetch ablation gates.
"""

import heapq
import os
from collections import defaultdict

from repro.timing.event_core import run_event_schedule


class ScheduleResult:
    """Outcome of scheduling a trace.

    ``start``/``finish`` are exposed as mappings (segment id -> time)
    but materialized lazily: the event engine hands over dense
    per-segment time arrays, and the dict form is only built if a
    caller actually indexes into it.  High-node-count sweeps that read
    just ``makespan``/``stall_cycles`` never pay for two dicts of every
    segment's timestamps.
    """

    __slots__ = ("makespan", "busy", "_start", "_finish", "cpu_count",
                 "link_busy", "class_busy", "stall_cycles")

    def __init__(self, makespan, busy, start, finish, cpu_count,
                 link_busy=None, class_busy=None, stall_cycles=None):
        #: Total virtual time from first segment start to last finish.
        self.makespan = makespan
        #: Total CPU-busy cycles (sum of scheduled segment durations).
        self.busy = busy
        # Dicts (legacy engine) or dense per-segment lists (event
        # engine), normalized on first access via the properties below.
        self._start = start
        self._finish = finish
        #: Total CPUs across all nodes.
        self.cpu_count = cpu_count
        #: link -> serialization cycles the link spent occupied.
        self.link_busy = link_busy or {}
        #: link-class name -> total serialization cycles over all links
        #: of that class (None collects untagged edges).
        self.class_busy = class_busy or {}
        #: transfer kind ("fetch", "prefetch", "migrate", ...) -> cycles
        #: destinations actually *waited* on transfers of that kind
        #: beyond their program-order readiness.  A fully overlapped
        #: prefetch contributes zero here even though it occupied its
        #: links; a stop-and-wait demand round trip contributes its
        #: whole transfer.
        self.stall_cycles = stall_cycles or {}

    @property
    def start(self):
        """segment id -> start time (materialized on first access)."""
        if not isinstance(self._start, dict):
            self._start = dict(enumerate(self._start))
        return self._start

    @property
    def finish(self):
        """segment id -> finish time (materialized on first access)."""
        if not isinstance(self._finish, dict):
            self._finish = dict(enumerate(self._finish))
        return self._finish

    @property
    def utilization(self):
        """Fraction of CPU capacity kept busy over the makespan."""
        if self.makespan == 0:
            return 0.0
        return self.busy / (self.makespan * self.cpu_count)

    def __repr__(self):
        return (
            f"<ScheduleResult makespan={self.makespan} "
            f"utilization={self.utilization:.2%}>"
        )


#: Engines selectable through :func:`schedule`'s ``engine=`` seam.
ENGINES = ("event", "list")


def schedule(trace, ncpus=1, cpus_per_node=None, engine=None):
    """Compute the makespan of ``trace`` on the given CPU configuration.

    Parameters
    ----------
    trace:
        A finished :class:`~repro.timing.trace.Trace` (all segments closed).
    ncpus:
        CPUs available on every node not listed in ``cpus_per_node``.
    cpus_per_node:
        Optional dict node -> CPU count overriding ``ncpus``.
    engine:
        ``"event"`` (discrete-event core, the default) or ``"list"``
        (the original list scheduler, kept as the oracle).  ``None``
        takes ``REPRO_SCHED_ENGINE`` from the environment, else
        ``"event"``.  Both produce bit-identical results.

    Returns
    -------
    ScheduleResult
    """
    if engine is None:
        engine = os.environ.get("REPRO_SCHED_ENGINE", "event")
    if engine not in ENGINES:
        raise ValueError(f"unknown schedule engine {engine!r}; "
                         f"expected one of {ENGINES}")
    if engine == "event":
        if not trace.segments:
            return ScheduleResult(0, 0, {}, {}, max(1, ncpus))
        return ScheduleResult(*run_event_schedule(trace, ncpus, cpus_per_node))
    return _schedule_list(trace, ncpus, cpus_per_node)


def _schedule_list(trace, ncpus=1, cpus_per_node=None):
    """The original greedy list scheduler (the ``engine="list"`` oracle)."""
    segments = trace.segments
    if not segments:
        return ScheduleResult(0, 0, {}, {}, max(1, ncpus))

    npreds = [0] * len(segments)
    succs = defaultdict(list)
    for src, dst, latency in trace.edges:
        npreds[dst] += 1
        succs[src].append((dst, latency, None, 0, None, None))
    for src, dst, link, busy, latency, cls, kind in trace.transfers:
        npreds[dst] += 1
        succs[src].append((dst, latency, link, busy, cls, kind))
    link_free = {}      # link -> time the channel next becomes idle
    link_busy = {}      # link -> total serialization cycles
    class_busy = {}     # link-class name -> total serialization cycles
    stall_cycles = {}   # transfer kind -> cycles destinations waited

    cpus_per_node = cpus_per_node or {}

    def node_cpus(node):
        return cpus_per_node.get(node, ncpus)

    free = defaultdict(int)        # node -> free CPU count (lazy init)
    seen_nodes = set()
    ready = defaultdict(list)      # node -> heap of (seg_id)
    ready_at = [0] * len(segments)
    # Per destination: when it would be ready with an infinitely fast
    # network (program order + plain-edge latency), and the kind of the
    # latest-arriving link transfer.  Their gap is the transfer-induced
    # stall charged to that kind.
    ready_nonet = [0] * len(segments)
    link_ready = [0] * len(segments)
    link_kind = [None] * len(segments)
    start = {}
    finish = {}
    events = []                    # heap of (time, order, kind, payload)
    order = 0

    def ensure_node(node):
        if node not in seen_nodes:
            seen_nodes.add(node)
            free[node] = node_cpus(node)

    def make_ready(time, seg_id):
        seg = segments[seg_id]
        ensure_node(seg.node)
        heapq.heappush(ready[seg.node], seg_id)
        dispatch(time, seg.node)

    def dispatch(time, node):
        nonlocal order
        while free[node] > 0 and ready[node]:
            seg_id = heapq.heappop(ready[node])
            free[node] -= 1
            seg = segments[seg_id]
            start[seg_id] = time
            finish_time = time + seg.cycles
            order += 1
            heapq.heappush(events, (finish_time, order, "finish", seg_id))

    roots = [i for i, n in enumerate(npreds) if n == 0]
    for seg_id in roots:
        make_ready(0, seg_id)

    now = 0
    busy = 0
    while events:
        now, _, kind, seg_id = heapq.heappop(events)
        if kind == "arrive":
            make_ready(now, seg_id)
            continue
        # finish
        seg = segments[seg_id]
        finish[seg_id] = now
        busy += seg.cycles
        free[seg.node] += 1
        for dst, latency, link, xfer_busy, cls, kind in succs[seg_id]:
            npreds[dst] -= 1
            if link is None:
                arrival = now + latency
                ready_nonet[dst] = max(ready_nonet[dst], arrival)
            else:
                # The transfer waits for the channel, serializes on it,
                # then transits; contention order follows the (already
                # deterministic) source-finish order.
                xfer_start = max(now, link_free.get(link, 0))
                link_free[link] = xfer_start + xfer_busy
                link_busy[link] = link_busy.get(link, 0) + xfer_busy
                class_busy[cls] = class_busy.get(cls, 0) + xfer_busy
                arrival = xfer_start + xfer_busy + latency
                # With an infinitely fast network the data would be
                # ready the instant its producer finished.
                ready_nonet[dst] = max(ready_nonet[dst], now)
                if arrival >= link_ready[dst]:
                    link_ready[dst] = arrival
                    link_kind[dst] = kind or cls or "link"
            ready_at[dst] = max(ready_at[dst], arrival)
            if npreds[dst] == 0:
                stall = ready_at[dst] - ready_nonet[dst]
                if stall > 0 and link_kind[dst] is not None:
                    stall_cycles[link_kind[dst]] = (
                        stall_cycles.get(link_kind[dst], 0) + stall)
                if ready_at[dst] > now:
                    heapq.heappush(
                        events, (ready_at[dst], 10**9 + dst, "arrive", dst)
                    )
                else:
                    make_ready(now, dst)
        dispatch(now, seg.node)

    unscheduled = [i for i in range(len(segments)) if i not in finish]
    if unscheduled:
        raise ValueError(
            f"trace contains a cycle or dangling dependency; "
            f"{len(unscheduled)} segments never ran (first: {unscheduled[:3]})"
        )

    total_cpus = sum(free[node] for node in seen_nodes) or max(1, ncpus)
    return ScheduleResult(now, busy, start, finish, total_cpus, link_busy,
                          class_busy, stall_cycles)


def critical_path(trace):
    """Length of the longest path through the trace (infinite-CPU bound)."""
    result = schedule(trace, ncpus=10**9)
    return result.makespan
