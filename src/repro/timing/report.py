"""Analysis and reporting over recorded traces.

Turns a finished :class:`~repro.timing.trace.Trace` into the numbers a
systems paper quotes: per-context work breakdowns, parallelism profiles,
critical-path length, scaling curves, and a text Gantt chart for
eyeballing schedules (handy when checking that a dsched round or a make
schedule has the expected shape).
"""

from repro.timing.schedule import schedule


def work_breakdown(trace, top=None):
    """Per-context total cycles, descending.  ``top`` limits rows."""
    rows = sorted(trace.cycles_by_uid().items(), key=lambda kv: -kv[1])
    return rows[: top] if top else rows


def parallelism_profile(trace, ncpus, cpus_per_node=None, buckets=20):
    """Average number of busy CPUs over ``buckets`` equal time windows.

    The discrete parallelism curve: 1.0 everywhere means serial; flat at
    N means perfectly parallel on N CPUs.
    """
    result = schedule(trace, ncpus=ncpus, cpus_per_node=cpus_per_node)
    if result.makespan == 0:
        return [0.0] * buckets
    width = result.makespan / buckets
    busy = [0.0] * buckets
    for seg in trace.segments:
        if seg.cycles == 0 or seg.id not in result.start:
            continue
        start = result.start[seg.id]
        finish = result.finish[seg.id]
        first = int(start // width)
        last = min(buckets - 1, int((finish - 1e-9) // width))
        for bucket in range(first, last + 1):
            lo = max(start, bucket * width)
            hi = min(finish, (bucket + 1) * width)
            if hi > lo:
                busy[bucket] += (hi - lo) / width
    return busy


def scaling_curve(trace, cpu_counts):
    """{ncpus: makespan} for a recorded trace (Determinator traces are
    CPU-count independent, so one run yields the whole curve)."""
    return {ncpus: schedule(trace, ncpus=ncpus).makespan
            for ncpus in cpu_counts}


def speedup_curve(trace, cpu_counts):
    """{ncpus: speedup vs 1 CPU}."""
    curve = scaling_curve(trace, [1] + list(cpu_counts))
    base = curve[1]
    return {n: base / curve[n] for n in cpu_counts}


def gantt(trace, ncpus, width=72, max_rows=24, cpus_per_node=None):
    """Text Gantt chart of the schedule (one row per context)."""
    result = schedule(trace, ncpus=ncpus, cpus_per_node=cpus_per_node)
    if result.makespan == 0:
        return "(empty trace)"
    scale = width / result.makespan
    by_uid = {}
    for seg in trace.segments:
        if seg.cycles == 0 or seg.id not in result.start:
            continue
        by_uid.setdefault(seg.uid, []).append(seg)
    lines = [f"makespan {result.makespan:,} cycles on {ncpus} CPUs "
             f"(util {result.utilization:.0%})"]
    for uid in sorted(by_uid)[:max_rows]:
        row = [" "] * width
        for seg in by_uid[uid]:
            lo = int(result.start[seg.id] * scale)
            hi = max(lo + 1, int(result.finish[seg.id] * scale))
            for i in range(lo, min(hi, width)):
                row[i] = "#"
        lines.append(f"{str(uid):>8} |{''.join(row)}|")
    if len(by_uid) > max_rows:
        lines.append(f"... {len(by_uid) - max_rows} more contexts")
    return "\n".join(lines)


def critical_path_ratio(trace):
    """total work / critical path — the trace's inherent parallelism."""
    total = trace.total_cycles()
    cp = schedule(trace, ncpus=10**9).makespan
    return total / cp if cp else 0.0
