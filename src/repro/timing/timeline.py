"""Cycle-addressable replay of a scheduled trace (the debugger's clock).

:func:`repro.timing.schedule.schedule` answers *aggregate* questions —
makespan, per-link occupancy, stall attribution.  The time-travel
debugger needs *positional* ones: which segments were running at cycle
N, which messages were on which wire, how far along was each link's
retransmit ledger.  This module re-runs the **identical** greedy
list-scheduling policy (same tie-breaking, same link-contention order
as ``_schedule_list`` / the event core — the equivalence suite pins all
three) but keeps every per-transfer interval instead of folding it into
totals, so any cycle of the schedule can be queried after the fact.

A :class:`Timeline` is a pure function of the trace and the CPU
configuration: building it twice, or on a replayed trace, yields the
same intervals bit for bit — which is what lets ``repro.debug links
--at N`` describe a finished run's wire state at an arbitrary cycle
without having recorded anything during the run.
"""

import heapq
from collections import defaultdict


class TransferInterval:
    """One link transfer placed on the schedule's timeline.

    ``start`` is when the transfer won its link, ``end = start + busy``
    when it released it, ``arrival = end + latency`` when the payload
    reached the destination segment.  ``src``/``dst`` are segment ids.
    """

    __slots__ = ("src", "dst", "link", "start", "end", "arrival", "cls",
                 "kind")

    def __init__(self, src, dst, link, start, end, arrival, cls, kind):
        self.src = src
        self.dst = dst
        self.link = link
        self.start = start
        self.end = end
        self.arrival = arrival
        self.cls = cls
        self.kind = kind

    def occupies_at(self, cycle):
        """True while the transfer holds its link (serialization)."""
        return self.start <= cycle < self.end

    def in_flight_at(self, cycle):
        """True from winning the link until the payload arrives."""
        return self.start <= cycle < self.arrival

    def __repr__(self):
        return (f"<Transfer {self.src}->{self.dst} link={self.link} "
                f"[{self.start}, {self.end})+{self.arrival - self.end} "
                f"kind={self.kind}>")


class Timeline:
    """Per-segment and per-transfer intervals of one scheduled trace.

    Attributes
    ----------
    start / finish:
        segment id -> scheduled start / finish time.
    transfers:
        :class:`TransferInterval` list in link-grant order.
    makespan:
        Identical to ``schedule(trace, ...).makespan`` (asserted by the
        timeline test suite).
    """

    def __init__(self, trace, ncpus=1, cpus_per_node=None):
        self.trace = trace
        self.transfers = []
        self.start = {}
        self.finish = {}
        self.makespan = 0
        self._replay(trace, ncpus, cpus_per_node or {})

    # -- construction (the _schedule_list policy, instrumented) -----------

    def _replay(self, trace, ncpus, cpus_per_node):
        segments = trace.segments
        if not segments:
            return

        npreds = [0] * len(segments)
        succs = defaultdict(list)
        for src, dst, latency in trace.edges:
            npreds[dst] += 1
            succs[src].append((dst, latency, None, 0, None, None))
        for src, dst, link, busy, latency, cls, kind in trace.transfers:
            npreds[dst] += 1
            succs[src].append((dst, latency, link, busy, cls, kind))
        link_free = {}

        def node_cpus(node):
            return cpus_per_node.get(node, ncpus)

        free = defaultdict(int)
        seen_nodes = set()
        ready = defaultdict(list)
        ready_at = [0] * len(segments)
        start, finish = self.start, self.finish
        events = []
        order = 0

        def ensure_node(node):
            if node not in seen_nodes:
                seen_nodes.add(node)
                free[node] = node_cpus(node)

        def make_ready(time, seg_id):
            seg = segments[seg_id]
            ensure_node(seg.node)
            heapq.heappush(ready[seg.node], seg_id)
            dispatch(time, seg.node)

        def dispatch(time, node):
            nonlocal order
            while free[node] > 0 and ready[node]:
                seg_id = heapq.heappop(ready[node])
                free[node] -= 1
                start[seg_id] = time
                order += 1
                heapq.heappush(
                    events, (time + segments[seg_id].cycles, order,
                             "finish", seg_id))

        for seg_id in (i for i, n in enumerate(npreds) if n == 0):
            make_ready(0, seg_id)

        now = 0
        while events:
            now, _, kind, seg_id = heapq.heappop(events)
            if kind == "arrive":
                make_ready(now, seg_id)
                continue
            seg = segments[seg_id]
            finish[seg_id] = now
            free[seg.node] += 1
            for dst, latency, link, xfer_busy, cls, xkind in succs[seg_id]:
                npreds[dst] -= 1
                if link is None:
                    arrival = now + latency
                else:
                    xfer_start = max(now, link_free.get(link, 0))
                    xfer_end = xfer_start + xfer_busy
                    link_free[link] = xfer_end
                    arrival = xfer_end + latency
                    self.transfers.append(TransferInterval(
                        seg_id, dst, link, xfer_start, xfer_end, arrival,
                        cls, xkind))
                ready_at[dst] = max(ready_at[dst], arrival)
                if npreds[dst] == 0:
                    if ready_at[dst] > now:
                        heapq.heappush(
                            events,
                            (ready_at[dst], 10**9 + dst, "arrive", dst))
                    else:
                        make_ready(now, dst)
            dispatch(now, seg.node)

        unscheduled = len(segments) - len(finish)
        if unscheduled:
            raise ValueError(
                f"trace contains a cycle or dangling dependency; "
                f"{unscheduled} segments never ran")
        self.makespan = now

    # -- cycle-addressed queries -------------------------------------------

    def running_at(self, cycle):
        """Segments occupying a CPU at ``cycle`` (started, not finished),
        sorted by segment id."""
        return sorted(
            seg_id for seg_id, t0 in self.start.items()
            if t0 <= cycle < self.finish[seg_id])

    def in_flight_at(self, cycle):
        """Transfers on the wire at ``cycle`` (won their link, payload
        not yet arrived), in link-grant order."""
        return [t for t in self.transfers if t.in_flight_at(cycle)]

    def link_busy_until(self, cycle):
        """link -> serialization cycles accumulated up to ``cycle``
        (transfers in progress contribute their elapsed part)."""
        busy = {}
        for t in self.transfers:
            if t.start >= cycle:
                continue
            busy[t.link] = busy.get(t.link, 0) + min(t.end, cycle) - t.start
        return busy

    def kind_counts_until(self, cycle, kind=None):
        """transfer kind -> transfers whose serialization started by
        ``cycle`` (``kind=`` filters to one; the retransmit ledger's
        progress counter is ``kind="retx"``)."""
        counts = {}
        for t in self.transfers:
            if t.start < cycle and (kind is None or t.kind == kind):
                counts[t.kind] = counts.get(t.kind, 0) + 1
        return counts

    def segment_at(self, cycle):
        """The latest-finishing segment with ``finish <= cycle`` (ties:
        highest id), or None — the debugger's ``goto`` anchor."""
        best = None
        for seg_id, t1 in self.finish.items():
            if t1 <= cycle and (best is None or (t1, seg_id) > best):
                best = (t1, seg_id)
        return None if best is None else best[1]

    def closed_by(self, cycle):
        """Ids of all segments with ``finish <= cycle`` — the event set
        ``goto`` replays through (state *at* cycle N means: every
        segment the schedule completed by N has run)."""
        return {seg_id for seg_id, t1 in self.finish.items() if t1 <= cycle}

    def __repr__(self):
        return (f"<Timeline segments={len(self.finish)} "
                f"transfers={len(self.transfers)} "
                f"makespan={self.makespan}>")
