"""Execution traces: segments of work connected by precedence edges.

During logical execution every space (or baseline thread) owns one *open*
segment accumulating charged cycles.  At each synchronization event the
owner ``cut``s: the open segment closes and a new one opens, with an
implicit program-order edge between them.  Cross-space dependencies
(Put-starts-child, Get-waits-for-child, network messages) become explicit
edges, optionally carrying latency (network transit time that occupies no
CPU).

The resulting DAG is fed to :func:`repro.timing.schedule.schedule`.
"""


class Segment:
    """A contiguous chunk of one execution context's work."""

    __slots__ = ("id", "uid", "node", "cycles", "label", "closed")

    def __init__(self, seg_id, uid, node, label=""):
        self.id = seg_id
        self.uid = uid
        self.node = node
        self.cycles = 0
        self.label = label
        self.closed = False

    def __repr__(self):
        state = "closed" if self.closed else "open"
        return (
            f"<Segment #{self.id} uid={self.uid} node={self.node} "
            f"cycles={self.cycles} {state} {self.label!r}>"
        )


class Trace:
    """Recorder for segments and edges during a logical execution."""

    def __init__(self):
        self.segments = []
        #: list of (src_segment_id, dst_segment_id, latency_cycles)
        self.edges = []
        #: list of (src_id, dst_id, link, busy_cycles, latency_cycles,
        #: cls, kind) — precedence edges that additionally *occupy* a
        #: network link, tagged with the link's class name and the
        #: protocol purpose of the transfer (both may be None); see
        #: :meth:`link_edge`.  Kept separate from :attr:`edges` so plain
        #: consumers keep their 3-tuple shape.
        self.transfers = []
        #: list of (segment_id, node, policy, knob, old, new) — control-
        #: plane decision records, anchored at the deciding segment (the
        #: caller's rendezvous segment).  Annotations only: decisions act
        #: on the run through ordinary segments/edges (knob changes,
        #: migrations, timeout waits), so both schedule engines replay
        #: their *consequences* without reading this list.  Kept on the
        #: trace so a replayed trace carries its decision history.
        self.decisions = []
        self._open = {}   # uid -> Segment
        self._last = {}   # uid -> last closed Segment
        self._cum = {}    # uid -> cycles of all *closed* segments
        #: Optional observer called with each segment the moment it
        #: closes (``cut``/``sleep``/``end``), *after* the trace's own
        #: bookkeeping.  The time-travel debugger's ``goto`` uses it to
        #: capture machine state at a precise point of a replay; the
        #: observer must not mutate the trace (it would perturb the very
        #: replay it is observing).  ``None`` (the default) costs one
        #: attribute test per close.
        self.on_close = None

    # -- lifecycle ---------------------------------------------------------

    def begin(self, uid, node=0, label=""):
        """Open the first segment for execution context ``uid``."""
        if uid in self._open:
            raise ValueError(f"context {uid!r} already has an open segment")
        seg = Segment(len(self.segments), uid, node, label)
        self.segments.append(seg)
        self._open[uid] = seg
        return seg

    def charge(self, uid, cycles):
        """Add ``cycles`` of work to ``uid``'s open segment."""
        self._open[uid].cycles += cycles

    def cut(self, uid, label=""):
        """Close ``uid``'s open segment and open the next one.

        Returns ``(closed, opened)``.  A program-order edge is added.
        """
        closed = self._open.pop(uid)
        closed.closed = True
        self._last[uid] = closed
        self._cum[uid] = self._cum.get(uid, 0) + closed.cycles
        opened = Segment(len(self.segments), uid, closed.node, label)
        self.segments.append(opened)
        self._open[uid] = opened
        self.edges.append((closed.id, opened.id, 0))
        if self.on_close is not None:
            self.on_close(closed)
        return closed, opened

    def sleep(self, uid, cycles, label=""):
        """Close ``uid``'s open segment and open the next one ``cycles``
        of virtual time later, consuming no CPU in between.

        A timer wait, as opposed to :meth:`charge`, which models compute
        and occupies a CPU for its duration.  The serving dispatcher
        uses it to idle until the next trace arrival without starving
        the request children sharing its node.  Sleep does not advance
        :meth:`charged` (it is not work); callers pacing against the
        program clock must account for it separately.

        Returns ``(closed, opened)``.
        """
        closed = self._open.pop(uid)
        closed.closed = True
        self._last[uid] = closed
        self._cum[uid] = self._cum.get(uid, 0) + closed.cycles
        opened = Segment(len(self.segments), uid, closed.node, label)
        self.segments.append(opened)
        self._open[uid] = opened
        self.edges.append((closed.id, opened.id, cycles))
        if self.on_close is not None:
            self.on_close(closed)
        return closed, opened

    def end(self, uid):
        """Close ``uid``'s final segment (context exits)."""
        closed = self._open.pop(uid)
        closed.closed = True
        self._last[uid] = closed
        self._cum[uid] = self._cum.get(uid, 0) + closed.cycles
        if self.on_close is not None:
            self.on_close(closed)
        return closed

    # -- queries -------------------------------------------------------------

    def current(self, uid):
        """``uid``'s open segment (raises KeyError if none)."""
        return self._open[uid]

    def is_open(self, uid):
        """True if ``uid`` currently has an open segment."""
        return uid in self._open

    def last_closed(self, uid):
        """Most recently closed segment of ``uid`` (or None)."""
        return self._last.get(uid)

    def charged(self, uid):
        """Total cycles charged to ``uid`` so far (closed segments plus
        the open one) — the per-context *program clock* the control
        plane reads to estimate how much compute separated two simulated
        events.  A pure function of the simulation, so replays agree."""
        total = self._cum.get(uid, 0)
        open_seg = self._open.get(uid)
        if open_seg is not None:
            total += open_seg.cycles
        return total

    def decision(self, seg, node, policy, knob, old, new):
        """Record one control-plane decision anchored at segment ``seg``."""
        seg_id = seg.id if isinstance(seg, Segment) else seg
        record = (seg_id, node, policy, knob, old, new)
        self.decisions.append(record)
        return record

    def move_node(self, uid, node):
        """Record that ``uid`` now executes on ``node`` (space migration).

        Cuts the open segment so work before/after the move is scheduled
        on the right node, and returns ``(closed, opened)``.
        """
        closed, opened = self.cut(uid, label="migrate")
        opened.node = node
        return closed, opened

    def edge(self, src_seg, dst_seg, latency=0):
        """Add a precedence edge between two segments (objects or ids)."""
        src = src_seg.id if isinstance(src_seg, Segment) else src_seg
        dst = dst_seg.id if isinstance(dst_seg, Segment) else dst_seg
        self.edges.append((src, dst, latency))

    def link_edge(self, src_seg, dst_seg, link, busy=0, latency=0, cls=None,
                  kind=None):
        """Precedence edge that also serializes on a network link.

        ``link`` is any hashable channel identity (the cluster transport
        uses ``(endpoint, endpoint)`` pairs of fabric vertices — node
        ints and switch names).  The destination becomes ready only
        after the transfer wins the link (transfers on one link contend,
        FIFO in completion order of their sources), occupies it for
        ``busy`` cycles of serialization, and transits ``latency``
        further cycles.  Neither phase consumes a CPU.  ``cls`` tags the
        link's latency/bandwidth class so the scheduler can aggregate
        occupancy per class (rack vs oversubscribed core links);
        ``kind`` tags the transfer's protocol purpose ("migrate",
        "fetch", "prefetch", "retx", ...) so stall time can be
        attributed — notably the explicit stall edges a *late-arriving*
        prefetched page charges, versus a stop-and-wait demand round
        trip, versus the retransmission timeouts a lossy fabric's
        reliable link layer adds (``kind="retx"``).
        """
        src = src_seg.id if isinstance(src_seg, Segment) else src_seg
        dst = dst_seg.id if isinstance(dst_seg, Segment) else dst_seg
        self.transfers.append((src, dst, link, busy, latency, cls, kind))

    def finish(self):
        """Close any remaining open segments (end of simulation)."""
        for uid in list(self._open):
            self.end(uid)

    # -- statistics ---------------------------------------------------------

    def total_cycles(self):
        """Sum of all segment durations (serial work)."""
        return sum(seg.cycles for seg in self.segments)

    def cycles_by_uid(self):
        """Dict uid -> total cycles charged to that context."""
        out = {}
        for seg in self.segments:
            out[seg.uid] = out.get(seg.uid, 0) + seg.cycles
        return out

    def __repr__(self):
        return f"<Trace segments={len(self.segments)} edges={len(self.edges)}>"
