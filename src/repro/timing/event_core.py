"""Discrete-event scheduling core (the ``engine="event"`` seam).

A drop-in replacement for the list scheduler in
:mod:`repro.timing.schedule` that produces **bit-identical** results —
same ``makespan``, ``busy``, ``start``/``finish`` times, ``link_busy``,
``class_busy``, and ``stall_cycles`` on every trace — while doing
O(log n) work per event over a precompiled plan instead of per-call
graph rebuilds and per-event dict/tuple churn:

* the trace is *compiled* once into per-segment successor tuples
  (plain edges and link transfers kept separate, in the legacy
  scheduler's exact per-source order) with links, link classes,
  transfer kinds, and nodes interned to small integers;
* the single event heap holds packed integers ``(time, order, seg)``
  instead of 4-tuples, so a heap sift compares small ints, not tuples —
  the tie-breaking contract (finish events carry an incrementing
  dispatch order, arrivals order among themselves by destination id and
  after every same-time finish) is the legacy scheduler's, bit for bit;
* dispatch takes a fast path that never touches the per-node ready
  heap while it is empty (the common case on sparse cluster traces);
* per-link/per-class/per-kind statistics live in small dense arrays
  indexed by interned id and are allocated only for links/classes the
  trace actually uses — nothing is sized by node count or by the
  cartesian (link x class) space, so 1024-node fat-tree sweeps do not
  blow memory on bookkeeping.

The compiled plan is cached on the trace object keyed by the
``(segments, edges, transfers)`` lengths — traces are append-only, so
the lengths identify the DAG shape.  On a *finished* trace (no open
segments) the per-segment ``cycles``/``node`` arrays are frozen into
the plan too, since every mutation path (``charge``, ``cut``,
``move_node``, ``begin``) either requires an open segment or appends a
new one; replaying a finished trace then skips straight to the event
loop.  While segments are still open the two arrays are rebuilt per
call (one O(n) attribute sweep).
"""

from heapq import heappop, heappush

_PLAN_ATTR = "_event_core_plan"


class _CompiledTrace:
    """Interned successor-tuple form of a trace's DAG (shape-keyed)."""

    __slots__ = (
        "key", "npreds", "plain", "xfer",
        "links", "classes", "kinds",
        "arrive_base", "order_bits", "seg_bits",
        "seg_cycles", "cyc_shift", "seg_node", "node_keys", "busy_total",
    )


def _build_seg_arrays(plan, segments):
    """Per-segment cycles/node arrays with nodes interned in first-use
    order (the iteration order both engines visit segments in), plus the
    cycles pre-shifted into packed-event position and the total busy
    cycles (every segment runs exactly once, so the scheduled busy sum
    is a static property of the trace)."""
    nseg = len(segments)
    time_shift = plan.order_bits + plan.seg_bits
    seg_cycles = [0] * nseg
    cyc_shift = [0] * nseg
    seg_node = [0] * nseg
    node_ids = {}
    for i, seg in enumerate(segments):
        cycles = seg.cycles
        seg_cycles[i] = cycles
        cyc_shift[i] = cycles << time_shift
        node = seg.node
        ni = node_ids.get(node)
        if ni is None:
            ni = node_ids[node] = len(node_ids)
        seg_node[i] = ni
    plan.seg_cycles = seg_cycles
    plan.cyc_shift = cyc_shift
    plan.seg_node = seg_node
    plan.node_keys = list(node_ids)
    plan.busy_total = sum(seg_cycles)


def _compile(trace):
    """Build (or fetch) the successor plan + interning tables."""
    segments = trace.segments
    edges = trace.edges
    transfers = trace.transfers
    key = (len(segments), len(edges), len(transfers))
    plan = getattr(trace, _PLAN_ATTR, None)
    frozen = not getattr(trace, "_open", True)
    if plan is not None and plan.key == key:
        if plan.seg_cycles is None:
            _build_seg_arrays(plan, segments)
            if not frozen:
                arrays = (plan.seg_cycles, plan.cyc_shift, plan.seg_node,
                          plan.node_keys, plan.busy_total)
                plan.seg_cycles = plan.cyc_shift = None
                plan.seg_node = plan.node_keys = None
                return (plan,) + arrays
        return (plan, plan.seg_cycles, plan.cyc_shift, plan.seg_node,
                plan.node_keys, plan.busy_total)

    nseg = len(segments)
    plan = _CompiledTrace()
    plan.key = key
    npreds = [0] * nseg

    # Plain edges, grouped per source in list order (= the first part of
    # the legacy scheduler's succs order).
    plain = [()] * nseg
    acc = {}
    for src, dst, lat in edges:
        npreds[dst] += 1
        lst = acc.get(src)
        if lst is None:
            acc[src] = [(dst, lat)]
        else:
            lst.append((dst, lat))
    for src, lst in acc.items():
        plain[src] = tuple(lst)

    # Link transfers, grouped per source in list order (= the second
    # part of the legacy succs order), with link / class /
    # effective-kind identities interned to small ints and the
    # serialization + transit sum precomputed per transfer.
    xfer = [()] * nseg
    acc = {}
    link_ids = {}
    cls_ids = {}
    kind_ids = {}
    for src, dst, link, busy, lat, cls, kind in transfers:
        npreds[dst] += 1
        li = link_ids.get(link)
        if li is None:
            li = link_ids[link] = len(link_ids)
        ci = cls_ids.get(cls)
        if ci is None:
            ci = cls_ids[cls] = len(cls_ids)
        # The stall attribution label the legacy scheduler derives per
        # transfer: ``kind or cls or "link"``.
        eff = kind or cls or "link"
        ki = kind_ids.get(eff)
        if ki is None:
            ki = kind_ids[eff] = len(kind_ids)
        rec = (dst, li, busy, busy + lat, ci, ki)
        lst = acc.get(src)
        if lst is None:
            acc[src] = [rec]
        else:
            lst.append(rec)
    for src, lst in acc.items():
        xfer[src] = tuple(lst)

    plan.plain = plain
    plan.xfer = xfer
    plan.links = list(link_ids)
    plan.classes = list(cls_ids)
    plan.kinds = list(kind_ids)
    plan.npreds = npreds

    # Packed-event geometry.  Finish events use dispatch orders
    # 1..nseg; arrivals order after every same-time finish and among
    # themselves by destination id, so ``arrive_base + dst`` with
    # ``arrive_base > nseg`` reproduces the legacy ``10**9 + dst`` key
    # ordering exactly while keeping the packed ints narrow.
    plan.arrive_base = nseg + 1
    plan.order_bits = max(1, (2 * nseg + 1).bit_length())
    plan.seg_bits = max(1, (nseg - 1).bit_length() if nseg > 1 else 1)

    _build_seg_arrays(plan, segments)
    arrays = (plan.seg_cycles, plan.cyc_shift, plan.seg_node,
              plan.node_keys, plan.busy_total)
    if not frozen:
        # Open segments may still be charged or moved without changing
        # the shape key — don't freeze their arrays into the cache.
        plan.seg_cycles = plan.cyc_shift = None
        plan.seg_node = plan.node_keys = None
    try:
        setattr(trace, _PLAN_ATTR, plan)
    except AttributeError:
        pass  # slotted/frozen trace stand-ins simply recompile
    return (plan,) + arrays


def run_event_schedule(trace, ncpus=1, cpus_per_node=None):
    """Event-core scheduling of ``trace``; returns the raw result pieces
    ``(makespan, busy, start_times, finish_times, cpu_count, link_busy,
    class_busy, stall_cycles)`` with start/finish as dense per-segment
    lists (the caller wraps them lazily)."""
    nseg = len(trace.segments)
    (plan, seg_cycles, cyc_shift, seg_node,
     node_keys, busy_total) = _compile(trace)

    cpus_per_node = cpus_per_node or {}
    free = [cpus_per_node.get(node, ncpus) for node in node_keys]
    total_cpus = sum(free) or max(1, ncpus)

    npreds = plan.npreds[:]
    plain = plan.plain
    xfer = plan.xfer

    nlinks = len(plan.links)
    link_free = [0] * nlinks
    link_busy = [0] * nlinks
    cls_busy = [0] * len(plan.classes)
    kind_stall = [0] * len(plan.kinds)

    ready = [[] for _ in node_keys]
    ready_at = [0] * nseg
    ready_nonet = [0] * nseg
    link_ready = [0] * nseg
    link_kind = [-1] * nseg
    start_t = [0] * nseg
    finish_t = [-1] * nseg

    push = heappush
    pop = heappop
    events = []
    seg_bits = plan.seg_bits
    time_shift = plan.order_bits + seg_bits
    seg_mask = (1 << seg_bits) - 1
    low_mask = (1 << time_shift) - 1
    arrive_shift = plan.arrive_base << seg_bits
    order_step = 1 << seg_bits
    # Dispatch order lives pre-shifted into packed-event position; the
    # counter doubles as the dispatched-segment count (see the cycle
    # check at the bottom).
    order_packed = 0

    # Roots: make_ready(0, seg) per root in id order, each immediately
    # draining its node's ready queue — exactly the legacy sequence,
    # which fixes the dispatch-order counter.
    for sid in range(nseg):
        if npreds[sid]:
            continue
        node = seg_node[sid]
        rq = ready[node]
        if free[node] > 0 and not rq:
            free[node] -= 1
            order_packed += order_step
            push(events, cyc_shift[sid] + order_packed + sid)
        else:
            push(rq, sid)
            while free[node] > 0 and rq:
                run = pop(rq)
                free[node] -= 1
                order_packed += order_step
                push(events, cyc_shift[run] + order_packed + run)

    now = 0
    while events:
        packed = pop(events)
        sid = packed & seg_mask
        low = packed & low_mask
        now = packed >> time_shift
        if low - sid >= arrive_shift:
            # Arrival: the destination becomes ready now.
            nowsh = packed - low
            node = seg_node[sid]
            rq = ready[node]
            if free[node] > 0 and not rq:
                free[node] -= 1
                start_t[sid] = now
                order_packed += order_step
                push(events, nowsh + cyc_shift[sid] + order_packed + sid)
            else:
                push(rq, sid)
                while free[node] > 0 and rq:
                    run = pop(rq)
                    free[node] -= 1
                    start_t[run] = now
                    order_packed += order_step
                    push(events, nowsh + cyc_shift[run] + order_packed + run)
            continue

        # Finish of sid.
        nowsh = packed - low
        finish_t[sid] = now
        node = seg_node[sid]
        free[node] += 1

        for dst, lat in plain[sid]:
            arrival = now + lat
            if arrival > ready_nonet[dst]:
                ready_nonet[dst] = arrival
            if arrival > ready_at[dst]:
                ready_at[dst] = arrival
            n = npreds[dst] - 1
            npreds[dst] = n
            if not n:
                at = ready_at[dst]
                stall = at - ready_nonet[dst]
                if stall > 0 and link_kind[dst] >= 0:
                    kind_stall[link_kind[dst]] += stall
                if at > now:
                    push(events, (at << time_shift) + arrive_shift + dst)
                else:
                    nd = seg_node[dst]
                    rq = ready[nd]
                    if free[nd] > 0 and not rq:
                        free[nd] -= 1
                        start_t[dst] = now
                        order_packed += order_step
                        push(events,
                             nowsh + cyc_shift[dst] + order_packed + dst)
                    else:
                        push(rq, dst)
                        while free[nd] > 0 and rq:
                            run = pop(rq)
                            free[nd] -= 1
                            start_t[run] = now
                            order_packed += order_step
                            push(events,
                                 nowsh + cyc_shift[run] + order_packed + run)

        for dst, li, xb, xblat, ci, ki in xfer[sid]:
            lf = link_free[li]
            xfer_start = now if now >= lf else lf
            link_free[li] = xfer_start + xb
            link_busy[li] += xb
            cls_busy[ci] += xb
            arrival = xfer_start + xblat
            if now > ready_nonet[dst]:
                ready_nonet[dst] = now
            if arrival >= link_ready[dst]:
                link_ready[dst] = arrival
                link_kind[dst] = ki
            if arrival > ready_at[dst]:
                ready_at[dst] = arrival
            n = npreds[dst] - 1
            npreds[dst] = n
            if not n:
                at = ready_at[dst]
                stall = at - ready_nonet[dst]
                if stall > 0 and link_kind[dst] >= 0:
                    kind_stall[link_kind[dst]] += stall
                if at > now:
                    push(events, (at << time_shift) + arrive_shift + dst)
                else:
                    nd = seg_node[dst]
                    rq = ready[nd]
                    if free[nd] > 0 and not rq:
                        free[nd] -= 1
                        start_t[dst] = now
                        order_packed += order_step
                        push(events,
                             nowsh + cyc_shift[dst] + order_packed + dst)
                    else:
                        push(rq, dst)
                        while free[nd] > 0 and rq:
                            run = pop(rq)
                            free[nd] -= 1
                            start_t[run] = now
                            order_packed += order_step
                            push(events,
                                 nowsh + cyc_shift[run] + order_packed + run)

        rq = ready[node]
        while free[node] > 0 and rq:
            run = pop(rq)
            free[node] -= 1
            start_t[run] = now
            order_packed += order_step
            push(events, nowsh + cyc_shift[run] + order_packed + run)

    if order_packed >> seg_bits != nseg:
        # The dispatch counter doubles as a completion count, so the
        # O(n) sweep below only runs on the error path.
        unscheduled = [i for i in range(nseg) if finish_t[i] < 0]
        raise ValueError(
            f"trace contains a cycle or dangling dependency; "
            f"{len(unscheduled)} segments never ran (first: {unscheduled[:3]})"
        )

    link_busy_out = dict(zip(plan.links, link_busy))
    cls_busy_out = dict(zip(plan.classes, cls_busy))
    stall_out = {plan.kinds[i]: kind_stall[i]
                 for i in range(len(kind_stall)) if kind_stall[i] > 0}
    return (now, busy_total, start_t, finish_t, total_cpus,
            link_busy_out, cls_busy_out, stall_out)
