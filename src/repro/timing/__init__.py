"""Deterministic virtual-time model.

The paper reports wall-clock results on a 12-core Opteron and a 32-node
cluster.  We cannot measure those machines, so the reproduction separates
*logical execution* (always sequential and deterministic — correct because
Determinator spaces are shared-nothing and synchronize only by rendezvous)
from *timing*: logical execution records a DAG of execution ``segments``
connected by precedence ``edges``, and a deterministic list scheduler
computes the makespan that N CPUs per node would achieve.

All benchmark figures in :mod:`repro.bench` are ratios of such makespans.
"""

from repro.timing.model import CostModel
from repro.timing.trace import Trace, Segment
from repro.timing.schedule import schedule, ScheduleResult

__all__ = ["CostModel", "Trace", "Segment", "schedule", "ScheduleResult"]
