"""Nondeterministic baseline systems the paper compares against.

* :mod:`repro.baseline.threadsim` — "pthreads on Ubuntu Linux": threads
  share one address space with no isolation costs; thread creation and
  joining pay a serialized thread-system cost that grows with core count
  (the runqueue/futex contention the paper suspects behind md5's poor
  Linux scaling [54]); segment timings carry seeded jitter, because real
  schedules are never exactly repeatable.

* :mod:`repro.baseline.distsim` — distributed-memory Linux equivalents
  for Figure 12: remote-shell-style workers (md5) and explicit TCP data
  shipping (matmult) over the same network model the cluster uses.
"""

from repro.baseline.threadsim import LinuxMachine, LinuxThread, LinuxResult
from repro.baseline.distsim import DistLinux

__all__ = ["LinuxMachine", "LinuxThread", "LinuxResult", "DistLinux"]
