"""A nondeterministic "Linux + pthreads" shared-memory simulator.

The point of this baseline is to be the denominator of Figures 7, 9 and
10: it runs the same workloads as Determinator but

* threads share one address space directly — no copy, snapshot, or merge
  costs at interactions;
* thread create/join charge kernel thread-system costs, including a
  *serialized* component proportional to the number of active cores
  (coarse model of runqueue/futex contention, cf. paper §6.2 and [54]);
* every execution segment's duration receives a small seeded jitter, so
  timing — and thus any timing-dependent behaviour — varies run to run
  (vary the seed to observe it) while remaining reproducible for a fixed
  seed, which is what a benchmark harness needs.

Logical execution is sequential (thread bodies run to completion in
spawn order); this is faithful for the data-race-free fork/join/barrier
workloads the evaluation uses, and the simulator makes no claim of
reproducing racy semantics (it reports timing, not races).
"""

from repro.common.detrandom import DeterministicRandom
from repro.mem.addrspace import AddressSpace
from repro.timing.model import CostModel
from repro.timing.schedule import schedule
from repro.timing.trace import Trace

import numpy as np


class LinuxResult:
    """Outcome of a :meth:`LinuxMachine.run`."""

    def __init__(self, machine, value):
        self.machine = machine
        #: The main thread's return value.
        self.value = value
        self.trace = machine.trace

    def makespan(self, ncpus=None):
        """Virtual completion time on ``ncpus`` CPUs."""
        if ncpus is None:
            ncpus = self.machine.ncpus
        return schedule(self.trace, ncpus=ncpus).makespan

    def total_cycles(self):
        return self.trace.total_cycles()


class LinuxThread:
    """Handle a baseline thread uses: memory, compute, spawn/join, locks.

    Mirrors the Determinator :class:`~repro.kernel.guest.Guest` memory
    API closely enough that workloads can be written once against a
    common surface (see :mod:`repro.bench.workloads`).
    """

    def __init__(self, machine, uid):
        self.machine = machine
        self.uid = uid

    # -- accounting -----------------------------------------------------

    def charge(self, n):
        self.machine.trace.charge(self.uid, n)

    def work(self, n):
        """Model ``n`` instructions of computation."""
        self.charge(int(n))

    def alloc_work(self, n):
        """Model allocation-heavy computation: dilated by heap/futex
        contention as more cores are occupied (§2.4, [14], [54])."""
        machine = self.machine
        active = min(machine._threads_alive, machine.ncpus)
        dilation = 1.0 + machine.cost.malloc_contention * max(0, active - 1)
        self.charge(int(n * dilation))

    # -- shared memory (direct, no isolation) ----------------------------

    def read(self, addr, n):
        self.charge(6 + (n >> 4))
        return self.machine.mem.read(addr, n)

    def write(self, addr, data):
        self.charge(6 + (len(data) >> 4))
        self.machine.mem.write(addr, data)

    def load(self, addr, size=8, signed=False):
        return int.from_bytes(self.read(addr, size), "little", signed=signed)

    def store(self, addr, value, size=8):
        self.write(addr, int(value).to_bytes(size, "little", signed=value < 0))

    def array_read(self, addr, dtype, count):
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        self.charge(6 + (nbytes >> 4))
        raw = self.machine.mem.read(addr, nbytes)
        return np.frombuffer(raw, dtype=dtype).copy()

    def array_write(self, addr, arr):
        self.write(addr, np.ascontiguousarray(arr).tobytes())

    # -- threads ---------------------------------------------------------

    def spawn(self, fn, args=(), light=False):
        """pthread_create: returns a joinable handle.

        ``light=True`` models re-dispatching an existing worker through a
        barrier (pthread_barrier wake) instead of clone(): it charges
        barrier costs and no thread-system contention.
        """
        machine = self.machine
        cost = machine.cost
        machine._threads_alive += 1
        if light:
            self.charge(2 * cost.lock_op)
        else:
            self.charge(cost.thread_create + machine.contention_penalty())
        closed, _ = machine.trace.cut(self.uid, label="spawn")
        tid = machine._next_tid()
        seg = machine.trace.begin(tid, label="thread")
        machine.trace.edge(closed, seg)
        child = LinuxThread(machine, tid)
        value = fn(child, *args)
        machine._jitter_segment(tid)
        end_seg = machine.trace.end(tid)
        return _Joinable(tid, end_seg, value)

    def join(self, handle, light=False):
        """pthread_join: returns the thread's value (``light`` as in spawn)."""
        machine = self.machine
        cost = machine.cost
        if light:
            self.charge(2 * cost.lock_op)
        else:
            self.charge(cost.thread_join + machine.contention_penalty())
        machine._threads_alive -= 1
        _, opened = machine.trace.cut(self.uid, label="join")
        machine.trace.edge(handle.end_seg, opened)
        return handle.value

    # -- synchronization ----------------------------------------------------

    def lock(self, lid):
        """Acquire a mutex (uncontended cost; see module docstring)."""
        self.charge(self.machine.cost.lock_op)

    def unlock(self, lid):
        self.charge(self.machine.cost.lock_op)

    def barrier(self):
        """Arrive at a barrier (cost only; logical barrier semantics are
        provided by the workloads' phase structure)."""
        self.charge(self.machine.cost.lock_op * 2)


class _Joinable:
    __slots__ = ("tid", "end_seg", "value")

    def __init__(self, tid, end_seg, value):
        self.tid = tid
        self.end_seg = end_seg
        self.value = value


class LinuxMachine:
    """One simulated Linux box with ``ncpus`` cores."""

    def __init__(self, cost=None, ncpus=None, seed=None):
        self.cost = cost or CostModel()
        self.ncpus = ncpus if ncpus is not None else self.cost.ncpus
        self.rng = DeterministicRandom(
            seed if seed is not None else self.cost.seed
        )
        self.mem = AddressSpace()
        self.trace = Trace()
        self._threads_alive = 1
        self._tid = 0

    def _next_tid(self):
        self._tid += 1
        return f"t{self._tid}"

    def contention_penalty(self):
        """Serialized thread-system cost growing with occupied cores [54]."""
        active = min(self._threads_alive, self.ncpus)
        return self.cost.runqueue_penalty * active

    def _jitter_segment(self, uid):
        """Dilate the open segment by the seeded schedule jitter."""
        seg = self.trace.current(uid)
        seg.cycles = int(self.rng.jitter(seg.cycles, self.cost.jitter))

    def run(self, main, args=()):
        """Run ``main(lt, *args)`` as the initial thread."""
        self.trace.begin("main", label="main")
        lt = LinuxThread(self, "main")
        value = main(lt, *args)
        self._jitter_segment("main")
        self.trace.finish()
        return LinuxResult(self, value)
