"""Distributed-memory "Linux equivalents" for Figure 12 (paper §6.3).

The paper compares Determinator's transparently distributed shared-memory
benchmarks against hand-written distributed-memory versions on Linux:

* the md5 equivalent coordinates workers with remote shells — tiny
  inputs/outputs per worker, TCP handshake per node;
* the matmult equivalent passes matrix data explicitly via TCP.

This module models exactly that structure over the same network cost
model the Determinator cluster uses, with TCP overheads always on.
"""

from repro.timing.model import CostModel
from repro.timing.schedule import schedule
from repro.timing.trace import Trace


class DistLinux:
    """Master/worker distributed-memory execution on an N-node cluster."""

    def __init__(self, cost=None, nnodes=2):
        self.cost = cost or CostModel()
        self.nnodes = nnodes
        self.trace = Trace()
        self._uid = 0

    def _next_uid(self):
        self._uid += 1
        return f"w{self._uid}"

    def run_master_workers(
        self,
        worker_cycles,
        input_bytes,
        output_bytes,
        master_pre=50_000,
        master_post=50_000,
        tree=False,
    ):
        """Simulate one distributed job; returns the makespan.

        Parameters
        ----------
        worker_cycles:
            Compute cycles per worker (one worker per node).
        input_bytes / output_bytes:
            Payload shipped to / from each worker over TCP.
        tree:
            Distribute recursively through a binary tree of workers
            instead of serially from the master (matches the -tree
            benchmark variants).
        """
        cost = self.cost
        trace = self.trace
        trace.begin("master", node=0, label="master")
        trace.charge("master", master_pre)

        ends = self._distribute(
            "master", 0, list(range(self.nnodes)), worker_cycles,
            input_bytes, output_bytes,
        )
        for end_seg, latency in ends:
            _, opened = trace.cut("master", label="collect")
            trace.edge(end_seg, opened, latency=latency)
            trace.charge("master", cost.message(output_bytes, tcp=True))
        trace.charge("master", master_post)
        trace.finish()
        return schedule(
            trace, ncpus=1, cpus_per_node={n: 1 for n in range(self.nnodes)}
        ).makespan

    def _distribute(self, parent_uid, parent_node, nodes, worker_cycles,
                    input_bytes, output_bytes):
        """Send work to ``nodes``; returns [(end_segment, return_latency)].

        Serial fan-out from the parent, or recursive binary-tree fan-out
        when more than one node remains (tree mode is selected simply by
        calling with the full node list — the recursion *is* the tree).
        """
        cost = self.cost
        trace = self.trace
        ends = []
        me, rest = nodes[0], nodes[1:]
        # Local worker on this node.
        uid = self._next_uid()
        if parent_node == me:
            send_latency = 0
            trace.charge(parent_uid, cost.syscall)
        else:
            send_latency = cost.net_latency
            trace.charge(parent_uid, cost.message(input_bytes, tcp=True))
        closed, _ = trace.cut(parent_uid, label="send")
        seg = trace.begin(uid, node=me, label="worker")
        trace.edge(closed, seg, latency=send_latency)
        # The worker forwards to half of the remaining nodes (tree) —
        # with an empty rest this is a plain leaf.
        if rest:
            left = rest[: len(rest) // 2]
            right = rest[len(rest) // 2 :]
            for group in (left, right):
                if group:
                    ends.extend(
                        self._distribute(uid, me, group, worker_cycles,
                                         input_bytes, output_bytes)
                    )
        trace.charge(uid, worker_cycles)
        end_seg = trace.end(uid)
        ends.append((end_seg, 0 if parent_node == me else cost.net_latency))
        return ends

    def run_serial_circuit(self, worker_cycles, input_bytes, output_bytes,
                           master_pre=50_000):
        """Master serially visits every node, rsh-style (md5-circuit-like
        comparison point); returns the makespan."""
        cost = self.cost
        trace = self.trace
        trace.begin("master", node=0, label="master")
        trace.charge("master", master_pre)
        handles = []
        for node in range(self.nnodes):
            trace.charge("master", cost.message(input_bytes, tcp=True))
            closed, _ = trace.cut("master", label="send")
            uid = self._next_uid()
            seg = trace.begin(uid, node=node, label="worker")
            latency = 0 if node == 0 else cost.net_latency
            trace.edge(closed, seg, latency=latency)
            trace.charge(uid, worker_cycles)
            handles.append((trace.end(uid), latency))
        for end_seg, latency in handles:
            _, opened = trace.cut("master", label="collect")
            trace.edge(end_seg, opened, latency=latency)
            trace.charge("master", cost.message(output_bytes, tcp=True))
        trace.finish()
        return schedule(
            trace, ncpus=1, cpus_per_node={n: 1 for n in range(self.nnodes)}
        ).makespan
