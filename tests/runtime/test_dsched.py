"""Deterministic scheduler tests (legacy pthreads emulation, §4.5)."""


from repro.common.errors import DeadlockError
from repro.kernel import Machine
from repro.mem.layout import SHARED_BASE
from repro.runtime.dsched import DetScheduler, det_pthreads_run

A = SHARED_BASE + 0x1000


def in_guest(fn):
    with Machine() as m:
        result = m.run(fn)
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_single_thread_runs_to_completion():
    def t(dt):
        dt.g.work(100)
        return "done"

    def main(g):
        return det_pthreads_run(g, [(t, ())])

    assert in_guest(main).r0 == ["done"]


def test_threads_preempted_by_quantum():
    def t(dt, n):
        for _ in range(n):
            dt.g.work(1000)
        return n

    def main(g):
        sched = DetScheduler(g, quantum=5_000)
        sched.spawn(t, (10,))
        sched.spawn(t, (20,))
        results = sched.run()
        return (results, sched.rounds)

    results, rounds = in_guest(main).r0
    assert results == [10, 20]
    assert rounds > 1  # the quantum forced multiple rounds


def test_mutex_mutual_exclusion_counter():
    """Classic racy counter becomes correct with a mutex."""
    ITERS = 8

    def t(dt):
        for _ in range(ITERS):
            dt.mutex_lock(0)
            value = dt.g.load(A)
            dt.g.work(50)
            dt.g.store(A, value + 1)
            dt.mutex_unlock(0)
        return 0

    def main(g):
        g.store(A, 0)
        det_pthreads_run(g, [(t, ()), (t, ())], quantum=100_000)
        return g.load(A)

    assert in_guest(main).r0 == 2 * ITERS


def test_mutex_ownership_fast_path():
    """The owner re-locks without scheduler interaction."""
    def t(dt):
        for _ in range(5):
            dt.mutex_lock(3)
            dt.mutex_unlock(3)
        return 0

    def main(g):
        sched = DetScheduler(g, quantum=10_000_000)
        sched.spawn(t, ())
        sched.run()
        return sched.rounds

    # First lock needs a scheduler call (ownership grant); the rest are
    # local, so everything fits in few rounds.
    assert in_guest(main).r0 <= 3


def test_racy_writes_are_repeatable_not_conflicting():
    """Under the deterministic scheduler races resolve repeatably (§4.5)."""
    def w1(dt):
        dt.g.store(A, 111)

    def w2(dt):
        dt.g.store(A, 222)

    def main(g):
        det_pthreads_run(g, [(w1, ()), (w2, ())], quantum=50_000)
        return g.load(A)

    values = {in_guest(main).r0 for _ in range(3)}
    assert len(values) == 1          # repeatable
    assert values.pop() in (111, 222)


def test_deadlock_detected():
    def t1(dt):
        dt.mutex_lock(0)
        dt.sched_yield()
        dt.mutex_lock(1)

    def t2(dt):
        dt.mutex_lock(1)
        dt.sched_yield()
        dt.mutex_lock(0)

    def main(g):
        try:
            det_pthreads_run(g, [(t1, ()), (t2, ())], quantum=100_000)
        except DeadlockError:
            return "deadlock"

    assert in_guest(main).r0 == "deadlock"


def test_results_identical_across_quanta_with_proper_locking():
    """A correctly locked program gives the same answer for any quantum."""
    def t(dt, tid_bias):
        for i in range(4):
            dt.mutex_lock(0)
            dt.g.store(A, dt.g.load(A) + tid_bias)
            dt.mutex_unlock(0)
            dt.g.work(500)
        return 0

    def run_with(quantum):
        def main(g):
            g.store(A, 0)
            det_pthreads_run(g, [(t, (1,)), (t, (100,))], quantum=quantum)
            return g.load(A)

        return in_guest(main).r0

    assert run_with(2_000) == run_with(1_000_000) == 4 * 101


def test_yield_ends_quantum_early():
    def t(dt):
        dt.sched_yield()
        dt.sched_yield()
        return "ok"

    def main(g):
        sched = DetScheduler(g, quantum=10**9)
        sched.spawn(t, ())
        return (sched.run(), sched.rounds)

    results, rounds = in_guest(main).r0
    assert results == ["ok"]
    assert rounds == 3  # two yields + final quantum
