"""Mini-make tests, including the Figure 4 scheduling semantics."""


from repro.common.errors import RuntimeApiError
from repro.kernel import Machine
from repro.runtime.make import Make, MakeRule
from repro.runtime.process import unix_root


def run_unix(init):
    with Machine() as m:
        result = m.run(unix_root(init))
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


FIG4_RULES = [
    MakeRule("task1", duration=3_000_000),   # long
    MakeRule("task2", duration=500_000),     # short
    MakeRule("task3", duration=1_500_000),   # medium
]


def test_build_produces_all_targets():
    def init(rt):
        make = Make(rt, FIG4_RULES)
        make.build()
        return sorted(rt.fs.list_names())

    names = run_unix(init).r0
    for target in ("task1", "task2", "task3"):
        assert target in names


def test_dependencies_respected():
    def init(rt):
        rules = [
            MakeRule("a.o", duration=1000),
            MakeRule("b.o", duration=1000),
            MakeRule("prog", deps=("a.o", "b.o"), duration=500),
        ]
        return Make(rt, rules).build("prog")

    order = run_unix(init).r0
    assert order.index("prog") == 2


def test_goal_limits_targets():
    def init(rt):
        rules = [
            MakeRule("a.o", duration=100),
            MakeRule("unrelated", duration=100),
            MakeRule("prog", deps=("a.o",), duration=100),
        ]
        Make(rt, rules).build("prog")
        return rt.fs.lookup("unrelated")

    assert run_unix(init).r0 == -1


def test_cycle_detected():
    def init(rt):
        rules = [
            MakeRule("a", deps=("b",)),
            MakeRule("b", deps=("a",)),
        ]
        try:
            Make(rt, rules).build("a")
        except RuntimeApiError:
            return "cycle"

    assert run_unix(init).r0 == "cycle"


def test_unknown_target_rejected():
    def init(rt):
        try:
            Make(rt, [MakeRule("a")]).build("zzz")
        except RuntimeApiError:
            return "missing"

    assert run_unix(init).r0 == "missing"


def _fig4_makespan(jobs, ncpus=2):
    def init(rt):
        Make(rt, FIG4_RULES).build(jobs=jobs)
        return 0

    with Machine() as m:
        result = m.run(unix_root(init))
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        return result.makespan(ncpus=ncpus)


def test_fig4_deterministic_j2_schedule_suboptimal():
    """Figure 4 (d): with a 2-worker quota, deterministic wait() returns
    the earliest-forked task (the long one), so the medium task cannot
    start when the short one finishes — unlike Unix (c)."""
    unlimited = _fig4_makespan(jobs=None)
    quota2 = _fig4_makespan(jobs=2)
    # Unlimited parallelism on 2 CPUs achieves the optimal packing:
    # long task in parallel with (short + medium).
    assert unlimited < quota2
    # The deterministic -j2 schedule serializes task3 after task1's wait:
    # makespan ~ max(long, short) + medium-ish; definitely worse.
    assert quota2 >= unlimited + 1_000_000


def test_fig4_completion_order_is_fork_order_under_quota():
    def init(rt):
        return Make(rt, FIG4_RULES).build(jobs=2)

    order = run_unix(init).r0
    # wait() collected task1 (earliest-forked) before task2, although
    # task2 is much shorter.
    assert order[0] == "task1"
