"""File-system unit tests: format, Unix API, versioning, reconciliation."""


from repro.common.errors import FileConflictError, FileSystemError
from repro.kernel import Machine
from repro.mem.layout import SCRATCH_BASE
from repro.runtime.fs import (
    CONSOLE_IN,
    CONSOLE_OUT,
    F_APPEND,
    F_CONFLICT,
    F_EXISTS,
    FileSystem,
    NFILES,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_WRONLY,
    reconcile,
)


def in_guest(fn):
    """Run ``fn(g)`` inside a fresh machine's root space; return its result."""
    with Machine() as m:
        result = m.run(fn)
    if result.trap.name not in ("EXIT", "RET"):
        raise AssertionError(f"guest faulted: {result.trap} {result.trap_info}")
    return result.r0


def test_format_creates_console_files():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        return fs.list_names()

    names = in_guest(body)
    assert CONSOLE_IN in names and CONSOLE_OUT in names


def test_write_read_roundtrip():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        fs.write_file("hello.txt", b"contents here")
        return fs.read_file("hello.txt")

    assert in_guest(body) == b"contents here"


def test_open_missing_without_creat_fails():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        try:
            fs.open("nope", O_RDONLY)
        except FileSystemError:
            return "err"

    assert in_guest(body) == "err"


def test_open_excl_on_existing_fails():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        fs.write_file("f", b"x")
        try:
            fs.open("f", O_WRONLY | O_CREAT | O_EXCL)
        except FileSystemError:
            return "err"

    assert in_guest(body) == "err"


def test_fd_numbers_deterministic_lowest_free():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        a = fs.open("a", O_WRONLY | O_CREAT)
        b = fs.open("b", O_WRONLY | O_CREAT)
        fs.close(a)
        c = fs.open("c", O_WRONLY | O_CREAT)
        return (a, b, c)

    a, b, c = in_guest(body)
    assert c == a  # lowest free fd reused


def test_version_bumps_on_write():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        fs.write_file("f", b"1")
        v1 = fs.stat("f")["version"]
        fs.write_file("f", b"2")
        return (v1, fs.stat("f")["version"])

    v1, v2 = in_guest(body)
    assert v2 > v1


def test_seek_tell_and_partial_reads():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        fs.write_file("f", b"abcdefgh")
        fd = fs.open("f", O_RDONLY)
        first = fs.read(fd, 3)
        pos = fs.tell(fd)
        fs.seek(fd, 6)
        rest = fs.read(fd, 10)
        return (first, pos, rest)

    assert in_guest(body) == (b"abc", 3, b"gh")


def test_append_mode_appends():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        fs.write_file("log", b"one;")
        fs.write_file("log", b"two;", append=True)
        return fs.read_file("log")

    assert in_guest(body) == b"one;two;"


def test_unlink_removes():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        fs.write_file("f", b"x")
        fs.unlink("f")
        return fs.lookup("f")

    assert in_guest(body) == -1


def test_read_write_flag_enforcement():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        fs.write_file("f", b"data")
        fd = fs.open("f", O_RDONLY)
        try:
            fs.write(fd, b"x")
        except FileSystemError:
            return "err"

    assert in_guest(body) == "err"


def test_file_slot_overflow_rejected():
    def body(g):
        fs = FileSystem(g)
        fs.format()
        fs.init_fd_table()
        fd = fs.open("big", O_WRONLY | O_CREAT)
        try:
            fs.write(fd, b"x" * (1 << 17))
        except FileSystemError:
            return "err"

    assert in_guest(body) == "err"


# ---------------------------------------------------------------------------
# Reconciliation (two images inside one guest, as the runtime does it)
# ---------------------------------------------------------------------------

def _two_images(g):
    """Parent image at FS_BASE, 'child' image at scratch, bases synced."""
    parent = FileSystem(g)
    parent.format()
    parent.init_fd_table()
    parent.write_file("shared.txt", b"original")
    child = FileSystem(g, base=SCRATCH_BASE)
    # Simulate fork: copy the image and set the child's base tables.
    for idx in range(NFILES):
        flags = parent.inode_flags(idx)
        if not flags & F_EXISTS:
            continue
        size = parent.inode_size(idx)
        child.set_inode(
            idx,
            name=parent.inode_name(idx),
            size=size,
            version=parent.inode_version(idx),
            flags=flags,
        )
        if size:
            child.write_data(idx, 0, parent.read_data(idx, 0, size))
        child.set_base(idx, parent.inode_version(idx), size)
    child.init_fd_table()
    return parent, child


def test_reconcile_child_change_propagates_up():
    def body(g):
        parent, child = _two_images(g)
        child.write_file("shared.txt", b"child-v2")
        out = reconcile(parent, child)
        return (out.get("shared.txt"), parent.read_file("shared.txt"))

    assert in_guest(body) == ("push", b"child-v2")


def test_reconcile_parent_change_propagates_down():
    def body(g):
        parent, child = _two_images(g)
        parent.write_file("shared.txt", b"parent-v2")
        out = reconcile(parent, child)
        return (out.get("shared.txt"), child.read_file("shared.txt"))

    assert in_guest(body) == ("pull", b"parent-v2")


def test_reconcile_new_child_file_appears_in_parent():
    def body(g):
        parent, child = _two_images(g)
        child.write_file("out.o", b"object code")
        reconcile(parent, child)
        return parent.read_file("out.o")

    assert in_guest(body) == b"object code"


def test_reconcile_conflict_discards_child_and_flags():
    def body(g):
        parent, child = _two_images(g)
        parent.write_file("shared.txt", b"parent-write")
        child.write_file("shared.txt", b"child-write!")
        out = reconcile(parent, child)
        flags = parent.stat("shared.txt")["flags"]
        try:
            parent.open("shared.txt", O_RDONLY)
            opened = "ok"
        except FileConflictError:
            opened = "conflict-error"
        return (out.get("shared.txt"), bool(flags & F_CONFLICT), opened,
                parent.read_data(parent.lookup("shared.txt"), 0, 12))

    outcome, flagged, opened, data = in_guest(body)
    assert outcome == "conflict"
    assert flagged
    assert opened == "conflict-error"
    assert data == b"parent-write"


def test_reconcile_append_only_merges_both_tails():
    def body(g):
        parent, child = _two_images(g)
        parent.write_file("log", b"")             # create
        # Re-sync bases after creating the log on both sides.
        reconcile(parent, child)
        pfd = parent.open("log", O_WRONLY | O_APPEND)
        cfd = child.open("log", O_WRONLY | O_APPEND)
        # Mark append-only via the inode flag (console files have it).
        idx = parent.lookup("log")
        parent.set_inode(idx, flags=parent.inode_flags(idx) | F_APPEND)
        child.set_inode(idx, flags=child.inode_flags(idx) | F_APPEND)
        parent.write(pfd, b"P1;")
        child.write(cfd, b"C1;")
        out = reconcile(parent, child)
        return (
            out.get("log"),
            parent.read_file("log"),
            child.read_file("log"),
        )

    outcome, p_data, c_data = in_guest(body)
    assert outcome == "append"
    # Both replicas accumulate all writes, possibly in different orders.
    assert sorted([p_data, c_data]) == sorted([b"P1;C1;", b"C1;P1;"])
    assert set(p_data.replace(b";", b" ").split()) == {b"P1", b"C1"}


def test_reconcile_twice_is_stable():
    def body(g):
        parent, child = _two_images(g)
        child.write_file("shared.txt", b"new")
        reconcile(parent, child)
        second = reconcile(parent, child)
        return second

    assert in_guest(body) == {}


def test_reconcile_deletion_propagates():
    def body(g):
        parent, child = _two_images(g)
        child.unlink("shared.txt")
        reconcile(parent, child)
        return parent.lookup("shared.txt")

    assert in_guest(body) == -1
