"""Edge-case coverage across the user-level runtime."""


from repro.kernel import Machine
from repro.mem.layout import SHARED_BASE
from repro.runtime.dsched import DetScheduler
from repro.runtime.make import Make, MakeRule
from repro.runtime.process import unix_root
from repro.runtime.threads import ThreadGroup

A = SHARED_BASE + 0x3000


def run_unix(init, **kwargs):
    with Machine(**kwargs) as m:
        result = m.run(unix_root(init))
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_fd_positions_survive_exec():
    """exec carries the file-descriptor table over (§4.1)."""
    def after(rt):
        # fd opened before exec is still open at the same position.
        return rt.fs.read(5, 3)

    def before(rt):
        rt.fs.write_file("f", b"abcdef")
        fd = rt.fs.open("f", 1)      # O_RDONLY
        while fd != 5:               # park it at a known number
            fd = rt.fs.open("f", 1)
        rt.fs.seek(5, 2)
        rt.exec("after")

    def init(rt):
        pid = rt.fork(before)
        return rt.waitpid(pid)

    assert run_unix(init, programs={"after": after}).r0 == b"cde"


def test_make_diamond_dependency():
    def init(rt):
        rules = [
            MakeRule("base", duration=1000),
            MakeRule("left", deps=("base",), duration=1000),
            MakeRule("right", deps=("base",), duration=1000),
            MakeRule("top", deps=("left", "right"), duration=1000),
        ]
        return Make(rt, rules).build("top")

    order = run_unix(init).r0
    assert order[0] == "base"
    assert order[-1] == "top"
    assert set(order[1:3]) == {"left", "right"}


def test_make_rebuild_is_idempotent():
    def init(rt):
        rules = [MakeRule("thing", duration=100)]
        Make(rt, rules).build()
        Make(rt, rules).build()        # second build forks a fresh task
        return rt.fs.read_file("thing")

    assert run_unix(init).r0 == b"built thing"


def test_dsched_preemption_mid_critical_section_is_safe():
    """A thread preempted while *holding* a mutex keeps it until its own
    unlock; the waiter only gets ownership after that (steal rule)."""
    def holder(dt):
        dt.mutex_lock(0)
        for _ in range(20):
            dt.g.work(1000)            # quantum expires in here
        value = dt.g.load(A)
        dt.g.store(A, value + 1)
        dt.mutex_unlock(0)
        return 0

    def waiter(dt):
        dt.mutex_lock(0)
        value = dt.g.load(A)
        dt.g.store(A, value + 100)
        dt.mutex_unlock(0)
        return 0

    def main(g):
        g.store(A, 0)
        sched = DetScheduler(g, quantum=5_000)
        sched.spawn(holder, ())
        sched.spawn(waiter, ())
        sched.run()
        return g.load(A)

    with Machine() as m:
        result = m.run(main)
    assert result.r0 == 101


def test_thread_group_interleaved_fork_join():
    def worker(g, i):
        g.store(A + 8 * i, i)
        return i

    def main(g):
        tg = ThreadGroup(g)
        first = tg.fork(worker, (0,))
        second = tg.fork(worker, (1,))
        a = tg.join(first)
        third = tg.fork(worker, (2,))   # fork after a join
        b = tg.join(second)
        c = tg.join(third)
        return (a, b, c)

    with Machine() as m:
        assert m.run(main).r0 == (0, 1, 2)


def test_waitpid_raises_on_faulted_child():
    def bad(rt):
        raise ValueError("child bug")

    def init(rt):
        pid = rt.fork(bad)
        try:
            rt.waitpid(pid)
        except Exception as exc:
            return type(exc).__name__

    assert run_unix(init).r0 == "RuntimeApiError"


def test_deep_fork_chain():
    DEPTH = 8

    def chain(rt, remaining):
        if remaining == 0:
            return 1
        pid = rt.fork(chain, remaining - 1)
        return rt.waitpid(pid) + 1

    def init(rt):
        pid = rt.fork(chain, DEPTH)
        return rt.waitpid(pid)

    assert run_unix(init).r0 == DEPTH + 1


def test_console_interleaved_with_files():
    def child(rt, i):
        rt.fs.write_file(f"out{i}", f"file{i}".encode())
        rt.write_console(f"console{i};".encode())
        return 0

    def init(rt):
        pids = [rt.fork(child, i) for i in range(3)]
        for pid in pids:
            rt.waitpid(pid)
        files = b"".join(rt.fs.read_file(f"out{i}") for i in range(3))
        rt.write_console(files)
        return 0

    result = run_unix(init)
    assert result.console == b"console0;console1;console2;file0file1file2"
