"""Tests for explicit time inputs and supervision (§2.1)."""


from repro.kernel import Machine
from repro.runtime.process import ProcessRuntime, unix_root


def run_unix(init, time_script=()):
    with Machine(time_script=time_script) as m:
        result = m.run(unix_root(init))
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_root_reads_scripted_time():
    def init(rt):
        return (rt.time(), rt.time())

    assert run_unix(init, time_script=[111, 222]).r0 == (111, 222)


def test_child_time_forwarded_through_parent():
    def child(rt):
        return rt.time()

    def init(rt):
        pid = rt.fork(child)
        return rt.waitpid(pid)

    assert run_unix(init, time_script=[777]).r0 == 777


def test_grandchild_time_forwarded_two_levels():
    def leaf(rt):
        return rt.time()

    def mid(rt):
        pid = rt.fork(leaf)
        return rt.waitpid(pid)

    def init(rt):
        pid = rt.fork(mid)
        return rt.waitpid(pid)

    assert run_unix(init, time_script=[31337]).r0 == 31337


def test_supervisor_can_synthesize_subtree_time():
    """A middle process overrides provide_time() to fake its subtree's
    clock — the §2.1 interception in action."""

    class FakeClockRuntime(ProcessRuntime):
        def provide_time(self):
            return 42  # frozen clock for everything below us

    def leaf(rt):
        return rt.time()

    def supervisor(rt):
        fake = FakeClockRuntime(rt.g)
        pid = fake.fork(leaf)
        return fake.waitpid(pid)

    def init(rt):
        pid = rt.fork(supervisor)
        child_view = rt.waitpid(pid)
        return (child_view, rt.time())

    faked, real = run_unix(init, time_script=[1000, 2000]).r0
    assert faked == 42          # subtree saw the synthetic clock
    assert real == 1000         # root still sees the device script


def test_replay_identical_with_same_time_script():
    def child(rt):
        t = rt.time()
        rt.write_console(f"t={t};".encode())
        return 0

    def init(rt):
        for _ in range(2):
            rt.waitpid(rt.fork(child))
        return 0

    a = run_unix(init, time_script=[5, 6]).console
    b = run_unix(init, time_script=[5, 6]).console
    c = run_unix(init, time_script=[50, 60]).console
    assert a == b == b"t=5;t=6;"
    assert c == b"t=50;t=60;"
