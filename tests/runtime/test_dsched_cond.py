"""Condition-variable tests for the deterministic scheduler (§4.5)."""


from repro.common.errors import DeadlockError
from repro.kernel import Machine
from repro.mem.layout import SHARED_BASE
from repro.runtime.dsched import det_pthreads_run

COUNT = SHARED_BASE + 0x2000      # items produced so far
DATA = SHARED_BASE + 0x2100       # the "queue" (slots)
DONE = SHARED_BASE + 0x2200       # producer-finished flag

MUTEX = 0
COND = 0


def in_guest(fn):
    with Machine() as m:
        result = m.run(fn)
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_producer_consumer_handoff():
    """Consumer waits on a condition until the producer signals."""
    def producer(dt):
        dt.g.work(5_000)
        dt.mutex_lock(MUTEX)
        dt.g.store(DATA, 4242)
        dt.g.store(COUNT, 1)
        dt.cond_signal(COND)
        dt.mutex_unlock(MUTEX)
        return 0

    def consumer(dt):
        dt.mutex_lock(MUTEX)
        while dt.g.load(COUNT) == 0:
            dt.cond_wait(COND, MUTEX)
        value = dt.g.load(DATA)
        dt.mutex_unlock(MUTEX)
        return value

    def main(g):
        g.store(COUNT, 0)
        results = det_pthreads_run(
            g, [(consumer, ()), (producer, ())], quantum=50_000
        )
        return results[0]

    assert in_guest(main).r0 == 4242


def test_broadcast_wakes_all_waiters():
    NWAITERS = 3

    def waiter(dt, i):
        dt.mutex_lock(MUTEX)
        while dt.g.load(DONE) == 0:
            dt.cond_wait(COND, MUTEX)
        dt.mutex_unlock(MUTEX)
        return i * 10

    def broadcaster(dt):
        dt.g.work(10_000)
        dt.mutex_lock(MUTEX)
        dt.g.store(DONE, 1)
        dt.cond_broadcast(COND)
        dt.mutex_unlock(MUTEX)
        return -1

    def main(g):
        g.store(DONE, 0)
        workers = [(waiter, (i,)) for i in range(NWAITERS)]
        workers.append((broadcaster, ()))
        return det_pthreads_run(g, workers, quantum=50_000)

    assert in_guest(main).r0 == [0, 10, 20, -1]


def test_signal_wakes_exactly_one():
    """With one signal and two waiters, the second waiter deadlocks —
    the scheduler reports it rather than hanging."""
    def waiter(dt, i):
        dt.mutex_lock(MUTEX)
        while dt.g.load(DONE) == 0 or True:   # waits forever after wake check
            dt.cond_wait(COND, MUTEX)
        return i

    def one_signal(dt):
        dt.g.work(5_000)
        dt.mutex_lock(MUTEX)
        dt.cond_signal(COND)
        dt.mutex_unlock(MUTEX)
        return 0

    def main(g):
        try:
            det_pthreads_run(
                g, [(waiter, (0,)), (waiter, (1,)), (one_signal, ())],
                quantum=50_000,
            )
        except DeadlockError:
            return "one-woken-then-deadlock"

    assert in_guest(main).r0 == "one-woken-then-deadlock"


def test_cond_results_repeatable():
    def worker(dt, i):
        for _ in range(3):
            dt.mutex_lock(MUTEX)
            dt.g.store(COUNT, dt.g.load(COUNT) + 1)
            dt.cond_signal(COND)
            dt.mutex_unlock(MUTEX)
            dt.g.work(1_000 * (i + 1))
        return dt.g.load(COUNT)

    def main(g):
        g.store(COUNT, 0)
        results = det_pthreads_run(
            g, [(worker, (0,)), (worker, (1,))], quantum=10_000
        )
        return (tuple(results), g.load(COUNT))

    runs = {in_guest(main).r0 for _ in range(3)}
    assert len(runs) == 1
    assert runs.pop()[1] == 6


def test_cond_wait_reacquires_mutex():
    """After cond_wait returns, the waiter owns and holds the mutex."""
    def consumer(dt):
        dt.mutex_lock(MUTEX)
        while dt.g.load(COUNT) == 0:
            dt.cond_wait(COND, MUTEX)
        # We hold the mutex here: mutate protected state safely.
        dt.g.store(DATA, dt.g.load(DATA) + 1)
        dt.mutex_unlock(MUTEX)
        return 0

    def producer(dt):
        dt.mutex_lock(MUTEX)
        dt.g.store(DATA, 100)
        dt.g.store(COUNT, 1)
        dt.cond_broadcast(COND)
        dt.mutex_unlock(MUTEX)
        return 0

    def main(g):
        g.store(COUNT, 0)
        det_pthreads_run(
            g,
            [(consumer, ()), (consumer, ()), (producer, ())],
            quantum=50_000,
        )
        return g.load(DATA)

    assert in_guest(main).r0 == 102
