"""Process runtime tests: fork/exec/wait, console I/O, PID namespaces."""


from repro.kernel import Machine
from repro.runtime.process import unix_root


def run_unix(init, console_input=b"", programs=None):
    with Machine(console_input=console_input, programs=programs) as m:
        result = m.run(unix_root(init))
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_fork_wait_exit_status():
    def child(rt):
        return 17

    def init(rt):
        pid = rt.fork(child)
        return rt.waitpid(pid)

    assert run_unix(init).r0 == 17


def test_fork_child_sees_parent_files():
    def child(rt):
        return 1 if rt.fs.read_file("input.txt") == b"data" else 0

    def init(rt):
        rt.fs.write_file("input.txt", b"data")
        pid = rt.fork(child)
        return rt.waitpid(pid)

    assert run_unix(init).r0 == 1


def test_child_output_files_merge_at_wait():
    def compiler(rt, name):
        rt.fs.write_file(name, f"object:{name}".encode())
        return 0

    def init(rt):
        pids = [rt.fork(compiler, f"unit{i}.o") for i in range(4)]
        for pid in pids:
            rt.waitpid(pid)
        return [rt.fs.read_file(f"unit{i}.o") for i in range(4)]

    outputs = run_unix(init).r0
    assert outputs == [f"object:unit{i}.o".encode() for i in range(4)]


def test_sibling_conflict_flags_file():
    def writer(rt, value):
        rt.fs.write_file("shared.out", value)
        return 0

    def init(rt):
        rt.fs.write_file("shared.out", b"base")
        a = rt.fork(writer, b"from-a")
        b = rt.fork(writer, b"from-b")
        rt.waitpid(a)
        rt.waitpid(b)
        from repro.runtime.fs import F_CONFLICT
        return bool(rt.fs.stat("shared.out")["flags"] & F_CONFLICT)

    assert run_unix(init).r0 is True


def test_pids_are_process_local():
    """Child PIDs restart from 1: namespaces are private (§4.1/§2.4)."""
    def grandchild(rt):
        return 0

    def child(rt):
        return rt.fork(grandchild)   # the pid the *child* allocated

    def init(rt):
        first = rt.fork(child)
        second = rt.fork(child)
        p1 = rt.waitpid(first)
        p2 = rt.waitpid(second)
        return (p1, p2)

    # Both children allocate the same local pid — numerically conflicting,
    # which is exactly the point.
    assert run_unix(init).r0 == (1, 1)


def test_wait_returns_earliest_forked():
    def worker(rt, tag):
        rt.g.work(100)
        return tag

    def init(rt):
        rt.fork(worker, 11)
        rt.fork(worker, 22)
        pid_a, status_a = rt.wait()
        pid_b, status_b = rt.wait()
        return (status_a, status_b)

    # Deterministic wait(): fork order, regardless of completion times.
    assert run_unix(init).r0 == (11, 22)


def test_console_write_propagates_to_device():
    def child(rt):
        rt.write_console(b"child says hi\n")
        return 0

    def init(rt):
        rt.write_console(b"parent first\n")
        pid = rt.fork(child)
        rt.waitpid(pid)
        return 0

    result = run_unix(init)
    assert result.console == b"parent first\nchild says hi\n"


def test_console_outputs_grouped_per_process():
    """Each process's output appears as a unit (§6.1)."""
    def noisy(rt, tag):
        for i in range(3):
            rt.write_console(f"{tag}{i};".encode())
        return 0

    def init(rt):
        a = rt.fork(noisy, "A")
        b = rt.fork(noisy, "B")
        rt.waitpid(a)
        rt.waitpid(b)
        return 0

    result = run_unix(init)
    assert result.console == b"A0;A1;A2;B0;B1;B2;"


def test_console_output_identical_across_runs():
    def noisy(rt, tag):
        rt.write_console(f"[{tag}]".encode())
        return 0

    def init(rt):
        pids = [rt.fork(noisy, str(i)) for i in range(5)]
        for pid in pids:
            rt.waitpid(pid)
        return 0

    outs = {run_unix(init).console for _ in range(3)}
    assert len(outs) == 1


def test_child_console_read_blocks_until_parent_provides():
    def child(rt):
        data = rt.read_console()
        return data

    def init(rt):
        pid = rt.fork(child)
        return rt.waitpid(pid)

    # r0 of waitpid is the child's status (int); to get the data we have the
    # child echo it instead.
    def echo_child(rt):
        rt.write_console(b"echo:" + rt.read_console())
        return 0

    def init2(rt):
        pid = rt.fork(echo_child)
        rt.waitpid(pid)
        return 0

    result = run_unix(init2, console_input=b"typed input")
    assert result.console == b"echo:typed input"


def test_root_console_read_direct():
    def init(rt):
        rt.write_console(b">" + rt.read_console())
        return 0

    result = run_unix(init, console_input=b"hello")
    assert result.console == b">hello"


def test_console_eof_returns_empty():
    def init(rt):
        first = rt.read_console()
        second = rt.read_console()
        return (first, second)

    result = run_unix(init, console_input=b"x")
    assert result.r0 == (b"x", b"")


def test_exec_replaces_program_keeps_fs():
    def second_program(rt):
        return 100 if rt.fs.read_file("state.txt") == b"kept" else -1

    def first_program(rt):
        rt.fs.write_file("state.txt", b"kept")
        rt.exec("second")

    def init(rt):
        pid = rt.fork(first_program)
        return rt.waitpid(pid)

    assert run_unix(init, programs={"second": second_program}).r0 == 100


def test_fsync_pushes_output_before_exit():
    def child(rt):
        rt.write_console(b"early")
        rt.fsync()
        rt.g.work(10)
        return 0

    def init(rt):
        pid = rt.fork(child)
        rt.waitpid(pid)
        return 0

    assert run_unix(init).console == b"early"


def test_nested_process_hierarchy_io():
    """Console I/O forwards up through two levels (§4.3)."""
    def leaf(rt):
        rt.write_console(b"leaf:" + rt.read_console())
        return 0

    def mid(rt):
        pid = rt.fork(leaf)
        return rt.waitpid(pid)

    def init(rt):
        pid = rt.fork(mid)
        return rt.waitpid(pid)

    result = run_unix(init, console_input=b"deep")
    assert result.console == b"leaf:deep"
