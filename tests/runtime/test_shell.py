"""Shell tests: built-ins, redirection, externals, determinism (§5)."""


from repro.kernel import Machine
from repro.runtime.process import unix_root
from repro.runtime.shell import Shell, shell_main


def run_shell(script, programs=None, console_input=b""):
    def init(rt):
        return Shell(rt).run_script(script)

    with Machine(programs=programs, console_input=console_input) as m:
        result = m.run(unix_root(init))
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_echo_to_console():
    result = run_shell("echo hello world")
    assert result.console == b"hello world\n"


def test_redirect_creates_file_and_cat_reads_it():
    result = run_shell("echo data > out.txt\ncat out.txt")
    assert result.console == b"data\n"


def test_append_redirection():
    result = run_shell(
        "echo one > log\necho two >> log\ncat log"
    )
    assert result.console == b"one\ntwo\n"


def test_truncate_redirection():
    result = run_shell("echo aaaa > f\necho b > f\ncat f")
    assert result.console == b"b\n"


def test_input_redirection():
    result = run_shell("echo payload > in.txt\ncat < in.txt")
    assert result.console == b"payload\n"


def test_ls_lists_files_sorted():
    result = run_shell("echo x > bbb\necho y > aaa\nls")
    assert result.console == b"aaa\nbbb\n"


def test_missing_command_is_127():
    result = run_shell("nosuchcmd")
    assert result.r0 == 127
    assert b"command not found" in result.console


def test_missing_file_cat_fails():
    result = run_shell("cat nope.txt")
    assert result.r0 == 1


def test_exit_status_propagates():
    assert run_shell("true").r0 == 0
    assert run_shell("false").r0 == 1
    assert run_shell("exit 3").r0 == 3


def test_exit_stops_script():
    result = run_shell("echo before\nexit 0\necho after")
    assert result.console == b"before\n"


def test_external_program_runs_in_child_process():
    def compile_prog(rt, name):
        rt.fs.write_file(name, b"OBJ")
        return 0

    result = run_shell(
        "compile a.o\ncompile b.o\nls",
        programs={"compile": compile_prog},
    )
    assert result.console == b"a.o\nb.o\n"


def test_external_exit_status():
    def failing(rt):
        return 9

    assert run_shell("failing", programs={"failing": failing}).r0 == 9


def test_ps_is_a_builtin_listing_local_pids():
    def work(rt):
        return 0

    result = run_shell(
        "work\nwork\nps",
        programs={"work": work},
    )
    lines = result.console.decode().splitlines()
    assert lines[0].strip() == "PID CMD"
    assert [line.split() for line in lines[1:]] == [["1", "work"], ["2", "work"]]


def test_scripted_shell_is_deterministic():
    def build(rt, name):
        rt.fs.write_file(name, f"built-{name}".encode())
        rt.write_console(f"building {name}\n".encode())
        return 0

    script = "build x.o\nbuild y.o\ncat x.o y.o > all\ncat all"
    outputs = {
        run_shell(script, programs={"build": build}).console
        for _ in range(3)
    }
    assert len(outputs) == 1


def test_semicolon_separated_commands():
    result = run_shell("echo a; echo b")
    assert result.console == b"a\nb\n"


def test_comments_ignored():
    result = run_shell("# just a comment\necho ok")
    assert result.console == b"ok\n"


def test_shell_main_wrapper():
    with Machine() as m:
        result = m.run(unix_root(shell_main, "echo wrapped"))
    assert result.console == b"wrapped\n"
