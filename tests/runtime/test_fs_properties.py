"""Property-based tests (hypothesis) for file-system reconciliation.

Invariants of the §4.2 versioning protocol:

* writes to *different* files by parent and child always reconcile
  cleanly, and both replicas converge to identical file sets;
* a file written on both sides is always flagged conflicted (and keeps
  the parent's bytes);
* reconciliation is idempotent: a second pass with no new writes is a
  no-op.
"""

from hypothesis import given, settings, strategies as st

from repro.kernel import Machine
from repro.mem.layout import SCRATCH_BASE
from repro.runtime.fs import (
    F_CONFLICT,
    F_EXISTS,
    FileSystem,
    NFILES,
    reconcile,
)

names = st.sampled_from([f"file{i}.dat" for i in range(8)])
contents = st.binary(min_size=1, max_size=64)
write_maps = st.dictionaries(names, contents, max_size=6)


def _fork_images(g):
    parent = FileSystem(g)
    parent.format()
    parent.init_fd_table()
    child = FileSystem(g, base=SCRATCH_BASE)
    for idx in range(NFILES):
        flags = parent.inode_flags(idx)
        if flags & F_EXISTS:
            size = parent.inode_size(idx)
            child.set_inode(idx, name=parent.inode_name(idx), size=size,
                            version=parent.inode_version(idx), flags=flags)
            if size:
                child.write_data(idx, 0, parent.read_data(idx, 0, size))
        child.set_base(idx, parent.inode_version(idx), parent.inode_size(idx))
    child.init_fd_table()
    return parent, child


def _snapshot(fs):
    return {
        name: fs.read_file(name)
        for name in fs.list_names()
        if not name.startswith("/dev/")
    }


@given(parent_writes=write_maps, child_writes=write_maps)
@settings(max_examples=40, deadline=None)
def test_disjoint_file_writes_converge(parent_writes, child_writes):
    child_writes = {
        name: data for name, data in child_writes.items()
        if name not in parent_writes
    }

    def body(g):
        parent, child = _fork_images(g)
        for name, data in parent_writes.items():
            parent.write_file(name, data)
        for name, data in child_writes.items():
            child.write_file(name, data)
        reconcile(parent, child)
        return (_snapshot(parent), _snapshot(child))

    with Machine() as machine:
        result = machine.run(body)
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        parent_view, child_view = result.r0
    expected = {}
    expected.update(parent_writes)
    expected.update(child_writes)
    assert parent_view == expected
    assert child_view == expected


@given(name=names, parent_data=contents, child_data=contents)
@settings(max_examples=30, deadline=None)
def test_same_file_writes_always_conflict(name, parent_data, child_data):
    def body(g):
        parent, child = _fork_images(g)
        parent.write_file(name, parent_data)
        child.write_file(name, child_data)
        outcome = reconcile(parent, child)
        flags = parent.stat(name)["flags"]
        idx = parent.lookup(name)
        kept = parent.read_data(idx, 0, parent.inode_size(idx))
        return (outcome.get(name), bool(flags & F_CONFLICT), kept)

    with Machine() as machine:
        result = machine.run(body)
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        outcome, flagged, kept = result.r0
    assert outcome == "conflict"
    assert flagged
    assert kept == parent_data            # the child's copy is discarded


@given(child_writes=write_maps)
@settings(max_examples=30, deadline=None)
def test_reconcile_idempotent(child_writes):
    def body(g):
        parent, child = _fork_images(g)
        for name, data in child_writes.items():
            child.write_file(name, data)
        reconcile(parent, child)
        first = _snapshot(parent)
        second_outcome = reconcile(parent, child)
        return (first, _snapshot(parent), second_outcome)

    with Machine() as machine:
        result = machine.run(body)
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        first, after, second_outcome = result.r0
    assert first == after
    assert second_outcome == {}
