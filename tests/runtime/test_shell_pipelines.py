"""Shell pipeline and fd-redirection tests."""


from repro.kernel import Machine
from repro.runtime.process import unix_root
from repro.runtime.shell import Shell


def run_shell(script, programs=None, console_input=b""):
    def init(rt):
        return Shell(rt).run_script(script)

    with Machine(programs=programs, console_input=console_input) as m:
        result = m.run(unix_root(init))
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def upper_prog(rt):
    """External filter: uppercase stdin to stdout."""
    data = rt.read_console()
    rt.write_console(data.upper())
    return 0


def count_prog(rt):
    """External filter: count stdin bytes."""
    total = 0
    while True:
        chunk = rt.read_console()
        if not chunk:
            break
        total += len(chunk)
    rt.write_console(f"{total}\n".encode())
    return 0


FILTERS = {"upper": upper_prog, "count": count_prog}


def test_builtin_to_builtin_pipe():
    result = run_shell("echo hello | cat")
    assert result.console == b"hello\n"


def test_builtin_to_external_pipe():
    result = run_shell("echo shout | upper", programs=FILTERS)
    assert result.console == b"SHOUT\n"


def test_external_to_external_pipe():
    result = run_shell(
        "echo abcdef > data\ncat data | upper | count",
        programs=FILTERS,
    )
    assert result.console == b"7\n"   # 'abcdef\n'


def test_pipeline_with_final_redirect():
    result = run_shell(
        "echo mixed | upper > out.txt\ncat out.txt",
        programs=FILTERS,
    )
    assert result.console == b"MIXED\n"


def test_three_stage_pipeline():
    result = run_shell("echo a b c | cat | cat")
    assert result.console == b"a b c\n"


def test_pipe_temp_files_cleaned_up():
    result = run_shell("echo x | cat\nls")
    assert b".pipe" not in result.console


def test_external_stdin_redirect_eof():
    """Redirected stdin hits EOF instead of blocking on the console."""
    result = run_shell(
        "echo 12345 > nums\ncount < nums",
        programs=FILTERS,
    )
    assert result.console == b"6\n"


def test_external_stdout_redirect_via_dup2():
    result = run_shell(
        "echo quiet > in\nupper < in > out\ncat out",
        programs=FILTERS,
    )
    assert result.console == b"QUIET\n"


def test_empty_stage_output_propagates_empty():
    result = run_shell("true | count", programs=FILTERS)
    assert result.console == b"0\n"


def test_pipeline_deterministic():
    script = "echo seed > s\ncat s | upper | count\nls"
    outs = {run_shell(script, programs=FILTERS).console for _ in range(3)}
    assert len(outs) == 1
