"""Checkpoint/rollback tests (Tree option, deterministic replay)."""


from repro.kernel import Machine, Trap
from repro.runtime.checkpoint import Checkpointer, run_with_checkpoints

A = 0x10_0000


def run(main, **kwargs):
    with Machine(**kwargs) as m:
        result = m.run(main)
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def _phased_counter(g, phases):
    """Increment a counter once per phase, parking between phases.

    Progress lives in simulated memory (the checkpoint-restart loop
    convention), so a restored image resumes where its memory says."""
    while True:
        count = g.load(A)
        if count >= phases:
            g.ret(status=0)
            continue
        g.store(A, count + 1)
        g.ret(status=1)


def test_save_restore_roundtrip():
    def main(g):
        g.put(1, regs={"entry": _phased_counter, "args": (5,)}, start=True)
        ckpt = Checkpointer(g)
        g.get(1)                        # phase 1 done, counter = 1
        ckpt.save(1, "after-1")
        for _ in range(2):              # run to counter = 3
            g.put(1, start=True)
            g.get(1)
        g.get(1, copy=(A & ~0xFFF, 0x1000))
        at_three = g.load(A)
        ckpt.restore(1, "after-1")
        g.get(1, copy=(A & ~0xFFF, 0x1000))
        restored = g.load(A)
        return (at_three, restored)

    assert run(main).r0 == (3, 1)


def test_replay_from_checkpoint_is_identical():
    def main(g):
        g.put(1, regs={"entry": _phased_counter, "args": (6,)}, start=True)
        ckpt = Checkpointer(g)
        g.get(1)
        ckpt.save(1, "base")

        def drive_to_completion():
            while True:
                view = g.get(1, regs=True)
                if view["status"] == 0:
                    g.get(1, copy=(A & ~0xFFF, 0x1000))
                    return g.load(A)
                g.put(1, start=True)

        first = drive_to_completion()
        ckpt.restore(1, "base")
        second = drive_to_completion()
        return (first, second)

    first, second = run(main).r0
    assert first == second == 6


def test_restore_unknown_tag_errors():
    def main(g):
        ckpt = Checkpointer(g)
        try:
            ckpt.restore(1, "ghost")
        except Exception as exc:
            return type(exc).__name__

    assert run(main).r0 == "RuntimeApiError"


def test_drop_releases_checkpoint():
    def main(g):
        g.put(1, regs={"entry": _phased_counter, "args": (2,)}, start=True)
        ckpt = Checkpointer(g)
        g.get(1)
        ckpt.save(1, "t")
        assert ckpt.tags() == ["t"]
        ckpt.drop("t")
        return ckpt.tags()

    assert run(main).r0 == []


def test_checkpoint_includes_descendants():
    """A Tree checkpoint freezes the whole subtree, grandchildren too."""
    def leafling(g):
        g.write(A, b"leaf-state")
        g.ret()

    def middle(g, phases):
        g.put(7, regs={"entry": leafling}, start=True)
        g.get(7)
        for _ in range(phases):
            g.ret(status=1)
        g.ret(status=0)

    def main(g):
        g.put(1, regs={"entry": middle, "args": (3,)}, start=True)
        ckpt = Checkpointer(g)
        g.get(1)
        ckpt.save(1, "full")
        # Destroy the live grandchild, then restore and inspect it.
        g.space.children[1].children[7].destroy()
        ckpt.restore(1, "full")
        grandchild = g.space.children[1].children[7]
        return bytes(grandchild.addrspace.read(A, 10))

    assert run(main).r0 == b"leaf-state"


def test_run_with_checkpoints_driver():
    def spinner(g, iters):
        for i in range(iters):
            g.work(2_000)
            g.store(A, i + 1)
        return "done"

    def main(g):
        view, ckpt, epochs = run_with_checkpoints(
            g, spinner, (20,), quantum=9_000, child_slot=0x700
        )
        return (view["trap"], view["r0"], epochs, len(ckpt.tags()) > 0)

    trap, value, epochs, has_tags = run(main).r0
    assert trap is Trap.EXIT
    assert value == "done"
    assert epochs >= 2
    assert has_tags


def test_rollback_after_injected_crash():
    """The fault-tolerance story: crash, roll back, replay past the bug
    after fixing the input."""
    POISON = A + 0x100

    def fragile(g, phases):
        while True:
            if g.load(POISON):
                raise RuntimeError("hit poisoned input")
            count = g.load(A)
            if count >= phases:
                g.ret(status=0)
                continue
            g.store(A, count + 1)
            g.ret(status=1)

    def main(g):
        g.put(1, regs={"entry": fragile, "args": (4,)}, start=True)
        ckpt = Checkpointer(g)
        g.get(1)
        ckpt.save(1, "safe")
        # Poison the child's input: the next phase crashes.
        g.store(POISON, 1)
        g.put(1, copy=(A & ~0xFFF, 0x1000), start=True)
        crashed = g.get(1, regs=True)["trap"]
        # Recover: restore the checkpoint (pre-poison memory) and re-run.
        ckpt.restore(1, "safe")
        while True:
            g.put(1, start=True)
            view = g.get(1, regs=True)
            if view["status"] == 0:
                break
        g.get(1, copy=(A & ~0xFFF, 0x1000))
        return (crashed, g.load(A))

    crashed, final = run(main).r0
    assert crashed is Trap.EXC
    assert final == 4


def test_delta_accounting_tracks_dirty_pages_between_saves():
    def main(g):
        g.put(1, regs={"entry": _phased_counter, "args": (5,)}, start=True)
        ckpt = Checkpointer(g)
        g.get(1)                        # counter = 1
        ckpt.save(1, "e0")
        g.put(1, start=True)
        g.get(1)                        # counter = 2 (one page dirtied)
        ckpt.save(1, "e1")
        return (ckpt.delta_pages["e0"], ckpt.delta_pages["e1"])

    first, second = run(main).r0
    assert first is None                # first save of the slot: full
    assert second == 1                  # exactly the counter's page


def test_delta_accounting_resets_after_restore():
    """Regression: restore() installs a fresh clone with a fresh write
    clock, so the pre-restore token must be dropped — the next save is
    a full one, not a bogus zero-page delta."""
    def main(g):
        g.put(1, regs={"entry": _phased_counter, "args": (5,)}, start=True)
        ckpt = Checkpointer(g)
        g.get(1)
        ckpt.save(1, "e0")
        g.put(1, start=True)
        g.get(1)
        ckpt.save(1, "e1")
        ckpt.restore(1, "e0")
        g.put(1, start=True)
        g.get(1)                        # restored child dirties its page
        ckpt.save(1, "e2")
        return repr(ckpt.delta_pages["e2"])

    assert run(main).r0 == "None"


def test_failed_save_leaves_delta_bookkeeping_intact():
    """Regression: a save that fails (child still running) must not
    advance the delta token or record a delta for a checkpoint that was
    never taken."""
    from repro.common.errors import KernelError

    def main(g):
        g.put(1, regs={"entry": _phased_counter, "args": (5,)}, start=True)
        ckpt = Checkpointer(g)
        g.get(1)                        # counter = 1
        ckpt.save(1, "e0")
        g.put(1, start=True)            # child READY again
        try:
            ckpt.save(1, "bad")         # Tree-copy of a running space
        except KernelError:
            pass
        g.get(1)                        # counter = 2
        ckpt.save(1, "e1")
        return ("bad" in ckpt.delta_pages, ckpt.delta_pages["e1"])

    bad_recorded, delta = run(main).r0
    assert not bad_recorded
    assert delta == 1
