"""Shared-memory threading tests: private workspace fork/join + barriers."""


from repro.common.errors import MergeConflictError
from repro.kernel import Machine
from repro.mem.layout import SHARED_BASE
from repro.runtime.threads import (
    ThreadFault,
    ThreadGroup,
    barrier_arrive,
    thread_fork,
    thread_join,
)

A = SHARED_BASE  # convenient alias


def in_guest(fn):
    with Machine() as m:
        result = m.run(fn)
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_fork_join_returns_value():
    def worker(g, x):
        return x + 1

    def main(g):
        thread_fork(g, 1, worker, (41,))
        return thread_join(g, 1)

    assert in_guest(main).r0 == 42


def test_in_place_updates_merge_back():
    def worker(g, i):
        g.store(A + 8 * i, i * 10)

    def main(g):
        g.write(A, bytes(64))
        for i in range(8):
            thread_fork(g, i + 1, worker, (i,))
        for i in range(8):
            thread_join(g, i + 1)
        return [g.load(A + 8 * i) for i in range(8)]

    assert in_guest(main).r0 == [i * 10 for i in range(8)]


def test_swap_race_free():
    """Paper §2.2: concurrent x=y / y=x always swaps."""
    def xy(g):
        g.store(A, g.load(A + 8))

    def yx(g):
        g.store(A + 8, g.load(A))

    def main(g):
        g.store(A, 7)
        g.store(A + 8, 9)
        thread_fork(g, 1, xy)
        thread_fork(g, 2, yx)
        thread_join(g, 1)
        thread_join(g, 2)
        return (g.load(A), g.load(A + 8))

    assert in_guest(main).r0 == (9, 7)


def test_write_write_race_is_detected_conflict():
    def w1(g):
        g.store(A, 111)

    def w2(g):
        g.store(A, 222)

    def main(g):
        thread_fork(g, 1, w1)
        thread_fork(g, 2, w2)
        thread_join(g, 1)
        try:
            thread_join(g, 2)
        except MergeConflictError:
            return "conflict-at-second-join"

    assert in_guest(main).r0 == "conflict-at-second-join"


def test_child_reads_prior_state_not_siblings():
    """Reads see only causally-prior writes (the actor example, Fig. 1)."""
    def actor(g, i, n):
        neighbors = [g.load(A + 8 * j) for j in range(n)]
        g.store(A + 8 * i, sum(neighbors) + i)

    def main(g):
        n = 4
        for j in range(n):
            g.store(A + 8 * j, 100)
        for i in range(n):
            thread_fork(g, i + 1, actor, (i, n))
        for i in range(n):
            thread_join(g, i + 1)
        return [g.load(A + 8 * j) for j in range(n)]

    # Every actor saw all-100 neighbor states regardless of join order.
    assert in_guest(main).r0 == [400 + i for i in range(4)]


def test_faulting_thread_raises_threadfault():
    def bad(g):
        raise RuntimeError("thread bug")

    def main(g):
        thread_fork(g, 1, bad)
        try:
            thread_join(g, 1)
        except ThreadFault as fault:
            return fault.trap.name

    assert in_guest(main).r0 == "EXC"


def test_thread_group_fork_join_all():
    def worker(g, i):
        g.store(A + 8 * i, i * i)
        return i

    def main(g):
        tg = ThreadGroup(g)
        for i in range(6):
            tg.fork(worker, (i,))
        results = tg.join_all()
        values = [g.load(A + 8 * i) for i in range(6)]
        return (results, values)

    results, values = in_guest(main).r0
    assert results == list(range(6))
    assert values == [i * i for i in range(6)]


def test_barrier_rounds_lockstep_actors():
    """Figure 1's time-step simulation across barriers."""
    STEPS = 3

    def actor(g, i, n):
        for _ in range(STEPS):
            total = sum(g.load(A + 8 * j) for j in range(n))
            g.store(A + 8 * i, total)
            barrier_arrive(g)
        return g.load(A + 8 * i)

    def main(g):
        n = 3
        for j in range(n):
            g.store(A + 8 * j, 1)
        tg = ThreadGroup(g)
        for i in range(n):
            tg.fork(actor, (i, n))
        return tg.run_barrier_rounds(max_rounds=10)

    # Deterministic lockstep: 1,1,1 -> 3,3,3 -> 9,9,9 -> 27 each.
    assert in_guest(main).r0 == [27, 27, 27]


def test_barrier_threads_see_all_prior_results():
    def worker(g, i):
        g.store(A + 8 * i, 5 + i)
        barrier_arrive(g)
        # After the barrier everyone sees both writes.
        return g.load(A) + g.load(A + 8)

    def main(g):
        tg = ThreadGroup(g)
        for i in range(2):
            tg.fork(worker, (i,))
        return tg.run_barrier_rounds()

    assert in_guest(main).r0 == [11, 11]


def test_private_region_not_merged():
    from repro.mem.layout import PRIVATE_BASE

    def worker(g):
        g.store(PRIVATE_BASE, 999)   # thread-private: never merged

    def main(g):
        g.store(PRIVATE_BASE, 5)
        thread_fork(g, 1, worker)
        thread_join(g, 1)
        return g.load(PRIVATE_BASE)

    assert in_guest(main).r0 == 5


def test_determinism_across_runs():
    def worker(g, i):
        g.work((i + 1) * 37)
        g.store(A + 8 * i, i)
        return i

    def main(g):
        tg = ThreadGroup(g)
        for i in range(5):
            tg.fork(worker, (i,))
        return tuple(tg.join_all())

    runs = {in_guest(main).r0 for _ in range(3)}
    assert len(runs) == 1
