"""Tests for the time-travel debugger (``repro.debug``).

The load-bearing claims:

* ``goto N`` recovers the machine state at cycle N **bit-identically**:
  deterministic across invocations, identical whether the original run
  was serial or sharded (the replay is always serial, so every sharded
  ``goto`` doubles as an oracle of the shard path), and identical under
  either schedule engine.
* Checkpoint diffs match ground truth computed two independent ways: a
  pure-Python bytewise compare of the frozen images, and the write list
  of a seeded randomized workload.
* Trapped-run summaries are byte-identical across same-seed reruns.
"""

import os
import random

import pytest

from repro import Machine
from repro.common.errors import DebugApiError
from repro.debug import Inspector
from repro.debug import render
from repro.debug.model import ADDED, CHANGED, RETAGGED
from repro.debug.scenarios import (INJECT_AT_EPOCH, ft_main, fault_tolerance,
                                   retx_main, retx_trap)
from repro.runtime.checkpoint import FREEZER_SLOT, Checkpointer
from repro.timing.schedule import ENGINES, schedule


@pytest.fixture(scope="module")
def ft():
    insp = Inspector.from_recipe(fault_tolerance)
    yield insp
    insp.machine.close()


@pytest.fixture(scope="module")
def retx():
    insp = Inspector.from_recipe(retx_trap)
    yield insp
    insp.machine.close()


# -- whole-run queries ------------------------------------------------------


def test_summary_and_tree_views(ft):
    summary = render.format_summary(ft)
    assert any("result=204 expected=204" in line for line in summary)
    tree = render.format_tree(ft.image, pages=True)
    assert any("tag=" in line for line in tree)
    # Every space the machine holds appears in the tree view.
    for image in ft.image.spaces():
        assert any(image.uid in line for line in tree)


def test_traps_located_on_schedule(ft, retx):
    (crash,) = ft.traps()
    assert crash.label == "exc"
    # The crashed space was destroyed by the rollback, so the final
    # image carries no trap_info for it — recovering that is exactly
    # what goto is for (test_goto_recovers_trapped_state).
    assert crash.trap_info == ""
    # The faulting stop sits at its post-trap segment's scheduled
    # finish, which is also where the crash epoch's work segment ends.
    assert crash.cycle == ft.timeline.finish[crash.seg_id]

    (lost,) = retx.traps()
    assert "retransmissions dropped" in lost.trap_info
    assert retx.image.root.trap.is_fault()


def test_backtrace_chains_cross_space_arrivals(ft):
    (crash,) = ft.traps()
    frames = ft.backtrace(crash.uid, limit=4)
    assert [f.seg_id for f in frames] == sorted(
        (f.seg_id for f in frames), reverse=True)
    # The crashed space was resumed by its supervisor: at least one
    # frame carries a cross-uid in-edge from the root's context.
    root_uid = ft.image.root.uid
    assert any(src == root_uid
               for f in frames for src, _seg, _kind in f.in_edges)
    with pytest.raises(DebugApiError):
        ft.backtrace("no-such-uid")


def test_checkpoints_enumerated_in_save_order(ft):
    ((owner_uid, _freezer_uid, tags),) = ft.checkpoints()
    assert owner_uid == ft.image.root.uid
    assert tags == [f"epoch-{i}" for i in range(len(tags))]
    assert len(tags) >= INJECT_AT_EPOCH


def test_retx_link_ledgers_record_the_drops(retx):
    # Every message of the doomed migration was dropped, so the trace
    # records no transfers — the evidence lives in the link ledgers.
    ledgers = retx.link_ledgers()
    assert any(stats["dropped_msgs"] for stats in ledgers.values())
    assert any(stats["retx_msgs"] for stats in ledgers.values())
    assert retx.links_at(0)["in_flight"] == []


def test_links_at_reconstructs_wire_state():
    # A lossless 2-node run of the same workload: the migration
    # succeeds and its transfers appear on the reconstructed wire.
    machine = Machine(nnodes=2)
    machine.run(retx_main)
    insp = Inspector(machine)
    try:
        timeline = insp.timeline
        assert timeline.transfers
        first = min(t.start for t in timeline.transfers)
        probe = min(t for t in (tr.end - 1 for tr in timeline.transfers)
                    if t >= first)
        state = insp.links_at(probe)
        assert state["in_flight"]
        assert state["kinds_started"]
        assert sum(state["link_busy"].values()) > 0
        # At the makespan nothing is left on the wire and occupancy
        # matches the final ledger of serialization time.
        assert insp.links_at(timeline.makespan)["in_flight"] == []
    finally:
        machine.close()


# -- goto: the time-travel contract -----------------------------------------


def test_goto_recovers_trapped_state(ft):
    (crash,) = ft.traps()
    result = ft.goto(crash.cycle)
    (trapped,) = result.trapped()
    assert "corrupted input block" in trapped.trap_info
    assert trapped.uid == crash.uid
    # At the crash instant the rollback has not happened: the freezer
    # directory holds exactly the epochs saved before the injection.
    freezer = result.image.root.children[FREEZER_SLOT]
    assert sorted(freezer.regs["r7"]) == [
        f"epoch-{i}" for i in range(INJECT_AT_EPOCH)]
    # The final state has recovered — the trap is gone from it.
    assert not [img for img in ft.image.spaces() if img.trap.is_fault()]


def test_goto_is_deterministic(ft):
    (crash,) = ft.traps()
    first = ft.goto(crash.cycle)
    second = ft.goto(crash.cycle)
    assert first.segments == second.segments
    assert first.image == second.image


def test_goto_mid_run_precedes_later_epochs(ft):
    # Early in the run only the first epochs exist anywhere: pick the
    # finish of an early segment and check the freezer's directory.
    early = sorted(ft.timeline.finish.values())[4]
    result = ft.goto(early)
    freezer = result.image.root.children[FREEZER_SLOT]
    assert len(freezer.regs["r7"]) < INJECT_AT_EPOCH
    assert len(result.segments) < len(ft.trace.segments)


def test_goto_rejects_pre_history_cycles(ft):
    with pytest.raises(DebugApiError):
        ft.goto(-1)


def test_goto_without_recipe_is_an_error(ft):
    bare = Inspector(ft.machine, result=ft.result)
    with pytest.raises(DebugApiError):
        bare.goto(0)


def test_goto_identical_across_engines(ft, monkeypatch):
    (crash,) = ft.traps()
    baseline = ft.goto(crash.cycle)
    monkeypatch.setenv("REPRO_SCHED_ENGINE", "list")
    other = Inspector(ft.machine, result=ft.result, recipe=fault_tolerance)
    result = other.goto(crash.cycle)
    assert result.segments == baseline.segments
    assert result.image == baseline.image


@pytest.mark.skipif(not hasattr(os, "fork"),
                    reason="sharding requires os.fork")
def test_goto_from_sharded_original(ft):
    """A sharded original run + serial goto replay: compare_traces
    inside goto() asserts serial-vs-sharded bit-identity, and the
    recovered image must equal the serial run's."""

    def sharded(prepare=None):
        machine = Machine(shard_workers=2)
        if prepare is not None:
            prepare(machine)
        result = machine.run(ft_main)
        return machine, result

    insp = Inspector.from_recipe(sharded)
    try:
        (crash,) = insp.traps()
        result = insp.goto(crash.cycle)
        baseline = ft.goto(crash.cycle)
        assert result.segments == baseline.segments
        assert result.image == baseline.image
    finally:
        insp.machine.close()


# -- timeline vs the schedule engines ---------------------------------------


def test_timeline_matches_both_schedule_engines(ft):
    timeline = ft.timeline
    for engine in ENGINES:
        sched = schedule(ft.trace, ncpus=ft.ncpus, engine=engine)
        assert timeline.makespan == sched.makespan
        assert timeline.start == sched.start
        assert timeline.finish == sched.finish


def test_timeline_link_busy_matches_schedule(retx):
    sched = schedule(retx.trace, ncpus=retx.ncpus)
    busy_at_end = retx.timeline.link_busy_until(retx.timeline.makespan)
    assert busy_at_end == sched.link_busy


# -- checkpoint diff vs ground truth ----------------------------------------

DIFF_BASE = 0x30_0000
DIFF_PAGES = 12
DIFF_SEED = 1234


def _oracle_writes():
    """Seeded write plan shared by the guest and the test oracle."""
    rng = random.Random(DIFF_SEED)
    writes = []
    for i in range(DIFF_PAGES):
        roll = rng.random()
        if roll < 0.4:
            off = rng.randrange(0, 4096 - 64)
            data = bytes(rng.randrange(256) for _ in range(64))
            writes.append((i, off, data))
        elif roll < 0.55:
            # Rewrite with identical bytes: breaks COW (fresh frame,
            # new tag) without changing content -> RETAGGED.
            writes.append((i, 0, bytes([i % 251]) * 64))
    return writes


def _diff_child(g):
    for i in range(DIFF_PAGES):
        g.write(DIFF_BASE + i * 0x1000, bytes([i % 251]) * 4096)
    g.ret(status=1)
    for i, off, data in _oracle_writes():
        g.write(DIFF_BASE + i * 0x1000 + off, data)
    g.ret(status=0)


def _diff_main(g):
    ckpt = Checkpointer(g)
    g.put(1, regs={"entry": _diff_child}, start=True)
    g.get(1)
    ckpt.save(1, "before")
    g.put(1, start=True)
    g.get(1)
    ckpt.save(1, "after")
    return 0


@pytest.fixture(scope="module")
def diff_run():
    machine = Machine()
    machine.run(_diff_main)
    insp = Inspector(machine)
    yield insp
    machine.close()


def test_diff_matches_write_plan_oracle(diff_run):
    # Checkpoints freeze the *child* subtree, so its page deltas sit at
    # the top level of the diff.
    diff = diff_run.diff("before", "after")
    by_vpn = {d.vpn: d for d in diff.pages}
    base_vpn = DIFF_BASE // 0x1000
    expected = {}
    for i, off, data in _oracle_writes():
        changed = sum(1 for byte in data if byte != i % 251)
        expected[base_vpn + i] = changed
    for vpn, changed in expected.items():
        delta = by_vpn.pop(vpn)
        if changed:
            assert delta.status == CHANGED
            assert delta.bytes_changed == changed
        else:
            assert delta.status == RETAGGED
    # No page outside the write plan may appear as a content change
    # (untouched pages share frames -> tag-equal -> skipped unread).
    assert all(d.status != CHANGED for d in by_vpn.values())


def test_diff_matches_naive_bytewise_compare(diff_run):
    """The batched ndarray diff agrees with a pure-Python compare of
    the raw frozen images — the second, implementation-independent
    oracle."""
    child_a = diff_run.checkpoint_image("before")
    child_b = diff_run.checkpoint_image("after")
    diff = diff_run.diff("before", "after")
    reported = {d.vpn: d for d in diff.pages}
    for vpn in set(child_a.pages) | set(child_b.pages):
        a = child_a.pages.get(vpn)
        b = child_b.pages.get(vpn)
        if a is None or b is None:
            assert reported[vpn].status in (ADDED, "removed")
            continue
        naive = sum(1 for x, y in zip(a.data, b.data) if x != y)
        if naive:
            assert reported[vpn].status == CHANGED
            assert reported[vpn].bytes_changed == naive
        elif vpn in reported:
            assert reported[vpn].status == RETAGGED


# -- rendering determinism --------------------------------------------------


def test_trapped_summary_bit_identical_across_reruns(retx):
    again = Inspector.from_recipe(retx_trap)
    try:
        assert render.format_summary(again) == render.format_summary(retx)
        assert render.format_links(again) == render.format_links(retx)
        assert (render.format_tree(again.image, pages=True)
                == render.format_tree(retx.image, pages=True))
    finally:
        again.machine.close()


def test_cli_smoke(capsys):
    from repro.debug.__main__ import main
    assert main(["--scenario", "retx", "summary"]) == 0
    first = capsys.readouterr().out
    assert main(["--scenario", "retx", "summary"]) == 0
    assert capsys.readouterr().out == first
    assert main(["--scenario", "retx", "diff", "nope", "nope2"]) == 1
    assert "no freezer" in capsys.readouterr().err
