"""Baseline Linux thread-simulator tests."""


from repro.baseline import LinuxMachine
from repro.timing.model import CostModel


def test_main_returns_value():
    machine = LinuxMachine()
    result = machine.run(lambda lt: 42)
    assert result.value == 42


def test_shared_memory_is_directly_shared():
    def main(lt):
        def child(ct):
            ct.store(0x1000, 99)

        handle = lt.spawn(child)
        lt.join(handle)
        return lt.load(0x1000)

    assert LinuxMachine().run(main).value == 99


def test_spawn_join_parallel_speedup():
    def main(lt):
        handles = [lt.spawn(lambda ct: ct.work(1_000_000)) for _ in range(4)]
        for handle in handles:
            lt.join(handle)

    r1 = LinuxMachine(ncpus=1).run(main)
    r4 = LinuxMachine(ncpus=4).run(main)
    assert r1.makespan() > 2.5 * r4.makespan()


def test_jitter_reproducible_per_seed_varies_across_seeds():
    def main(lt):
        handles = [lt.spawn(lambda ct: ct.work(500_000)) for _ in range(3)]
        for handle in handles:
            lt.join(handle)

    a = LinuxMachine(seed=1).run(main).makespan()
    b = LinuxMachine(seed=1).run(main).makespan()
    c = LinuxMachine(seed=2).run(main).makespan()
    assert a == b
    assert a != c


def test_contention_penalty_grows_with_cores():
    cost = CostModel()

    def main(lt):
        handles = [lt.spawn(lambda ct: ct.work(1000)) for _ in range(12)]
        for handle in handles:
            lt.join(handle)

    few = LinuxMachine(cost=cost, ncpus=1).run(main).total_cycles()
    many = LinuxMachine(cost=cost, ncpus=12).run(main).total_cycles()
    # Same logical work, but create/join serialization costs more with
    # more occupied cores (the [54] bottleneck model).
    assert many > few


def test_no_isolation_costs_in_trace():
    """Unlike Determinator, baseline interactions charge no page work."""
    def main(lt):
        def child(ct):
            ct.write(0x2000, b"x" * 4096)

        lt.join(lt.spawn(child))

    cost = CostModel()
    result = LinuxMachine(cost=cost).run(main)
    # Upper bound: thread ops + memory op charges; far below one
    # Determinator merge of the same page.
    overhead = result.total_cycles()
    assert overhead < cost.thread_create + cost.thread_join + \
        14 * cost.runqueue_penalty + 4096 // 16 + 1000


def test_lock_unlock_charges():
    def main(lt):
        lt.lock(0)
        lt.unlock(0)

    machine = LinuxMachine()
    machine.run(main)
    assert machine.trace.total_cycles() >= 2 * machine.cost.lock_op
