"""Distributed-memory baseline tests."""


from repro.baseline import DistLinux


def test_tree_distribution_scales():
    work = 200_000_000
    times = {}
    for n in (1, 4, 16):
        dist = DistLinux(nnodes=n)
        times[n] = dist.run_master_workers(
            worker_cycles=work // n, input_bytes=2000, output_bytes=2000,
            tree=True,
        )
    assert times[4] < times[1]
    assert times[16] < times[4]


def test_serial_circuit_slower_than_tree_at_scale():
    work = 100_000_000
    n = 16
    tree = DistLinux(nnodes=n).run_master_workers(
        worker_cycles=work // n, input_bytes=1000, output_bytes=1000,
        tree=True,
    )
    circuit = DistLinux(nnodes=n).run_serial_circuit(
        worker_cycles=work // n, input_bytes=1000, output_bytes=1000,
    )
    assert circuit > tree * 0.9  # circuit pays serial handshakes


def test_data_heavy_job_dominated_by_transfer():
    """Shipping large matrices erases the benefit of more nodes."""
    work = 50_000_000
    big = 4 * 1024 * 1024   # 4 MB each way
    t2 = DistLinux(nnodes=2).run_master_workers(
        worker_cycles=work // 2, input_bytes=big, output_bytes=big,
    )
    t8 = DistLinux(nnodes=8).run_master_workers(
        worker_cycles=work // 8, input_bytes=big, output_bytes=big,
    )
    # Serial transfer through the master: more nodes stop helping.
    assert t8 > 0.6 * t2


def test_deterministic():
    args = dict(worker_cycles=1_000_000, input_bytes=500, output_bytes=500)
    a = DistLinux(nnodes=4).run_master_workers(**args)
    b = DistLinux(nnodes=4).run_master_workers(**args)
    assert a == b
