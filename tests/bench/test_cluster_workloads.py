"""Direct tests for the distributed benchmark implementations (§6.3)."""

import hashlib


from repro.bench import cluster_workloads as cw
from repro.bench.workloads.matmult import expected_checksum


def test_md5_circuit_finds_target_any_size():
    main = cw.md5_circuit_main(3)
    values = set()
    for nodes in (1, 3, 5):
        _, _, value = cw.run_cluster(main, nodes)
        values.add(value)
    assert len(values) == 1
    target = values.pop()
    length, digest = cw._md5_params(3)
    assert hashlib.md5(target.encode()).hexdigest() == digest


def test_md5_tree_matches_circuit_result():
    _, _, circuit = cw.run_cluster(cw.md5_circuit_main(3), 4)
    _, _, tree = cw.run_cluster(cw.md5_tree_main(3), 4)
    assert circuit == tree


def test_matmult_tree_correct_on_all_sizes():
    main = cw.matmult_tree_main(n=64, seed=7)
    reference = expected_checksum(64, 7)
    for nodes in (1, 2, 4):
        _, _, value = cw.run_cluster(main, nodes)
        assert value == reference


def test_odd_node_counts_handled():
    """Non-power-of-two trees must still cover the whole search space."""
    main = cw.md5_tree_main(3)
    _, _, v3 = cw.run_cluster(main, 3)
    _, _, v7 = cw.run_cluster(main, 7)
    _, _, v1 = cw.run_cluster(main, 1)
    assert v3 == v7 == v1


def test_cluster_benchmarks_charge_network_traffic():
    _, machine, _ = cw.run_cluster(cw.matmult_tree_main(n=64), 4)
    assert machine.pages_fetched > 0


def test_tcp_mode_increases_time_slightly():
    plain, _, _ = cw.run_cluster(cw.matmult_tree_main(n=64), 4)
    tcp, _, _ = cw.run_cluster(cw.matmult_tree_main(n=64), 4, tcp_mode=True)
    assert plain < tcp < plain * 1.02
