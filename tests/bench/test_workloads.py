"""Workload correctness on both backends, at test-friendly sizes."""

import pytest

from repro.bench.harness import run_determinator, run_linux
from repro.bench.workloads import (
    ALL,
    blackscholes_workload,
    matmult_workload,
)

SMALL = {
    "md5": {"length": 3, "rounds": 4},
    "matmult": {"n": 64},
    "qsort": {"n": 1 << 12},
    "blackscholes": {"noptions": 1 << 12, "quantum": 500_000},
    "fft": {"n": 1 << 10},
    "lu_cont": {"n": 64, "block": 16},
    "lu_noncont": {"n": 64, "block": 16},
}


def small_params(name, nworkers):
    """Overrides go through default_params so derived values (digest,
    fork depth) stay consistent with the overridden sizes."""
    mod, extra = ALL[name]
    kwargs = dict(SMALL[name])
    kwargs.update(extra)
    return mod, mod.default_params(nworkers, **kwargs)


@pytest.mark.parametrize("name", sorted(ALL))
def test_results_identical_on_both_backends(name):
    mod, params = small_params(name, 4)
    det = run_determinator(mod, params)
    lin = run_linux(mod, params, ncpus=4)
    assert det.value == lin.value


@pytest.mark.parametrize("name", sorted(ALL))
def test_determinator_run_is_repeatable(name):
    mod, params = small_params(name, 3)
    a = run_determinator(mod, params)
    b = run_determinator(mod, params)
    assert a.value == b.value
    assert a.makespan(4) == b.makespan(4)


def test_md5_finds_planted_password():
    import hashlib
    mod, params = small_params("md5", 2)
    det = run_determinator(mod, params)
    assert hashlib.md5(det.value.encode()).hexdigest() == params["digest"]


def test_matmult_checksum_matches_reference():
    mod, params = small_params("matmult", 4)
    det = run_determinator(mod, params)
    assert det.value == matmult_workload.expected_checksum(
        params["n"], params["seed"]
    )


def test_qsort_output_sorted():
    mod, params = small_params("qsort", 4)
    det = run_determinator(mod, params)
    sorted_flag, _checksum = det.value
    assert sorted_flag


def test_blackscholes_checksum_matches_reference():
    mod, params = small_params("blackscholes", 4)
    det = run_determinator(mod, params)
    assert det.value == blackscholes_workload.expected_checksum(
        params["noptions"], params["seed"]
    )


def test_fft_verified_against_numpy():
    mod, params = small_params("fft", 4)
    det = run_determinator(mod, params)
    verified, _ = det.value
    assert verified


@pytest.mark.parametrize("contiguous", [True, False])
def test_lu_factors_correctly(contiguous):
    name = "lu_cont" if contiguous else "lu_noncont"
    mod, params = small_params(name, 4)
    det = run_determinator(mod, params)
    verified, _ = det.value
    assert verified


def test_lu_noncont_costs_more_merging_than_cont():
    _, params_c = small_params("lu_cont", 4)
    _, params_n = small_params("lu_noncont", 4)
    mod, _ = ALL["lu_cont"]
    det_c = run_determinator(mod, params_c)
    det_n = run_determinator(mod, params_n)
    diffed_c = sum(s.pages_diffed for s in det_c.machine.merge_stats_total)
    diffed_n = sum(s.pages_diffed for s in det_n.machine.merge_stats_total)
    assert diffed_n >= diffed_c


def test_fine_grained_pays_more_than_coarse():
    """lu (fine-grained) must show a worse Linux ratio than matmult."""
    mod_m, params_m = small_params("matmult", 4)
    mod_l, params_l = small_params("lu_cont", 4)
    ratio_m = (run_linux(mod_m, params_m, 4).makespan()
               / run_determinator(mod_m, params_m).makespan(4))
    ratio_l = (run_linux(mod_l, params_l, 4).makespan()
               / run_determinator(mod_l, params_l).makespan(4))
    assert ratio_l < ratio_m


def test_md5_beats_linux_at_high_core_counts():
    mod, _ = ALL["md5"]
    # Fewer rounds -> more compute per fork, as at figure scale.
    params = mod.default_params(12, length=3, rounds=2)
    det = run_determinator(mod, params)
    lin = run_linux(mod, params, ncpus=12)
    assert lin.makespan() / det.makespan(12) > 1.3
