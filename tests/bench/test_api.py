"""Tests for the common parallel API layer (both backends)."""

import pytest

from repro.baseline.threadsim import LinuxMachine
from repro.bench.api import DetApi, LinuxApi
from repro.kernel import Machine
from repro.mem.layout import SHARED_BASE

A = SHARED_BASE


def run_det(body):
    with Machine() as machine:
        result = machine.run(lambda g: body(DetApi(g)))
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        return result.r0


def run_linux(body):
    machine = LinuxMachine(ncpus=4)
    return machine.run(lambda lt: body(LinuxApi(lt))).value


BACKENDS = [run_det, run_linux]


@pytest.mark.parametrize("run", BACKENDS)
def test_fork_join_collects_results_in_order(run):
    def body(api):
        return api.fork_join(lambda w, tid, x: tid * x, [(2,), (3,), (4,)])

    assert run(body) == [0, 3, 8]


@pytest.mark.parametrize("run", BACKENDS)
def test_spawn_join_allows_concurrent_parent_work(run):
    def body(api):
        def child(w, tid, base):
            w.store(A + 8, base + 1)
            return "child-done"

        handle = api.spawn(child, (10,))
        api.store(A, 5)                 # parent works before joining
        result = api.join(handle)
        return (result, api.load(A), api.load(A + 8))

    assert run(body) == ("child-done", 5, 11)


@pytest.mark.parametrize("run", BACKENDS)
def test_nested_spawns(run):
    def leaf(w, tid, value):
        return value * 2

    def mid(w, tid, value):
        handle = w.spawn(leaf, (value,))
        own = value + 1
        return w.join(handle) + own

    def body(api):
        handle = api.spawn(mid, (10,))
        return api.join(handle)

    assert run(body) == 31


@pytest.mark.parametrize("run", BACKENDS)
def test_parallel_rounds_visibility(run):
    """Every worker sees all prior-round writes at the next round."""
    def worker(w, tid, round_):
        if round_ == 0:
            w.store(A + 8 * tid, tid + 1)
            return 0
        return w.load(A) + w.load(A + 8)

    def body(api):
        return api.parallel_rounds(2, 2, worker)

    assert run(body) == [3, 3]


@pytest.mark.parametrize("run", BACKENDS)
def test_memory_surface_shared_semantics(run):
    import numpy as np

    def body(api):
        api.array_write(A + 0x100, np.arange(10, dtype=np.int64))
        back = api.array_read(A + 0x100, np.int64, 10)
        api.work(100)
        api.alloc_work(100)
        return int(back.sum())

    assert run(body) == 45


def test_kind_attribute_distinguishes_backends():
    assert run_det(lambda api: api.kind) == "determinator"
    assert run_linux(lambda api: api.kind) == "linux"
