"""Shape assertions for the figure generators, at reduced sizes.

These tests pin the *qualitative* claims of the paper's evaluation; the
benchmarks/ directory regenerates the full-size series.
"""

import pytest

from repro.bench import figures
from repro.bench.codesize import table3


def test_figure4_schedules():
    f4 = figures.figure4()
    # Unix -j == Unix -j2 == optimal packing on 2 CPUs.
    assert f4["unix -j"] == f4["unix -j2"] == 3_000_000
    # Determinator -j tracks Unix -j closely (scheduling left to the system).
    assert f4["determinator -j"] < 1.15 * f4["unix -j"]
    # Determinator -j2: deterministic wait() yields the Fig. 4(d) schedule,
    # ~1.5x worse (medium task serialized after the long task's wait).
    assert f4["determinator -j2"] > 1.4 * f4["unix -j2"]


def test_figure7_shape_small():
    series = figures.figure7(cpu_counts=(1, 8), benchmarks=["md5", "lu_cont"])
    # md5: Determinator wins at high core counts (paper: 2.25x at 12).
    assert series["md5"][8] > 1.2
    # lu: fine-grained pays heavily (paper: far below 1).
    assert series["lu_cont"][8] < 0.5
    # At one core everything is within noise of parity.
    assert 0.5 < series["md5"][1] < 1.2


def test_figure8_scaling_small():
    series = figures.figure8(cpu_counts=(1, 8),
                             benchmarks=["md5", "qsort"])
    # Embarrassingly parallel md5 scales well; qsort poorly (paper Fig. 8).
    assert series["md5"][8] > 4.0
    assert series["qsort"][8] < series["md5"][8]
    assert series["md5"][1] == pytest.approx(1.0, rel=0.05)


def test_figure9_ratio_improves_with_size():
    series = figures.figure9(sizes=(16, 256), ncpus=8)
    assert series[256] > series[16]


def test_figure10_ratio_improves_with_size():
    series = figures.figure10(sizes=(1 << 10, 1 << 16), ncpus=8)
    assert series[1 << 16] > series[1 << 10]


def test_figure11_shapes_small():
    series = figures.figure11(node_counts=(1, 2, 8), md5_length=3,
                              matmult_n=256)
    # md5-tree scales with nodes.
    assert series["md5-tree"][8] > 4.0
    # matmult-tree levels off around two nodes.
    assert series["matmult-tree"][8] < 2.0
    assert series["md5-tree"][1] == pytest.approx(1.0)


def test_figure11_topology_ordering_small():
    series = figures.figure11_topology(node_counts=(1, 4), matmult_n=128)
    for label in ("flat", "two-tier", "fat-tree"):
        assert series[label][1] == pytest.approx(1.0)
    # The flat mesh is the upper envelope; oversubscribed two-tier the
    # lower; full-bisection fat-tree between.
    assert series["flat"][4] >= series["fat-tree"][4]
    assert series["fat-tree"][4] > series["two-tier"][4]


def test_figure12_md5_comparable_and_tcp_cheap():
    series = figures.figure12(node_counts=(2, 8), md5_length=4,
                              matmult_n=256)
    assert 0.8 < series["md5-tree"][2] < 1.2
    assert 0.8 < series["md5-tree"][8] < 1.2
    for nodes, impact in series["tcp-impact"].items():
        assert impact < 0.02, f"TCP impact {impact:.3f} at {nodes} nodes"


def test_table3_counts_components():
    text, sizes = table3()
    assert sizes["Kernel core"] > 500
    assert sizes["User-level runtime"] > 500
    assert sizes["Total"] == sum(v for k, v in sizes.items() if k != "Total")
    assert "Kernel core" in text


def test_format_series_renders():
    text = figures.format_series("T", {"a": {1: 1.0, 2: 2.0}, "b": {1: 3.0}})
    assert "T" in text and "a" in text and "-" in text
