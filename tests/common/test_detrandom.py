"""Deterministic RNG tests."""

import pytest

from repro.common.detrandom import DeterministicRandom


def test_same_seed_same_stream():
    a = DeterministicRandom(123)
    b = DeterministicRandom(123)
    assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]


def test_different_seeds_diverge():
    a = DeterministicRandom(1)
    b = DeterministicRandom(2)
    assert a.next_u64() != b.next_u64()


def test_uniform_in_range():
    rng = DeterministicRandom(7)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value < 3.0


def test_randint_inclusive_bounds():
    rng = DeterministicRandom(7)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_jitter_bounded():
    rng = DeterministicRandom(9)
    for _ in range(100):
        dilated = rng.jitter(1000.0, 0.05)
        assert 1000.0 <= dilated < 1050.0


def test_choice_and_empty_choice():
    rng = DeterministicRandom(11)
    assert rng.choice([42]) == 42
    with pytest.raises(IndexError):
        rng.choice([])


def test_shuffle_is_permutation_and_seed_stable():
    a = list(range(20))
    b = list(range(20))
    DeterministicRandom(5).shuffle(a)
    DeterministicRandom(5).shuffle(b)
    assert a == b
    assert sorted(a) == list(range(20))


def test_fork_gives_independent_stream():
    parent = DeterministicRandom(3)
    child = parent.fork()
    assert child.next_u64() != parent.next_u64()


def test_known_value_stability():
    """Pin the SplitMix64 output so recorded experiments never drift."""
    assert DeterministicRandom(42).next_u64() == 13679457532755275413
