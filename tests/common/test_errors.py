"""Exception-hierarchy tests."""

import pytest

from repro.common.errors import (
    BadChildError,
    DeadlockError,
    FileConflictError,
    FileSystemError,
    GuestKilled,
    KernelError,
    MemoryError_,
    MergeConflictError,
    PageFaultError,
    PermissionFault,
    ReproError,
    RuntimeApiError,
)


def test_hierarchy_roots():
    assert issubclass(KernelError, ReproError)
    assert issubclass(BadChildError, KernelError)
    assert issubclass(MemoryError_, ReproError)
    assert issubclass(PageFaultError, MemoryError_)
    assert issubclass(PermissionFault, MemoryError_)
    assert issubclass(MergeConflictError, MemoryError_)
    assert issubclass(FileSystemError, RuntimeApiError)
    assert issubclass(FileConflictError, FileSystemError)
    assert issubclass(DeadlockError, RuntimeApiError)


def test_guest_killed_not_catchable_as_exception():
    """GuestKilled must bypass ``except Exception`` in guest code."""
    assert issubclass(GuestKilled, BaseException)
    assert not issubclass(GuestKilled, Exception)


def test_page_fault_formats_address():
    err = PageFaultError(0xDEAD0000)
    assert err.addr == 0xDEAD0000
    assert "0xdead0000" in str(err)


def test_permission_fault_records_need():
    err = PermissionFault(0x1000, "write")
    assert err.needed == "write"
    assert "write" in str(err)


def test_merge_conflict_records_byte():
    err = MergeConflictError(0x1234)
    assert err.addr == 0x1234
    assert "conflict" in str(err)


def test_file_conflict_records_name():
    err = FileConflictError("a.out")
    assert err.name == "a.out"
    assert "a.out" in str(err)


def test_one_catch_all():
    """Library users can catch everything with ReproError."""
    for exc in (KernelError("x"), PageFaultError(0), FileSystemError("y"),
                MergeConflictError(0), DeadlockError("z")):
        with pytest.raises(ReproError):
            raise exc
