"""Fault injection into the real backend: a worker killed mid-protocol
must surface as a typed :class:`BackendError` within a bounded deadline
and leave no child processes behind."""

import multiprocessing
import os
import time

import pytest

from repro.bench import cluster_workloads as cw
from repro.cluster.backend import run_real
from repro.cluster.realnet import localhost_available
from repro.common.errors import BackendError

pytestmark = [
    pytest.mark.skipif(not hasattr(os, "fork"),
                       reason="real backend needs os.fork"),
    pytest.mark.skipif(not localhost_available(),
                       reason="localhost TCP sockets unavailable"),
]

#: Worker-side fault points, in protocol order: death while the parent
#: serves the forward page exchange, and death after the hand-back
#: header but before its page batches (parent mid-collect).
FAULTS = ["die-before-install", "die-before-handback", "die-mid-handback"]


def assert_no_leaked_children(grace=10.0):
    deadline = time.monotonic() + grace
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


@pytest.mark.parametrize("fault", FAULTS)
def test_worker_death_is_typed_bounded_and_leakless(fault):
    def configure(machine):
        machine.shard.deadline = 10.0
        machine.shard.fault_inject = fault

    start = time.monotonic()
    with pytest.raises(BackendError, match="real backend aborted"):
        run_real(cw.md5_circuit_main(2), 2, configure=configure)
    # Bounded: the 10s channel deadline plus join/teardown slack, far
    # below the 60s default a hang would consume.
    assert time.monotonic() - start < 40.0
    assert_no_leaked_children()


def test_clean_run_leaves_no_children():
    result = run_real(cw.md5_circuit_main(2), 2)
    assert result.value is not None
    assert_no_leaked_children()
