"""Wire-compression codec: round-trip, size bounds, scheme selection."""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.cluster import compress
from repro.mem.page import PAGE_SIZE


def _page(data=b"", fill=0):
    """A full page: ``data`` padded with ``fill`` bytes."""
    return bytes(data) + bytes([fill]) * (PAGE_SIZE - len(data))


def _rng_bytes(seed, n=PAGE_SIZE):
    """Deterministic pseudo-random bytes (no global RNG state)."""
    out = bytearray()
    counter = 0
    while len(out) < n:
        out += hashlib.sha256(f"{seed}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:n])


# -- scheme selection ------------------------------------------------------

def test_zero_page_suppressed():
    scheme, payload = compress.encode_page(_page())
    assert scheme == compress.SCHEME_ZERO
    assert payload == b""
    assert compress.wire_size(_page()) == 0


def test_sparse_page_rle_much_smaller():
    """A page holding 32 payload bytes (the md5 digest page shape)."""
    scheme, payload = compress.encode_page(_page(b"d" * 32))
    assert scheme == compress.SCHEME_RLE
    assert len(payload) < 100


def test_small_int32_array_compresses():
    """Little-endian int32 values < 256: one payload byte, three zero
    bytes — the shape of matmult's input matrices."""
    import numpy as np
    data = np.arange(1, 1025, dtype="<i4") % 99 + 1
    scheme, payload = compress.encode_page(data.tobytes())
    assert scheme == compress.SCHEME_RLE
    assert len(payload) <= 3 * PAGE_SIZE // 4


def test_random_page_falls_back_to_raw():
    data = _rng_bytes("entropy")
    scheme, payload = compress.encode_page(data)
    assert scheme == compress.SCHEME_RAW
    assert payload == data
    assert compress.wire_size(data) == PAGE_SIZE


# -- round-trip properties -------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=64), st.integers(0, 255))
def test_roundtrip_padded_pages(prefix, fill):
    """Constant-fill pages with an arbitrary prefix round-trip."""
    data = _page(prefix, fill)
    scheme, payload = compress.encode_page(data)
    assert compress.decode_page(scheme, payload) == data
    assert len(payload) <= PAGE_SIZE


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, PAGE_SIZE - 1),
                          st.binary(min_size=1, max_size=200)),
                max_size=8))
def test_roundtrip_sparse_scatter(writes):
    """Pages with scattered literal islands in a zero sea round-trip,
    and never encode above raw size."""
    page = bytearray(PAGE_SIZE)
    for offset, blob in writes:
        blob = blob[:PAGE_SIZE - offset]
        page[offset:offset + len(blob)] = blob
    data = bytes(page)
    scheme, payload = compress.encode_page(data)
    assert compress.decode_page(scheme, payload) == data
    assert len(payload) <= PAGE_SIZE


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32))
def test_roundtrip_pseudorandom_pages(seed):
    data = _rng_bytes(seed)
    scheme, payload = compress.encode_page(data)
    assert compress.decode_page(scheme, payload) == data
    assert len(payload) <= PAGE_SIZE


def test_roundtrip_run_boundaries():
    """Runs straddling the 128-byte token limits round-trip exactly."""
    for run in (1, 2, 3, 127, 128, 129, 256, 257, PAGE_SIZE - 66):
        data = _page(b"x" * 64 + b"\x00" * run + b"y", fill=7)
        scheme, payload = compress.encode_page(data)
        assert compress.decode_page(scheme, payload) == data


def test_reject_bad_inputs():
    import pytest
    with pytest.raises(ValueError):
        compress.encode_page(b"short")
    with pytest.raises(ValueError):
        compress.decode_page(compress.SCHEME_ZERO, b"x")
    with pytest.raises(ValueError):
        compress.decode_page(compress.SCHEME_RAW, b"short")
    with pytest.raises(ValueError):
        compress.decode_page("gzip", b"")
    with pytest.raises(ValueError):
        compress.decode_page(compress.SCHEME_RLE, bytes([5]))  # truncated
