"""Deterministic adaptive control plane: determinism, oracles, policies.

The controller closes the knob feedback loop at quantum boundaries from
telemetry windows that are a pure function of simulated state, so:

* same-seed reruns must reproduce decisions, traces, memory images, and
  makespans bit-identically;
* ``control=None`` must stay byte-identical to a machine that never
  heard of the control plane;
* across fabrics and loss rates, adaptive must compute identical values
  and never lose to the best static knob setting (the oracle the
  ablation gates at full size — exercised here on small workloads).

The policy unit tests drive ``Controller`` directly with fabricated
telemetry windows, checking the AIMD transitions (churn collapse, fleet
ratchet, growth holdoff, the depth-1 floor), the RFC 6298 timeout
arithmetic with its physics floor and static ceiling, and the placement
policy's persistence and dominance guards.
"""

import hashlib

import pytest

from repro.bench import cluster_workloads as cw
from repro.cluster import Controller, NetworkStats, resolve_control
from repro.cluster.transport import NODE_WINDOW_KEYS, TelemetryWindow
from repro.kernel import Machine

NODES = 4

#: Small build of the phase-skewed workload (bench runs it full-size):
#: phase A churns the prefetch queues, phase B rewards deep streaming.
SKEWED = dict(n=128, rounds=8, width=8, work=10_000)


def _skewed():
    return cw.matmult_skewed_main(**SKEWED)


def _image(space):
    digest = hashlib.sha256()
    aspace = space.addrspace
    for vpn in aspace.mapped_vpns():
        digest.update(vpn.to_bytes(8, "little"))
        digest.update(aspace.frame(vpn).data)
    return digest.hexdigest()


def _run(control=None, loss=None, depth=None, workload=None):
    makespan, machine, value = cw.run_cluster(
        workload or cw.matmult_tree_main(64), NODES, ship_mode="demand",
        topology="two_tier:2", prefetch_depth=depth, loss=loss,
        control=control)
    return makespan, machine, value


# -- determinism -----------------------------------------------------------

def test_same_seed_reruns_bit_identical():
    """Two identical adaptive runs reproduce every observable: value,
    memory image, makespan, the decision log, and the trace's decision
    records."""
    runs = []
    for _ in range(2):
        makespan, machine, value = _run(control="adaptive",
                                        loss={"drop": 0.02, "seed": 7},
                                        workload=_skewed())
        runs.append((value, _image(machine.root), makespan,
                     tuple(machine.control.log),
                     tuple(machine.trace.decisions)))
        assert machine.control.log, "controller made no decisions"
    assert runs[0] == runs[1]


def test_control_none_is_inert():
    """A machine with ``control=None`` carries no controller state and
    matches a plain static run exactly."""
    base = _run(depth=16)
    off = _run(control=None, depth=16)
    assert base[0] == off[0]
    assert base[2] == off[2]
    assert _image(base[1].root) == _image(off[1].root)
    assert off[1].control is None
    assert off[1].trace.decisions == []


def test_decisions_anchored_on_trace():
    """Every decision lands on the trace (same count as the log) and is
    anchored at a real segment of the deciding rendezvous."""
    _, machine, _ = _run(control="adaptive", workload=_skewed())
    decisions = machine.trace.decisions
    assert len(decisions) == len(machine.control.log)
    assert decisions, "expected at least one adaptive decision"
    seg_ids = {segment.id for segment in machine.trace.segments}
    assert all(seg_id in seg_ids for seg_id, *_ in decisions)


# -- adaptive-vs-static oracle (small; the ablation runs it full-size) -----

@pytest.mark.parametrize("topology", ["flat", "two_tier:2", "fat_tree:2"])
@pytest.mark.parametrize("loss", [None, 0.01, 0.05])
def test_adaptive_oracle(topology, loss):
    """Identical values everywhere; adaptive makespan never worse than
    the best static depth."""
    values = set()
    best = None
    for depth in (0, 4, 16):
        makespan, machine, value = cw.run_cluster(
            cw.matmult_tree_main(64), NODES, ship_mode="demand",
            topology=topology, prefetch_depth=depth, loss=loss)
        values.add(value)
        best = makespan if best is None else min(best, makespan)
    makespan, machine, value = cw.run_cluster(
        cw.matmult_tree_main(64), NODES, ship_mode="demand",
        topology=topology, loss=loss, control="adaptive")
    values.add(value)
    assert len(values) == 1
    assert makespan <= best


def test_skewed_workload_adaptive_beats_statics():
    """The churn workload's acceptance property at test scale: adaptive
    strictly beats every static depth (full grid in the ablation)."""
    statics = []
    values = set()
    for depth in (0, 8, 32):
        makespan, _, value = cw.run_cluster(
            _skewed(), NODES, ship_mode="demand", topology="two_tier:2",
            prefetch_depth=depth)
        statics.append(makespan)
        values.add(value)
    makespan, machine, value = cw.run_cluster(
        _skewed(), NODES, ship_mode="demand", topology="two_tier:2",
        control="adaptive")
    values.add(value)
    assert len(values) == 1
    assert all(makespan < static for static in statics), \
        (makespan, statics)
    # The signature trajectory: one early churn collapse off the boot
    # depth, later demand-driven growth for the streaming phase.
    log = machine.control.log
    assert any("prefetch" in line and "-> 1" in line for line in log), log


# -- resolve_control -------------------------------------------------------

def test_resolve_control_specs():
    assert resolve_control(None) is None
    ctrl = resolve_control("adaptive")
    assert isinstance(ctrl, Controller)
    assert ctrl.policies == Controller.POLICIES
    custom = resolve_control({"policies": ("prefetch",), "depth_cap": 8})
    assert custom.policies == ("prefetch",)
    assert custom.depth_cap == 8
    assert resolve_control(custom) is custom
    with pytest.raises(ValueError):
        resolve_control("aggressive")
    with pytest.raises(ValueError):
        resolve_control({"policies": ("prefetch", "voodoo")})
    with pytest.raises(ValueError):
        resolve_control({"interval": 0})
    with pytest.raises(ValueError):
        resolve_control(42)


# -- policy unit tests (fabricated windows) --------------------------------

def _window(index, node_rows, route_samples=None, pair_bytes=None,
            drops=0):
    nodes = {}
    for node, overrides in node_rows.items():
        row = dict.fromkeys(NODE_WINDOW_KEYS, 0)
        row.update(overrides)
        nodes[node] = row
    return TelemetryWindow(index, nodes, route_samples or {},
                           pair_bytes or {}, drops=drops, retx_msgs=0,
                           retx_wait=0, messages=0)


@pytest.fixture
def machine():
    with Machine(nnodes=NODES, ship_mode="demand", topology="two_tier:2",
                 control=Controller(depth0=32)) as m:
        yield m


def _decide(machine, window):
    machine.control._decide_prefetch(machine, window, None)


def test_churn_collapse_and_fleet_ratchet(machine):
    """A churn-dominated window collapses the node to observed demand
    and ratchets every node's depth down with it (the SPMD lesson)."""
    ctrl = machine.control
    assert ctrl.depth_for(0) == 32
    _decide(machine, _window(0, {0: {"prefetch_issued": 24,
                                     "prefetch_used": 24,
                                     "prefetch_refresh": 16}}))
    assert ctrl.depth_for(0) == 1
    # Fleet ratchet: nodes that never reported telemetry are pinned
    # too, and a later demand jump on one node cannot resurrect them
    # through the boot default.
    assert all(ctrl.depth_for(n) == 1 for n in range(NODES))
    assert ctrl._boot == 1
    _decide(machine, _window(1, {2: {"pulled": 40}}))
    assert ctrl.depth_for(2) == 1, "growth must hold after a collapse"


def test_growth_hold_then_slow_start(machine):
    """After a collapse, growth stays armed only behind ``growth_hold``
    strictly-clean windows; then demand jumps depth to the burst."""
    ctrl = machine.control
    _decide(machine, _window(0, {0: {"prefetch_issued": 8,
                                     "prefetch_used": 8,
                                     "prefetch_refresh": 8}}))
    assert ctrl.depth_for(0) == 1
    # Two clean windows drain the holdoff (no growth yet)...
    _decide(machine, _window(1, {0: {"pulled": 40}}))
    _decide(machine, _window(2, {0: {"pulled": 40}}))
    assert ctrl.depth_for(0) == 1
    # ...and the next demand burst jumps straight to its size.
    _decide(machine, _window(3, {0: {"pulled": 40}}))
    assert ctrl.depth_for(0) == 40
    assert ctrl._boot == 40, "demand jumps ratchet the boot depth up"


def test_waste_halves_with_floor(machine):
    """Stale/aged waste halves depth multiplicatively but never below
    1: a zero queue would observe nothing and oscillate."""
    ctrl = machine.control
    for index in range(8):
        _decide(machine, _window(index, {0: {"prefetch_issued": 4,
                                             "prefetch_stale": 4}}))
    assert ctrl.depth_for(0) == 1


def test_dirty_windows_keep_growth_held(machine):
    """Windows still showing stale waste neither drain the holdoff nor
    clear the churn flag — only strictly-clean windows re-arm jumps."""
    ctrl = machine.control
    _decide(machine, _window(0, {0: {"prefetch_issued": 8,
                                     "prefetch_used": 8,
                                     "prefetch_refresh": 8}}))
    for index in range(1, 6):
        _decide(machine, _window(index, {0: {"pulled": 8,
                                             "prefetch_issued": 1,
                                             "prefetch_stale": 1}}))
    assert ctrl.depth_for(0) == 1


def test_retx_timeout_floor_and_ceiling():
    """SRTT timeouts respect both clamps: never below twice the route
    transit, never above the static ``cost.retx_timeout``."""
    with Machine(nnodes=NODES, ship_mode="demand", topology="two_tier:2",
                 loss={"drop": 0.02, "seed": 1},
                 control="adaptive") as machine:
        ctrl = machine.control
        cost = machine.cost
        rack = 2 * machine.topology.route_latency(cost, 0, 1)
        # A fast rack route converges below the static timer but stops
        # at the physics floor.
        for index in range(40):
            ctrl._decide_retx(machine, _window(
                index, {}, route_samples={(0, 1): [rack // 2] * 4}), None)
        assert rack <= ctrl.timeouts[(0, 1)] < cost.retx_timeout
        # A slow cross-rack route can only ever match the static timer.
        ctrl._decide_retx(machine, _window(
            99, {}, route_samples={(0, 2): [cost.retx_timeout * 4]}), None)
        assert ctrl.timeouts[(0, 2)] == cost.retx_timeout
        assert machine.retx_timeout_for(0, 1) == ctrl.timeouts[(0, 1)]
        assert machine.retx_timeout_for(1, 0) == ctrl.timeouts[(0, 1)]


def test_placement_needs_persistence_and_dominance(machine):
    """One dominant window is not enough (phases rotate hot pairs), a
    non-dominant top pair is never enough; two consecutive dominant
    windows trigger exactly one swap and keep the map a bijection."""
    machine.run(lambda g: 0)  # materialize a root space for _swap_nodes
    ctrl = machine.control
    machine.node_map.update({n: n for n in range(NODES)})
    hot = {(0, 2): 1 << 20, (1, 3): 1 << 14}
    ctrl._decide_placement(machine, _window(0, {}, pair_bytes=dict(hot)),
                           None, machine.root)
    assert ctrl.moves == 0, "first dominant window must only arm"
    # An SPMD-balanced window (no 2x dominance) resets the candidate.
    flat = {(0, 2): 1 << 20, (0, 3): 1 << 20}
    ctrl._decide_placement(machine, _window(1, {}, pair_bytes=flat),
                           None, machine.root)
    ctrl._decide_placement(machine, _window(2, {}, pair_bytes=dict(hot)),
                           None, machine.root)
    assert ctrl.moves == 0
    ctrl._decide_placement(machine, _window(3, {}, pair_bytes=dict(hot)),
                           None, machine.root)
    assert ctrl.moves == 1
    assert sorted(machine.node_map.values()) == list(range(NODES))


# -- NetworkStats.window() -------------------------------------------------

def test_network_stats_window_snapshot_resets():
    """window() drains the running telemetry window: a second snapshot
    is empty with a bumped serial, and the cumulative counters are
    untouched."""
    _, machine, _ = _run(depth=8)
    stats = NetworkStats(machine)
    pulled_before = machine.transport.pages_pulled
    first = stats.window()
    assert first.nodes, "whole run should have telemetry"
    assert sum(row["pulled"] for row in first.nodes.values()) \
        == pulled_before
    second = stats.window()
    assert second.index == first.index + 1
    assert not second.nodes
    assert machine.transport.pages_pulled == pulled_before
