"""ClusterSpec: one knob vocabulary, one validation site, one shim.

The four entry points — ``Machine``, ``Cluster``, ``sweep_nodes``,
``run_cluster`` (and the serving trace runner) — accept configuration
only as a ``spec=ClusterSpec(...)`` or as legacy keyword knobs routed
through the shared :meth:`ClusterSpec.from_kwargs` shim.  These tests
pin the contract: kwargs round-trip through a spec losslessly, every
entry point raises the *same* validation error for a bad knob, the
legacy path builds bit-identical machines to the spec path (values,
makespans, and full memory images), and a signature guard fails the
moment any entry point re-grows its own diverging knob parameter list.
"""

import hashlib
import inspect

import pytest

from repro import Cluster, ClusterSpec, Machine, sweep_nodes
from repro.bench import cluster_workloads as cw
from repro.cluster.serving import serve_trace

NODES = 4


def _memory_image(machine):
    """Digest of the root's full memory image (vpn-ordered frame bytes)."""
    digest = hashlib.sha256()
    aspace = machine.root.addrspace
    for vpn in aspace.mapped_vpns():
        digest.update(vpn.to_bytes(8, "little"))
        digest.update(aspace.frame(vpn).data)
    return digest.hexdigest()


# -- round trip & value semantics -------------------------------------------

def test_kwargs_spec_kwargs_round_trip():
    spec = ClusterSpec(ship_mode="demand", prefetch_depth=16,
                       topology="two_tier:2", placement="locality",
                       loss=0.01, compression=True, cpus_per_node=2)
    again = ClusterSpec.from_kwargs(**spec.to_kwargs())
    assert again == spec
    assert again.to_kwargs() == spec.to_kwargs()


def test_from_kwargs_passes_spec_through_unchanged():
    spec = ClusterSpec(ship_mode="demand")
    assert ClusterSpec.from_kwargs(spec=spec) is spec


def test_with_copies_and_revalidates():
    base = ClusterSpec(topology="two_tier:2")
    derived = base.with_(ship_mode="demand", compression=True)
    assert base.ship_mode == "delta" and not base.compression
    assert derived.topology == "two_tier:2"
    assert derived.ship_mode == "demand" and derived.compression
    with pytest.raises(ValueError, match="ship_mode"):
        base.with_(ship_mode="bogus")


def test_spec_is_frozen():
    with pytest.raises(Exception):
        ClusterSpec().ship_mode = "full"


# -- one validation site ----------------------------------------------------

@pytest.mark.parametrize("bad, match", [
    (dict(ship_mode="bogus"), "ship_mode"),
    (dict(prefetch_depth=-1), "prefetch_depth"),
    (dict(cpus_per_node=0), "cpus_per_node"),
    (dict(shard_workers=-1), "shard_workers"),
    (dict(cost=object()), "cost"),
])
def test_validation_is_centralized(bad, match):
    """Every entry point rejects a bad knob with ClusterSpec's message,
    whether it arrives as a legacy kwarg or inside a spec."""
    with pytest.raises(ValueError, match=match):
        ClusterSpec(**bad)
    for build in (lambda: Machine(nnodes=2, **bad),
                  lambda: Cluster(2, **bad),
                  lambda: sweep_nodes(cw.md5_tree_main, (1,), **bad),
                  lambda: cw.run_cluster(cw.md5_tree_main(3), 2, **bad),
                  lambda: serve_trace(2, requests=2, **bad)):
        with pytest.raises(ValueError, match=match):
            build()


def test_unknown_knob_raises_the_same_typeerror_everywhere():
    for build in (lambda: Machine(nnodes=2, ship_moed="delta"),
                  lambda: Cluster(2, ship_moed="delta"),
                  lambda: cw.run_cluster(cw.md5_tree_main(3), 2,
                                         ship_moed="delta"),
                  lambda: serve_trace(2, requests=2, ship_moed="delta")):
        with pytest.raises(TypeError, match="ship_moed"):
            build()


def test_spec_plus_legacy_knobs_is_refused():
    spec = ClusterSpec()
    with pytest.raises(TypeError, match="not both"):
        Machine(nnodes=2, spec=spec, ship_mode="demand")
    with pytest.raises(TypeError, match="ClusterSpec"):
        Machine(nnodes=2, spec={"ship_mode": "demand"})


# -- legacy kwargs are bit-identical to the spec path -----------------------

def test_legacy_kwargs_bit_identical_to_spec_md5():
    knobs = dict(topology="two_tier:2", placement="locality",
                 ship_mode="demand", prefetch_depth=8, compression=True)
    legacy_mk, legacy_m, legacy_v = cw.run_cluster(
        cw.md5_tree_main(3), NODES, **knobs)
    spec_mk, spec_m, spec_v = cw.run_cluster(
        cw.md5_tree_main(3), NODES, spec=ClusterSpec(**knobs))
    assert (legacy_mk, legacy_v) == (spec_mk, spec_v)
    assert _memory_image(legacy_m) == _memory_image(spec_m)


def test_legacy_kwargs_bit_identical_to_spec_matmult():
    knobs = dict(topology="two_tier:2", loss={"drop": 0.02, "seed": 2010})
    legacy_mk, legacy_m, legacy_v = cw.run_cluster(
        cw.matmult_tree_main(64), NODES, **knobs)
    spec_mk, spec_m, spec_v = cw.run_cluster(
        cw.matmult_tree_main(64), NODES, spec=ClusterSpec(**knobs))
    assert (legacy_mk, legacy_v) == (spec_mk, spec_v)
    assert _memory_image(legacy_m) == _memory_image(spec_m)


def test_cluster_legacy_matches_spec():
    legacy = Cluster(NODES, ship_mode="demand").run(
        cw.md5_tree_main(3), args=(NODES,))
    spec = Cluster(NODES, spec=ClusterSpec(ship_mode="demand")).run(
        cw.md5_tree_main(3), args=(NODES,))
    assert legacy.value == spec.value
    assert legacy.makespan() == spec.makespan()


def test_cpus_per_node_rides_the_spec():
    """The knob the old ``Cluster.run`` silently ignored: the spec
    carries it into the machine, and the result schedules against the
    same count the machine ran under."""
    result = Cluster(2, spec=ClusterSpec(cpus_per_node=2)).run(
        cw.md5_tree_main(3), args=(2,))
    assert result.machine.cpus_per_node == 2
    single = Cluster(2).run(cw.md5_tree_main(3), args=(2,))
    assert single.machine.cpus_per_node == 1
    assert result.value == single.value


# -- the signature guard ----------------------------------------------------

ENTRY_POINTS = [Machine.__init__, Cluster.__init__, sweep_nodes,
                cw.run_cluster, serve_trace]


@pytest.mark.parametrize("entry", ENTRY_POINTS,
                         ids=lambda f: f.__qualname__)
def test_entry_points_never_regrow_knob_parameters(entry):
    """The api_redesign ratchet: configuration knobs live on ClusterSpec
    only.  If any entry point re-grows an explicit ``ship_mode=`` /
    ``loss=`` / ... parameter, the four signatures start diverging again
    and this test fails naming the offender."""
    params = inspect.signature(entry).parameters
    assert "spec" in params, entry.__qualname__
    assert any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in params.values()), entry.__qualname__
    regrown = set(params) & set(ClusterSpec.knob_names())
    assert not regrown, (
        f"{entry.__qualname__} re-grew knob parameter(s) {sorted(regrown)}; "
        f"add fields to ClusterSpec instead")
