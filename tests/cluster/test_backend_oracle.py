"""Cross-backend differential oracle: the simulated run is bit-exact
ground truth for the real-process backend.

Both backends run the *same* workload builder (shared closures keep
register contents identical), and everything except timing must come
out equal: the computed value, the frozen machine image (space tree,
registers, page bytes, per-link simulated ledgers), the NetworkStats
page/byte tables, and conservation on both the simulated transport and
the real wire.  Real wall-clock is the one column deliberately *not*
compared — it is the real backend's own measurement.

A larger matrix (more nodes, compression, fat-tree) runs nightly in
``benchmarks/bench_backend_oracle.py``.
"""

import os

import pytest

from repro.bench import cluster_workloads as cw
from repro.cluster.backend import image_digest, run_backend, run_real
from repro.cluster.realnet import localhost_available
from repro.cluster.serving import serve_trace
from repro.cluster.spec import ClusterSpec

pytestmark = [
    pytest.mark.skipif(not hasattr(os, "fork"),
                       reason="real backend needs os.fork"),
    pytest.mark.skipif(not localhost_available(),
                       reason="localhost TCP sockets unavailable"),
]

# One builder instance per workload, shared by both backends: the entry
# closure lands in root registers, and image equality compares it by
# identity.
MD5_CIRCUIT = cw.md5_circuit_main(3)
MD5_TREE = cw.md5_tree_main(3)
MATMULT_TREE = cw.matmult_tree_main(n=48, seed=7)

#: NetworkStats fields the backends must agree on (timing-free).
NETWORK_FIELDS = (
    "pages_fetched", "pages_shipped", "pages_pulled", "pages_prefetched",
    "bytes_moved", "wire_bytes",
)

MATRIX = [(topology, ship_mode)
          for topology in ("flat", "two_tier:2")
          for ship_mode in ("delta", "full")]


def run_pair(builder, nnodes, **kw):
    sim = run_backend(builder, nnodes, spec=ClusterSpec(backend="sim", **kw))
    real = run_backend(builder, nnodes,
                       spec=ClusterSpec(backend="real", **kw))
    return sim, real


def assert_equivalent(sim, real):
    assert real.value == sim.value
    # The frozen image covers the whole space tree (registers, traps,
    # page bytes), console/debug output, placement, and every per-link
    # simulated ledger — memory-image identity and per-link page/byte
    # conservation in one comparison.
    assert real.image == sim.image
    assert image_digest(real.image) == image_digest(sim.image)
    for field in NETWORK_FIELDS:
        assert getattr(real.network, field) == getattr(sim.network, field), \
            field
    assert real.network.per_link == sim.network.per_link
    assert sim.machine.transport.conservation_ok()
    assert real.machine.transport.conservation_ok()
    # The adopted trace is the same trace: simulated cycles agree; the
    # real run additionally measured wall-clock (not compared).
    assert real.makespan == sim.makespan
    assert real.wall_seconds > 0 and sim.wall_seconds > 0
    # The real run really ran on the real path, conserving wire bytes.
    assert real.backend == "real" and sim.backend == "sim"
    assert real.shard_stats["adopted"] >= 1
    assert real.shard_stats["fallbacks"] == 0
    assert real.wire and real.wire_ok


@pytest.mark.parametrize("topology,ship_mode", MATRIX)
def test_md5_circuit_matches_oracle(topology, ship_mode):
    sim, real = run_pair(MD5_CIRCUIT, 4, topology=topology,
                         ship_mode=ship_mode)
    assert_equivalent(sim, real)


@pytest.mark.parametrize("topology,ship_mode", MATRIX)
def test_matmult_tree_matches_oracle(topology, ship_mode):
    sim, real = run_pair(MATMULT_TREE, 4, topology=topology,
                         ship_mode=ship_mode)
    assert_equivalent(sim, real)


def test_md5_tree_single_child_waves():
    # The tree workload forks one top child per rendezvous — the real
    # coordinator runs single-sibling waves (MIN_SIBLINGS == 1).
    sim, real = run_pair(MD5_TREE, 4)
    assert_equivalent(sim, real)


def test_run_real_forces_backend():
    result = run_real(MD5_CIRCUIT, 2)
    assert result.backend == "real"
    assert result.shard_stats["adopted"] >= 1


def test_serving_trace_matches_oracle():
    sim = serve_trace(4, spec=ClusterSpec(), requests=24)
    real = serve_trace(4, spec=ClusterSpec(backend="real"), requests=24)
    assert real.checksum == sim.checksum
    assert real.values == sim.values
    assert real.latencies == sim.latencies
    assert real.span == sim.span
