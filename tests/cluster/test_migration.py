"""Cluster distribution tests: space migration, demand paging, caching (§3.3)."""

import pytest

from repro.common.errors import KernelError
from repro.kernel import Machine, child_ref
from repro.mem import PAGE_SIZE
from repro.timing.model import CostModel

ADDR = 0x10_0000


def test_child_ref_encoding():
    assert child_ref(5) == 5
    assert child_ref(5, node=0) == (1 << 16) | 5
    assert child_ref(7, node=3) == (4 << 16) | 7
    with pytest.raises(ValueError):
        child_ref(1 << 16)


def test_migration_produces_correct_results():
    """Work distributed across nodes computes the same values."""
    def worker(g, i):
        return i * i

    def main(g):
        n = 4
        for i in range(n):
            g.put(child_ref(i, node=i % 2), regs={"entry": worker, "args": (i,)},
                  start=True)
        return sum(g.get(child_ref(i, node=i % 2), regs=True)["r0"]
                   for i in range(n))

    with Machine(nnodes=2) as m:
        result = m.run(main)
    assert result.r0 == 0 + 1 + 4 + 9


def test_nonexistent_node_rejected():
    def main(g):
        try:
            g.put(child_ref(0, node=9), start=False)
        except KernelError:
            return "bad-node"

    with Machine(nnodes=2) as m:
        assert m.run(main).r0 == "bad-node"


def test_single_node_has_no_fetch_accounting():
    def main(g):
        g.write(ADDR, b"x" * PAGE_SIZE)
        g.read(ADDR, PAGE_SIZE)

    with Machine(nnodes=1) as m:
        m.run(main)
        assert m.pages_fetched == 0


def test_cross_node_copy_fetches_pages():
    """Copying parent data to a child on another node ships the pages."""
    def worker(g):
        return g.read(ADDR, 8)

    def main(g):
        g.write(ADDR, b"payload!" + b"\x00" * (2 * PAGE_SIZE - 8))
        ref = child_ref(1, node=1)
        g.put(ref, regs={"entry": worker}, copy=(ADDR, 2 * PAGE_SIZE), start=True)
        return g.get(ref, regs=True)["r0"]

    with Machine(nnodes=2) as m:
        result = m.run(main)
        assert result.r0 == b"payload!"
        assert m.pages_fetched >= 2


def test_read_only_pages_cached_across_revisits():
    """Second visit to a node reuses cached unchanged pages (§3.3)."""
    def worker(g):
        return 0

    def main(g):
        g.write(ADDR, b"r" * PAGE_SIZE)   # read-only "program text"
        for round_ in range(3):
            ref = child_ref(1 + round_, node=1)
            g.put(ref, regs={"entry": worker}, copy=(ADDR, PAGE_SIZE), start=True)
            g.get(ref, regs=True)

    with Machine(nnodes=2) as m:
        m.run(main)
        # One fetch for the page, not three.
        assert m.pages_fetched == 1


def test_written_pages_refetched_after_change():
    def worker(g):
        return 0

    def main(g):
        for round_ in range(3):
            # Interacting with a home-node child migrates us home, where
            # we produce this round's fresh data.
            g.get(0x50, regs=True)
            g.write(ADDR, bytes([round_ + 1]) * PAGE_SIZE)  # changes every round
            ref = child_ref(1 + round_, node=1)
            g.put(ref, regs={"entry": worker}, copy=(ADDR, PAGE_SIZE), start=True)
            g.get(ref, regs=True)

    with Machine(nnodes=2) as m:
        m.run(main)
        # Each round's changed page must cross the wire again.
        assert m.pages_fetched == 3


def test_writable_view_keeps_writer_node_cache_coherent():
    """Writing through a zero-copy view must register the post-write
    content tag at the writer's node: reading your own data is free."""
    def main(g):
        view = g.view(ADDR, 8, write=True)
        view[:] = 7
        g.read(ADDR, 8)

    with Machine(nnodes=2) as m:
        m.run(main)
        assert m.pages_fetched == 0


def test_read_view_demand_zero_is_locally_cached():
    """Regression: a read-only view that demand-zeroes a page creates
    the frame locally — the next access must not be billed as a remote
    fetch of data that never crossed the wire."""
    def main(g):
        g.view(ADDR, 8)          # unmapped -> demand-zero frame
        g.read(ADDR, 8)

    with Machine(nnodes=2) as m:
        m.run(main)
        assert m.pages_fetched == 0


def test_merged_pages_cached_at_merging_node():
    """Merge mutates parent frames in place; the merging node must not
    be charged a fetch for pages it just produced."""
    from repro.mem.layout import SHARED_BASE
    from repro.runtime.threads import thread_fork, thread_join

    def main(g):
        g.write(SHARED_BASE, b"a" * PAGE_SIZE)
        g.write(SHARED_BASE + PAGE_SIZE, b"b" * PAGE_SIZE)

        def worker(g2):
            g2.store(SHARED_BASE, 123)        # page 0: adoption
            g2.store(SHARED_BASE + PAGE_SIZE, 5)

        thread_fork(g, 1, worker)
        g.store(SHARED_BASE + PAGE_SIZE + 8, 9)   # page 1: both dirty
        thread_join(g, 1)
        before = g.machine.pages_fetched
        g.read(SHARED_BASE, 2 * PAGE_SIZE)
        return g.machine.pages_fetched - before

    with Machine(nnodes=2) as m:
        assert m.run(main).r0 == 0


def test_freshened_parent_page_ships_exactly_once():
    """A parent page freshened on another node crosses the wire exactly
    once: it rides the parent's next migration as the ledger-driven
    delta, and reading it at the merging node is then free."""
    from repro.mem.layout import SHARED_BASE
    from repro.kernel.kernel import child_ref as ref

    def worker(g):
        g.store(SHARED_BASE, 7)           # dirties page 0 only
        return 0

    def main(g):
        g.write(SHARED_BASE, b"a" * PAGE_SIZE)
        g.write(SHARED_BASE + PAGE_SIZE, b"b" * PAGE_SIZE)
        child = ref(1, node=1)
        g.put(child, regs={"entry": worker},
              copy=(SHARED_BASE, 2 * PAGE_SIZE),
              snap=(SHARED_BASE, 2 * PAGE_SIZE), start=True)
        g.get(0x50, regs=True)            # migrate home (node 0)
        # Freshen page 1 at node 0: its new tag lives only there.
        g.write(SHARED_BASE + PAGE_SIZE, b"c" * PAGE_SIZE)
        before = g.machine.pages_fetched
        g.get(child, regs=True, merge=True)   # migrate + merge on node 1
        shipped = g.machine.pages_fetched - before
        g.read(SHARED_BASE + PAGE_SIZE, 8)    # reading page 1 on node 1
        reread = g.machine.pages_fetched - before - shipped
        return (shipped, reread)

    with Machine(nnodes=2) as m:
        assert m.run(main).r0 == (1, 0)


def test_migration_charges_latency_in_makespan():
    def worker(g):
        g.work(1000)

    def main(g):
        ref = child_ref(1, node=1)
        g.put(ref, regs={"entry": worker}, start=True)
        g.get(ref, regs=True)

    with Machine(nnodes=2) as m2:
        remote = m2.run(main).makespan(cpus_per_node={0: 1, 1: 1})

    def main_local(g):
        g.put(1, regs={"entry": worker}, start=True)
        g.get(1, regs=True)

    with Machine(nnodes=1) as m1:
        local = m1.run(main_local).makespan(ncpus=1)
    cost = CostModel()
    assert remote >= local + 2 * cost.net_latency  # out and back


def test_parallelism_across_nodes_in_makespan():
    """Independent work on two nodes overlaps in virtual time."""
    def worker(g):
        g.work(10_000_000)

    def main(g):
        for node in (0, 1):
            g.put(child_ref(node, node=node),
                  regs={"entry": worker}, start=True)
        for node in (0, 1):
            g.get(child_ref(node, node=node), regs=True)

    with Machine(nnodes=2) as m:
        result = m.run(main)
        two_nodes = result.makespan(cpus_per_node={0: 1, 1: 1})
    # Uniprocessor nodes: the two workers overlap; makespan well under
    # the 20M serial sum plus overheads.
    assert two_nodes < 10_000_000 * 2
    assert two_nodes >= 10_000_000


def test_tcp_mode_adds_small_overhead():
    """TCP-like framing costs < 2% (paper §6.3)."""
    def worker(g):
        data = g.read(ADDR, 64 * PAGE_SIZE)
        g.work(50_000_000)
        return len(data)

    def main(g):
        ref = child_ref(1, node=1)
        g.write(ADDR, b"m" * (64 * PAGE_SIZE))
        g.put(ref, regs={"entry": worker}, copy=(ADDR, 64 * PAGE_SIZE), start=True)
        return g.get(ref, regs=True)["r0"]

    def run(tcp):
        with Machine(nnodes=2, tcp_mode=tcp) as m:
            return m.run(main).makespan(cpus_per_node={0: 1, 1: 1})

    plain, tcp = run(False), run(True)
    assert tcp > plain
    assert (tcp - plain) / plain < 0.02


def test_home_node_return_on_ret():
    """A space migrated for child interaction returns home at Ret (§3.3)."""
    def worker(g):
        return g.space.cur_node

    def main(g):
        ref = child_ref(1, node=1)
        g.put(ref, regs={"entry": worker}, start=True)
        remote = g.get(ref, regs=True)["r0"]
        # After interacting remotely, our next home-node interaction
        # migrates us back.
        g.put(2, regs={"entry": worker}, start=True)
        home = g.get(2, regs=True)["r0"]
        return (remote, home)

    with Machine(nnodes=2) as m:
        assert m.run(main).r0 == (1, 0)
