"""Deterministic fault injection: replay, conservation, and cost-only
oracles.

The loss schedule decides drop/duplicate/reorder per ``(link,
msg_serial)`` as a pure function of the seed, so faults must replay
bit-identically: two runs under one seed fault the same copies of the
same messages on the same links.  And faults are *cost-only*: under any
schedule, every workload's computed value and final memory image must
equal the zero-loss run's — only wire traffic and timing may move.
Conservation extends to ``delivered + dropped == sent`` per physical
link.
"""

import hashlib

import pytest

from repro.bench import cluster_workloads as cw
from repro.cluster import LossSchedule, MsgType, NetworkStats, resolve_loss
from repro.cluster.faults import DELIVER, DROP, DUPLICATE, REORDER
from repro.common.errors import NetworkLossError
from repro.kernel import Machine
from repro.timing.schedule import schedule

NODES = 4
TOPOLOGY = "two_tier:2"


def _memory_image(machine):
    """Digest of the root's full memory image (vpn-ordered frame bytes)."""
    digest = hashlib.sha256()
    aspace = machine.root.addrspace
    for vpn in aspace.mapped_vpns():
        digest.update(vpn.to_bytes(8, "little"))
        digest.update(aspace.frame(vpn).data)
    return digest.hexdigest()


def _run(loss=None, **config):
    config.setdefault("topology", TOPOLOGY)
    makespan, machine, value = cw.run_cluster(
        cw.matmult_tree_main(64), NODES, loss=loss, **config)
    assert machine.transport.conservation_ok()
    return makespan, machine, value


# -- the schedule itself ----------------------------------------------------

def test_decide_is_a_pure_function():
    """No generator state: any (link, serial, attempt) query returns
    the same outcome however often and in whatever order it is asked."""
    sched = LossSchedule(drop=0.3, dup=0.2, reorder=0.1, seed=42)
    probes = [((0, 1), 7, 0), (("rack0", "core"), 7, 0), ((0, 1), 7, 1),
              ((1, 0), 7, 0), ((0, 1), 8, 0)]
    first = [sched.decide(*p) for p in reversed(probes)][::-1]
    again = [LossSchedule(drop=0.3, dup=0.2, reorder=0.1, seed=42).decide(*p)
             for p in probes]
    assert first == again
    outcomes = set(first) | {sched.decide((0, 1), s) for s in range(200)}
    assert outcomes <= {DELIVER, DROP, DUPLICATE, REORDER}
    assert DROP in outcomes  # 30% over 200 serials must hit


def test_schedules_nest_across_rates():
    """Raising the drop rate only adds drops (same seed): every message
    dropped at 0.1% is dropped at 1%."""
    low = LossSchedule(drop=0.001, seed=9)
    high = LossSchedule(drop=0.01, seed=9)
    for serial in range(5000):
        if low.decide((0, 1), serial) is DROP:
            assert high.decide((0, 1), serial) is DROP


def test_rate_validation_and_resolve():
    with pytest.raises(ValueError):
        LossSchedule(drop=1.5)
    with pytest.raises(ValueError):
        LossSchedule(drop=0.6, dup=0.6)
    with pytest.raises(ValueError):
        resolve_loss(True)
    with pytest.raises(ValueError):
        resolve_loss("lossy")
    assert resolve_loss(None) is None
    assert resolve_loss(0.25).drop == 0.25
    assert resolve_loss({"drop": 0.1, "seed": 3}).seed == 3
    sched = LossSchedule(drop=0.1)
    assert resolve_loss(sched) is sched


# -- bit-identical replay ---------------------------------------------------

def test_same_seed_replays_bit_identically():
    """Two runs under one schedule: identical retransmit tables, wire
    stats, makespans, values, and memory images."""
    runs = [_run(loss={"drop": 0.05, "seed": 7}) for _ in range(2)]
    (mk_a, m_a, v_a), (mk_b, m_b, v_b) = runs
    assert (mk_a, v_a) == (mk_b, v_b)
    assert _memory_image(m_a) == _memory_image(m_b)
    stats_a, stats_b = NetworkStats(m_a), NetworkStats(m_b)
    assert stats_a.retx_table() == stats_b.retx_table()
    assert stats_a.summary() == stats_b.summary()
    assert stats_a.retx_msgs > 0  # 5% over a real run must fault


def test_different_seeds_move_only_the_wire():
    """A different seed faults different messages — values and memory
    images never move, the retransmit ledger does."""
    mk_a, m_a, v_a = _run(loss={"drop": 0.05, "seed": 1})
    mk_b, m_b, v_b = _run(loss={"drop": 0.05, "seed": 2})
    mk_0, m_0, v_0 = _run()
    assert v_a == v_b == v_0
    images = {_memory_image(m) for m in (m_a, m_b, m_0)}
    assert len(images) == 1
    table_a, table_b = (NetworkStats(m).retx_table() for m in (m_a, m_b))
    assert table_a != table_b


def test_zero_loss_schedule_is_bit_identical_to_no_schedule():
    """LossSchedule with zero rates must reproduce the pre-fault
    transport exactly — same makespan, wire bytes, link tables, and no
    retransmit activity."""
    mk_none, m_none, v_none = _run(loss=None)
    mk_zero, m_zero, v_zero = _run(loss=LossSchedule())
    assert (mk_none, v_none) == (mk_zero, v_zero)
    assert _memory_image(m_none) == _memory_image(m_zero)
    stats_none, stats_zero = NetworkStats(m_none), NetworkStats(m_zero)
    assert stats_none.wire_bytes == stats_zero.wire_bytes
    assert stats_none.link_table() == stats_zero.link_table()
    assert stats_zero.retx_msgs == stats_zero.dropped_msgs == 0
    assert stats_zero.retx_table().startswith("(no link ever")
    assert stats_none.loss is None and stats_zero.loss is not None


# -- loss is cost-only over every protocol path -----------------------------

@pytest.mark.parametrize("config", [
    {},                                                   # eager delta
    {"ship_mode": "full"},                                # naive ship
    {"ship_mode": "demand"},                              # stop-and-wait
    {"ship_mode": "demand", "prefetch_depth": 16},        # pipelined
    {"ship_mode": "demand", "prefetch_depth": 16,
     "compression": True},                                # + compression
], ids=["delta", "full", "demand", "prefetch", "prefetch+comp"])
def test_loss_is_cost_only_on_every_path(config):
    """Memory-image oracle: demand, prefetch, and compression paths all
    survive a lossy fabric with identical computed state."""
    mk_clean, m_clean, v_clean = _run(**config)
    mk_lossy, m_lossy, v_lossy = _run(
        loss={"drop": 0.03, "dup": 0.01, "reorder": 0.01, "seed": 5},
        **config)
    assert v_lossy == v_clean
    assert _memory_image(m_lossy) == _memory_image(m_clean)
    assert mk_lossy >= mk_clean  # faults only ever add constraint


def test_md5_values_survive_loss():
    """The other cluster workload family, same oracle."""
    _, m_clean, v_clean = cw.run_cluster(cw.md5_tree_main(3), NODES,
                                         topology=TOPOLOGY)
    _, m_lossy, v_lossy = cw.run_cluster(cw.md5_tree_main(3), NODES,
                                         topology=TOPOLOGY, loss=0.05)
    assert v_lossy == v_clean
    assert _memory_image(m_lossy) == _memory_image(m_clean)
    assert m_lossy.transport.conservation_ok()


# -- accounting -------------------------------------------------------------

def test_conservation_delivered_plus_dropped_equals_sent():
    """Per physical link: every sent byte is either delivered (clean or
    duplicate copy) or dropped — no byte vanishes unaccounted."""
    _, machine, _ = _run(loss={"drop": 0.05, "dup": 0.02, "seed": 11})
    transport = machine.transport
    assert transport.drops > 0
    assert any(s.dropped_bytes for s in transport.links.values())
    for stats in transport.links.values():
        assert stats.bytes_sent == stats.bytes_received + stats.dropped_bytes
    assert transport.retx_bytes == sum(
        s.retx_bytes for s in transport.links.values())


def test_retx_stall_reported_and_monotone_in_rate():
    """Retransmit waits surface as kind="retx" stall cycles, and nested
    schedules make retransmit bytes monotone in the drop rate."""
    retx_bytes = []
    for rate in (0.0, 0.01, 0.05):
        mk, machine, _ = _run(loss={"drop": rate, "seed": 13},
                              ship_mode="demand")
        retx_bytes.append(machine.transport.retx_bytes)
        stalls = schedule(machine.trace,
                          cpus_per_node={n: 1 for n in range(NODES)}
                          ).stall_cycles
        if rate == 0.0:
            assert "retx" not in stalls
        elif machine.transport.retx_wait:
            assert stalls.get("retx", 0) > 0
    assert retx_bytes[0] == 0
    assert retx_bytes[0] <= retx_bytes[1] <= retx_bytes[2]
    assert retx_bytes[2] > 0


def test_duplicates_and_reorders_accounted():
    _, m_dup, v_dup = _run(loss={"dup": 0.2, "seed": 3})
    stats = NetworkStats(m_dup)
    assert stats.dup_msgs > 0 and stats.dropped_msgs == 0
    _, m_ro, v_ro = _run(loss={"reorder": 0.2, "seed": 3})
    assert NetworkStats(m_ro).reorder_msgs > 0
    _, _, v_clean = _run()
    assert v_dup == v_ro == v_clean


def test_retry_exhaustion_raises_deterministically():
    """A dead link (drop=1.0) exhausts cost.retx_limit retries and
    stops the migrating space with a NetworkLossError trap."""
    with pytest.raises(RuntimeError, match="NetworkLossError"):
        cw.run_cluster(cw.md5_circuit_main(3), 2, loss=1.0)
    # Raised directly when the transport is driven outside a guest.
    machine = Machine(nnodes=2, loss=1.0)
    with pytest.raises(NetworkLossError):
        machine.transport._send(MsgType.ACK, 0, 1, 64)
