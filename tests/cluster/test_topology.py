"""Routed-fabric invariants: route symmetry, per-traversed-link byte
conservation, oversubscription showing up as occupancy, and placement
policies relocating traffic without changing results."""

import pytest

from repro.bench import cluster_workloads as cw
from repro.cluster import (
    FatTreeTopology,
    FlatTopology,
    NetworkStats,
    TwoTierTopology,
    resolve_placement,
    resolve_topology,
)
from repro.common.errors import KernelError
from repro.kernel import Machine, child_ref
from repro.mem import PAGE_SIZE
from repro.timing.schedule import schedule

ADDR = 0x10_0000

PRESETS = [
    FlatTopology(8),
    TwoTierTopology(8, rack_size=2),
    TwoTierTopology(8, rack_size=4),
    FatTreeTopology(8, rack_size=2),
    FatTreeTopology(8, rack_size=4),
]


def ship_work(nnodes, data_pages=8, work=100_000):
    """One worker per node; the data rides fork copies + merges back."""
    def worker(g):
        g.work(work)
        return int(g.read(ADDR, 1)[0])

    def main(g):
        g.write(ADDR, b"\x07" * (data_pages * PAGE_SIZE))
        refs = []
        for node in range(nnodes):
            ref = child_ref(1, node=node)
            g.put(ref, regs={"entry": worker},
                  copy=(ADDR, data_pages * PAGE_SIZE), start=True)
            refs.append(ref)
        return sum(g.get(ref, regs=True)["r0"] for ref in refs)

    return main


def matmult(nnodes, n=64, **kwargs):
    with Machine(nnodes=nnodes, **kwargs) as m:
        result = m.run(lambda g: cw.matmult_tree(g, nnodes, n, seed=7))
        return result, m


# -- routing ---------------------------------------------------------------

def test_routes_are_symmetric():
    """The reverse route is the same path, link-reversed, hop-reversed."""
    for topo in PRESETS:
        for src in range(topo.nnodes):
            for dst in range(topo.nnodes):
                forward = topo.route(src, dst)
                back = topo.route(dst, src)
                assert back == tuple((b, a) for a, b in reversed(forward)), \
                    (topo, src, dst)


def test_flat_routes_are_single_direct_hops():
    topo = FlatTopology(4)
    assert topo.route(0, 3) == ((0, 3),)
    assert topo.route(2, 2) == ()
    assert topo.link_class((0, 3)).byte_factor == 1.0


def test_switched_routes_go_through_switches():
    topo = TwoTierTopology(8, rack_size=2)
    # Intra-rack: two rack-class hops through the ToR switch.
    assert topo.route(0, 1) == ((0, "rack0"), ("rack0", 1))
    # Cross-rack: four hops, the middle two core-class.
    route = topo.route(0, 5)
    assert route == ((0, "rack0"), ("rack0", "core"),
                     ("core", "rack2"), ("rack2", 5))
    classes = [topo.link_class(link).name for link in route]
    assert classes == ["rack", "core", "core", "rack"]


def test_two_tier_cross_rack_latency_exceeds_intra():
    from repro.timing.model import CostModel
    cost = CostModel()
    topo = TwoTierTopology(8, rack_size=2)
    intra = topo.route_latency(cost, 0, 1)
    cross = topo.route_latency(cost, 0, 5)
    # Intra-rack equals the flat fabric's one-hop latency by design.
    assert intra == cost.net_latency
    assert cross == 3 * cost.net_latency


def test_fat_tree_spreads_spines_deterministically():
    topo = FatTreeTopology(8, rack_size=2)
    spines = {topo.route(src, dst)[1][1]
              for src in range(8) for dst in range(8)
              if topo.rack_of(src) != topo.rack_of(dst)}
    assert len(spines) > 1          # load spreads over several spines
    assert topo.route(0, 5) == topo.route(0, 5)   # and is stable


def test_resolve_topology_specs():
    assert isinstance(resolve_topology(None, 4), FlatTopology)
    topo = resolve_topology("two_tier:2", 8)
    assert isinstance(topo, TwoTierTopology) and topo.rack_size == 2
    built = resolve_topology(lambda n: FatTreeTopology(n, rack_size=2), 8)
    assert isinstance(built, FatTreeTopology)
    with pytest.raises(ValueError, match="unknown topology"):
        resolve_topology("torus", 8)
    with pytest.raises(ValueError, match="built for"):
        resolve_topology(FlatTopology(4), 8)


# -- conservation over routes ----------------------------------------------

def test_bytes_conserved_per_traversed_link():
    """Every physical link of every route — switch links included —
    delivers exactly the bytes it sent."""
    with Machine(nnodes=8, topology="two_tier:2") as m:
        m.run(ship_work(8))
        switch_links = [link for link in m.transport.links
                        if any(isinstance(end, str) for end in link)]
        assert switch_links, "expected traffic through switches"
        for link, stats in m.transport.links.items():
            assert stats.bytes_sent == stats.bytes_received, link
        assert m.transport.conservation_ok()


def test_hops_exceed_messages_on_switched_fabric():
    """A routed message traverses every link of its path."""
    with Machine(nnodes=4, topology="two_tier:2") as m:
        m.run(ship_work(4))
        t = m.transport
        assert t.hops > t.messages
        assert sum(s.messages for s in t.links.values()) == t.hops


# -- semantics -------------------------------------------------------------

def test_identical_results_across_topologies_and_policies():
    reference = None
    for topo in (None, "two_tier:2", "fat_tree:2"):
        for policy in ("identity", "round_robin", "locality"):
            result, _ = matmult(4, topology=topo, placement=policy)
            if reference is None:
                reference = result.r0
            assert result.r0 == reference, (topo, policy)


# -- oversubscription ------------------------------------------------------

def test_cross_rack_links_hotter_than_rack_links_on_matmult():
    """The oversubscribed core links carry the aggregated cross-rack
    flow at a bandwidth penalty: their occupancy strictly exceeds any
    rack-local link's."""
    _, m = matmult(4, topology="two_tier:2")
    by_cls = {}
    for stats in m.transport.links.values():
        by_cls.setdefault(stats.cls, []).append(stats.busy_cycles)
    assert "core" in by_cls and "rack" in by_cls
    assert max(by_cls["core"]) > max(by_cls["rack"])


def test_oversubscription_slows_two_tier_vs_fat_tree():
    """Same routes, same bytes — only the core bandwidth differs."""
    two_tier, m2 = matmult(4, topology="two_tier:2")
    fat, mf = matmult(4, topology="fat_tree:2")
    assert m2.transport.bytes_total == mf.transport.bytes_total
    cpus = {node: 1 for node in range(4)}
    assert (two_tier.makespan(cpus_per_node=cpus)
            > fat.makespan(cpus_per_node=cpus))


def test_schedule_reports_per_class_occupancy():
    result, _ = matmult(4, topology="two_tier:2")
    sched = schedule(result.trace, cpus_per_node={n: 1 for n in range(4)})
    assert sched.class_busy.get("core", 0) > 0
    assert sched.class_busy.get("rack", 0) > 0
    assert sum(sched.class_busy.values()) == sum(sched.link_busy.values())


# -- placement -------------------------------------------------------------

def test_round_robin_stripes_racks_and_locality_packs():
    def touch_all(nnodes):
        def main(g):
            for node in range(nnodes):
                g.put(child_ref(1, node=node), regs={"entry": lambda g2: 0},
                      start=True)
            for node in range(nnodes):
                g.get(child_ref(1, node=node), regs=True)
            return 0
        return main

    with Machine(nnodes=4, topology="two_tier:2",
                 placement="round_robin") as m:
        m.run(touch_all(4))
        # Virtual 0,1 stripe across racks {0,1} and {2,3}.
        assert m.node_map == {0: 0, 1: 2, 2: 1, 3: 3}
    with Machine(nnodes=4, topology="two_tier:2", placement="locality") as m:
        m.run(touch_all(4))
        # Contiguous virtual blocks share racks.
        assert m.node_map == {0: 0, 1: 1, 2: 2, 3: 3}


def test_locality_reduces_cross_rack_bytes_on_matmult():
    _, rr = matmult(4, topology="two_tier:2", placement="round_robin")
    _, loc = matmult(4, topology="two_tier:2", placement="locality")
    rr_core = NetworkStats(rr).class_bytes("core")
    loc_core = NetworkStats(loc).class_bytes("core")
    assert loc_core < rr_core
    assert rr.transport.conservation_ok()
    assert loc.transport.conservation_ok()


def test_placement_is_sticky_and_bijective():
    with Machine(nnodes=4, topology="two_tier:2", placement="locality") as m:
        m.run(ship_work(4))
        assert sorted(m.node_map.values()) == sorted(m.node_map)
        before = dict(m.node_map)
        assert m.place(2) == before[2]      # sticky on re-query
        assert m.node_map == before


def test_placement_must_return_unused_node():
    class Broken:
        name = "broken"

        def assign(self, machine, caller, vnode):
            return 0

    def main(g):
        g.put(child_ref(1, node=1), regs={"entry": lambda g2: 0}, start=True)
        return 0

    with Machine(nnodes=2, placement=resolve_placement("identity")) as ok:
        ok.run(main)
    broken = Machine(nnodes=2)
    broken.placement = Broken()
    with broken:
        result = broken.run(main)
        assert result.trap.name == "EXC"
        assert "reused" in result.trap_info


def test_default_flat_round_robin_is_identity():
    """The default fabric+policy keep pre-topology behavior: workers
    land on the physical node their virtual number names."""
    def main(g):
        for node in range(4):
            g.put(child_ref(1, node=node),
                  regs={"entry": lambda g2: g2.space.cur_node}, start=True)
        return [g.get(child_ref(1, node=node), regs=True)["r0"]
                for node in range(4)]

    with Machine(nnodes=4) as m:
        assert m.run(main).r0 == [0, 1, 2, 3]


def test_bad_specs_rejected():
    with pytest.raises(ValueError, match="placement"):
        Machine(nnodes=2, placement="nearest")
    with pytest.raises(ValueError, match="topology"):
        Machine(nnodes=2, topology="ring")
    with pytest.raises(ValueError):
        resolve_placement(42)


def test_virtual_node_validation_still_applies():
    def main(g):
        try:
            g.put(child_ref(0, node=9), start=False)
        except KernelError:
            return "bad-node"

    with Machine(nnodes=2, topology="two_tier:2") as m:
        assert m.run(main).r0 == "bad-node"
