"""Wire codec robustness: every transport message type round-trips
through the real socket serializer, and every malformation — truncated
frame, corrupted header, bad pickle, inconsistent page sizes, timeout,
mid-frame close — surfaces as a typed :class:`WireError`, never a hang
or a raw struct/pickle/socket exception."""

import socket
import struct
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import realnet
from repro.cluster.compress import SCHEME_RAW, decode_page, encode_page
from repro.cluster.realnet import Channel, MAGIC, encode_frame
from repro.cluster.transport import MsgType
from repro.common.errors import BackendError, WireError
from repro.mem.page import PAGE_SIZE


def channel_pair(deadline=5.0):
    left, right = socket.socketpair()
    return Channel(left, deadline), Channel(right, deadline)


def roundtrip(mtype, obj):
    """Send one frame through a real socket pair and receive it."""
    a, b = channel_pair()
    try:
        a.send(mtype, 0, realnet.COORD, obj)
        got_type, src, dst, got = b.recv()
    finally:
        a.close()
        b.close()
    assert got_type is mtype and src == 0 and dst == realnet.COORD
    return got


# -- round trips (hypothesis over frame contents) ---------------------------

control_payloads = st.dictionaries(
    st.text(max_size=8),
    st.one_of(st.none(), st.booleans(), st.integers(),
              st.text(max_size=16), st.binary(max_size=64)),
    max_size=6)

serials = st.integers(min_value=0, max_value=2**64 - 1)

page_bodies = st.one_of(
    st.just(bytes(PAGE_SIZE)),                              # zero page
    st.binary(min_size=0, max_size=24).map(                 # RLE-friendly
        lambda head: head.ljust(PAGE_SIZE, b"\x00")),
    st.binary(min_size=PAGE_SIZE, max_size=PAGE_SIZE),      # raw
)


@settings(max_examples=25, deadline=None)
@given(control_payloads)
def test_migrate_roundtrip(payload):
    assert roundtrip(MsgType.MIGRATE, payload) == payload


@settings(max_examples=25, deadline=None)
@given(control_payloads)
def test_ack_roundtrip(payload):
    assert roundtrip(MsgType.ACK, payload) == payload


@settings(max_examples=25, deadline=None)
@given(st.lists(serials, max_size=40))
def test_page_req_roundtrip(wanted):
    assert roundtrip(MsgType.PAGE_REQ, wanted) == wanted


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(serials, serials, page_bodies), max_size=6))
def test_page_batch_roundtrip_compressed(frames):
    # Through the shared codec: zero / RLE / raw schemes all cross.
    sent = [(serial, gen, *encode_page(data))
            for serial, gen, data in frames]
    got = roundtrip(MsgType.PAGE_BATCH, sent)
    assert len(got) == len(frames)
    for (serial, gen, data), (g_serial, g_gen, g_scheme, g_payload) \
            in zip(frames, got):
        assert (g_serial, g_gen) == (serial, gen)
        assert decode_page(g_scheme, bytes(g_payload)) == data


def test_page_batch_roundtrip_raw_scheme():
    body = bytes(range(256)) * (PAGE_SIZE // 256)
    got = roundtrip(MsgType.PAGE_BATCH, [(7, 3, SCHEME_RAW, body)])
    assert got == [(7, 3, SCHEME_RAW, body)]


def test_ledgers_conserve_across_the_pair():
    a, b = channel_pair()
    try:
        a.send(MsgType.ACK, 1, realnet.COORD, {"n": 1})
        a.send(MsgType.PAGE_REQ, 1, realnet.COORD, [4, 5])
        b.recv()
        b.recv()
    finally:
        a.close()
        b.close()
    key = (1, realnet.COORD)
    assert a.sent[key] == b.received[key]
    assert a.sent[key]["frames"] == 2


# -- malformed frames -------------------------------------------------------

def _recv_from_bytes(raw, deadline=2.0):
    """Feed raw bytes to a Channel and close the sender."""
    left, right = socket.socketpair()
    chan = Channel(right, deadline)
    try:
        if raw:
            left.sendall(raw)
        left.close()
        return chan.recv()
    finally:
        chan.close()


def test_truncated_header_is_typed_error():
    with pytest.raises(WireError, match="closed mid-frame"):
        _recv_from_bytes(b"DET\x01\x01")


def test_truncated_payload_is_typed_error():
    frame = encode_frame(MsgType.ACK, 0, 1, {"x": 1})
    with pytest.raises(WireError, match="closed mid-frame"):
        _recv_from_bytes(frame[:-3])


def test_bad_magic_is_typed_error():
    frame = bytearray(encode_frame(MsgType.ACK, 0, 1, {}))
    frame[:4] = b"NOPE"
    with pytest.raises(WireError, match="magic"):
        _recv_from_bytes(bytes(frame))


def test_bad_version_is_typed_error():
    frame = bytearray(encode_frame(MsgType.ACK, 0, 1, {}))
    frame[4] = 99
    with pytest.raises(WireError, match="version"):
        _recv_from_bytes(bytes(frame))


def test_unknown_type_code_is_typed_error():
    frame = bytearray(encode_frame(MsgType.ACK, 0, 1, {}))
    frame[5] = 250
    with pytest.raises(WireError, match="type code"):
        _recv_from_bytes(bytes(frame))


def test_oversized_length_is_typed_error_not_allocation():
    head = struct.Struct("!4sBBiiI").pack(
        MAGIC, realnet.VERSION, 3, 0, 1, realnet.MAX_PAYLOAD + 1)
    with pytest.raises(WireError, match="MAX_PAYLOAD"):
        _recv_from_bytes(head)


def test_corrupt_pickle_is_typed_error():
    good = encode_frame(MsgType.MIGRATE, 0, 1, {"k": "v"})
    corrupted = good[:-4] + b"\xff\xff\xff\xff"
    with pytest.raises(WireError, match="corrupt MIGRATE"):
        _recv_from_bytes(corrupted)


def test_page_req_length_mismatch_is_typed_error():
    with pytest.raises(WireError, match="inconsistent"):
        realnet.decode_payload(MsgType.PAGE_REQ,
                               struct.pack("!I", 3) + b"\x00" * 8)


def test_page_batch_trailing_bytes_is_typed_error():
    payload = realnet.encode_payload(
        MsgType.PAGE_BATCH, [(1, 1, SCHEME_RAW, bytes(PAGE_SIZE))])
    with pytest.raises(WireError, match="trailing"):
        realnet.decode_payload(MsgType.PAGE_BATCH, payload + b"\x00")


def test_page_batch_unknown_scheme_is_typed_error():
    payload = bytearray(realnet.encode_payload(
        MsgType.PAGE_BATCH, [(1, 1, SCHEME_RAW, bytes(PAGE_SIZE))]))
    payload[4 + 16] = 77        # the scheme byte of the first page
    with pytest.raises(WireError, match="scheme code"):
        realnet.decode_payload(MsgType.PAGE_BATCH, bytes(payload))


def test_oversized_page_refused_on_encode():
    with pytest.raises(WireError, match="exceeds PAGE_SIZE"):
        realnet.encode_payload(
            MsgType.PAGE_BATCH, [(1, 1, SCHEME_RAW, bytes(PAGE_SIZE + 1))])


def test_unexpected_message_type_is_typed_error():
    a, b = channel_pair()
    try:
        a.send(MsgType.ACK, 0, 1, {})
        with pytest.raises(WireError, match="expected MIGRATE"):
            b.recv(expect=MsgType.MIGRATE)
    finally:
        a.close()
        b.close()


def test_recv_timeout_is_bounded_typed_error():
    a, b = channel_pair(deadline=0.2)
    try:
        start = time.monotonic()
        with pytest.raises(WireError, match="timed out"):
            b.recv()
        assert time.monotonic() - start < 5.0
    finally:
        a.close()
        b.close()


def test_wire_error_is_a_backend_error():
    # One except clause catches the whole real-backend failure family.
    assert issubclass(WireError, BackendError)


@pytest.mark.skipif(not realnet.localhost_available(),
                    reason="localhost TCP sockets unavailable")
def test_accept_timeout_is_bounded_typed_error():
    listener = realnet.listen(deadline=0.2)
    try:
        start = time.monotonic()
        with pytest.raises(WireError, match="accept timed out"):
            realnet.accept(listener, deadline=0.2)
        assert time.monotonic() - start < 5.0
    finally:
        listener.close()
