"""Transport invariants: conservation, delta vs full-ship, batching,
and configuration plumbing through the cluster sweep helpers."""

import pytest

from repro.cluster import MsgType, sweep_nodes
from repro.cluster.transport import Transport
from repro.kernel import Machine, child_ref
from repro.mem import PAGE_SIZE

ADDR = 0x10_0000


def ship_work(nnodes, data_pages=8, work=100_000):
    """One worker per node; the data rides fork copies + merges back."""
    def worker(g):
        g.work(work)
        return int(g.read(ADDR, 1)[0])

    def main(g):
        g.write(ADDR, b"\x07" * (data_pages * PAGE_SIZE))
        refs = []
        for node in range(nnodes):
            ref = child_ref(1, node=node)
            g.put(ref, regs={"entry": worker},
                  copy=(ADDR, data_pages * PAGE_SIZE), start=True)
            refs.append(ref)
        return sum(g.get(ref, regs=True)["r0"] for ref in refs)

    return main


def run(nnodes, **machine_kwargs):
    with Machine(nnodes=nnodes, **machine_kwargs) as m:
        result = m.run(ship_work(nnodes))
        return result, m


# -- conservation ----------------------------------------------------------

def test_bytes_conserved_per_link():
    """Lossless links: every link delivers exactly the bytes it sent."""
    _, m = run(4)
    assert m.transport.links, "expected cross-node traffic"
    for link, stats in m.transport.links.items():
        assert stats.bytes_sent == stats.bytes_received, link
    assert m.transport.conservation_ok()


def test_page_totals_conserved():
    """Pages counted globally == pages recorded on the links, and the
    shipped/pulled split sums to the machine's wire-page total."""
    _, m = run(4)
    t = m.transport
    link_pages = sum(s.pages for s in t.links.values())
    assert link_pages == t.pages_shipped + t.pages_pulled
    assert m.pages_fetched == t.pages_shipped + t.pages_pulled
    assert m.pages_fetched > 0


# -- delta-ship vs full-ship oracle ---------------------------------------

def test_delta_ship_matches_full_ship_oracle():
    """Identical computed values, strictly fewer pages on the wire."""
    delta_result, delta_m = run(4, ship_mode="delta")
    full_result, full_m = run(4, ship_mode="full")
    assert delta_result.r0 == full_result.r0
    assert delta_m.pages_fetched < full_m.pages_fetched
    assert delta_m.transport.busy_total < full_m.transport.busy_total


def test_full_ship_reships_unchanged_pages():
    """The naive protocol pays for revisits; delta migration proves the
    pages unchanged from the ledger and ships nothing."""
    def main(g):
        g.write(ADDR, b"x" * PAGE_SIZE)
        for round_ in range(3):
            g.get(0x50, regs=True)                      # home (node 0)
            g.get(child_ref(1 + round_, node=1), regs=True)  # node 1
        return 0

    def pages(ship_mode):
        with Machine(nnodes=2, ship_mode=ship_mode) as m:
            m.run(main)
            return m.transport.pages_shipped

    assert pages("full") >= 3 * pages("delta")
    assert pages("delta") == 1     # the page crosses once, ever


# -- batching --------------------------------------------------------------

def test_batching_reduces_messages_not_pages():
    """msg_batch=1 degenerates to one message per page; the default
    coalesces — same pages, fewer messages, fewer wire cycles."""
    from repro.timing.model import CostModel

    _, batched = run(2)
    _, single = run(2, cost=CostModel(msg_batch=1))
    assert batched.pages_fetched == single.pages_fetched
    assert batched.transport.batches < single.transport.batches
    assert batched.transport.messages < single.transport.messages
    assert batched.transport.busy_total < single.transport.busy_total


def test_batch_sizes_partition():
    t = Transport(Machine(nnodes=2))
    cap = t.machine.cost.msg_batch
    sizes = t._batch_sizes(2 * cap + 3)
    assert sum(sizes) == 2 * cap + 3
    assert max(sizes) <= cap
    assert t._batch_sizes(0) == []


def test_message_type_accounting():
    _, m = run(2)
    by_type = {}
    for stats in m.transport.links.values():
        for name, count in stats.by_type.items():
            by_type[name] = by_type.get(name, 0) + count
    assert by_type.get(MsgType.MIGRATE.name, 0) == m.transport.migrations
    assert by_type.get(MsgType.PAGE_BATCH.name, 0) == m.transport.batches
    # Every MIGRATE and every PAGE_REQ exchange is acknowledged.
    assert by_type.get(MsgType.ACK.name, 0) > 0


# -- sweep_nodes plumbing --------------------------------------------------

def _stable_builder(nnodes):
    """A program whose value is node-count independent."""
    def main(g):
        total = 0
        for node in range(nnodes):
            ref = child_ref(1, node=node)
            g.put(ref, regs={"entry": lambda g2: 21, "args": ()}, start=True)
            total += g.get(ref, regs=True)["r0"]
        return total // nnodes

    return main


def test_sweep_nodes_tcp_mode_changes_wire_costs():
    """Regression: sweep_nodes used to drop tcp_mode on the floor."""
    plain = sweep_nodes(_stable_builder, node_counts=(2,))
    tcp = sweep_nodes(_stable_builder, node_counts=(2,), tcp_mode=True)
    plain_wire = plain[2][1].network.wire_cycles
    tcp_wire = tcp[2][1].network.wire_cycles
    assert tcp_wire > plain_wire
    assert plain[2][1].value == tcp[2][1].value


def test_sweep_nodes_plumbs_ship_mode_and_tracking():
    full = sweep_nodes(_stable_builder, node_counts=(1, 2, 4),
                       ship_mode="full", dirty_tracking=False)
    delta = sweep_nodes(_stable_builder, node_counts=(1, 2, 4))
    for nodes in (1, 2, 4):
        # Semantic transparency holds in every configuration.
        assert full[nodes][1].value == delta[nodes][1].value
        assert not full[nodes][1].machine.dirty_tracking
        assert full[nodes][1].machine.ship_mode == "full"


def test_bad_ship_mode_rejected():
    with pytest.raises(ValueError, match="ship_mode"):
        Machine(ship_mode="lazy")
