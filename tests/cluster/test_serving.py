"""Serving traces: deterministic arrivals, tail latency, autoscaling.

The serving oracle set: one seed reproduces the *entire* latency table
bit for bit; request values are pure functions of the request id (so
arrival seeds, loss schedules and autoscale plans must never change
them); loss only ever adds latency; and an autoscale plan completes
every request — drains and cold starts are latency, never lost work.
"""

import pytest

from repro import ClusterSpec, ServingResult, serve_trace
from repro.bench.workloads import serving as workload
from repro.cluster.serving import MAX_REQUESTS

NODES = 2
REQUESTS = 24
MEAN_GAP = 120_000
SEED = 11


def _serve(**kw):
    kw.setdefault("requests", REQUESTS)
    kw.setdefault("mean_gap", MEAN_GAP)
    kw.setdefault("seed", SEED)
    return serve_trace(NODES, **kw)


# -- arrival traces ---------------------------------------------------------

def test_arrivals_deterministic_and_increasing():
    a = workload.make_arrivals(50, 10_000, seed=7)
    b = workload.make_arrivals(50, 10_000, seed=7)
    assert a == b
    assert len(a) == 50
    assert all(x < y for x, y in zip(a, a[1:]))
    assert workload.make_arrivals(50, 10_000, seed=8) != a


def test_arrivals_follow_the_diurnal_shape():
    """A 3x burst segment packs arrivals ~3x denser than baseline."""
    segments = ((1, 1), (3, 1))
    n = 400
    arrivals = workload.make_arrivals(n, 10_000, seed=7,
                                      segments=segments,
                                      segment_cycles=1_000_000)
    def in_window(lo, hi):
        return sum(lo <= t < hi for t in arrivals)
    # Compare the first baseline window against the first burst window.
    base, burst = in_window(0, 1_000_000), in_window(1_000_000, 2_000_000)
    assert burst > 2 * base


# -- determinism ------------------------------------------------------------

def test_same_seed_reproduces_the_whole_latency_table():
    a = _serve()
    b = _serve()
    assert a.latencies == b.latencies
    assert a.values == b.values
    assert a.arrivals == b.arrivals
    assert (a.span, a.checksum) == (b.span, b.checksum)


def test_values_are_pure_functions_of_the_rid():
    """A different arrival seed moves every latency but no value."""
    a = _serve(seed=SEED)
    b = _serve(seed=99)
    assert a.values == b.values
    assert a.arrivals != b.arrivals
    oracle = tuple(workload.request_value(rid) for rid in range(REQUESTS))
    assert a.values == oracle
    assert a.checksum == workload.fold_checksum(oracle)


def test_loss_is_cost_only_and_monotone():
    clean = _serve()
    lossy = _serve(spec=ClusterSpec(loss=0.05))
    assert lossy.values == clean.values
    assert lossy.checksum == clean.checksum
    assert lossy.p99 >= clean.p99


# -- metrics ----------------------------------------------------------------

def test_percentiles_and_goodput():
    r = _serve()
    assert isinstance(r, ServingResult)
    assert min(r.latencies) <= r.p50 <= r.p95 <= r.p99 <= max(r.latencies)
    assert r.percentile(100) == max(r.latencies)
    assert r.goodput == REQUESTS * 10**9 // r.span
    assert r.goodput > 0
    cdf = r.latency_cdf()
    assert cdf[0][0] == min(r.latencies)
    assert cdf[-1] == (max(r.latencies), 100)
    assert all(p1 <= p2 for (_, p1), (_, p2) in zip(cdf, cdf[1:]))


# -- autoscaling ------------------------------------------------------------

def test_autoscale_completes_every_request():
    plan = ((0, 1), (2_000_000, 2), (4_000_000, 1))
    r = serve_trace(2, requests=REQUESTS, mean_gap=MEAN_GAP, seed=SEED,
                    autoscale=plan)
    assert len(r.latencies) == REQUESTS
    static = _serve()
    assert r.values == static.values
    assert r.checksum == static.checksum


def test_autoscale_plan_validation():
    with pytest.raises(ValueError, match="begin at cycle 0"):
        serve_trace(2, requests=4, autoscale=((1_000, 2),))
    with pytest.raises(ValueError, match="outside"):
        serve_trace(2, requests=4, autoscale=((0, 3),))
    with pytest.raises(ValueError, match="outside"):
        serve_trace(2, requests=4, autoscale=((0, 0),))


def test_request_cap():
    with pytest.raises(ValueError, match="at most"):
        serve_trace(1, requests=MAX_REQUESTS + 1)
