"""Tests for the high-level Cluster API and network statistics."""

import pytest

from repro.cluster import Cluster, sweep_nodes
from repro.kernel import child_ref
from repro.mem import PAGE_SIZE

ADDR = 0x10_0000


def spread_work(nnodes, work=200_000, data_pages=0):
    """Program: one worker per node, optional data shipping."""
    def worker(g):
        g.work(work)
        return g.space.cur_node

    def main(g):
        if data_pages:
            g.write(ADDR, b"d" * (data_pages * PAGE_SIZE))
        for node in range(nnodes):
            kwargs = {"regs": {"entry": worker}, "start": True}
            if data_pages:
                kwargs["copy"] = (ADDR, data_pages * PAGE_SIZE)
            g.put(child_ref(1, node=node), **kwargs)
        return sorted(
            g.get(child_ref(1, node=node), regs=True)["r0"]
            for node in range(nnodes)
        )

    return main


def test_cluster_runs_and_places_workers():
    cluster = Cluster(nnodes=4)
    result = cluster.run(spread_work(4))
    assert result.value == [0, 1, 2, 3]
    assert result.makespan() > 0


def test_cluster_faults_raise():
    def bad(g):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="faulted"):
        Cluster(nnodes=2).run(bad)


def test_network_stats_counts_fetches_and_migrations():
    cluster = Cluster(nnodes=4)
    result = cluster.run(spread_work(4, data_pages=8))
    stats = result.network
    assert stats.pages_fetched >= 8 * 3   # shipped to 3 remote nodes
    assert stats.bytes_moved == stats.pages_fetched * PAGE_SIZE
    assert stats.migrations >= 3
    assert "pages fetched" in stats.summary()


def test_no_traffic_on_single_node():
    result = Cluster(nnodes=1).run(spread_work(1, data_pages=8))
    assert result.network.pages_fetched == 0


def test_sweep_nodes_speedup_and_transparency():
    total = 20_000_000
    series = sweep_nodes(
        lambda n: spread_work(n, work=total // n),   # fixed total work
        node_counts=(1, 2, 4),
        check_value=False,   # value is the node list, varies by design
    )
    assert series[1][0] == pytest.approx(1.0)
    assert series[4][0] > series[2][0] > 1.5


def test_sweep_nodes_detects_value_drift():
    def builder(nnodes):
        def main(g):
            return nnodes        # deliberately node-count dependent
        return main

    with pytest.raises(AssertionError, match="drift"):
        sweep_nodes(builder, node_counts=(1, 2))
