"""Pipelined demand paging + wire compression: oracles and invariants.

The async fetch queues and the PAGE_BATCH codec are cost-only
mechanisms: across every ``prefetch_depth`` and compression setting the
computed values and final memory images must be bit-identical, the
per-link byte-conservation invariant must hold, and compressed payload
bytes must never exceed raw payload bytes on any link.
"""

import hashlib

import pytest

from repro.bench import cluster_workloads as cw
from repro.cluster import NetworkStats
from repro.kernel import Machine, child_ref
from repro.mem import PAGE_SIZE
from repro.timing.schedule import schedule

DEPTHS = (0, 1, 4, 16)
NODES = 4


def _memory_image(space):
    """Digest of a space's full memory image (vpn-ordered frame bytes)."""
    digest = hashlib.sha256()
    aspace = space.addrspace
    for vpn in aspace.mapped_vpns():
        digest.update(vpn.to_bytes(8, "little"))
        digest.update(aspace.frame(vpn).data)
    return digest.hexdigest()


def _run_oracle(entry_builder, **machine_kwargs):
    """Run a cluster program, returning (value, root memory image,
    machine stats snapshot) with the machine still open."""
    machine = Machine(nnodes=NODES, **machine_kwargs)
    with machine:
        result = machine.run(lambda g: entry_builder(g, NODES))
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        return result.r0, _memory_image(machine.root), machine


# -- stop-and-wait vs pipelined oracle -------------------------------------

@pytest.mark.parametrize("workload,builder", [
    ("matmult-tree", lambda: cw.matmult_tree_main(64)),
    ("md5-tree", lambda: cw.md5_tree_main(3)),
])
def test_depth_oracle_identical_results(workload, builder):
    """Identical digests and memory images across prefetch depths, on
    the demand-paging protocol where prefetching actually fires."""
    reference = None
    for depth in DEPTHS:
        value, image, machine = _run_oracle(
            builder(), ship_mode="demand", prefetch_depth=depth,
            topology="two_tier:2")
        assert machine.transport.conservation_ok(), (workload, depth)
        if reference is None:
            reference = (value, image)
        assert (value, image) == reference, (workload, depth)
        if depth == 0:
            assert machine.transport.pages_prefetched == 0


def test_depth_oracle_with_compression():
    """Compression composes with any depth without touching results."""
    reference = None
    for depth in (0, 16):
        for compression in (False, True):
            value, image, machine = _run_oracle(
                cw.matmult_tree_main(64), ship_mode="demand",
                prefetch_depth=depth, compression=compression)
            if reference is None:
                reference = (value, image)
            assert (value, image) == reference, (depth, compression)


def test_eager_and_demand_modes_agree():
    """ship_mode is cost-only: delta, full, and demand paging all
    compute the same value and memory image."""
    images = {
        mode: _run_oracle(cw.matmult_tree_main(64), ship_mode=mode)[:2]
        for mode in ("delta", "full", "demand")
    }
    assert len(set(images.values())) == 1


# -- pipelining cuts demand stall ------------------------------------------

def _demand_stall(machine):
    sched = schedule(machine.trace,
                     cpus_per_node={node: 1 for node in range(NODES)})
    return (sched.stall_cycles.get("fetch", 0)
            + sched.stall_cycles.get("prefetch", 0))


def test_prefetch_strictly_cuts_demand_stall():
    _, _, stopwait = _run_oracle(cw.matmult_tree_main(64),
                                 ship_mode="demand", topology="two_tier:2")
    _, _, pipelined = _run_oracle(cw.matmult_tree_main(64),
                                  ship_mode="demand", prefetch_depth=32,
                                  topology="two_tier:2")
    assert _demand_stall(pipelined) < _demand_stall(stopwait)
    # The queue served real demand: most prefetched pages were used.
    t = pipelined.transport
    assert t.prefetch_used > 0
    assert t.pages_pulled < stopwait.transport.pages_pulled


def test_queue_depth_bounded():
    """In-flight prefetched frames never exceed the configured depth."""
    class Probe(Machine):
        max_seen = 0

    machine = Probe(nnodes=NODES, ship_mode="demand", prefetch_depth=4,
                    topology="two_tier:2")
    transport = machine.transport
    original = transport.prefetch

    def spy(space, origin, node, frames):
        original(space, origin, node, frames)
        Probe.max_seen = max(Probe.max_seen,
                             transport.queue_len(node))

    transport.prefetch = spy
    with machine:
        machine.run(lambda g: cw.matmult_tree(g, NODES, 64, 7))
    assert 0 < Probe.max_seen <= 4


# -- page accounting -------------------------------------------------------

def test_prefetched_pages_counted_separately():
    """Link page totals split into shipped + pulled + prefetched, and
    prefetched-but-unused pages are reported, never folded into the
    demand-pull count."""
    _, _, machine = _run_oracle(cw.matmult_tree_main(64),
                                ship_mode="demand", prefetch_depth=16)
    t = machine.transport
    assert t.pages_prefetched > 0
    stats = NetworkStats(machine)
    assert stats.pages_fetched == (t.pages_shipped + t.pages_pulled
                                   + t.pages_prefetched)
    assert stats.prefetch_unused == t.pages_prefetched - t.prefetch_used
    assert stats.prefetch_unused >= 0
    # The human-readable views name the split.
    assert "prefetched" in stats.summary()
    assert "pf" in repr(t) and "used" in repr(t)


def test_bad_prefetch_depth_rejected():
    with pytest.raises(ValueError, match="prefetch_depth"):
        Machine(prefetch_depth=-1)


def test_bad_ship_mode_still_rejected():
    with pytest.raises(ValueError, match="ship_mode"):
        Machine(ship_mode="lazy")


# -- compression conservation ----------------------------------------------

def test_compressed_never_exceeds_raw_per_link():
    """The per-link compression ledger: comp_bytes <= raw_bytes on
    every traversed link, raw == pages * PAGE_SIZE, and the totals
    strictly shrink for matmult's compressible matrices."""
    _, _, machine = _run_oracle(cw.matmult_tree_main(64),
                                ship_mode="demand", compression=True,
                                topology="two_tier:2")
    t = machine.transport
    assert t.links
    for link, stats in t.links.items():
        assert stats.comp_bytes <= stats.raw_bytes, link
        assert stats.raw_bytes == stats.pages * PAGE_SIZE, link
    assert t.comp_total < t.raw_total
    assert t.conservation_ok()
    net = NetworkStats(machine)
    assert net.compression_ratio() < 1.0
    assert "saved" in net.compression_table()


def test_compression_off_ships_payload_verbatim():
    _, _, machine = _run_oracle(cw.matmult_tree_main(64),
                                ship_mode="demand")
    t = machine.transport
    assert t.comp_total == t.raw_total > 0
    assert t.codec_cycles == 0
    assert NetworkStats(machine).compression_ratio() == 1.0


def test_compression_cuts_wire_bytes_and_cycles():
    _, _, plain = _run_oracle(cw.matmult_tree_main(64), ship_mode="demand")
    _, _, comp = _run_oracle(cw.matmult_tree_main(64), ship_mode="demand",
                             compression=True)
    assert comp.transport.bytes_total < plain.transport.bytes_total
    assert comp.transport.busy_total < plain.transport.busy_total
    assert comp.transport.codec_cycles > 0


# -- sweep plumbing --------------------------------------------------------

def test_sweep_nodes_plumbs_prefetch_and_compression():
    from repro.cluster import sweep_nodes

    def builder(nnodes):
        def main(g):
            g.write(0x10_0000, b"\x05" * (4 * PAGE_SIZE))
            total = 0
            for node in range(nnodes):
                ref = child_ref(1, node=node)
                g.put(ref, regs={"entry": lambda g2: int(g2.read(0x10_0000, 1)[0])},
                      copy=(0x10_0000, 4 * PAGE_SIZE), start=True)
                total += g.get(ref, regs=True)["r0"]
            return total // nnodes
        return main

    plain = sweep_nodes(builder, node_counts=(2, 4), ship_mode="demand")
    tuned = sweep_nodes(builder, node_counts=(2, 4), ship_mode="demand",
                        prefetch_depth=8, compression=True)
    for nodes in (2, 4):
        assert plain[nodes][1].value == tuned[nodes][1].value
        assert tuned[nodes][1].machine.prefetch_depth == 8
        assert tuned[nodes][1].machine.compression
        assert (tuned[nodes][1].network.comp_bytes
                <= plain[nodes][1].network.raw_bytes)
