"""Remaining §6.1 experience claims, as executable checks."""

import pytest

from repro.kernel import Machine
from repro.runtime.process import unix_root
from repro.runtime.shell import Shell


def run_shell(script, programs=None):
    def init(rt):
        return Shell(rt).run_script(script)

    with Machine(programs=programs) as m:
        result = m.run(unix_root(init))
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def noisy(rt, tag):
    for i in range(3):
        rt.write_console(f"{tag}{i}\n".encode())
    return 0


PROGRAMS = {"noisy": noisy}


def test_output_identical_with_and_without_redirection():
    """§4.3: 'rerunning a parallel computation from the same inputs with
    and without output redirection yields byte-for-byte identical console
    and log file output.'"""
    direct = run_shell("noisy A\nnoisy B", programs=PROGRAMS)

    redirected = run_shell(
        "noisy A > captured\nnoisy B >> captured\ncat captured",
        programs=PROGRAMS,
    )
    assert direct.console == redirected.console


def test_log_file_contents_deterministic():
    logs = set()
    for _ in range(3):
        result = run_shell(
            "noisy X > log\nnoisy Y >> log\ncat log",
            programs=PROGRAMS,
        )
        logs.add(result.console)
    assert logs == {b"X0\nX1\nX2\nY0\nY1\nY2\n"}


def test_cli_module_lists_artifacts():
    from repro.bench.__main__ import ARTIFACTS, main
    expected = {"fig4", "md5", "serving", "fig7", "fig8", "fig9", "fig10",
                "fig11", "fig12", "table3"}
    assert expected == set(ARTIFACTS)
    assert main(["--list"]) == 0


def test_cli_module_runs_cheap_artifacts(capsys):
    from repro.bench.__main__ import main
    assert main(["fig4", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out and "Table 3" in out


def test_cli_rejects_unknown_artifact():
    from repro.bench.__main__ import main
    with pytest.raises(SystemExit):
        main(["figNaN"])
