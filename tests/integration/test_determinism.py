"""End-to-end determinism: the §6.1 experience, as executable checks.

"We find that a deterministic programming model simplifies debugging ...
since user-space bugs are always reproducible."  These tests run whole
stacks — processes + files + threads + scheduler + cluster — several
times and demand bit-identical results, traces, and *failures*.
"""


from repro.common.errors import MergeConflictError
from repro.kernel import Machine, child_ref
from repro.mem.layout import SHARED_BASE
from repro.runtime.dsched import det_pthreads_run
from repro.runtime.make import Make, MakeRule
from repro.runtime.process import unix_root
from repro.runtime.shell import Shell
from repro.runtime.threads import ThreadGroup


def fingerprint(machine, result):
    """Everything observable about a run."""
    return (
        result.r0,
        result.status,
        result.trap,
        result.console,
        result.total_cycles(),
        result.makespan(ncpus=4),
        len(result.trace.segments),
    )


def run_many(main, times=3, **kwargs):
    prints = []
    for _ in range(times):
        with Machine(**kwargs) as machine:
            result = machine.run(main)
            prints.append(fingerprint(machine, result))
    assert all(p == prints[0] for p in prints), "nondeterminism detected"
    return prints[0]


# ---------------------------------------------------------------------------
# Whole-stack scenarios
# ---------------------------------------------------------------------------

def test_mixed_threads_and_work_deterministic():
    def worker(g, i):
        g.work(137 * (i + 1))
        g.store(SHARED_BASE + 8 * i, i * i)
        return i

    def main(g):
        tg = ThreadGroup(g)
        for i in range(7):
            tg.fork(worker, (i,))
        values = tg.join_all()
        g.console_write(repr(values).encode())
        return sum(values)

    fp = run_many(main)
    assert fp[0] == sum(range(7))


def test_process_build_pipeline_deterministic():
    def init(rt):
        rules = [
            MakeRule("a.o", duration=40_000),
            MakeRule("b.o", duration=10_000),
            MakeRule("bin", deps=("a.o", "b.o"), duration=5_000),
        ]
        Make(rt, rules).build("bin", jobs=2)
        shell = Shell(rt)
        shell.run_script("ls > listing\ncat listing")
        return 0

    fp = run_many(unix_root(init))
    assert b"a.o" in fp[3] and b"bin" in fp[3]


def test_legacy_scheduler_racy_program_repeatable():
    def racer(dt, value):
        for _ in range(5):
            dt.g.store(SHARED_BASE, value)       # deliberate race
            dt.g.work(999)
        return dt.g.load(SHARED_BASE)

    def main(g):
        results = det_pthreads_run(
            g, [(racer, (1,)), (racer, (2,))], quantum=2_500
        )
        return (tuple(results), g.load(SHARED_BASE))

    run_many(main)


def test_cluster_run_deterministic():
    def worker(g, i):
        g.work(50_000)
        return i * 7

    def main(g):
        for i in range(4):
            g.put(child_ref(1, node=i), regs={"entry": worker, "args": (i,)},
                  start=True)
        return sum(g.get(child_ref(1, node=i), regs=True)["r0"]
                   for i in range(4))

    prints = []
    for _ in range(3):
        with Machine(nnodes=4) as machine:
            result = machine.run(main)
            prints.append(
                (result.r0, result.total_cycles(), machine.pages_fetched)
            )
    assert len(set(prints)) == 1


# ---------------------------------------------------------------------------
# Failure injection: bugs are reproducible too
# ---------------------------------------------------------------------------

def test_injected_exception_reproducible_at_same_point():
    def flaky(g, i):
        g.work(100 * i)
        if i == 3:
            raise RuntimeError(f"injected bug in worker {i}")
        return i

    def main(g):
        tg = ThreadGroup(g)
        for i in range(6):
            tg.fork(flaky, (i,))
        outcomes = []
        for i in range(6):
            try:
                outcomes.append(("ok", tg.join(i)))
            except Exception as exc:
                outcomes.append(("fault", str(exc)[:40]))
        return tuple(outcomes)

    fp = run_many(main)
    outcomes = fp[0]
    assert outcomes[3][0] == "fault"
    assert all(kind == "ok" for kind, _ in outcomes[:3] + outcomes[4:])


def test_injected_conflict_reproducible():
    def writer(g, value):
        g.store(SHARED_BASE + 0x100, value)

    def main(g):
        tg = ThreadGroup(g)
        tg.fork(writer, (1,))
        tg.fork(writer, (2,))
        tg.join(0)
        try:
            tg.join(1)
            return "merged"
        except MergeConflictError as err:
            return ("conflict", err.addr)

    fp = run_many(main)
    assert fp[0] == ("conflict", SHARED_BASE + 0x100)


def test_fault_in_deep_process_tree_reproducible():
    def leaf(rt):
        raise ValueError("leaf exploded")

    def mid(rt):
        try:
            pid = rt.fork(leaf)
            rt.waitpid(pid)
            return 0
        except Exception:
            return 13

    def init(rt):
        pid = rt.fork(mid)
        return rt.waitpid(pid)

    fp = run_many(unix_root(init))
    assert fp[0] == 13


def test_debug_log_reflects_true_order_consistently():
    def child(g, i):
        g.debug(f"child {i}")
        return 0

    def main(g):
        for i in range(4):
            g.put(i, regs={"entry": child, "args": (i,)}, start=True)
        for i in range(4):
            g.get(i)
        return 0

    logs = []
    for _ in range(3):
        with Machine() as machine:
            result = machine.run(main)
            logs.append(tuple(result.debug))
    assert len(set(logs)) == 1


def test_different_inputs_different_outputs_same_structure():
    """Determinism is w.r.t. inputs: vary the input, output follows."""
    def main(g):
        data = g.console_read(10)
        g.console_write(data[::-1])
        return 0

    def run_with(text):
        with Machine(console_input=text) as machine:
            return machine.run(main).console

    assert run_with(b"abc") == b"cba"
    assert run_with(b"xyz") == b"zyx"
    assert run_with(b"abc") == b"cba"   # and still repeatable
