"""Randomized oracle test for merge_range (DESIGN.md §dirty-tracking).

Compares the production merge — both the tracked fast path (dirty-ledger
enumeration, tag-based adoption, batched stacked diff) and the legacy
scan path — against a naive byte-at-a-time oracle on randomly generated
parent/child/snapshot triples, under all three conflict modes.  The fast
paths must produce byte-identical parent memory, raise on exactly the
same triples, and report the same first-conflict address; tracked and
untracked spaces must agree with each other.
"""

import random

import pytest

from repro.common.errors import MergeConflictError
from repro.mem import AddressSpace, PAGE_SIZE, Snapshot, merge_range

BASE = 0x8000
NPAGES = 6
SPAN = NPAGES * PAGE_SIZE


def oracle_merge(parent_bytes, child_bytes, snap_bytes, mode):
    """Naive byte-at-a-time reference: returns (result_bytes, conflict_addr).

    ``conflict_addr`` is the lowest conflicting address (None if clean).
    The result bytes are only meaningful when there is no conflict.
    """
    result = bytearray(parent_bytes)
    conflict = None
    for i in range(len(snap_bytes)):
        s, c, p = snap_bytes[i], child_bytes[i], parent_bytes[i]
        child_changed = c != s
        parent_changed = p != s
        if child_changed and parent_changed and mode != "override":
            if mode == "strict" or c != p:
                conflict = BASE + i
                break
        if mode == "lenient":
            if child_changed and not parent_changed:
                result[i] = c
        elif child_changed:
            result[i] = c
    return bytes(result), conflict


def random_triple(rng, track_dirty):
    """Build a parent/child/snapshot triple with random write patterns."""
    parent = AddressSpace(track_dirty=track_dirty)
    # Random initial image: some pages populated, some left demand-zero.
    for vpn in range(NPAGES):
        if rng.random() < 0.7:
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
            parent.write(BASE + vpn * PAGE_SIZE + rng.randrange(PAGE_SIZE - 64),
                         data)
    child = AddressSpace(track_dirty=track_dirty)
    child.copy_range_from(parent, BASE, BASE, SPAN)
    snap = Snapshot.capture(child, BASE, SPAN)

    def mutate(space):
        ops = []
        for _ in range(rng.randrange(0, 12)):
            if rng.random() < 0.4:
                # Hot window shared by both sides: makes write/write
                # overlap (and thus conflicts) common across seeds.
                off = rng.randrange(64)
            else:
                off = rng.randrange(SPAN - 8)
            val = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 8)))
            space.write(BASE + off, val)
            ops.append((off, val))
        if rng.random() < 0.25:  # occasional whole-page zero (unmap)
            vpn = rng.randrange(NPAGES)
            space.zero_range(BASE + vpn * PAGE_SIZE, PAGE_SIZE)
            ops.append(("zero", vpn))
        return ops

    # Replay identical mutations on both sides from a forked rng so the
    # tracked and untracked builds see the same history.
    mutate(parent)
    mutate(child)
    return parent, child, snap


@pytest.mark.parametrize("seed", range(40))
@pytest.mark.parametrize("mode", ["strict", "lenient", "override"])
def test_merge_matches_byte_oracle(seed, mode):
    for track_dirty in (True, False):
        rng = random.Random(1000 * seed + 17)
        parent, child, snap = random_triple(rng, track_dirty)
        snap_bytes = bytes(
            b"".join(
                bytes(snap.frame(vpn).data) if snap.frame(vpn) is not None
                else bytes(PAGE_SIZE)
                for vpn in range((BASE >> 12), (BASE >> 12) + NPAGES)
            )
        )
        parent_bytes = parent.read(BASE, SPAN)
        child_bytes = child.read(BASE, SPAN)
        expected, conflict = oracle_merge(parent_bytes, child_bytes,
                                          snap_bytes, mode)
        if conflict is not None:
            with pytest.raises(MergeConflictError) as err:
                merge_range(parent, child, snap, mode=mode)
            assert err.value.addr == conflict, (
                f"seed={seed} mode={mode} track={track_dirty}"
            )
        else:
            stats = merge_range(parent, child, snap, mode=mode)
            assert stats.tracked == track_dirty
            assert parent.read(BASE, SPAN) == expected, (
                f"seed={seed} mode={mode} track={track_dirty}"
            )


@pytest.mark.parametrize("seed", range(20))
def test_tracked_and_untracked_merges_agree(seed):
    """Dirty tracking is an optimization: for the same mutation history
    the tracked and legacy paths must produce identical parent memory
    and identical conflicts."""
    for mode in ("strict", "lenient", "override"):
        outcomes = []
        for track_dirty in (True, False):
            rng = random.Random(7000 + seed)
            parent, child, snap = random_triple(rng, track_dirty)
            try:
                merge_range(parent, child, snap, mode=mode)
                outcomes.append(("ok", parent.read(BASE, SPAN)))
            except MergeConflictError as err:
                outcomes.append(("conflict", err.addr))
        assert outcomes[0] == outcomes[1], f"seed={seed} mode={mode}"


def test_batched_diff_spans_multiple_chunks(monkeypatch):
    """Stats accumulate (not reset) across diff batches, results match
    the single-batch path, and the conflict address is still the lowest."""
    import repro.mem.merge as merge_mod

    def build():
        parent = AddressSpace()
        parent.write(BASE, bytes(range(1, 6)) * PAGE_SIZE)  # 5 pages
        child = AddressSpace()
        child.copy_range_from(parent, BASE, BASE, 5 * PAGE_SIZE)
        snap = Snapshot.capture(child, BASE, 5 * PAGE_SIZE)
        for vpn in range(5):                  # both sides dirty, disjoint
            parent.write(BASE + vpn * PAGE_SIZE, b"\xaa")
            child.write(BASE + vpn * PAGE_SIZE + 1, b"\xbb")
        return parent, child, snap

    monkeypatch.setattr(merge_mod, "BATCH_PAGES", 2)
    parent, child, snap = build()
    stats = merge_range(parent, child, snap)
    assert stats.batch_ops == 3               # 5 pages / 2 per batch
    assert stats.pages_diffed == 5
    assert stats.bytes_merged == 5
    for vpn in range(5):
        assert parent.read(BASE + vpn * PAGE_SIZE, 2) == b"\xaa\xbb"

    # Conflict in the second chunk still reports the lowest address.
    parent, child, snap = build()
    parent.write(BASE + 3 * PAGE_SIZE + 7, b"X")
    child.write(BASE + 3 * PAGE_SIZE + 7, b"Y")
    with pytest.raises(MergeConflictError) as err:
        merge_range(parent, child, snap)
    assert err.value.addr == BASE + 3 * PAGE_SIZE + 7
