"""Property-based tests (hypothesis) for the merge invariants.

These encode the semantic guarantees of the private workspace model
(paper §2.2):

* reads see only causally-prior writes: a merge never invents bytes that
  neither side wrote;
* disjoint write sets always merge cleanly and commutatively;
* overlapping write sets always raise a conflict, independent of order.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.common.errors import MergeConflictError
from repro.mem import AddressSpace, PAGE_SIZE, Snapshot, merge_range

BASE = 0x4000
SPAN = 2 * PAGE_SIZE

offsets = st.integers(min_value=0, max_value=SPAN - 1)
values = st.integers(min_value=1, max_value=255)
write_sets = st.dictionaries(offsets, values, max_size=24)


def build(parent_writes, child_writes):
    parent = AddressSpace()
    parent.write(BASE, bytes(SPAN))
    child = AddressSpace()
    child.copy_range_from(parent, BASE, BASE, SPAN)
    snap = Snapshot.capture(child, BASE, SPAN)
    for off, val in parent_writes.items():
        parent.write(BASE + off, bytes([val]))
    for off, val in child_writes.items():
        child.write(BASE + off, bytes([val]))
    return parent, child, snap


@given(parent_writes=write_sets, child_writes=write_sets)
@settings(max_examples=120, deadline=None)
def test_disjoint_writes_merge_to_union(parent_writes, child_writes):
    child_writes = {
        off: val for off, val in child_writes.items() if off not in parent_writes
    }
    parent, child, snap = build(parent_writes, child_writes)
    merge_range(parent, child, snap)
    result = parent.read(BASE, SPAN)
    expected = bytearray(SPAN)
    for off, val in parent_writes.items():
        expected[off] = val
    for off, val in child_writes.items():
        expected[off] = val
    assert result == bytes(expected)


@given(parent_writes=write_sets, child_writes=write_sets)
@settings(max_examples=120, deadline=None)
def test_overlap_always_conflicts_in_strict_mode(parent_writes, child_writes):
    overlap = set(parent_writes) & set(child_writes)
    parent, child, snap = build(parent_writes, child_writes)
    if overlap:
        with pytest.raises(MergeConflictError):
            merge_range(parent, child, snap, mode="strict")
    else:
        merge_range(parent, child, snap, mode="strict")


@given(writes_a=write_sets, writes_b=write_sets)
@settings(max_examples=80, deadline=None)
def test_sibling_merge_order_independent_when_disjoint(writes_a, writes_b):
    """Merging disjoint siblings in either order gives identical memory."""
    writes_b = {off: val for off, val in writes_b.items() if off not in writes_a}

    def run(order):
        parent = AddressSpace()
        parent.write(BASE, bytes(SPAN))
        sibs = []
        for writes in (writes_a, writes_b):
            child = AddressSpace()
            child.copy_range_from(parent, BASE, BASE, SPAN)
            snap = Snapshot.capture(child, BASE, SPAN)
            for off, val in writes.items():
                child.write(BASE + off, bytes([val]))
            sibs.append((child, snap))
        for idx in order:
            merge_range(parent, sibs[idx][0], sibs[idx][1])
        return parent.read(BASE, SPAN)

    assert run([0, 1]) == run([1, 0])


@given(child_writes=write_sets)
@settings(max_examples=80, deadline=None)
def test_merge_is_idempotent_for_clean_child(child_writes):
    """Merging the same child twice does not conflict or change bytes.

    After the first merge the parent's bytes equal the child's bytes at
    every child-written offset, and strict mode compares against the same
    snapshot — so a second merge must raise (both sides now differ from
    the snapshot at those bytes) unless the write set is empty.  This
    pins down the 'changed in both' definition.
    """
    parent, child, snap = build({}, child_writes)
    merge_range(parent, child, snap)
    first = parent.read(BASE, SPAN)
    if child_writes:
        with pytest.raises(MergeConflictError):
            merge_range(parent, child, snap, mode="strict")
        # Lenient mode tolerates the identical values.
        merge_range(parent, child, snap, mode="lenient")
    else:
        merge_range(parent, child, snap, mode="strict")
    assert parent.read(BASE, SPAN) == first
