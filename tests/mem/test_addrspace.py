"""Unit tests for copy-on-write address spaces."""

import pytest

from repro.common.errors import PageFaultError, PermissionFault
from repro.mem import (
    AddressSpace,
    PAGE_SIZE,
    PERM_NONE,
    PERM_R,
    PERM_RW,
    PERM_W,
    VA_SIZE,
)


@pytest.fixture
def space():
    return AddressSpace()


def test_read_unmapped_returns_zeros(space):
    assert space.read(0x1000, 16) == bytes(16)
    assert space.mapped_page_count() == 0


def test_write_then_read_roundtrip(space):
    space.write(0x2000, b"hello world")
    assert space.read(0x2000, 11) == b"hello world"


def test_write_spanning_pages(space):
    addr = 0x3000 + PAGE_SIZE - 4
    space.write(addr, b"abcdefgh")
    assert space.read(addr, 8) == b"abcdefgh"
    assert space.mapped_page_count() == 2


def test_write_counts_demand_zero_events(space):
    events = space.write(0x1000, b"x" * (2 * PAGE_SIZE))
    assert events == 2
    assert space.counters.demand_zero == 2


def test_out_of_range_access_rejected(space):
    with pytest.raises(PageFaultError):
        space.read(VA_SIZE - 4, 8)
    with pytest.raises(PageFaultError):
        space.write(VA_SIZE, b"x")


def test_copy_range_shares_frames_cow(space):
    src = AddressSpace()
    src.write(0x1000, b"shared-data")
    space.copy_range_from(src, 0x1000, 0x1000, PAGE_SIZE)
    assert space.frame(1) is src.frame(1)
    assert space.frame(1).refs == 2
    assert space.read(0x1000, 11) == b"shared-data"


def test_cow_break_on_write_after_copy(space):
    src = AddressSpace()
    src.write(0x1000, b"original")
    space.copy_range_from(src, 0x1000, 0x1000, PAGE_SIZE)
    space.write(0x1000, b"modified")
    assert src.read(0x1000, 8) == b"original"
    assert space.read(0x1000, 8) == b"modified"
    assert space.counters.cow_breaks == 1
    assert src.frame(1).refs == 1


def test_copy_range_to_different_destination(space):
    src = AddressSpace()
    src.write(0, b"page-zero")
    space.copy_range_from(src, 0, 0x5000, PAGE_SIZE)
    assert space.read(0x5000, 9) == b"page-zero"


def test_copy_range_unmapped_source_unmaps_destination(space):
    src = AddressSpace()
    space.write(0x1000, b"stale")
    space.copy_range_from(src, 0x1000, 0x1000, PAGE_SIZE)
    assert space.read(0x1000, 5) == bytes(5)
    assert space.mapped_page_count() == 0


def test_copy_range_requires_alignment(space):
    src = AddressSpace()
    with pytest.raises(ValueError):
        space.copy_range_from(src, 0x10, 0x1000, PAGE_SIZE)
    with pytest.raises(ValueError):
        space.copy_range_from(src, 0x1000, 0x1000, 100)


def test_zero_range_clears(space):
    space.write(0x1000, b"junk")
    space.zero_range(0x1000, PAGE_SIZE)
    assert space.read(0x1000, 4) == bytes(4)
    assert space.mapped_page_count() == 0


def test_permission_fault_on_read(space):
    space.write(0x1000, b"secret")
    space.set_perm(0x1000, PAGE_SIZE, PERM_NONE)
    with pytest.raises(PermissionFault):
        space.read(0x1000, 6, check_perm=True)


def test_permission_fault_on_write_to_readonly(space):
    space.write(0x1000, b"ro")
    space.set_perm(0x1000, PAGE_SIZE, PERM_R)
    with pytest.raises(PermissionFault):
        space.write(0x1000, b"xx", check_perm=True)
    # Reads still work.
    assert space.read(0x1000, 2, check_perm=True) == b"ro"


def test_write_requires_the_writable_bit_specifically(space):
    """Regression: the write check tests PERM_W explicitly — a page with
    any permission lacking the W bit must reject writes, and a W-only
    page must accept them while rejecting reads."""
    space.write(0x1000, b"ro")
    for perm in (PERM_NONE, PERM_R):
        space.set_perm(0x1000, PAGE_SIZE, perm)
        with pytest.raises(PermissionFault):
            space.write(0x1000, b"xx", check_perm=True)
    space.set_perm(0x1000, PAGE_SIZE, PERM_W)
    space.write(0x1000, b"ok", check_perm=True)      # write-only: allowed
    with pytest.raises(PermissionFault):
        space.read(0x1000, 2, check_perm=True)
    assert PERM_RW == PERM_R | PERM_W


def test_copy_range_applies_perm_to_already_shared_pages(space):
    """Regression: Copy-with-Perm must update permissions even on pages
    where source and destination already share the identical frame."""
    src = AddressSpace()
    src.write(0x1000, b"shared")
    space.copy_range_from(src, 0x1000, 0x1000, PAGE_SIZE)
    assert space.frame(1) is src.frame(1)
    # Second copy of the same range, now requesting read-only.
    space.copy_range_from(src, 0x1000, 0x1000, PAGE_SIZE, perm=PERM_R)
    assert space.perm(1) == PERM_R
    with pytest.raises(PermissionFault):
        space.write(0x1000, b"x", check_perm=True)


def test_perm_not_checked_without_flag(space):
    space.write(0x1000, b"data")
    space.set_perm(0x1000, PAGE_SIZE, PERM_NONE)
    assert space.read(0x1000, 4) == b"data"


def test_clone_is_cow(space):
    space.write(0x1000, b"base")
    twin = space.clone()
    twin.write(0x1000, b"diff")
    assert space.read(0x1000, 4) == b"base"
    assert twin.read(0x1000, 4) == b"diff"


def test_drop_all_releases_references(space):
    src = AddressSpace()
    src.write(0x1000, b"x")
    space.copy_range_from(src, 0x1000, 0x1000, PAGE_SIZE)
    assert src.frame(1).refs == 2
    space.drop_all()
    assert src.frame(1).refs == 1
    assert space.mapped_page_count() == 0


def test_as_array_single_page_view_writable(space):
    space.write(0x1000, bytes(range(16)))
    arr = space.as_array(0x1000, 16, writable=True)
    arr[0] = 0xEE
    assert space.read(0x1000, 1) == b"\xee"


def test_as_array_multi_page_readonly_copy(space):
    space.write(0x1000, b"a" * (2 * PAGE_SIZE))
    arr = space.as_array(0x1000, 2 * PAGE_SIZE)
    assert len(arr) == 2 * PAGE_SIZE
    with pytest.raises(ValueError):
        space.as_array(0x1800, PAGE_SIZE, writable=True)


def test_writable_view_respects_page_permissions(space):
    """Regression: a zero-copy writable view is a write — it must honor
    the PERM_W bit exactly like AddressSpace.write does."""
    space.write(0x1000, b"protected")
    space.set_perm(0x1000, PAGE_SIZE, PERM_R)
    with pytest.raises(PermissionFault):
        space.as_array(0x1000, 8, writable=True, check_perm=True)
    space.set_perm(0x1000, PAGE_SIZE, PERM_NONE)
    with pytest.raises(PermissionFault):
        space.as_array(0x1000, 8, writable=False, check_perm=True)
    # Unchecked access (kernel-internal use) still works.
    assert len(space.as_array(0x1000, 8)) == 8
