"""Unit tests for generation tags, the dirty ledger, and incremental
snapshots (DESIGN.md)."""

import pytest

from repro.kernel import Machine
from repro.mem import (
    AddressSpace,
    FrameAllocator,
    PAGE_SIZE,
    Snapshot,
    merge_range,
)

BASE = 0x4000


# -- frame allocator / generations ----------------------------------------


def test_machines_have_isolated_serial_streams():
    def main(g):
        g.write(0x1000, b"x")
        return g.space.addrspace.frame(1).serial

    with Machine() as m1:
        s1 = m1.run(main).r0
    with Machine() as m2:
        s2 = m2.run(main).r0
    # Same program, fresh machine -> same serial: no global counter bleed.
    assert s1 == s2


def test_allocator_counts_frames():
    alloc = FrameAllocator()
    space = AddressSpace(allocator=alloc)
    space.write(0x1000, b"a")
    space.write(0x3000, b"b")
    assert alloc.frames_allocated == 2


def test_generation_bumps_on_every_write():
    space = AddressSpace()
    space.write(BASE, b"a")
    frame = space.frame(BASE >> 12)
    gen = frame.generation
    space.write(BASE + 1, b"b")
    assert space.frame(BASE >> 12) is frame
    assert frame.generation > gen


def test_tag_changes_after_cow_break():
    src = AddressSpace()
    src.write(BASE, b"shared")
    dst = AddressSpace()
    dst.copy_range_from(src, BASE, BASE, PAGE_SIZE)
    old_tag = dst.frame(BASE >> 12).tag()
    dst.write(BASE, b"priv")
    assert dst.frame(BASE >> 12).tag() != old_tag
    assert src.frame(BASE >> 12).tag() == old_tag  # source untouched


# -- dirty ledger ----------------------------------------------------------


def test_dirty_since_reports_writes_after_token():
    space = AddressSpace()
    space.write(BASE, b"before")
    token = space.dirty_token()
    assert space.dirty_since(token) == set()
    space.write(BASE + PAGE_SIZE, b"after")
    assert space.dirty_since(token) == {(BASE >> 12) + 1}


def test_dirty_ledger_records_range_ops():
    src = AddressSpace()
    src.write(BASE, b"src")
    space = AddressSpace()
    space.write(BASE + PAGE_SIZE, b"stale")
    token = space.dirty_token()
    space.copy_range_from(src, BASE, BASE, 2 * PAGE_SIZE)
    # Page 0 remapped to src's frame; page 1 unmapped (src side empty).
    assert space.dirty_since(token) == {BASE >> 12, (BASE >> 12) + 1}
    token = space.dirty_token()
    space.zero_range(BASE, PAGE_SIZE)
    assert space.dirty_since(token) == {BASE >> 12}


def test_untracked_space_has_no_ledger():
    space = AddressSpace(track_dirty=False)
    assert space.dirty_token() is None
    assert space.dirty_since(0) is None
    assert not space.tracks_dirty()


def test_clone_propagates_tracking_mode():
    assert AddressSpace(track_dirty=False).clone().tracks_dirty() is False
    assert AddressSpace().clone().tracks_dirty() is True


# -- incremental snapshots -------------------------------------------------


def fork_pair(size=4 * PAGE_SIZE):
    parent = AddressSpace()
    parent.write(BASE, b"seed-data")
    child = AddressSpace()
    child.copy_range_from(parent, BASE, BASE, size)
    return parent, child, Snapshot.capture(child, BASE, size)


def test_recapture_updates_only_dirty_pages():
    _, child, snap = fork_pair()
    old_frame = snap.frame(BASE >> 12)
    child.write(BASE + PAGE_SIZE, b"new page")
    repinned, walked = snap.recapture(child)
    assert (repinned, walked) == (1, 1)
    assert snap.frame(BASE >> 12) is old_frame           # untouched share
    assert snap.frame((BASE >> 12) + 1) is child.frame((BASE >> 12) + 1)


def test_recapture_drops_zeroed_pages():
    _, child, snap = fork_pair()
    assert snap.frame(BASE >> 12) is not None
    child.zero_range(BASE, PAGE_SIZE)
    snap.recapture(child)
    assert snap.frame(BASE >> 12) is None


def test_recapture_refuses_foreign_space():
    _, child, snap = fork_pair()
    other = AddressSpace()
    assert snap.recapture(other) is None


def test_merge_after_recapture_sees_only_new_changes():
    parent, child, snap = fork_pair()
    child.write(BASE, b"round-one")
    merge_range(parent, child, snap)
    # Parent re-shares its state and re-snaps (the barrier cycle).
    child.copy_range_from(parent, BASE, BASE, 4 * PAGE_SIZE)
    snap.recapture(child)
    child.write(BASE + 2 * PAGE_SIZE, b"round-two")
    stats = merge_range(parent, child, snap)
    assert stats.tracked
    assert stats.pages_scanned == 1                      # only the new page
    assert parent.read(BASE, 9) == b"round-one"
    assert parent.read(BASE + 2 * PAGE_SIZE, 9) == b"round-two"


def test_kernel_resnap_is_incremental():
    """Put with Snap over an existing same-range snapshot recaptures."""
    def child_body(g):
        g.ret()
        g.ret()

    def main(g):
        g.write(BASE, b"image" * 100)
        g.put(1, regs={"entry": child_body}, copy=(BASE, 4 * PAGE_SIZE),
              snap=(BASE, 4 * PAGE_SIZE), start=True)
        g.get(1, regs=True)
        snap_before = g.space.children[1].snapshot
        g.put(1, copy=(BASE, 4 * PAGE_SIZE), snap=(BASE, 4 * PAGE_SIZE),
              start=True)
        snap_after = g.space.children[1].snapshot
        g.get(1, regs=True)
        return snap_before is snap_after

    with Machine() as m:
        assert m.run(main).r0 is True


def test_merge_stats_tracked_flag_reflects_machine_setting():
    def main(g):
        from repro.mem.layout import SHARED_BASE
        from repro.runtime.threads import thread_fork, thread_join
        def worker(g2):
            g2.store(SHARED_BASE + 0x1000, 42)
        thread_fork(g, 1, worker)
        thread_join(g, 1)

    for tracking in (True, False):
        with Machine(dirty_tracking=tracking) as m:
            m.run(main)
            assert all(s.tracked == tracking for s in m.merge_stats_total)


def test_merge_adoption_sound_across_distinct_allocators():
    """Regression: adoption must key on frame identity, not raw tags —
    serial streams of distinct allocators collide, and a colliding
    parent tag must not masquerade as 'parent unchanged'."""
    from repro.common.errors import MergeConflictError

    parent = AddressSpace(allocator=FrameAllocator())
    child = AddressSpace(allocator=FrameAllocator())
    child.write(BASE, b"CHILD-BASE")                 # serial 1 on B
    snap = Snapshot.capture(child, BASE, PAGE_SIZE)  # baseline (1, 1)
    child.write(BASE, b"CHILD-NEW!")
    parent.write(BASE, b"PARENT-NEW")                # serial 1 on A: collides
    assert parent.frame(BASE >> 12).tag() == snap.baseline_tag(BASE >> 12)
    with pytest.raises(MergeConflictError):
        merge_range(parent, child, snap, mode="strict")


def test_read_view_of_unmapped_page_does_not_dirty_ledger():
    """Regression: a read-only view demand-zeroes the frame but must not
    enter the dirty ledger — reads are not writes to Snap/Merge."""
    space = AddressSpace()
    token = space.dirty_token()
    arr = space.as_array(BASE, 16, writable=False)
    assert arr.sum() == 0
    assert space.frame(BASE >> 12) is not None       # materialized
    assert space.dirty_since(token) == set()          # but clean
    space.as_array(BASE, 16, writable=True)           # a write does
    assert space.dirty_since(token) == {BASE >> 12}


def test_zero_adoption_preserves_parent_permissions():
    """Regression: merging a child's zero_range must not reset the
    parent's page permissions — Merge moves bytes, not protection bits —
    and tracked/legacy must agree on the guest-visible outcome even when
    the snapshotted page was already all zeros."""
    from repro.common.errors import PermissionFault
    from repro.mem import PERM_R

    for track_dirty in (True, False):
        for initial in (b"\x00" * 16, b"nonzero-bytes!"):
            parent = AddressSpace(track_dirty=track_dirty)
            parent.write(BASE, initial)
            child = AddressSpace(track_dirty=track_dirty)
            child.copy_range_from(parent, BASE, BASE, PAGE_SIZE)
            snap = Snapshot.capture(child, BASE, PAGE_SIZE)
            parent.set_perm(BASE, PAGE_SIZE, PERM_R)
            child.zero_range(BASE, PAGE_SIZE)
            merge_range(parent, child, snap)
            assert parent.read(BASE, 16) == bytes(16)
            assert parent.perm(BASE >> 12) == PERM_R
            with pytest.raises(PermissionFault):
                parent.write(BASE, b"x", check_perm=True)


def test_conflicting_merge_is_still_charged_and_recorded():
    """Regression: a merge that raises a conflict must still enter the
    machine's stats log (and virtual-time charges) — the scan and diff
    work happened."""
    from repro.common.errors import MergeConflictError
    from repro.mem.layout import SHARED_BASE
    from repro.runtime.threads import thread_fork, thread_join

    def main(g):
        def w(g2):
            g2.store(SHARED_BASE, 1)
        thread_fork(g, 1, w)
        thread_fork(g, 2, w)
        thread_join(g, 1)
        try:
            thread_join(g, 2)
        except MergeConflictError:
            pass
        return len(g.machine.merge_stats_total)

    for tracking in (True, False):
        with Machine(dirty_tracking=tracking) as m:
            assert m.run(main).r0 == 2


def test_invalid_merge_spec_leaves_no_phantom_stats():
    """Regression: a merge rejected at argument validation performed no
    work and must not enter the stats log (unlike a real conflict)."""
    from repro.mem.layout import SHARED_BASE
    from repro.runtime.threads import thread_fork, thread_join

    def main(g):
        def w(g2):
            g2.store(SHARED_BASE, 1)
        thread_fork(g, 1, w)
        try:
            g.get(1, regs=True, merge=(SHARED_BASE + 1, PAGE_SIZE))  # misaligned
        except ValueError:
            pass
        before = len(g.machine.merge_stats_total)
        thread_join(g, 1)
        return (before, len(g.machine.merge_stats_total))

    with Machine() as m:
        assert m.run(main).r0 == (0, 1)
