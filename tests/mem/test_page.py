"""Unit tests for page frames and refcounting."""

import pytest

from repro.mem import Page, PAGE_SIZE


def test_new_page_is_zero_filled():
    page = Page()
    assert len(page.data) == PAGE_SIZE
    assert page.is_zero()


def test_page_from_data_copies():
    src = bytearray(b"\x01" * PAGE_SIZE)
    page = Page(src)
    src[0] = 0xFF
    assert page.data[0] == 0x01


def test_page_rejects_wrong_size():
    with pytest.raises(ValueError):
        Page(b"short")


def test_refcount_lifecycle():
    page = Page()
    assert page.refs == 1
    page.incref()
    assert page.refs == 2
    page.decref()
    page.decref()
    assert page.refs == 0
    with pytest.raises(AssertionError):
        page.decref()


def test_fork_copy_is_independent():
    page = Page(b"\x07" * PAGE_SIZE)
    twin = page.fork_copy()
    twin.data[0] = 0x42
    assert page.data[0] == 0x07
    assert twin.refs == 1


def test_is_zero_detects_nonzero():
    page = Page()
    page.data[123] = 1
    assert not page.is_zero()
