"""Unit tests for snapshots and the three-way byte merge."""

import pytest

from repro.common.errors import MergeConflictError
from repro.mem import AddressSpace, PAGE_SIZE, Snapshot, merge_range


def fork_pair(addr=0x1000, size=4 * PAGE_SIZE, init=b""):
    """Parent with ``init`` at addr, child COW-copied, snapshot captured."""
    parent = AddressSpace()
    if init:
        parent.write(addr, init)
    child = AddressSpace()
    child.copy_range_from(parent, addr, addr, size)
    snap = Snapshot.capture(child, addr, size)
    return parent, child, snap


def test_snapshot_capture_shares_frames():
    parent, child, snap = fork_pair(init=b"hello")
    assert snap.frame(1) is parent.frame(1)
    assert snap.page_count() == 1


def test_merge_child_change_propagates():
    parent, child, snap = fork_pair(init=b"aaaa")
    child.write(0x1000, b"bbbb")
    stats = merge_range(parent, child, snap)
    assert parent.read(0x1000, 4) == b"bbbb"
    # Parent unchanged -> the whole frame is adopted copy-on-write: a
    # remap, no bytes copied.
    assert stats.pages_adopted == 1
    assert stats.bytes_merged == 0


def test_merge_counts_bytes_on_both_sides_dirty_pages():
    """When the parent also changed, only differing bytes are written."""
    parent, child, snap = fork_pair(init=b"0123456789")
    parent.write(0x1000 + 8, b"PP")     # parent changes bytes 8-9
    child.write(0x1000, b"bbbb")        # child changes bytes 0-3
    stats = merge_range(parent, child, snap)
    assert parent.read(0x1000, 10) == b"bbbb4567PP"
    assert stats.pages_diffed == 1
    assert stats.bytes_merged == 4


def test_merge_untouched_pages_skipped_fast():
    parent, child, snap = fork_pair(init=b"data")
    stats = merge_range(parent, child, snap)
    assert stats.pages_diffed == 0
    assert stats.bytes_merged == 0


def test_merge_preserves_parent_changes_elsewhere():
    parent, child, snap = fork_pair(init=b"0123456789")
    parent.write(0x1000, b"P")          # parent changes byte 0
    child.write(0x1001, b"C")           # child changes byte 1
    merge_range(parent, child, snap)
    assert parent.read(0x1000, 2) == b"PC"


def test_merge_conflict_same_byte():
    parent, child, snap = fork_pair(init=b"xy")
    parent.write(0x1000, b"A")
    child.write(0x1000, b"B")
    with pytest.raises(MergeConflictError) as err:
        merge_range(parent, child, snap)
    assert err.value.addr == 0x1000


def test_strict_merge_conflicts_even_on_identical_values():
    parent, child, snap = fork_pair(init=b"xy")
    parent.write(0x1000, b"Z")
    child.write(0x1000, b"Z")
    with pytest.raises(MergeConflictError):
        merge_range(parent, child, snap, mode="strict")


def test_lenient_merge_tolerates_identical_values():
    parent, child, snap = fork_pair(init=b"xy")
    parent.write(0x1000, b"Z")
    child.write(0x1000, b"Z")
    stats = merge_range(parent, child, snap, mode="lenient")
    assert parent.read(0x1000, 1) == b"Z"
    assert stats.pages_diffed == 1


def test_lenient_merge_still_conflicts_on_different_values():
    parent, child, snap = fork_pair(init=b"xy")
    parent.write(0x1000, b"A")
    child.write(0x1000, b"B")
    with pytest.raises(MergeConflictError):
        merge_range(parent, child, snap, mode="lenient")


def test_merge_swap_is_race_free():
    """The paper's x=y / y=x example (§2.2): two children swap via merge."""
    parent = AddressSpace()
    parent.write(0x1000, (7).to_bytes(4, "little") + (9).to_bytes(4, "little"))
    children = []
    for _ in range(2):
        child = AddressSpace()
        child.copy_range_from(parent, 0x1000, 0x1000, PAGE_SIZE)
        snap = Snapshot.capture(child, 0x1000, PAGE_SIZE)
        children.append((child, snap))
    # Child 0 runs x = y; child 1 runs y = x.
    c0, _ = children[0]
    c1, _ = children[1]
    y = c0.read(0x1004, 4)
    c0.write(0x1000, y)
    x = c1.read(0x1000, 4)
    c1.write(0x1004, x)
    for child, snap in children:
        merge_range(parent, child, snap)
    assert int.from_bytes(parent.read(0x1000, 4), "little") == 9
    assert int.from_bytes(parent.read(0x1004, 4), "little") == 7


def test_sequential_merges_conflict_across_siblings():
    """Second sibling writing the same byte conflicts at its join (§4.4)."""
    parent = AddressSpace()
    parent.write(0x1000, b"\x00" * 8)
    sibs = []
    for _ in range(2):
        child = AddressSpace()
        child.copy_range_from(parent, 0x1000, 0x1000, PAGE_SIZE)
        snap = Snapshot.capture(child, 0x1000, PAGE_SIZE)
        sibs.append((child, snap))
    sibs[0][0].write(0x1002, b"\x11")
    sibs[1][0].write(0x1002, b"\x22")
    merge_range(parent, sibs[0][0], sibs[0][1])
    with pytest.raises(MergeConflictError):
        merge_range(parent, sibs[1][0], sibs[1][1])


def test_merge_whole_frame_adoption_when_parent_unchanged():
    parent, child, snap = fork_pair(init=b"base")
    child.write(0x1000, b"newvalue")
    stats = merge_range(parent, child, snap)
    assert stats.pages_adopted == 1
    assert stats.pages_diffed == 0
    assert parent.read(0x1000, 8) == b"newvalue"


def test_merge_range_must_lie_within_snapshot():
    parent, child, snap = fork_pair()
    with pytest.raises(ValueError):
        merge_range(parent, child, snap, addr=0x100000, size=PAGE_SIZE)


def test_merge_subrange_only():
    parent, child, snap = fork_pair(init=b"\x00" * 16)
    child.write(0x1000, b"\x01")
    child.write(0x2000, b"\x02")
    merge_range(parent, child, snap, addr=0x1000, size=PAGE_SIZE)
    assert parent.read(0x1000, 1) == b"\x01"
    assert parent.read(0x2000, 1) == bytes(1)  # outside merged subrange


def test_merge_handles_demand_zero_child_pages():
    """Child writes to a page that was unmapped in parent and snapshot."""
    parent = AddressSpace()
    child = AddressSpace()
    child.copy_range_from(parent, 0x1000, 0x1000, 2 * PAGE_SIZE)
    snap = Snapshot.capture(child, 0x1000, 2 * PAGE_SIZE)
    child.write(0x2000, b"fresh")
    merge_range(parent, child, snap)
    assert parent.read(0x2000, 5) == b"fresh"


def test_snapshot_release_drops_refs():
    parent, child, snap = fork_pair(init=b"x")
    frame = parent.frame(1)
    before = frame.refs
    snap.release()
    assert frame.refs == before - 1
