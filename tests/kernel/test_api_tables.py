"""Conformance against the paper's Tables 1 and 2.

Table 1: the API is exactly three calls — Put, Get, Ret.
Table 2: which options each call accepts:

    option   Put  Get
    Regs      X    X
    Copy      X    X
    Zero      X    X
    Snap      X
    Start     X
    Merge          X
    Perm      X    X
    Tree      X    X
"""

import inspect


from repro.kernel.guest import Guest
from repro.kernel.kernel import Kernel


def _params(fn):
    return set(inspect.signature(fn).parameters)


def test_exactly_three_system_calls():
    syscalls = [name for name in dir(Kernel) if name.startswith("sys_")]
    assert sorted(syscalls) == ["sys_get", "sys_put", "sys_ret"]


def test_put_options_match_table2():
    params = _params(Kernel.sys_put)
    for option in ("regs", "copy", "zero", "snap", "start", "perm", "tree"):
        assert option in params, f"Put lacks {option}"
    assert "merge" not in params, "Merge is Get-only (Table 2)"
    # Instruction limits ride on Start (paper §3.2).
    assert "limit" in params


def test_get_options_match_table2():
    params = _params(Kernel.sys_get)
    for option in ("regs", "copy", "zero", "merge", "perm", "tree"):
        assert option in params, f"Get lacks {option}"
    assert "snap" not in params, "Snap is Put-only (Table 2)"
    assert "start" not in params, "Start is Put-only (Table 2)"


def test_ret_takes_no_options():
    params = _params(Kernel.sys_ret) - {"self", "space"}
    assert params == set(), "Ret carries no options (Table 1)"


def test_guest_surface_exposes_only_the_three_calls():
    syscall_like = {
        name for name in dir(Guest)
        if not name.startswith("_")
        and name in ("put", "get", "ret", "fork", "exec", "wait", "spawn")
    }
    assert syscall_like == {"put", "get", "ret"}


def test_options_combine_in_one_call():
    """'Most options can be combined: e.g., in one Put call a space can
    initialize a child's registers, copy memory, set permissions, save a
    snapshot, and start the child executing' (§3.2)."""
    from repro.kernel import Machine
    from repro.mem import PAGE_SIZE, PERM_RW

    A = 0x10_0000

    def child(g):
        g.store(A + 8, 2)

    def main(g):
        g.store(A, 1)
        g.put(
            1,
            regs={"entry": child},
            copy=(A, PAGE_SIZE),
            zero=(A + 0x1000, PAGE_SIZE),
            perm=(A, PAGE_SIZE, PERM_RW),
            snap=(A, PAGE_SIZE),
            start=True,
            limit=10**9,
        )
        g.get(1, regs=True, merge=True)
        return (g.load(A), g.load(A + 8))

    with Machine() as m:
        result = m.run(main)
    assert result.r0 == (1, 2)
