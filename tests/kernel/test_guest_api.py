"""Guest API unit tests: typed memory access, arrays, charging."""

import numpy as np
import pytest

from repro.kernel import Machine

A = 0x20_0000


def run(main, **kwargs):
    with Machine(**kwargs) as m:
        result = m.run(main)
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_load_store_sizes():
    def main(g):
        g.store(A, 0x1234, size=2)
        g.store(A + 8, 0xDEADBEEF, size=4)
        g.store(A + 16, 1 << 60, size=8)
        return (g.load(A, 2), g.load(A + 8, 4), g.load(A + 16, 8))

    assert run(main).r0 == (0x1234, 0xDEADBEEF, 1 << 60)


def test_store_negative_signed_roundtrip():
    def main(g):
        g.store(A, -12345, size=8)
        return g.load(A, 8, signed=True)

    assert run(main).r0 == -12345


def test_float64_roundtrip():
    def main(g):
        g.store_f64(A, 3.14159)
        return g.load_f64(A)

    assert run(main).r0 == pytest.approx(3.14159)


def test_array_read_write_roundtrip():
    def main(g):
        data = np.arange(100, dtype=np.int64)
        g.array_write(A, data)
        back = g.array_read(A, np.int64, 100)
        return bool((back == data).all())

    assert run(main).r0 is True


def test_array_read_returns_private_copy():
    def main(g):
        g.array_write(A, np.zeros(8, dtype=np.int64))
        arr = g.array_read(A, np.int64, 8)
        arr[0] = 99                      # must not touch simulated memory
        return g.load(A, 8)

    assert run(main).r0 == 0


def test_mapped_context_manager_writes_back():
    def main(g):
        g.array_write(A, np.arange(16, dtype=np.int32))
        with g.mapped(A, np.int32, 16) as arr:
            arr *= 2
        return int(g.array_read(A, np.int32, 16).sum())

    assert run(main).r0 == 2 * sum(range(16))


def test_view_is_zero_copy():
    def main(g):
        g.write(A, bytes(range(64)))
        view = g.view(A, 64, np.uint8, write=True)
        view[0] = 0xAB
        return g.read(A, 1)

    assert run(main).r0 == b"\xab"


def test_zero_range_clears_own_memory():
    def main(g):
        g.write(A, b"junk-data" * 100)
        g.zero_range(A & ~0xFFF, 0x1000)
        return g.read(A, 9)

    assert run(main).r0 == bytes(9)


def test_work_and_alloc_work_charge_equally_on_determinator():
    def main_work(g):
        g.work(100_000)

    def main_alloc(g):
        g.alloc_work(100_000)

    with Machine() as m1:
        t1 = m1.run(main_work).total_cycles()
    with Machine() as m2:
        t2 = m2.run(main_alloc).total_cycles()
    assert t1 == t2


def test_memory_ops_charge_cycles():
    def main(g):
        g.write(A, b"x" * 4096)
        g.read(A, 4096)

    result = run(main)
    assert result.total_cycles() > 2 * (4096 >> 4)


def test_reg_read_write():
    def main(g):
        g.set_reg("r3", 777)
        return g.reg("r3")

    assert run(main).r0 == 777


def test_unknown_register_rejected():
    def main(g):
        try:
            g.set_reg("r99", 1)
        except Exception as exc:
            return type(exc).__name__

    assert run(main).r0 == "KernelError"


def test_console_write_accepts_str_and_bytes():
    def main(g):
        g.console_write("text ")
        g.console_write(b"bytes")

    assert run(main).console == b"text bytes"


def test_reads_see_only_causally_prior_writes():
    """The model's core read guarantee, at the raw API level."""
    def child(g):
        return g.load(A, 8)

    def main(g):
        g.store(A, 1)
        g.put(1, regs={"entry": child}, copy=(A & ~0xFFF, 0x1000), start=True)
        g.store(A, 2)           # after the fork: child must not see it
        return g.get(1, regs=True)["r0"]

    assert run(main).r0 == 1
