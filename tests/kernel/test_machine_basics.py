"""Basic Machine / root-space behaviour."""

import pytest

from repro.common.errors import KernelError
from repro.kernel import Machine, Trap


def test_root_runs_and_returns_value():
    def main(g):
        return 42

    with Machine() as m:
        result = m.run(main)
    assert result.trap is Trap.EXIT
    assert result.r0 == 42


def test_console_output_collected():
    def main(g):
        g.console_write(b"hello ")
        g.console_write("world")
        return 0

    with Machine() as m:
        result = m.run(main)
    assert result.console == b"hello world"


def test_console_input_scripted():
    def main(g):
        data = g.console_read(5)
        g.console_write(data.upper())

    with Machine(console_input=b"abcde-rest") as m:
        result = m.run(main)
    assert result.console == b"ABCDE"


def test_time_device_scripted_then_ramp():
    seen = []

    def main(g):
        for _ in range(4):
            seen.append(g.time_now())

    with Machine(time_script=[100, 200]) as m:
        m.run(main)
    assert seen[:2] == [100, 200]
    assert seen[2] < seen[3]


def test_nonroot_cannot_touch_devices():
    def child(g):
        g.console_write(b"nope")

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        view = g.get(1, regs=True)
        return view["trap"]

    with Machine() as m:
        result = m.run(main)
    assert result.r0 is Trap.EXC
    assert result.console == b""


def test_grant_io_delegates_device_access():
    def child(g):
        g.console_write(b"delegated")

    def main(g):
        g.put(1, regs={"entry": child}, start=True, grant_io=True)
        g.get(1)

    with Machine() as m:
        result = m.run(main)
    assert result.console == b"delegated"


def test_uncaught_exception_becomes_exc_trap():
    def main(g):
        raise ValueError("boom")

    with Machine() as m:
        result = m.run(main)
    assert result.trap is Trap.EXC
    assert "boom" in result.trap_info


def test_machine_single_use():
    with Machine() as m:
        m.run(lambda g: 0)
        with pytest.raises(KernelError):
            m.run(lambda g: 0)


def test_status_register_via_ret():
    def main(g):
        g.ret(status=7)

    with Machine() as m:
        result = m.run(main)
    assert result.trap is Trap.RET
    assert result.status == 7


def test_debug_log_records_space_and_order():
    def child(g):
        g.debug("from child")

    def main(g):
        g.debug("before")
        g.put(1, regs={"entry": child}, start=True)
        g.get(1)
        g.debug("after")

    with Machine() as m:
        result = m.run(main)
    assert [line.split("] ")[1] for line in result.debug] == [
        "before",
        "from child",
        "after",
    ]


def test_work_accumulates_virtual_time():
    def main(g):
        g.work(12345)

    with Machine() as m:
        result = m.run(main)
    assert result.total_cycles() >= 12345


def test_string_entry_resolved_from_registry():
    def main(g):
        return "ran"

    with Machine(programs={"main": main}) as m:
        result = m.run("main")
    assert result.r0 == "ran"


def test_unknown_program_name_traps():
    with Machine() as m:
        result = m.run("missing")
    assert result.trap is Trap.EXC
