"""Put/Get/Ret semantics: options from the paper's Tables 1 and 2."""


from repro.common.errors import MergeConflictError
from repro.kernel import Machine, Trap
from repro.mem import PAGE_SIZE, PERM_NONE, PERM_R

ADDR = 0x10_0000


def run(main, **kwargs):
    with Machine(**kwargs) as m:
        return m.run(main)


# ---------------------------------------------------------------------------
# Copy / Zero / Regs
# ---------------------------------------------------------------------------

def test_put_copy_moves_memory_into_child():
    def child(g):
        return g.read(ADDR, 5)

    def main(g):
        g.write(ADDR, b"hello")
        g.put(1, regs={"entry": child}, copy=(ADDR, PAGE_SIZE), start=True)
        return g.get(1, regs=True)["r0"]

    assert run(main).r0 == b"hello"


def test_get_copy_pulls_child_memory():
    def child(g):
        g.write(ADDR, b"result")

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        g.get(1, copy=(ADDR, PAGE_SIZE))
        return g.read(ADDR, 6)

    assert run(main).r0 == b"result"


def test_copy_with_distinct_src_dst():
    def main(g):
        g.write(ADDR, b"xyz")
        g.put(1, copy=(ADDR, ADDR + 0x1000, PAGE_SIZE))
        g.get(1, copy=(ADDR + 0x1000, ADDR + 0x2000, PAGE_SIZE))
        return g.read(ADDR + 0x2000, 3)

    assert run(main).r0 == b"xyz"


def test_put_zero_clears_child_range():
    def child(g):
        return g.read(ADDR, 4)

    def main(g):
        g.write(ADDR, b"junk")
        g.put(1, copy=(ADDR, PAGE_SIZE))
        g.put(1, regs={"entry": child}, zero=(ADDR, PAGE_SIZE), start=True)
        return g.get(1, regs=True)["r0"]

    assert run(main).r0 == bytes(4)


def test_put_regs_and_child_args():
    def child(g, a, b):
        return a + b

    def main(g):
        g.put(3, regs={"entry": child, "args": (20, 22)}, start=True)
        return g.get(3, regs=True)["r0"]

    assert run(main).r0 == 42


def test_child_sets_result_registers():
    def child(g):
        g.set_reg("r1", 111)
        g.ret(status=5)

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        view = g.get(1, regs=True)
        return (view["status"], view["r1"], view["trap"])

    result = run(main)
    assert result.r0 == (5, 111, Trap.RET)


def test_get_creates_empty_child():
    def main(g):
        view = g.get(9, regs=True)
        return view["trap"]

    assert run(main).r0 is Trap.NONE


# ---------------------------------------------------------------------------
# Rendezvous / Ret / resume
# ---------------------------------------------------------------------------

def test_ret_then_resume_continues_after_ret():
    log = []

    def child(g):
        log.append("phase1")
        g.ret(status=1)
        log.append("phase2")
        g.ret(status=2)

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        s1 = g.get(1, regs=True)["status"]
        g.put(1, start=True)
        s2 = g.get(1, regs=True)["status"]
        return (s1, s2)

    assert run(main).r0 == (1, 2)
    assert log == ["phase1", "phase2"]


def test_parent_passes_data_across_ret_boundary():
    def child(g):
        g.ret(status=0)                  # wait for input
        value = g.load(ADDR, 4)
        g.set_reg("r0", value * 2)
        g.ret(status=1)

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        g.get(1)                          # rendezvous with the first ret
        g.write(ADDR, (21).to_bytes(4, "little"))
        g.put(1, copy=(ADDR, PAGE_SIZE), start=True)
        return g.get(1, regs=True)["r0"]

    assert run(main).r0 == 42


def test_nested_hierarchy_three_levels():
    def grandchild(g):
        return 7

    def child(g):
        g.put(1, regs={"entry": grandchild}, start=True)
        return g.get(1, regs=True)["r0"] * 6

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        return g.get(1, regs=True)["r0"]

    assert run(main).r0 == 42


def test_many_children_fork_join():
    def child(g, i):
        return i * i

    def main(g):
        for i in range(10):
            g.put(i, regs={"entry": child, "args": (i,)}, start=True)
        return sum(g.get(i, regs=True)["r0"] for i in range(10))

    assert run(main).r0 == sum(i * i for i in range(10))


# ---------------------------------------------------------------------------
# Snap / Merge
# ---------------------------------------------------------------------------

def test_snap_merge_roundtrip():
    def child(g):
        g.store(ADDR + 8, 99, size=4)

    def main(g):
        g.store(ADDR, 1, size=4)
        g.put(
            1,
            regs={"entry": child},
            copy=(ADDR, PAGE_SIZE),
            snap=(ADDR, PAGE_SIZE),
            start=True,
        )
        g.store(ADDR + 16, 2, size=4)     # parent's own concurrent write
        g.get(1, merge=True)
        return (g.load(ADDR, 4), g.load(ADDR + 8, 4), g.load(ADDR + 16, 4))

    assert run(main).r0 == (1, 99, 2)


def test_merge_conflict_raises_in_parent():
    def child(g):
        g.store(ADDR, 2, size=4)

    def main(g):
        g.put(
            1,
            regs={"entry": child},
            copy=(ADDR, PAGE_SIZE),
            snap=(ADDR, PAGE_SIZE),
            start=True,
        )
        g.store(ADDR, 3, size=4)          # same bytes as the child
        try:
            g.get(1, merge=True)
        except MergeConflictError:
            return "conflict"
        return "merged"

    assert run(main).r0 == "conflict"


def test_uncaught_conflict_traps_parent():
    def child(g):
        g.store(ADDR, 2, size=4)

    def main(g):
        g.put(
            1,
            regs={"entry": child},
            copy=(ADDR, PAGE_SIZE),
            snap=(ADDR, PAGE_SIZE),
            start=True,
        )
        g.store(ADDR, 3, size=4)
        g.get(1, merge=True)

    assert run(main).trap is Trap.CONFLICT


def test_merge_without_snap_is_kernel_error():
    def main(g):
        g.put(1)
        try:
            g.get(1, merge=True)
        except Exception as exc:
            return type(exc).__name__

    assert run(main).r0 == "KernelError"


def test_swap_example_two_threads():
    """Paper §2.2: 'x = y' and 'y = x' concurrently always swap."""
    X, Y = ADDR, ADDR + 8

    def assign(g, dst, src):
        g.store(dst, g.load(src, 4), size=4)

    def main(g):
        g.store(X, 7, size=4)
        g.store(Y, 9, size=4)
        for i, (dst, src) in enumerate([(X, Y), (Y, X)]):
            g.put(
                i,
                regs={"entry": assign, "args": (dst, src)},
                copy=(ADDR, PAGE_SIZE),
                snap=(ADDR, PAGE_SIZE),
                start=True,
            )
        for i in range(2):
            g.get(i, merge=True)
        return (g.load(X, 4), g.load(Y, 4))

    assert run(main).r0 == (9, 7)


def test_lenient_merge_mode_machine_flag():
    def child(g):
        g.store(ADDR, 5, size=4)

    def main(g):
        g.put(
            1,
            regs={"entry": child},
            copy=(ADDR, PAGE_SIZE),
            snap=(ADDR, PAGE_SIZE),
            start=True,
        )
        g.store(ADDR, 5, size=4)          # identical value
        g.get(1, merge=True)
        return g.load(ADDR, 4)

    assert run(main, merge_mode="lenient").r0 == 5
    assert run(main).trap is Trap.CONFLICT


# ---------------------------------------------------------------------------
# Perm / Tree
# ---------------------------------------------------------------------------

def test_perm_none_faults_child():
    def child(g):
        return g.read(ADDR, 1)

    def main(g):
        g.write(ADDR, b"x")
        g.put(1, regs={"entry": child}, copy=(ADDR, PAGE_SIZE), start=True,
              perm=(ADDR, PAGE_SIZE, PERM_NONE))
        return g.get(1, regs=True)["trap"]

    assert run(main).r0 is Trap.PERM_FAULT


def test_perm_readonly_blocks_writes():
    def child(g):
        g.write(ADDR, b"y")

    def main(g):
        g.write(ADDR, b"x")
        g.put(1, regs={"entry": child}, copy=(ADDR, PAGE_SIZE), start=True,
              perm=(ADDR, PAGE_SIZE, PERM_R))
        return g.get(1, regs=True)["trap"]

    assert run(main).r0 is Trap.PERM_FAULT


def test_tree_copy_duplicates_subtree():
    def worker(g):
        g.write(ADDR, b"worker-state")
        g.ret(status=0)

    def main(g):
        # Build child 1 with state, then Tree-copy it down into child 2's
        # namespace and back up as our child 3.
        g.put(1, regs={"entry": worker}, start=True)
        g.get(1)
        g.put(2, tree=(1, 5))             # our child 1 -> child 2's child 5
        g.get(2, tree=(5, 3))             # child 2's child 5 -> our child 3
        g.get(3, copy=(ADDR, ADDR + 0x1000, PAGE_SIZE))
        return g.read(ADDR + 0x1000, 12)

    assert run(main).r0 == b"worker-state"


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

def _chaotic_program(g):
    """Forks children whose host-thread interleaving could vary; output
    must not."""
    def child(g, i):
        g.work(100 * (i + 1))
        g.set_reg("r0", i * 3)
        g.ret()

    for i in range(6):
        g.put(i, regs={"entry": child, "args": (i,)}, start=True)
    total = 0
    for i in range(6):
        total += g.get(i, regs=True)["r0"]
    g.console_write(f"total={total}\n")
    return total


def test_repeated_runs_identical():
    results = []
    for _ in range(3):
        with Machine() as m:
            r = m.run(_chaotic_program)
            results.append((r.r0, r.console, r.total_cycles()))
    assert results[0] == results[1] == results[2]


def test_makespan_deterministic_and_scales():
    with Machine() as m:
        r = m.run(_chaotic_program)
        t1 = r.makespan(ncpus=1)
        t4 = r.makespan(ncpus=4)
    assert t4 <= t1
    with Machine() as m2:
        assert m2.run(_chaotic_program).makespan(ncpus=4) == t4
