"""Guest-engine tests: baton passing, restarts, teardown."""

import threading


from repro.kernel import Machine, Trap
from repro.kernel.space import SpaceState


def run(main, **kwargs):
    with Machine(**kwargs) as m:
        result = m.run(main)
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def test_exited_space_restartable_with_new_entry():
    def first(g):
        return "first"

    def second(g):
        return "second"

    def main(g):
        g.put(1, regs={"entry": first}, start=True)
        a = g.get(1, regs=True)["r0"]
        g.put(1, regs={"entry": second}, start=True)
        b = g.get(1, regs=True)["r0"]
        return (a, b)

    assert run(main).r0 == ("first", "second")


def test_exited_space_restart_reruns_same_entry():
    def counter(g):
        # Each (re)start runs the entry fresh.
        return g.load(0x10_0000, 8) + 1

    def main(g):
        g.put(1, regs={"entry": counter}, start=True)
        first = g.get(1, regs=True)["r0"]
        g.put(1, start=True)
        second = g.get(1, regs=True)["r0"]
        return (first, second)

    assert run(main).r0 == (1, 1)


def test_machine_close_kills_parked_guests():
    machine = Machine()

    def child(g):
        g.ret()        # parks forever; nobody resumes
        return 0

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        g.get(1)       # rendezvous with the ret
        return 0

    machine.run(main)
    before = threading.active_count()
    machine.close()
    machine.close()    # idempotent
    # Guest threads unwind after kill.
    assert threading.active_count() <= before


def test_many_machines_no_thread_leak():
    def main(g):
        for i in range(4):
            g.put(i, regs={"entry": lambda g: 0}, start=True)
        for i in range(4):
            g.get(i)
        return 0

    baseline = threading.active_count()
    for _ in range(10):
        with Machine() as machine:
            machine.run(main)
    assert threading.active_count() <= baseline + 2


def test_deep_nesting_rendezvous():
    DEPTH = 12

    def nested(g, remaining):
        if remaining == 0:
            return 1
        g.put(1, regs={"entry": nested, "args": (remaining - 1,)}, start=True)
        return g.get(1, regs=True)["r0"] + 1

    def main(g):
        g.put(1, regs={"entry": nested, "args": (DEPTH,)}, start=True)
        return g.get(1, regs=True)["r0"]

    assert run(main).r0 == DEPTH + 1


def test_wide_fanout():
    def child(g, i):
        g.work(10)
        return i

    def main(g):
        n = 60
        for i in range(n):
            g.put(i, regs={"entry": child, "args": (i,)}, start=True)
        return sum(g.get(i, regs=True)["r0"] for i in range(n))

    assert run(main).r0 == sum(range(60))


def test_unjoined_children_drained_for_timing():
    def child(g):
        g.work(1_000_000)

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        return 0   # exit without joining

    with Machine() as machine:
        result = machine.run(main)
        # The drain ran the orphan; its work is in the trace.
        assert result.total_cycles() >= 1_000_000
        orphan = machine.root.children[1]
        assert orphan.state is SpaceState.EXITED


def test_child_fault_does_not_kill_parent():
    def bad(g):
        return 1 // 0

    def main(g):
        g.put(1, regs={"entry": bad}, start=True)
        view = g.get(1, regs=True)
        return (view["trap"], "parent alive")

    trap, msg = run(main).r0
    assert trap is Trap.EXC
    assert msg == "parent alive"


def test_guest_state_preserved_across_park_resume():
    """Local Python state survives Ret parking (full-stack continuation)."""
    def child(g):
        local_list = [1, 2]
        g.ret(status=1)
        local_list.append(3)
        g.set_reg("r0", sum(local_list))
        g.ret(status=2)

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        g.get(1)
        g.put(1, start=True)
        return g.get(1, regs=True)["r0"]

    assert run(main).r0 == 6
