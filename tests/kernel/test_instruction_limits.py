"""Instruction-limit tests: deterministic preemption (§3.2)."""


from repro.kernel import Machine, Trap


def run(main, **kwargs):
    with Machine(**kwargs) as m:
        result = m.run(main)
    assert result.trap.name in ("EXIT", "RET"), result.trap_info
    return result


def _spinner(g, iters):
    done = 0
    for _ in range(iters):
        g.work(1000)
        done += 1
    g.set_reg("r2", done)
    return done


def test_limit_preempts_child():
    def main(g):
        g.put(1, regs={"entry": _spinner, "args": (100,)}, start=True,
              limit=5_000)
        return g.get(1, regs=True)["trap"]

    assert run(main).r0 is Trap.INSN_LIMIT


def test_resume_after_limit_continues_where_preempted():
    def main(g):
        g.put(1, regs={"entry": _spinner, "args": (10,)}, start=True,
              limit=3_500)
        resumes = 0
        while True:
            view = g.get(1, regs=True)
            if view["trap"] is Trap.EXIT:
                return (view["r0"], resumes)
            assert view["trap"] is Trap.INSN_LIMIT
            resumes += 1
            g.put(1, start=True, limit=3_500)

    value, resumes = run(main).r0
    assert value == 10          # completed all iterations across quanta
    assert resumes >= 2


def test_quantization_is_deterministic():
    def main(g):
        g.put(1, regs={"entry": _spinner, "args": (50,)}, start=True,
              limit=7_777)
        g.get(1, regs=True)
        return g.get(1, regs=True)["r2"]

    values = {run(main).r0 for _ in range(3)}
    assert len(values) == 1


def test_unlimited_start_clears_previous_limit():
    def main(g):
        g.put(1, regs={"entry": _spinner, "args": (20,)}, start=True,
              limit=2_000)
        view = g.get(1, regs=True)
        assert view["trap"] is Trap.INSN_LIMIT
        g.put(1, start=True)           # no limit: run to completion
        return g.get(1, regs=True)["trap"]

    assert run(main).r0 is Trap.EXIT


def test_limit_exempts_kernel_work():
    """Kernel charges (syscalls, COW) don't count against the budget."""
    def child(g):
        # One syscall-heavy but compute-light body.
        for i in range(5):
            g.put(i, zero=(0x10_0000, 0x1000))
        return "survived"

    def main(g):
        g.put(1, regs={"entry": child}, start=True, limit=10_000)
        return g.get(1, regs=True)["r0"]

    assert run(main).r0 == "survived"


def test_limit_resume_charged_to_parent():
    from repro.timing.model import CostModel
    cost = CostModel()

    def main(g):
        g.put(1, regs={"entry": _spinner, "args": (30,)}, start=True,
              limit=2_000)
        while g.get(1, regs=True)["trap"] is Trap.INSN_LIMIT:
            g.put(1, start=True, limit=2_000)
        return 0

    result = run(main)
    # Many resume cycles must appear in total time.
    assert result.total_cycles() > 10 * cost.limit_resume


def test_root_instruction_limit():
    def main(g):
        g.work(10**9)
        return "never"

    with Machine() as m:
        result = m.run(main, limit=50_000)
    assert result.trap is Trap.INSN_LIMIT
