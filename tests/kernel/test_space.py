"""Space hierarchy unit tests."""

import pytest

from repro.common.errors import KernelError
from repro.kernel import Machine
from repro.kernel.space import SpaceState, fresh_regs
from repro.kernel.traps import Trap as TrapEnum


def test_fresh_regs_layout():
    regs = fresh_regs()
    assert regs["entry"] is None
    assert regs["args"] == ()
    for name in ("r0", "r1", "r7", "status"):
        assert regs[name] == 0


def test_trap_is_fault_classification():
    assert TrapEnum.EXC.is_fault()
    assert TrapEnum.PAGE_FAULT.is_fault()
    assert TrapEnum.PERM_FAULT.is_fault()
    assert TrapEnum.CONFLICT.is_fault()
    assert not TrapEnum.RET.is_fault()
    assert not TrapEnum.EXIT.is_fault()
    assert not TrapEnum.INSN_LIMIT.is_fault()


def test_hierarchy_depth_and_walk():
    def leaf(g):
        return 0

    def mid(g):
        g.put(1, regs={"entry": leaf}, start=True)
        g.put(2, regs={"entry": leaf}, start=True)
        g.get(1)
        g.get(2)
        depths = [s.depth() for s in g.space.walk()]
        return (g.space.depth(), sorted(depths))

    def main(g):
        g.put(5, regs={"entry": mid}, start=True)
        return g.get(5, regs=True)["r0"]

    with Machine() as m:
        result = m.run(main)
    assert result.r0 == (1, [1, 2, 2])


def test_set_regs_validates_names():
    machine = Machine()
    space = machine.new_space(None)
    with pytest.raises(KernelError):
        space.set_regs({"bogus": 1})
    space.set_regs({"r0": 5})
    assert space.regs["r0"] == 5
    machine.close()


def test_reg_view_includes_trap_metadata():
    machine = Machine()
    space = machine.new_space(None)
    space.trap = TrapEnum.EXC
    space.trap_info = "oops"
    view = space.reg_view()
    assert view["trap"] is TrapEnum.EXC
    assert view["trap_info"] == "oops"
    # The view is a copy.
    view["r0"] = 99
    assert space.regs["r0"] == 0
    machine.close()


def test_destroy_unlinks_from_parent_and_releases_memory():
    def child(g):
        g.write(0x10_0000, b"data")
        g.ret()

    def main(g):
        g.put(1, regs={"entry": child}, start=True)
        g.get(1)
        target = g.space.children[1]
        target.destroy()
        return (1 in g.space.children, target.addrspace.mapped_page_count())

    with Machine() as m:
        result = m.run(main)
    assert result.r0 == (False, 0)


def test_is_stopped_states():
    machine = Machine()
    space = machine.new_space(None)
    assert space.is_stopped()          # IDLE
    space.state = SpaceState.READY
    assert not space.is_stopped()
    space.state = SpaceState.STOPPED
    assert space.is_stopped()
    space.state = SpaceState.EXITED
    assert space.is_stopped()
    machine.close()


def test_repr_is_informative():
    machine = Machine()
    space = machine.new_space(None)
    text = repr(space)
    assert "idle" in text and space.uid in text
    machine.close()
