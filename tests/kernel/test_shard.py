"""Bit-identity of sharded host execution vs the serial engine.

``Machine(shard_workers=N)`` forks sibling subtrees into worker host
processes at rendezvous points and adopts their deltas (see
repro.kernel.shard).  The sharded run must be indistinguishable from
the serial one in every observable: computed values, the full trace,
every memory image (data, refcounts, frame serials, generations), the
frame/uid counters, page-cache and origin bookkeeping, console output
and every transport/link statistic.
"""

import os

import pytest

from repro.bench import cluster_workloads as cw
from repro.cluster.network import NetworkStats

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="sharding requires os.fork")


def fingerprint(machine, value, makespan):
    """Every observable of a finished machine, shard-independent iff
    the sharded run was bit-identical to the serial one."""
    trace = machine.trace
    memory = []
    for sp in machine.root.walk():
        pages = sorted(
            (vpn, bytes(page.data), page.refs, page.serial, page.generation)
            for vpn, page in sp.addrspace._pages.items())
        memory.append((sp.uid, sp.state.name, sp.cur_node, pages))
    net = NetworkStats(machine)
    return {
        "value": value,
        "makespan": makespan,
        "segments": [(s.id, s.uid, s.node, s.cycles, s.label, s.closed)
                     for s in trace.segments],
        "edges": trace.edges,
        "transfers": trace.transfers,
        "console": bytes(machine.console_output),
        "debug": list(machine.debug_lines),
        "next_serial": machine.frames._next_serial,
        "frames_allocated": machine.frames.frames_allocated,
        "uid_counter": machine._uid_counter,
        "pages_fetched": machine.pages_fetched,
        "node_cache": {n: dict(c) for n, c in machine.node_cache.items()},
        "frame_origin": dict(machine.frame_origin),
        "node_map": dict(machine.node_map),
        "memory": memory,
        "per_link": net.per_link,
        "per_class": net.per_class,
        "pages_shipped": net.pages_shipped,
        "bytes_moved": net.bytes_moved,
        "messages": net.messages,
        "hops": net.hops,
        "migrations": net.migrations,
    }


def run_pair(builder, nnodes, workers=4, **kwargs):
    serial_mk, serial_m, serial_v = cw.run_cluster(builder, nnodes, **kwargs)
    shard_mk, shard_m, shard_v = cw.run_cluster(
        builder, nnodes, shard_workers=workers, **kwargs)
    return (fingerprint(serial_m, serial_v, serial_mk),
            fingerprint(shard_m, shard_v, shard_mk),
            shard_m.shard)


@pytest.mark.parametrize("workload,builder", [
    ("md5_circuit", cw.md5_circuit_main(3)),
    ("md5_tree", cw.md5_tree_main(3)),
    ("matmult_tree", cw.matmult_tree_main(64)),
], ids=["md5_circuit", "md5_tree", "matmult_tree"])
def test_sharded_run_bit_identical(workload, builder):
    serial, sharded, shard = run_pair(builder, 4)
    assert shard.forked > 0
    assert shard.adopted == shard.forked
    assert shard.fallbacks == 0
    assert sharded == serial


def test_sharded_run_bit_identical_on_fat_tree():
    # The flagship sweep shape: a wide circuit of siblings, one worker
    # wave per shard_workers batch, on a routed fabric.
    serial, sharded, shard = run_pair(
        cw.md5_circuit_main(3), 8, workers=3, topology="fat_tree:2")
    assert shard.adopted == shard.forked == 8
    assert sharded == serial


def test_shard_disabled_below_two_workers():
    _, machine, _ = cw.run_cluster(cw.md5_tree_main(2), 2, shard_workers=1)
    assert machine.shard is None


@pytest.mark.parametrize("gate_kwargs", [
    {"loss": 0.05},
    {"placement": "locality", "topology": "two_tier:2"},
    {"prefetch_depth": 2},
], ids=["loss", "locality_placement", "prefetch"])
def test_gated_configs_stay_serial_and_identical(gate_kwargs):
    # Configurations whose results cannot be replayed from a worker
    # delta (fault schedules keyed on global message serials, stats-fed
    # placement, cross-subtree prefetch hints) must not fork — and must
    # still produce the serial answer.
    serial, sharded, shard = run_pair(cw.matmult_tree_main(32), 4,
                                      **gate_kwargs)
    assert shard.forked == 0
    assert sharded == serial


def test_full_ship_mode_shards_and_matches():
    serial, sharded, shard = run_pair(cw.md5_tree_main(3), 4,
                                      ship_mode="full")
    assert shard.adopted > 0
    assert sharded == serial
