"""Bit-identity of the event-driven scheduler core vs the list oracle.

``schedule(engine="event")`` (the default) and ``schedule(engine="list")``
(the original list scheduler, kept verbatim) implement the identical
policy; every field of their ScheduleResults must match exactly on every
trace.  These tests drive both engines over real workload traces (the
cluster workloads across fabrics, ship modes and lossy links) and over
synthetic traces that exercise link contention, stall attribution and
the error paths.
"""

import random

import pytest

from repro.bench import cluster_workloads as cw
from repro.timing import Trace
from repro.timing.schedule import ENGINES, schedule


def result_fields(result):
    """Every observable field of a ScheduleResult, dict-normalized."""
    return {
        "makespan": result.makespan,
        "busy": result.busy,
        "start": dict(result.start),
        "finish": dict(result.finish),
        "cpu_count": result.cpu_count,
        "link_busy": dict(result.link_busy),
        "class_busy": dict(result.class_busy),
        "stall_cycles": dict(result.stall_cycles),
    }


def assert_engines_agree(trace, **kwargs):
    event = result_fields(schedule(trace, engine="event", **kwargs))
    oracle = result_fields(schedule(trace, engine="list", **kwargs))
    assert event == oracle
    return event


# -- real workload traces -------------------------------------------------

WORKLOADS = [
    ("md5_tree", cw.md5_tree_main(3)),
    ("matmult_tree", cw.matmult_tree_main(32)),
]
TOPOLOGIES = [None, "two_tier:2", "fat_tree:2"]
SHIP_MODES = ["delta", "full", "demand"]


@pytest.mark.parametrize("topology", TOPOLOGIES,
                         ids=["flat", "two_tier", "fat_tree"])
@pytest.mark.parametrize("workload", [w for w, _ in WORKLOADS])
def test_workload_traces_identical_across_fabrics(workload, topology):
    builder = dict(WORKLOADS)[workload]
    _, machine, _ = cw.run_cluster(builder, 4, topology=topology)
    fields = assert_engines_agree(
        machine.trace, cpus_per_node={n: 1 for n in range(4)})
    assert fields["makespan"] > 0


@pytest.mark.parametrize("ship_mode", SHIP_MODES)
def test_workload_traces_identical_across_ship_modes(ship_mode):
    _, machine, _ = cw.run_cluster(cw.matmult_tree_main(32), 4,
                                   topology="fat_tree:2", ship_mode=ship_mode)
    assert_engines_agree(machine.trace,
                         cpus_per_node={n: 1 for n in range(4)})


def test_workload_trace_identical_with_loss():
    # Retransmissions add extra link transfers; both engines must charge
    # them to the same links, classes and stall kinds.
    _, machine, _ = cw.run_cluster(cw.matmult_tree_main(32), 4,
                                   topology="two_tier:2", loss=0.05)
    fields = assert_engines_agree(
        machine.trace, cpus_per_node={n: 1 for n in range(4)})
    assert fields["link_busy"]


@pytest.mark.parametrize("ncpus", [1, 2, 10**9])
def test_workload_trace_identical_across_cpu_counts(ncpus):
    _, machine, _ = cw.run_cluster(cw.md5_tree_main(3), 4)
    assert_engines_agree(machine.trace, ncpus=ncpus)


# -- synthetic traces -----------------------------------------------------

def random_trace(rng, ncontexts=6, ncuts=8):
    """A random closed DAG with plain edges and contended link edges."""
    tr = Trace()
    closed = []
    for c in range(ncontexts):
        tr.begin(f"c{c}", node=c % 3)
        tr.charge(f"c{c}", rng.randrange(1, 50))
    for _ in range(ncuts):
        uid = f"c{rng.randrange(ncontexts)}"
        seg, _ = tr.cut(uid)
        tr.charge(uid, rng.randrange(1, 50))
        closed.append(seg)
        if closed and rng.random() < 0.7:
            src = rng.choice(closed)
            dst = tr._open[uid]
            if src.id < dst.id:
                if rng.random() < 0.5:
                    tr.edge(src, dst, latency=rng.randrange(0, 20))
                else:
                    tr.link_edge(src, dst, link=(src.node, dst.node),
                                 busy=rng.randrange(0, 30),
                                 latency=rng.randrange(0, 10),
                                 cls="rack" if rng.random() < 0.5 else "core",
                                 kind=rng.choice(["fetch", "migrate", None]))
    tr.finish()
    return tr


@pytest.mark.parametrize("seed", range(8))
def test_random_traces_identical(seed):
    rng = random.Random(seed)
    tr = random_trace(rng)
    for ncpus in (1, 2, 10**9):
        assert_engines_agree(tr, ncpus=ncpus)
    assert_engines_agree(tr, cpus_per_node={0: 1, 1: 2, 2: 1})


def test_empty_trace_identical():
    assert_engines_agree(Trace())


def test_plan_cache_reuse_stays_identical():
    # Replaying the same trace repeatedly (the sweep/CI pattern) reuses
    # the event engine's compiled plan; results must not drift.
    tr = random_trace(random.Random(99))
    first = result_fields(schedule(tr, ncpus=2, engine="event"))
    for _ in range(3):
        assert result_fields(schedule(tr, ncpus=2, engine="event")) == first
    assert result_fields(schedule(tr, ncpus=2, engine="list")) == first


@pytest.mark.parametrize("engine", ENGINES)
def test_cycle_detection_identical(engine):
    tr = Trace()
    tr.begin("a")
    tr.charge("a", 5)
    s0, s1 = tr.cut("a")
    tr.charge("a", 5)
    tr.finish()
    tr.edge(s1, s0)  # back edge: s1 -> s0 while s0 -> s1 already exists
    with pytest.raises(ValueError, match="cycle or dangling"):
        schedule(tr, engine=engine)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown schedule engine"):
        schedule(Trace(), engine="quantum")


def test_env_override_selects_engine(monkeypatch):
    # REPRO_SCHED_ENGINE flips the default for a whole process (CI's
    # ablation uses it to run the oracle side); either way the numbers
    # are the same.
    tr = random_trace(random.Random(3))
    baseline = result_fields(schedule(tr, ncpus=2))
    for engine in ENGINES:
        monkeypatch.setenv("REPRO_SCHED_ENGINE", engine)
        assert result_fields(schedule(tr, ncpus=2)) == baseline
