"""Unit tests for the deterministic list scheduler."""

import pytest

from repro.timing import Trace, schedule
from repro.timing.schedule import critical_path


def linear_chain(lengths):
    tr = Trace()
    tr.begin("a")
    for i, n in enumerate(lengths):
        tr.charge("a", n)
        if i < len(lengths) - 1:
            tr.cut("a")
    tr.finish()
    return tr


def fork_join(widths, child_len, parent_pre=10, parent_post=10):
    """Parent does pre work, forks ``widths`` children, joins all."""
    tr = Trace()
    tr.begin("p")
    tr.charge("p", parent_pre)
    children = []
    for i in range(widths):
        closed, _ = tr.cut("p")
        seg = tr.begin(f"c{i}")
        tr.edge(closed, seg)
        tr.charge(f"c{i}", child_len)
        children.append(tr.end(f"c{i}"))
    for seg in children:
        closed, opened = tr.cut("p")
        tr.edge(seg, opened)
    tr.charge("p", parent_post)
    tr.finish()
    return tr


def test_empty_trace():
    assert schedule(Trace()).makespan == 0


def test_serial_chain_makespan_is_sum():
    tr = linear_chain([10, 20, 30])
    assert schedule(tr, ncpus=4).makespan == 60


def test_fork_join_parallelism():
    tr = fork_join(4, child_len=100, parent_pre=0, parent_post=0)
    serial = schedule(tr, ncpus=1).makespan
    parallel = schedule(tr, ncpus=4).makespan
    assert serial == 400
    assert parallel == 100


def test_speedup_bounded_by_cpus():
    tr = fork_join(8, child_len=50)
    t1 = schedule(tr, ncpus=1).makespan
    t2 = schedule(tr, ncpus=2).makespan
    assert t1 / t2 <= 2.0 + 1e-9


def test_edge_latency_delays_consumer():
    tr = Trace()
    a = tr.begin("a")
    tr.charge("a", 10)
    tr.end("a")
    b = tr.begin("b")
    tr.charge("b", 5)
    tr.edge(a, b, latency=1000)
    tr.end("b")
    result = schedule(tr, ncpus=2)
    assert result.makespan == 10 + 1000 + 5


def test_per_node_cpu_pools():
    """Two nodes with 1 CPU each run their local work in parallel."""
    tr = Trace()
    tr.begin("a", node=0)
    tr.charge("a", 100)
    tr.begin("b", node=1)
    tr.charge("b", 100)
    tr.finish()
    assert schedule(tr, ncpus=1).makespan == 100
    # Forced onto a single node -> serialized.
    tr2 = Trace()
    tr2.begin("a", node=0)
    tr2.charge("a", 100)
    tr2.begin("b", node=0)
    tr2.charge("b", 100)
    tr2.finish()
    assert schedule(tr2, ncpus=1).makespan == 200


def test_cpus_per_node_override():
    tr = Trace()
    for i in range(4):
        tr.begin(f"t{i}", node=7)
        tr.charge(f"t{i}", 10)
    tr.finish()
    assert schedule(tr, ncpus=1, cpus_per_node={7: 4}).makespan == 10


def test_deterministic_ties():
    tr = fork_join(6, child_len=33)
    r1 = schedule(tr, ncpus=3)
    r2 = schedule(tr, ncpus=3)
    assert r1.makespan == r2.makespan
    assert r1.start == r2.start


def test_utilization_and_busy():
    tr = fork_join(4, child_len=100, parent_pre=0, parent_post=0)
    result = schedule(tr, ncpus=4)
    assert result.busy == 400
    assert 0 < result.utilization <= 1.0


def test_critical_path_bound():
    tr = fork_join(4, child_len=100, parent_pre=20, parent_post=30)
    cp = critical_path(tr)
    assert cp == 150
    assert schedule(tr, ncpus=2).makespan >= cp


def test_cycle_detection():
    tr = Trace()
    a = tr.begin("a")
    tr.end("a")
    b = tr.begin("b")
    tr.end("b")
    tr.edge(a, b)
    tr.edge(b, a)
    with pytest.raises(ValueError):
        schedule(tr)


def test_finish_times_monotone_along_edges():
    tr = fork_join(3, child_len=40)
    result = schedule(tr, ncpus=2)
    for src, dst, latency in tr.edges:
        assert result.start[dst] >= result.finish[src] + latency
