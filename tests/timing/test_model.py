"""Cost-model unit tests."""

import pytest

from repro.timing.model import CostModel


def test_defaults_sane():
    cost = CostModel()
    assert cost.syscall > 0
    assert cost.page_cow > cost.page_map
    assert cost.net_latency > cost.net_msg


def test_with_replaces_fields():
    cost = CostModel()
    tweaked = cost.with_(syscall=1, ncpus=4)
    assert tweaked.syscall == 1
    assert tweaked.ncpus == 4
    assert cost.syscall != 1          # original untouched
    assert tweaked.page_cow == cost.page_cow


def test_message_cost_scales_with_bytes():
    cost = CostModel()
    small = cost.message(100)
    big = cost.message(100_000)
    assert big > small
    assert big - small == pytest.approx(99_900 * cost.net_byte, rel=0.01)


def test_tcp_adds_fixed_per_message():
    cost = CostModel()
    assert cost.message(1000, tcp=True) - cost.message(1000) == cost.tcp_extra


def test_page_transfer_counts_messages():
    cost = CostModel()
    one = cost.page_transfer(1)
    ten = cost.page_transfer(10)
    assert ten == 10 * one


def test_page_transfer_tcp_overhead_small():
    cost = CostModel()
    plain = cost.page_transfer(100)
    tcp = cost.page_transfer(100, tcp=True)
    assert (tcp - plain) / plain < 0.02   # the paper's <2% envelope
