"""Tests for trace analysis and reporting."""

import pytest

from repro.timing import Trace
from repro.timing.report import (
    critical_path_ratio,
    gantt,
    parallelism_profile,
    scaling_curve,
    speedup_curve,
    work_breakdown,
)


def fork_join_trace(width=4, child_len=1000):
    tr = Trace()
    tr.begin("p")
    tr.charge("p", 100)
    ends = []
    for i in range(width):
        closed, _ = tr.cut("p")
        seg = tr.begin(f"c{i}")
        tr.edge(closed, seg)
        tr.charge(f"c{i}", child_len)
        ends.append(tr.end(f"c{i}"))
    for end in ends:
        _, opened = tr.cut("p")
        tr.edge(end, opened)
    tr.charge("p", 50)
    tr.finish()
    return tr


def test_work_breakdown_sorted_desc():
    tr = fork_join_trace()
    rows = work_breakdown(tr)
    values = [v for _, v in rows]
    assert values == sorted(values, reverse=True)
    assert rows[0][1] == 1000


def test_work_breakdown_top_limits():
    tr = fork_join_trace(width=6)
    assert len(work_breakdown(tr, top=3)) == 3


def test_scaling_and_speedup_curves():
    tr = fork_join_trace(width=8, child_len=10_000)
    curve = scaling_curve(tr, (1, 2, 8))
    assert curve[1] > curve[2] > curve[8]
    speedups = speedup_curve(tr, (2, 8))
    assert speedups[8] > speedups[2] > 1.0


def test_parallelism_profile_bounds():
    tr = fork_join_trace(width=4, child_len=10_000)
    profile = parallelism_profile(tr, ncpus=4, buckets=10)
    assert len(profile) == 10
    assert all(0.0 <= p <= 4.0 + 1e-9 for p in profile)
    assert max(profile) > 1.5     # the fork phase is actually parallel


def test_parallelism_profile_empty_trace():
    assert parallelism_profile(Trace(), ncpus=2, buckets=5) == [0.0] * 5


def test_gantt_renders_rows():
    tr = fork_join_trace(width=3, child_len=5000)
    chart = gantt(tr, ncpus=3)
    assert "makespan" in chart
    assert chart.count("|") >= 2 * 4   # p + 3 children rows
    assert "#" in chart


def test_gantt_empty():
    assert gantt(Trace(), ncpus=1) == "(empty trace)"


def test_critical_path_ratio():
    serial = Trace()
    serial.begin("a")
    serial.charge("a", 100)
    serial.finish()
    assert critical_path_ratio(serial) == pytest.approx(1.0)
    tr = fork_join_trace(width=8, child_len=10_000)
    assert critical_path_ratio(tr) > 4.0
