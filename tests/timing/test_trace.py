"""Unit tests for execution-trace recording."""

import pytest

from repro.timing import Trace


def test_begin_charge_end():
    tr = Trace()
    tr.begin("a", node=0)
    tr.charge("a", 100)
    seg = tr.end("a")
    assert seg.cycles == 100
    assert seg.closed
    assert tr.total_cycles() == 100


def test_double_begin_rejected():
    tr = Trace()
    tr.begin("a")
    with pytest.raises(ValueError):
        tr.begin("a")


def test_cut_adds_program_order_edge():
    tr = Trace()
    tr.begin("a")
    tr.charge("a", 5)
    closed, opened = tr.cut("a")
    assert closed.closed and not opened.closed
    assert (closed.id, opened.id, 0) in tr.edges
    tr.charge("a", 7)
    assert tr.current("a").cycles == 7


def test_last_closed_tracks_history():
    tr = Trace()
    tr.begin("a")
    closed, _ = tr.cut("a")
    assert tr.last_closed("a") is closed
    final = tr.end("a")
    assert tr.last_closed("a") is final


def test_move_node_changes_segment_node():
    tr = Trace()
    tr.begin("a", node=0)
    closed, opened = tr.move_node("a", 3)
    assert closed.node == 0
    assert opened.node == 3


def test_cross_context_edge():
    tr = Trace()
    a = tr.begin("a")
    b = tr.begin("b")
    tr.edge(a, b, latency=50)
    assert (a.id, b.id, 50) in tr.edges


def test_finish_closes_everything():
    tr = Trace()
    tr.begin("a")
    tr.begin("b")
    tr.finish()
    assert not tr.is_open("a") and not tr.is_open("b")


def test_cycles_by_uid():
    tr = Trace()
    tr.begin("a")
    tr.charge("a", 10)
    tr.cut("a")
    tr.charge("a", 20)
    tr.begin("b")
    tr.charge("b", 5)
    tr.finish()
    assert tr.cycles_by_uid() == {"a": 30, "b": 5}


def test_sleep_is_a_latency_edge_not_work():
    """A sleep defers the next segment by a timer edge: it neither
    charges cycles nor occupies a CPU, and the program clock
    (``charged``) does not advance — pacing callers track it apart."""
    tr = Trace()
    tr.begin("a")
    tr.charge("a", 10)
    closed, opened = tr.sleep("a", 500, label="arrival-wait")
    assert closed.closed and not opened.closed
    assert (closed.id, opened.id, 500) in tr.edges
    assert tr.charged("a") == 10
    tr.charge("a", 3)
    assert tr.charged("a") == 13
    assert tr.total_cycles() == 13
