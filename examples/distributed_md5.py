#!/usr/bin/env python
"""Distributed password cracking across a cluster (paper §3.3, §6.3).

The md5-tree benchmark: a brute-force MD5 preimage search distributed
over uniprocessor cluster nodes by *space migration* — the program is
ordinary shared-memory Determinator code; "distribution" is only node
numbers in the high bits of child references.  The result is identical
on any cluster size, and speedup is near-linear because workers share
almost no data.

Run:  python examples/distributed_md5.py
"""

import hashlib

from repro.bench.cluster_workloads import md5_tree_main, run_cluster
from repro.bench.workloads.md5 import ALPHABET, candidate
from repro.cluster import NetworkStats

LENGTH = 4


if __name__ == "__main__":
    target = candidate((len(ALPHABET) ** LENGTH) * 7 // 10, LENGTH)
    digest = hashlib.md5(target.encode()).hexdigest()
    print(f"searching {len(ALPHABET) ** LENGTH:,} candidates for "
          f"md5(...)={digest[:16]}...\n")
    print(f"{'nodes':>6} {'virtual time':>16} {'speedup':>9}  found")
    base = None
    machine = None
    for nodes in (1, 2, 4, 8, 16):
        makespan, machine, found = run_cluster(md5_tree_main(LENGTH), nodes)
        if base is None:
            base = makespan
        print(f"{nodes:>6} {makespan:>16,} {base / makespan:>8.2f}x  {found!r}")
        assert found == target
    print("\nsame answer on every cluster size — distribution is")
    print("semantically transparent (paper §3.3).")

    stats = NetworkStats(machine)
    print(f"\nnetwork at 16 nodes (flat fabric): {stats.summary()}\n")
    print("per-class / per-link traffic (delta migrations + batched "
          "demand fetches):")
    print(stats.link_table())

    # The same program, re-run on a routed two-tier fabric (racks of 4
    # behind an oversubscribed core switch) with locality-aware
    # placement: the per-class table splits rack-local from cross-rack
    # traffic — the view that explains oversubscription bottlenecks.
    _, machine, found = run_cluster(md5_tree_main(LENGTH), 16,
                                    topology="two_tier:4",
                                    placement="locality")
    assert found == target
    stats = NetworkStats(machine)
    print("\nsame run, two-tier fabric (racks of 4, locality placement):")
    print(stats.class_table())

    # And once more under summary-only demand paging with pipelined
    # prefetch and wire compression: pages fault over as they are
    # touched, predicted-next frames stream in behind compute, and
    # mostly-zero payloads (like the digest page) barely touch the
    # wire.  Same answer, of course — both features are cost-only.
    makespan, machine, found = run_cluster(
        md5_tree_main(LENGTH), 16, topology="two_tier:4",
        placement="locality", ship_mode="demand", prefetch_depth=16,
        compression=True)
    assert found == target
    stats = NetworkStats(machine)
    print("\nsame run, demand paging + prefetch(16) + compression:")
    print(stats.summary())
    print("\nper-link compressed-vs-raw payload ledger:")
    print(stats.compression_table())
