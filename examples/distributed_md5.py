#!/usr/bin/env python
"""Distributed password cracking across a cluster (paper §3.3, §6.3).

The md5-tree benchmark: a brute-force MD5 preimage search distributed
over uniprocessor cluster nodes by *space migration* — the program is
ordinary shared-memory Determinator code; "distribution" is only node
numbers in the high bits of child references.  The result is identical
on any cluster size, and speedup is near-linear because workers share
almost no data.

Run:  python examples/distributed_md5.py [--smoke]

``--smoke`` shrinks the search (3-character keys, up to 4 nodes) so the
CI docs job can replay the quickstart in a couple of seconds.
"""

import argparse
import hashlib

from repro import ClusterSpec
from repro.bench.cluster_workloads import md5_tree_main, run_cluster
from repro.bench.workloads.md5 import ALPHABET, candidate
from repro.cluster import NetworkStats


def main(smoke=False):
    length = 3 if smoke else 4
    sizes = (1, 2, 4) if smoke else (1, 2, 4, 8, 16)
    big = sizes[-1]
    rack = max(2, big // 4)
    fabric = f"two_tier:{rack}"

    target = candidate((len(ALPHABET) ** length) * 7 // 10, length)
    digest = hashlib.md5(target.encode()).hexdigest()
    print(f"searching {len(ALPHABET) ** length:,} candidates for "
          f"md5(...)={digest[:16]}...\n")
    print(f"{'nodes':>6} {'virtual time':>16} {'speedup':>9}  found")
    base = None
    machine = None
    for nodes in sizes:
        makespan, machine, found = run_cluster(md5_tree_main(length), nodes)
        if base is None:
            base = makespan
        print(f"{nodes:>6} {makespan:>16,} {base / makespan:>8.2f}x  {found!r}")
        assert found == target
    print("\nsame answer on every cluster size — distribution is")
    print("semantically transparent (paper §3.3).")

    stats = NetworkStats(machine)
    print(f"\nnetwork at {big} nodes (flat fabric): {stats.summary()}\n")
    print("per-class / per-link traffic (delta migrations + batched "
          "demand fetches):")
    print(stats.link_table())

    # The same program, re-run on a routed two-tier fabric (racks
    # behind an oversubscribed core switch) with locality-aware
    # placement: the per-class table splits rack-local from cross-rack
    # traffic — the view that explains oversubscription bottlenecks.
    # Every scenario below derives from this one spec: cross-cutting
    # knobs live in a single validated ClusterSpec, not keyword soup.
    spec = ClusterSpec(topology=fabric, placement="locality")
    _, machine, found = run_cluster(md5_tree_main(length), big, spec=spec)
    assert found == target
    stats = NetworkStats(machine)
    print(f"\nsame run, two-tier fabric (racks of {rack}, locality "
          f"placement):")
    print(stats.class_table())

    # And once more under summary-only demand paging with pipelined
    # prefetch and wire compression: pages fault over as they are
    # touched, predicted-next frames stream in behind compute, and
    # mostly-zero payloads (like the digest page) barely touch the
    # wire.  Same answer, of course — both features are cost-only.
    spec = spec.with_(ship_mode="demand", prefetch_depth=16,
                      compression=True)
    makespan, machine, found = run_cluster(md5_tree_main(length), big,
                                           spec=spec)
    assert found == target
    stats = NetworkStats(machine)
    print("\nsame run, demand paging + prefetch(16) + compression:")
    print(stats.summary())
    print("\nper-link compressed-vs-raw payload ledger:")
    print(stats.compression_table())

    # Finally, the same two-tier run on a *lossy* fabric: a
    # deterministic schedule drops 2% of wire copies, the link layer
    # retransmits them (bounded retries, timeout waits charged as
    # "retx" stall edges), and the retransmit ledger below replays
    # bit-identically on every rerun.  The answer still cannot change —
    # faults are cost-only under system-enforced determinism.
    spec = spec.with_(loss={"drop": 0.02, "seed": 2010})
    lossy_makespan, machine, found = run_cluster(md5_tree_main(length), big,
                                                 spec=spec)
    assert found == target
    stats = NetworkStats(machine)
    print(f"\nsame run on a lossy fabric (2% deterministic drop): "
          f"makespan {makespan:,} -> {lossy_makespan:,}")
    print(stats.summary())
    print("\nper-link retransmit ledger (bit-identical on every rerun):")
    print(stats.retx_table())

    # The transport accumulates its counters into *telemetry windows* —
    # snapshot-and-reset views a control plane (or an operator) reads.
    # This machine ran without a controller, so the whole run is still
    # sitting in its open window: per-node demand pulls, prefetch
    # issue/hit/waste splits, and late-redeem stalls.
    window = stats.window()
    print(f"\ntelemetry window of the whole static run (the input a "
          f"controller reads every quantum):")
    print(window.table())

    # Now hand the knobs to the control plane: instead of a static
    # prefetch depth and a single global retransmit timer, a
    # deterministic per-node controller consumes one such window per
    # quantum and re-tunes queue depths, per-route timeouts, and
    # placement at quantum boundaries.  Decisions are a pure function
    # of simulated state, so the decision log replays bit-identically
    # — and the answer still cannot change.
    spec = spec.with_(prefetch_depth=None, control="adaptive")
    adaptive_makespan, machine, found = run_cluster(md5_tree_main(length),
                                                    big, spec=spec)
    assert found == target
    print(f"\nsame lossy run under adaptive control: "
          f"makespan {lossy_makespan:,} -> {adaptive_makespan:,}")
    print("\ncontroller decision log (replay-exact):")
    print(machine.control.decision_log(last=12))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny search for CI (3-char keys, 4 nodes)")
    main(**vars(parser.parse_args()))
