#!/usr/bin/env python
"""Record/replay: nondeterministic inputs as explicit, controllable I/O.

Paper §2.1: "Determinator transforms useful sources of nondeterminism
into explicit I/O, which applications may obtain via controllable
channels...  If an application calls gettimeofday(), a supervising
process can intercept this I/O to log, replay, or synthesize these
explicit time inputs."

This example runs an interactive-ish program that mixes console input,
timestamps and parallel computation — then *replays* it from the
recorded input log and shows the execution is byte-for-byte identical,
including the timing-dependent parts.

Run:  python examples/record_replay.py
"""

from repro import Machine
from repro.mem.layout import SHARED_BASE
from repro.runtime.threads import thread_fork, thread_join


def main(g):
    name = g.console_read(32).decode().strip()
    t0 = g.time_now()
    g.console_write(f"hello {name}, starting at t={t0}\n")

    def worker(g, i):
        g.work(1000 * (i + 1))
        g.store(SHARED_BASE + 8 * i, i * t0)

    for i in range(4):
        thread_fork(g, i + 1, worker, (i,))
    for i in range(4):
        thread_join(g, i + 1)
    values = [g.load(SHARED_BASE + 8 * i) for i in range(4)]
    t1 = g.time_now()
    g.console_write(f"results {values} computed in {t1 - t0} ticks\n")
    return 0


def run(console_input, time_script):
    with Machine(console_input=console_input, time_script=time_script) as m:
        result = m.run(main)
        return result.console


if __name__ == "__main__":
    # --- record: the "live" run, with whatever inputs arrived -----------
    live_input = b"alice\n"
    live_times = [1718236800, 1718236805]
    recorded = run(live_input, live_times)
    print("live run:")
    print(recorded.decode(), end="")

    # --- replay: feed the logged inputs back in -------------------------
    replayed = run(live_input, live_times)
    print("\nreplayed run is byte-for-byte identical:",
          replayed == recorded)

    # --- what-if: synthesize different time inputs ----------------------
    what_if = run(live_input, [100, 250])
    print("synthesized-time run differs (as intended):",
          what_if != recorded)
    print(what_if.decode(), end="")
