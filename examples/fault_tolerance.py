#!/usr/bin/env python
"""Fault tolerance from determinism: checkpoint, crash, roll back, replay.

The paper's opening claim: "Determinism is the foundation of replay
debugging, fault tolerance, and accountability mechanisms."  This
example makes it concrete:

1. a long computation runs in a child space, parking at epoch
   boundaries; the supervisor checkpoints the child's whole subtree
   every epoch (one Tree-copy; copy-on-write, so cheap);
2. a fault is injected mid-run (a poisoned input page -> guest
   exception, reliably trapped like division by zero);
3. the supervisor rolls back to the last good checkpoint — which
   predates the poisoned input — and replays;
4. deterministic execution reaches exactly the answer the fault-free
   run would have produced.

The post-mortem at the end is done with the time-travel debugger
(``repro.debug``): the finished machine is opened with an
:class:`~repro.debug.Inspector`, which summarises the run, backtraces
the crashed space, diffs the checkpoints either side of the crash at
page granularity, and replays to the crash cycle to inspect the trapped
state in place (``docs/debugging.md`` is the guided tour).

Run:  python examples/fault_tolerance.py
"""

from repro import Machine, Trap
from repro.debug import Inspector, render
from repro.runtime.checkpoint import Checkpointer

STATE = 0x10_0000          # progress counter + accumulator page
ACC = 0x10_0008
POISON = 0x10_1000         # the "input block", on its own page
PHASES = 8
INJECT_AT_EPOCH = 5


def computation(g):
    """Checkpoint-restart style: progress lives in simulated memory."""
    while True:
        if g.load(POISON):
            raise RuntimeError("corrupted input block")
        step = g.load(STATE)
        if step >= PHASES:
            g.ret(status=0)
            continue
        g.work(50_000)
        g.store(ACC, g.load(ACC) + (step + 1) ** 2)
        g.store(STATE, step + 1)
        g.ret(status=1)


def supervisor(g):
    ckpt = Checkpointer(g)
    g.put(1, regs={"entry": computation}, start=True)
    epoch = 0
    crashed_at = None
    while True:
        view = g.get(1, regs=True)
        if view["trap"] is Trap.EXC:
            crashed_at = epoch
            g.debug(f"crash in epoch {epoch}: {view['trap_info']}")
            # Roll back to the last good image; it predates the poisoned
            # input, so the replay is exactly the fault-free execution.
            epoch -= 1
            ckpt.restore(1, f"epoch-{epoch}")
            g.debug(f"rolled back to epoch {epoch}, replaying")
            g.put(1, start=True)
            continue
        if view["status"] == 0:
            g.get(1, copy=(STATE, 0x1000))
            return g.load(ACC), crashed_at
        ckpt.save(1, f"epoch-{epoch}")
        epoch += 1
        if epoch == INJECT_AT_EPOCH and crashed_at is None:
            # Surgical fault injection: poison only the input page.
            g.store(POISON, 1)
            g.put(1, copy=(POISON, 0x1000), start=True)
            g.store(POISON, 0)          # our own copy stays clean
            g.debug(f"poisoned input before epoch {epoch}")
            continue
        g.put(1, start=True)


def main(g):
    result, crashed_at = supervisor(g)
    expected = sum((i + 1) ** 2 for i in range(PHASES))
    g.console_write(
        f"result={result} expected={expected} "
        f"recovered-from-crash-in-epoch={crashed_at}\n"
    )
    return 0 if result == expected else 1


def run(prepare=None):
    """Inspector recipe: fixed configuration -> bit-identical reruns."""
    machine = Machine()
    if prepare is not None:
        prepare(machine)
    result = machine.run(main)
    return machine, result


if __name__ == "__main__":
    machine, result = run()
    insp = Inspector(machine, result=result, recipe=run)
    try:
        print(result.console.decode(), end="")

        # The finished machine is a complete debugging artifact; the
        # inspector reads the trap, the checkpoints, and the trace out
        # of it instead of us hand-rolling prints.
        print()
        print("== post-mortem: summary ==")
        print("\n".join(render.format_summary(insp)))

        crash = insp.traps()[0]
        print()
        print(f"== backtrace of {crash.uid} (crashed at cycle "
              f"{crash.cycle}) ==")
        print("\n".join(render.format_backtrace(insp, crash.uid, limit=4)))

        # Page-granular diff of the checkpoints either side of the
        # crash: epoch-4 predates it, epoch-5 was saved after rollback
        # and replay.  Exactly one page differs — the progress
        # page advanced one clean epoch; the poison left no trace in
        # any checkpoint because the crash preempted its save.
        before = f"epoch-{INJECT_AT_EPOCH - 1}"
        after = f"epoch-{INJECT_AT_EPOCH}"
        print()
        print(f"== checkpoint diff: {before} -> {after} ==")
        print("\n".join(render.format_diff(insp.diff(before, after),
                                           before, after)))

        # Time travel: replay deterministically to the crash cycle and
        # inspect the trapped state in place (bit-identity asserted
        # against the original trace).
        print()
        print(f"== goto cycle {crash.cycle}: the machine at the "
              f"moment of the crash ==")
        print("\n".join(render.format_goto(insp.goto(crash.cycle))))

        print()
        print("exit status:", result.r0)
    finally:
        machine.close()
