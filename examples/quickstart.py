#!/usr/bin/env python
"""Quickstart: private-workspace threads, determinism, conflict detection.

Demonstrates the three headline behaviours of the Determinator model
(paper §2.2):

1. in-place parallel updates with no data races — reads see only
   causally-prior writes;
2. the classic 'x = y' || 'y = x' pair always *swaps* (it would be a
   race under conventional threads);
3. write/write races are detected and reported as conflicts at the join,
   on every run, independent of any schedule.

Run:  python examples/quickstart.py
"""

from repro import Machine, MergeConflictError
from repro.mem.layout import SHARED_BASE
from repro.runtime.threads import thread_fork, thread_join

X = SHARED_BASE
Y = SHARED_BASE + 8


def demo_parallel_update(g):
    """Each thread squares its own slot in place."""
    def worker(g, i):
        value = g.load(SHARED_BASE + 16 + 8 * i)
        g.store(SHARED_BASE + 16 + 8 * i, value * value)

    for i in range(8):
        g.store(SHARED_BASE + 16 + 8 * i, i + 1)
    for i in range(8):
        thread_fork(g, 10 + i, worker, (i,))
    for i in range(8):
        thread_join(g, 10 + i)
    return [g.load(SHARED_BASE + 16 + 8 * i) for i in range(8)]


def demo_swap(g):
    """'x = y' and 'y = x', concurrently: race-free, always swaps."""
    def assign(g, dst, src):
        g.store(dst, g.load(src))

    g.store(X, 7)
    g.store(Y, 9)
    thread_fork(g, 1, assign, (X, Y))
    thread_fork(g, 2, assign, (Y, X))
    thread_join(g, 1)
    thread_join(g, 2)
    return g.load(X), g.load(Y)


def demo_conflict(g):
    """Two threads write the same byte: reliably detected at the join."""
    def writer(g, value):
        g.store(X, value)

    thread_fork(g, 1, writer, (111,))
    thread_fork(g, 2, writer, (222,))
    thread_join(g, 1)
    try:
        thread_join(g, 2)
    except MergeConflictError as err:
        return f"conflict detected at byte {err.addr:#x}"
    return "no conflict?!"


def main(g):
    squares = demo_parallel_update(g)
    g.console_write(f"squares      : {squares}\n")
    swapped = demo_swap(g)
    g.console_write(f"swap         : x,y = {swapped}\n")
    verdict = demo_conflict(g)
    g.console_write(f"races        : {verdict}\n")
    return 0


if __name__ == "__main__":
    outputs = set()
    for run in range(3):
        with Machine() as machine:
            result = machine.run(main)
            outputs.add(result.console)
            if run == 0:
                print(result.console.decode(), end="")
                print(f"virtual time : {result.makespan(ncpus=4):,} cycles on 4 CPUs")
    print(f"repeatable   : {len(outputs) == 1} "
          f"(3 runs, {len(outputs)} distinct output(s))")
