#!/usr/bin/env python
"""The paper's Figure 1: a lock-step time simulation of parallel actors.

"A game or simulator uses an array of actors (players, particles, etc.)
to represent some logical universe, and updates all of the actors in
parallel at each time step. ... With standard threads this code has a
read/write race: each child thread may see an arbitrary mix of old and
new states as it examines other actors in the array.  Under
Determinator, however, this code is correct and race-free."

Here the actors are gravitating bodies on a line: each step, every actor
reads *all* actors' previous positions (no copying, no locking) and
updates its own in place.  Barriers (kernel Snap/Merge cycles) separate
the time steps.

Run:  python examples/parallel_actors.py
"""

import struct

from repro import Machine
from repro.mem.layout import SHARED_BASE
from repro.runtime.threads import ThreadGroup, barrier_arrive

NACTORS = 6
STEPS = 5
ACTORS = SHARED_BASE          # array of float64 positions


def read_actor(g, j):
    return struct.unpack("<d", g.read(ACTORS + 8 * j, 8))[0]


def write_actor(g, j, value):
    g.write(ACTORS + 8 * j, struct.pack("<d", value))


def actor_thread(g, i):
    """Update actor i for STEPS steps; examine neighbours freely."""
    for _step in range(STEPS):
        positions = [read_actor(g, j) for j in range(NACTORS)]
        center = sum(positions) / NACTORS
        g.work(500_000)   # the actor's physics computation
        # Drift 10% toward the center of mass — reads saw only the
        # *previous* step's state, for every actor, on every run.
        write_actor(g, i, positions[i] + 0.1 * (center - positions[i]))
        barrier_arrive(g)
    return 0


def main(g):
    for i in range(NACTORS):
        write_actor(g, i, float(i * i))        # 0, 1, 4, 9, 16, 25
    tg = ThreadGroup(g)
    for i in range(NACTORS):
        tg.fork(actor_thread, (i,))
    tg.run_barrier_rounds()
    positions = [round(read_actor(g, i), 4) for i in range(NACTORS)]
    g.console_write(("positions: " + ", ".join(map(str, positions)) + "\n"))
    return 0


if __name__ == "__main__":
    results = []
    for _ in range(3):
        with Machine() as machine:
            result = machine.run(main)
            results.append(result.console)
    print(results[0].decode(), end="")
    print("identical across 3 runs:", len(set(results)) == 1)
    with Machine() as machine:
        result = machine.run(main)
        serial = result.makespan(ncpus=1)
        parallel = result.makespan(ncpus=NACTORS)
        print(f"virtual time: {serial:,} (1 CPU) -> {parallel:,} "
              f"({NACTORS} CPUs)")
