#!/usr/bin/env python
"""Parallel make on the Unix-style process runtime (paper §4.1-4.2, Fig. 4).

A miniature build: four "compilers" produce object files into their own
file-system replicas; the outputs merge into the parent's replica at
wait(); a final "linker" reads them all.  Byte-for-byte repeatable
console output, per-process output grouping (§6.1), and the Figure 4
deterministic-wait schedule comparison.

Run:  python examples/parallel_make.py
"""

from repro import Machine
from repro.runtime.make import Make, MakeRule
from repro.runtime.process import unix_root

RULES = [
    MakeRule("parser.o", duration=3_000_000),    # the long task
    MakeRule("lexer.o", duration=500_000),       # the short task
    MakeRule("ast.o", duration=1_500_000),       # the medium task
    MakeRule("emit.o", duration=800_000),
    MakeRule(
        "compiler",
        deps=("parser.o", "lexer.o", "ast.o", "emit.o"),
        duration=400_000,
    ),
]


def init(rt, jobs):
    make = Make(rt, RULES)
    order = make.build("compiler", jobs=jobs)
    rt.write_console(f"built: {', '.join(order)}\n".encode())
    listing = ", ".join(
        name for name in sorted(rt.fs.list_names()) if not name.startswith("/dev")
    )
    rt.write_console(f"files: {listing}\n".encode())
    return 0


def run(jobs, ncpus=2):
    with Machine() as machine:
        result = machine.run(unix_root(init, jobs))
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        return result.console, result.makespan(ncpus=ncpus)


if __name__ == "__main__":
    console_j, time_j = run(jobs=None)
    console_j2, time_j2 = run(jobs=2)
    print(console_j.decode(), end="")
    print(f"make -j  (unlimited): {time_j:>12,} cycles on 2 CPUs")
    print(f"make -j2 (quota)    : {time_j2:>12,} cycles on 2 CPUs")
    print()
    print("The -j2 quota is slower than -j: deterministic wait() returns")
    print("the earliest-forked task, so the runtime cannot learn which of")
    print("two running tasks finished first (paper Figure 4d).  The paper's")
    print("advice: leave scheduling to the system ('make -j').")
