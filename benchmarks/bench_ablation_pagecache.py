"""Ablation: the cluster's read-only page cache (paper §3.3).

"For pages that the migrating space only reads and never writes, such
as program code, each kernel reuses cached copies of these pages
whenever the space returns to that node."

Measured by running the md5-tree cluster benchmark normally and with an
(artificially) cold cache on every access, via a cost model whose
fetches are never absorbed — implemented by zeroing the cache between
rounds through a fresh machine per round and comparing fetch counts.
"""

from repro.bench import cluster_workloads as cw
from repro.kernel.machine import Machine


def _run_tree(nodes, disable_cache):
    machine = Machine(nnodes=nodes)
    if disable_cache:
        # A cache that forgets everything: discard on every insertion.
        class _ColdCache(dict):
            def __setitem__(self, key, value):
                pass

            def get(self, key, default=None):
                return default

        for node in range(nodes):
            machine.node_cache[node] = _ColdCache()
    main = cw.matmult_tree_main(256)

    def entry(g):
        return main(g, nodes)

    with machine:
        result = machine.run(entry)
        assert result.trap.name in ("EXIT", "RET"), result.trap_info
        cpus = {node: 1 for node in range(nodes)}
        return result.makespan(cpus_per_node=cpus), machine.pages_fetched


def test_ablation_readonly_page_cache(once):
    def compare():
        warm_time, warm_fetches = _run_tree(8, disable_cache=False)
        cold_time, cold_fetches = _run_tree(8, disable_cache=True)
        return warm_time, warm_fetches, cold_time, cold_fetches

    warm_time, warm_fetches, cold_time, cold_fetches = once(compare)
    print()
    print("Read-only page cache ablation (matmult-tree, 8 nodes):")
    print(f"  cache on : time={warm_time:>14,} fetches={warm_fetches:,}")
    print(f"  cache off: time={cold_time:>14,} fetches={cold_fetches:,}")
    assert cold_fetches > warm_fetches
    assert cold_time >= warm_time
