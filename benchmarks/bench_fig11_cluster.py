"""Figure 11: deterministic shared-memory benchmarks on 1-32 node clusters.

Paper shape (log-log): md5-tree scales well with recursive distribution;
md5-circuit (serial migration circuit) trails at high node counts;
matmult-tree is bounded by the volume of matrix data the protocol moves.
Under the paper's simplistic full-ship/per-page protocol
(``matmult-naive``) it levels off at two nodes exactly as §6.3 reports;
the delta+batched transport lifts the plateau but matmult remains
data-movement-bound — far from md5's near-linear scaling (DESIGN.md
records this deliberate divergence).
"""

import pytest

from repro.bench import figures


@pytest.mark.slow_cluster
def test_fig11_cluster_speedup(once):
    series = once(figures.figure11)
    print()
    print(figures.format_series(
        "Figure 11: speedup vs single-node local execution", series))
    assert series["md5-tree"][32] > 15.0
    assert series["md5-tree"][32] > series["md5-circuit"][32]
    # The paper's protocol: matmult-tree peaks at ~2 nodes and never
    # scales past it.
    naive_peak = max(series["matmult-naive"].values())
    assert series["matmult-naive"][2] >= 0.9 * naive_peak
    assert series["matmult-naive"][32] < 2.0
    # The rebuilt transport: better everywhere, still data-bound — the
    # plateau is low, early (<= 4 nodes), and decays at scale.
    peak = max(series["matmult-tree"].values())
    assert peak < 3.0
    assert max(series["matmult-tree"], key=series["matmult-tree"].get) <= 4
    assert series["matmult-tree"][32] < peak
    # Delta+batched shipping dominates the naive protocol at every size.
    for nodes, naive in series["matmult-naive"].items():
        assert series["matmult-tree"][nodes] >= naive


@pytest.mark.slow_cluster
def test_fig11_prefetch_series(once):
    """The data-bound series under summary-only demand paging: the
    async fetch queues lift the stop-and-wait envelope, compression
    lifts it further, and the eager delta default bounds it above —
    with the same computed value in every cell."""
    series = once(figures.figure11_prefetch)
    print()
    print(figures.format_series(
        "Figure 11 (demand paging): matmult-tree speedup", series))
    for nodes in (4, 8):
        assert series["pipelined"][nodes] > series["stopwait"][nodes]
        assert series["pipelined+comp"][nodes] > series["pipelined"][nodes]
        assert series["eager-delta"][nodes] >= series["stopwait"][nodes]


@pytest.mark.slow_cluster
def test_fig11_topology_series(once):
    """The data-bound series re-run per routed fabric: the flat mesh is
    the upper envelope, oversubscribed two-tier bends the knee
    earliest, full-bisection fat-tree sits between."""
    series = once(figures.figure11_topology)
    print()
    print(figures.format_series(
        "Figure 11 (per topology): matmult-tree speedup", series))
    for nodes in (4, 8):
        assert series["flat"][nodes] >= series["fat-tree"][nodes]
        assert series["fat-tree"][nodes] > series["two-tier"][nodes]
