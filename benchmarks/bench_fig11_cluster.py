"""Figure 11: deterministic shared-memory benchmarks on 1-32 node clusters.

Paper shape (log-log): md5-tree scales well with recursive distribution;
md5-circuit (serial migration circuit) trails at high node counts;
matmult-tree levels off at two nodes because of the volume of matrix
data the simplistic page-copying protocol moves.
"""

from repro.bench import figures


def test_fig11_cluster_speedup(once):
    series = once(figures.figure11)
    print()
    print(figures.format_series(
        "Figure 11: speedup vs single-node local execution", series))
    assert series["md5-tree"][32] > 15.0
    assert series["md5-tree"][32] > series["md5-circuit"][32]
    # matmult-tree peaks at ~2 nodes and never scales past it.
    peak = max(series["matmult-tree"].values())
    assert series["matmult-tree"][2] >= 0.9 * peak
    assert series["matmult-tree"][32] < 2.0
