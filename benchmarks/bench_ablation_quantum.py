"""Ablation: deterministic-scheduler quantum size (paper §4.5/§6.2).

"The deterministic scheduler's quantization ... incurs a fixed
performance cost of about 35% for the chosen quantum of 10 million
instructions.  We could reduce this overhead by increasing the quantum."

This sweep prices the blackscholes table under several quanta and
reports the overhead relative to the native (non-scheduled) fork/join
port, confirming the monotone trade-off.
"""

from repro.bench.harness import run_determinator
from repro.bench.workloads import blackscholes_workload as bs


def test_ablation_quantum_sweep(once):
    nworkers = 8
    quanta = (500_000, 2_000_000, 10_000_000, 50_000_000)

    def sweep():
        times = {}
        for quantum in quanta:
            params = bs.default_params(
                nworkers, noptions=1 << 14, nruns=16, quantum=quantum
            )
            det = run_determinator(bs, params)
            times[quantum] = det.makespan(nworkers)
        return times

    times = once(sweep)
    print()
    print("Quantum-size ablation (blackscholes under the det. scheduler):")
    for quantum, makespan in times.items():
        print(f"  quantum={quantum:>12,}  makespan={makespan:>14,}")
    values = [times[q] for q in quanta]
    # Larger quanta monotonically reduce the quantization overhead.
    assert values[0] > values[-1]
    assert all(a >= b * 0.98 for a, b in zip(values, values[1:]))
