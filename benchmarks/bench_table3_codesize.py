"""Table 3: implementation code size by component.

The paper reports semicolon-line counts for Determinator (14,492 total);
this regenerates the analogous per-component source-line table for the
reproduction.
"""

from repro.bench.codesize import table3


def test_table3_code_size(once):
    text, sizes = once(table3)
    print()
    print("Table 3 (reproduction analogue):")
    print(text)
    assert sizes["Total"] > 3000
    assert sizes["Kernel core"] > 0
    assert sizes["User-level runtime"] > 0
