#!/usr/bin/env python
"""CI gate: the README quickstart must actually run.

Extracts every command line from README.md's fenced shell code blocks
and replays each through a *smoke* variant (``--collect-only`` for the
test suite, ``--smoke`` for examples, ``--help`` for utilities), so a
renamed entry point, a dropped flag, or a moved file makes the docs job
fail instead of silently rotting the quickstart.  Two drift directions
are covered:

* a REQUIRED command disappearing from the README (someone edited the
  quickstart away) fails;
* a command appearing in the README that this script does not know how
  to smoke-test fails with instructions to teach it — undocumented
  commands never get silently skipped.

Usage: python benchmarks/check_docs.py [--readme README.md]
"""

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: README command -> argv to actually run (None = run verbatim).  The
#: keys must match the README lines exactly; editing the quickstart
#: means editing this table in the same commit.
SMOKE = {
    "PYTHONPATH=src python -m pytest -x -q":
        ["python", "-m", "pytest", "-x", "-q", "--collect-only"],
    "PYTHONPATH=src python examples/distributed_md5.py":
        ["python", "examples/distributed_md5.py", "--smoke"],
    "PYTHONPATH=src python -m repro.bench fig4": None,
    "PYTHONPATH=src python -m repro.bench serving": None,
    "python benchmarks/check_regression.py":
        ["python", "benchmarks/check_regression.py", "--help"],
    "python benchmarks/check_docs.py":
        ["python", "benchmarks/check_docs.py", "--help"],
}

#: Commands the quickstart must keep containing.
REQUIRED = {
    "PYTHONPATH=src python -m pytest -x -q",
    "PYTHONPATH=src python examples/distributed_md5.py",
}

_FENCE = re.compile(r"^```(?:ba)?sh\s*$")


def extract_commands(readme):
    """Command lines inside ```sh / ```bash fenced blocks (``$ `` and
    comment lines stripped)."""
    commands = []
    in_block = False
    for line in readme.read_text().splitlines():
        if in_block and line.startswith("```"):
            in_block = False
        elif in_block:
            command = line.strip().removeprefix("$ ").strip()
            if command and not command.startswith("#"):
                commands.append(command)
        elif _FENCE.match(line.strip()):
            in_block = True
    return commands


def smoke_argv(command):
    """The argv to smoke-test ``command`` with (prefix assignments like
    ``PYTHONPATH=src`` are moved into the environment by run())."""
    argv = SMOKE[command]
    if argv is not None:
        return argv
    return [part for part in command.split() if "=" not in part or
            not part.partition("=")[0].isupper()]


def run(command):
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    argv = smoke_argv(command)
    print(f"check_docs: {command!r} -> {' '.join(argv)}")
    result = subprocess.run(argv, cwd=REPO, env=env,
                            capture_output=True, text=True)
    if result.returncode != 0:
        print(f"check_docs: FAILED ({result.returncode}):\n"
              f"{result.stdout[-2000:]}\n{result.stderr[-2000:]}",
              file=sys.stderr)
    return result.returncode == 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--readme", default=str(REPO / "README.md"))
    args = parser.parse_args(argv)

    readme = Path(args.readme)
    if not readme.exists():
        print(f"check_docs: {readme} does not exist", file=sys.stderr)
        return 2
    commands = extract_commands(readme)
    if not commands:
        print("check_docs: README has no shell code blocks — the "
              "quickstart is gone", file=sys.stderr)
        return 2

    failures = []
    for required in sorted(REQUIRED - set(commands)):
        failures.append(f"required quickstart command missing from "
                        f"README: {required!r}")
    for command in commands:
        if command not in SMOKE:
            failures.append(
                f"README command {command!r} is unknown to check_docs.py "
                f"— add a smoke mapping for it in the same commit")
        elif not run(command):
            failures.append(f"smoke run failed: {command!r}")

    if failures:
        print(f"\ncheck_docs: {len(failures)} documentation drift(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_docs: all {len(commands)} README quickstart commands "
          f"smoke-tested ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
