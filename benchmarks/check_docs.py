#!/usr/bin/env python
"""CI gate: the documented command lines must actually run.

Extracts every command line from the fenced shell code blocks of the
README quickstart *and* ``docs/debugging.md`` and replays each through
a *smoke* variant (``--collect-only`` for the test suite, ``--smoke``
for long examples, ``--help`` for utilities, verbatim for the
deterministic inspector commands), so a renamed entry point, a dropped
flag, or a moved file makes the docs job fail instead of silently
rotting the docs.  Two drift directions are covered:

* a REQUIRED command disappearing from its document (someone edited
  the guide away) fails;
* a command appearing in a document that this script does not know how
  to smoke-test fails with instructions to teach it — undocumented
  commands never get silently skipped.

Usage: python benchmarks/check_docs.py [--docs FILE [FILE ...]]
"""

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Documented command -> argv to actually run (None = run verbatim).
#: The keys must match the documented lines exactly; editing a guide
#: means editing this table in the same commit.
SMOKE = {
    "PYTHONPATH=src python -m pytest -x -q":
        ["python", "-m", "pytest", "-x", "-q", "--collect-only"],
    "PYTHONPATH=src python examples/distributed_md5.py":
        ["python", "examples/distributed_md5.py", "--smoke"],
    "PYTHONPATH=src python -m repro.bench fig4": None,
    "PYTHONPATH=src python -m repro.bench serving": None,
    # docs/backends.md — the backend-aware artifacts are deterministic
    # and fast on both backends, so they run verbatim (drift in the
    # --backend flag or the artifact names fails here); the real-
    # backend runs skip silently only via the artifact's own gates.
    "PYTHONPATH=src python -m repro.bench md5": None,
    "PYTHONPATH=src python -m repro.bench md5 --backend=real": None,
    "PYTHONPATH=src python -m repro.bench serving --backend=real": None,
    "PYTHONPATH=src python -m pytest tests/cluster/test_backend_oracle.py "
    "-q":
        ["python", "-m", "pytest", "tests/cluster/test_backend_oracle.py",
         "-q", "--collect-only"],
    "python benchmarks/check_regression.py":
        ["python", "benchmarks/check_regression.py", "--help"],
    "python benchmarks/check_docs.py":
        ["python", "benchmarks/check_docs.py", "--help"],
    # docs/debugging.md — the inspector commands are deterministic and
    # fast, so they run verbatim (drift in scenario names, cycle
    # numbers, checkpoint tags, or subcommand flags fails here).
    "PYTHONPATH=src python -m repro.debug --scenario retx summary": None,
    "PYTHONPATH=src python -m repro.debug --scenario retx tree --pages":
        None,
    "PYTHONPATH=src python -m repro.debug tree": None,
    "PYTHONPATH=src python -m repro.debug bt s3": None,
    "PYTHONPATH=src python -m repro.debug --scenario retx links": None,
    "PYTHONPATH=src python -m repro.debug --scenario retx links --at 20000":
        None,
    "PYTHONPATH=src python -m repro.debug diff epoch-4 epoch-5": None,
    "PYTHONPATH=src python -m repro.debug goto 345806": None,
    "PYTHONPATH=src python -m repro.debug --scenario retx goto 45924": None,
    "PYTHONPATH=src python examples/fault_tolerance.py": None,
    "PYTHONPATH=src python -m pytest tests/debug -q":
        ["python", "-m", "pytest", "tests/debug", "-q", "--collect-only"],
}

#: Document (repo-relative) -> commands it must keep containing.
REQUIRED = {
    "README.md": {
        "PYTHONPATH=src python -m pytest -x -q",
        "PYTHONPATH=src python examples/distributed_md5.py",
    },
    "docs/debugging.md": {
        "PYTHONPATH=src python -m repro.debug goto 345806",
        "PYTHONPATH=src python examples/fault_tolerance.py",
    },
    "docs/backends.md": {
        "PYTHONPATH=src python -m repro.bench md5 --backend=real",
    },
}

#: Documents scanned by default.
DEFAULT_DOCS = ("README.md", "docs/debugging.md", "docs/backends.md")

_FENCE = re.compile(r"^```(?:ba)?sh\s*$")


def extract_commands(readme):
    """Command lines inside ```sh / ```bash fenced blocks (``$ `` and
    comment lines stripped)."""
    commands = []
    in_block = False
    for line in readme.read_text().splitlines():
        if in_block and line.startswith("```"):
            in_block = False
        elif in_block:
            command = line.strip().removeprefix("$ ").strip()
            if command and not command.startswith("#"):
                commands.append(command)
        elif _FENCE.match(line.strip()):
            in_block = True
    return commands


def smoke_argv(command):
    """The argv to smoke-test ``command`` with (prefix assignments like
    ``PYTHONPATH=src`` are moved into the environment by run())."""
    argv = SMOKE[command]
    if argv is not None:
        return argv
    return [part for part in command.split() if "=" not in part or
            not part.partition("=")[0].isupper()]


def run(command):
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    argv = smoke_argv(command)
    print(f"check_docs: {command!r} -> {' '.join(argv)}")
    result = subprocess.run(argv, cwd=REPO, env=env,
                            capture_output=True, text=True)
    if result.returncode != 0:
        print(f"check_docs: FAILED ({result.returncode}):\n"
              f"{result.stdout[-2000:]}\n{result.stderr[-2000:]}",
              file=sys.stderr)
    return result.returncode == 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--docs", nargs="+",
        default=[str(REPO / doc) for doc in DEFAULT_DOCS],
        help="markdown files to scan (default: README.md and "
             "docs/debugging.md)")
    args = parser.parse_args(argv)

    failures = []
    total = 0
    smoked = set()
    for path in args.docs:
        doc = Path(path)
        if not doc.exists():
            print(f"check_docs: {doc} does not exist", file=sys.stderr)
            return 2
        commands = extract_commands(doc)
        if not commands:
            failures.append(f"{doc.name} has no shell code blocks — its "
                            f"command walkthrough is gone")
            continue
        total += len(commands)
        try:
            relpath = doc.resolve().relative_to(REPO).as_posix()
        except ValueError:
            relpath = doc.name
        for required in sorted(REQUIRED.get(relpath, set()) - set(commands)):
            failures.append(f"required command missing from "
                            f"{relpath}: {required!r}")
        for command in commands:
            if command not in SMOKE:
                failures.append(
                    f"{relpath} command {command!r} is unknown to "
                    f"check_docs.py — add a smoke mapping for it in the "
                    f"same commit")
            elif command not in smoked:
                smoked.add(command)
                if not run(command):
                    failures.append(f"smoke run failed: {command!r}")

    if failures:
        print(f"\ncheck_docs: {len(failures)} documentation drift(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_docs: all {total} documented commands "
          f"({len(smoked)} unique) smoke-tested ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
