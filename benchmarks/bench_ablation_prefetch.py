"""Ablation: pipelined async demand paging + PAGE_BATCH wire compression.

matmult-tree — the workload whose scaling the network sets — replays at
4 nodes on the oversubscribed two-tier fabric under the summary-only
migration protocol (``ship_mode="demand"``: pages fault over on touch,
nothing ships eagerly), crossed with the two new transport features:

* **prefetch** — each node's async fetch queue issues PAGE_REQs for
  predicted-next frames (sequential + migration-ledger-informed) while
  compute proceeds; a demand on an in-flight frame redeems the
  exchange, charging only the part of the transfer the compute did not
  hide (``prefetch_depth=0`` is the stop-and-wait baseline);
* **compression** — PAGE_BATCH payloads ship zero-suppressed/zero-run
  RLE encoded, with per-link raw-vs-compressed accounting.

Both features are cost-only: computed values must be identical in every
cell.  What moves: *demand-stall cycles* (the per-kind transfer waits
``schedule()`` now reports) drop strictly with ``prefetch_depth > 0``
vs stop-and-wait, and *wire bytes* drop strictly with compression on —
while the per-link conservation invariants (bytes delivered == bytes
sent, compressed <= raw) hold everywhere.  The eager delta-shipping
default rides along as context.

Results are dumped to ``benchmarks/out/BENCH_prefetch.json``; CI
uploads the file as an artifact and ``check_regression.py`` gates
demand-stall cycles, wire bytes, and makespan against the committed
``benchmarks/BENCH_prefetch.json`` baseline.
"""

from conftest import dump_json

from repro import ClusterSpec
from repro.bench import cluster_workloads as cw
from repro.cluster import NetworkStats
from repro.timing.schedule import schedule

N = 128
NODES = 4
TOPOLOGY = "two_tier:2"
DEPTH = 32

BASE = ClusterSpec(topology=TOPOLOGY)
CELLS = [
    ("eager-delta", BASE),
    ("stopwait", BASE.with_(ship_mode="demand")),
    ("stopwait+comp", BASE.with_(ship_mode="demand", compression=True)),
    ("pipelined", BASE.with_(ship_mode="demand", prefetch_depth=DEPTH)),
    ("pipelined+comp", BASE.with_(ship_mode="demand", prefetch_depth=DEPTH,
                                  compression=True)),
]


def _run_cell(spec):
    makespan, machine, value = cw.run_cluster(
        cw.matmult_tree_main(N), NODES, spec=spec)
    sched = schedule(machine.trace,
                     cpus_per_node={node: 1 for node in range(NODES)})
    stalls = sched.stall_cycles
    stats = NetworkStats(machine)
    return {
        "value": value,
        "makespan": makespan,
        # Cycles spaces spent stalled on page fetches: stop-and-wait
        # demand round trips plus late-arriving prefetched pages (the
        # explicit stall edges redeeming an in-flight exchange charges).
        "demand_stall": stalls.get("fetch", 0) + stalls.get("prefetch", 0),
        "migrate_stall": stalls.get("migrate", 0),
        "wire_bytes": stats.wire_bytes,
        "raw_payload": stats.raw_bytes,
        "comp_payload": stats.comp_bytes,
        "pages": stats.pages_fetched,
        "pulled": stats.pages_pulled,
        "prefetched": stats.pages_prefetched,
        "prefetch_used": stats.prefetch_used,
        "conserved": machine.transport.conservation_ok(),
    }


def test_ablation_prefetch(once):
    def run_all():
        return {name: _run_cell(spec) for name, spec in CELLS}

    results = once(run_all)
    print()
    print(f"Prefetch/compression ablation (matmult-tree, n={N}, "
          f"{NODES} nodes, {TOPOLOGY}, depth={DEPTH}):")
    for name, r in results.items():
        print(f"  {name:14s} makespan {r['makespan']:>12,}"
              f"  demand-stall {r['demand_stall']:>12,}"
              f"  wire KiB {r['wire_bytes'] / 1024:>7.0f}"
              f"  payload {r['raw_payload'] / 1024:>5.0f}"
              f"->{r['comp_payload'] / 1024:>5.0f} KiB"
              f"  pulled/prefetched {r['pulled']:>3}/{r['prefetched']:>3}")

    # (c) Prefetching and compression are invisible to the computation:
    # identical computed results in every ablation cell...
    assert len({r["value"] for r in results.values()}) == 1
    # ...and no cell loses a byte on any link, or compresses one up.
    assert all(r["conserved"] for r in results.values())
    assert all(r["comp_payload"] <= r["raw_payload"]
               for r in results.values())

    stopwait = results["stopwait"]
    pipelined = results["pipelined"]
    stopwait_c = results["stopwait+comp"]
    pipelined_c = results["pipelined+comp"]
    # (a) The async fetch queues strictly cut demand-stall cycles vs
    # the stop-and-wait protocol (with and without compression), and
    # the saved stall shows up in the makespan.
    assert pipelined["demand_stall"] < stopwait["demand_stall"]
    assert pipelined_c["demand_stall"] < stopwait_c["demand_stall"]
    assert pipelined["makespan"] < stopwait["makespan"]
    assert pipelined_c["makespan"] < stopwait_c["makespan"]
    # At this depth the queue absorbs every demand pull.
    assert pipelined["pulled"] < stopwait["pulled"]
    assert pipelined["prefetch_used"] > 0
    # (b) Compression strictly cuts wire bytes vs raw frames (with and
    # without prefetching); uncompressed cells ship payloads verbatim.
    assert stopwait_c["wire_bytes"] < stopwait["wire_bytes"]
    assert pipelined_c["wire_bytes"] < pipelined["wire_bytes"]
    assert stopwait_c["comp_payload"] < stopwait_c["raw_payload"]
    assert stopwait["comp_payload"] == stopwait["raw_payload"]

    dump_json("BENCH_prefetch.json", results)
