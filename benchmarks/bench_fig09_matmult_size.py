"""Figure 9: matrix multiply with varying matrix size vs Linux.

Paper shape: deterministic execution costs heavily at small problem
sizes (frequent interaction) and becomes competitive at large sizes.
"""

from repro.bench import figures


def test_fig09_matmult_size_sweep(once):
    series = once(figures.figure9)
    print()
    print(figures.format_series("Figure 9: matmult size sweep (ratio)",
                                {"matmult": series}))
    sizes = sorted(series)
    assert series[sizes[0]] < 0.7       # small: Determinator pays
    assert series[sizes[-1]] > 0.8      # large: competitive
    assert series[sizes[-1]] > series[sizes[0]]
