"""Figure 7: Determinator performance relative to pthreads/Linux.

Seven benchmarks; values are Linux-time / Determinator-time, so > 1
means Determinator is faster.  Paper shape: md5 wins at 12 cores
(2.25x), coarse-grained benchmarks are comparable, fine-grained lu pays
heavily.
"""

from repro.bench import figures


def test_fig07_relative_performance(once):
    series = once(figures.figure7)
    print()
    print(figures.format_series(
        "Figure 7: Determinator relative to Linux (>1 = faster)", series))
    assert series["md5"][12] > 1.5          # paper: 2.25x
    assert 0.6 < series["matmult"][12] <= 1.3
    assert series["lu_cont"][12] < 0.3
    assert series["lu_noncont"][12] < 0.3
