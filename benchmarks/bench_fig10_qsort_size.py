"""Figure 10: parallel quicksort with varying array size vs Linux.

Paper shape: high deterministic-execution cost at small sizes, closing
toward parity as the problem grows.
"""

from repro.bench import figures


def test_fig10_qsort_size_sweep(once):
    series = once(figures.figure10)
    print()
    print(figures.format_series("Figure 10: qsort size sweep (ratio)",
                                {"qsort": series}))
    sizes = sorted(series)
    assert series[sizes[0]] < 0.6
    assert series[sizes[-1]] > series[sizes[0]]
