"""Ablation: generation-tagged dirty-page tracking (DESIGN.md).

With tracking enabled, Snap/Merge enumerate candidate pages from the
child's dirty ledger (O(written) instead of O(mapped)), adopt
parent-unchanged pages by frame tag without reading their bytes, and
byte-diff the remaining both-sides-dirty pages as one stacked
``(N, 4096)`` ndarray operation.  Disabling tracking restores the seed
algorithm: scan the union of mapped pages and byte-diff every
COW-broken page.

This quantifies the gap on the paper's coarse-grained workloads:
results must be identical, while pages scanned, pages byte-diffed,
virtual merge cost, and host wall-clock merge time all drop.
"""

import os
import time

from repro.bench.harness import run_determinator
from repro.bench.workloads import ALL

#: (workload, param overrides, workers) — sizes large enough that the
#: O(mapped) scan is visible but the whole ablation stays a few seconds.
CASES = [
    ("matmult", {"n": 512}, 12),
    ("qsort", {"n": 1 << 16}, 8),
    ("md5", {"length": 3, "rounds": 4}, 8),
]


def _run_case(name, overrides, nworkers, tracking):
    mod, extra = ALL[name]
    kwargs = dict(overrides)
    kwargs.update(extra)
    params = mod.default_params(nworkers, **kwargs)
    # The simulation is deterministic, so virtual metrics are identical
    # across repeats; only the host wall-clock is noisy.  Run twice and
    # keep the min, so scheduler hiccups don't flip the comparison.
    merge_wall = float("inf")
    t0 = time.perf_counter()
    for _ in range(2):
        result = run_determinator(mod, params, dirty_tracking=tracking)
        merge_wall = min(merge_wall, result.machine.merge_seconds)
    wall = time.perf_counter() - t0
    stats = result.machine.merge_stats_total
    return {
        "value": result.value,
        "scanned": sum(s.pages_scanned for s in stats),
        "diffed": sum(s.pages_diffed for s in stats),
        "adopted": sum(s.pages_adopted for s in stats),
        "bytes": sum(s.bytes_merged for s in stats),
        "cycles": result.makespan(12),
        "merge_wall": merge_wall,
        "wall": wall,
    }


def test_ablation_dirty_tracking(once):
    def run_all():
        out = {}
        for name, overrides, nworkers in CASES:
            out[name] = {
                tracking: _run_case(name, overrides, nworkers, tracking)
                for tracking in (True, False)
            }
        return out

    results = once(run_all)
    print()
    print("Dirty-tracking ablation (tracked vs legacy scan):")
    total_wall = {True: 0.0, False: 0.0}
    for name, pair in results.items():
        on, off = pair[True], pair[False]
        print(f"  {name:10s} scanned {off['scanned']:6d} -> {on['scanned']:5d}"
              f"   diffed {off['diffed']:5d} -> {on['diffed']:4d}"
              f"   merge-cycles(makespan) {off['cycles']:>12,} -> {on['cycles']:>12,}"
              f"   merge-wall {off['merge_wall']*1e3:6.2f}ms -> "
              f"{on['merge_wall']*1e3:6.2f}ms")
        # Identical results: tracking is purely an optimization.
        assert on["value"] == off["value"]
        assert on["bytes"] == off["bytes"]
        # Strictly less enumeration and strictly fewer byte-diffed pages.
        assert on["scanned"] < off["scanned"]
        assert on["diffed"] < off["diffed"]
        # And cheaper in virtual time.
        assert on["cycles"] < off["cycles"]
        total_wall[True] += on["merge_wall"]
        total_wall[False] += off["merge_wall"]
    print(f"  total merge wall-clock: {total_wall[False]*1e3:.2f}ms legacy"
          f" -> {total_wall[True]*1e3:.2f}ms tracked")
    # Host wall-clock across all three workloads (summed, min-of-2 per
    # config, to damp noise).  The virtual-metric asserts above prove the
    # win deterministically; on shared CI runners millisecond timings can
    # still invert, so there the wall-clock comparison is report-only.
    if not os.environ.get("CI"):
        assert total_wall[True] < total_wall[False]
